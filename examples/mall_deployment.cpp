// Mall deployment scenario: the workload the paper's introduction motivates.
//
// A six-floor shopping mall collects RF scans from shoppers' phones. A few
// floor-labeled records per floor arrive through in-store QR check-ins.
// GRAFICS trains on the mixed corpus and then serves two production flows:
//   * geofencing — verify a device stays on its permitted floor,
//   * heat-mapping — attribute a stream of anonymous scans to floors.
// The example also contrasts GRAFICS with the matrix-representation
// baseline to show why the graph model matters on mall-like data.
//
// Run:  ./build/examples/mall_deployment
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/experiment.h"
#include "core/grafics.h"
#include "synth/presets.h"

int main() {
  using namespace grafics;

  // The larger of the two Hong Kong malls from the paper's dataset.
  auto fleet = synth::HongKongFleet(/*seed=*/2022, /*records_per_floor=*/250);
  auto& mall = fleet[4];  // "hk-mall-2": 5 floors, 120 x 90 m
  auto simulator = mall.MakeSimulator();
  rf::Dataset dataset = simulator.GenerateDataset();
  std::printf("mall '%s': %zu scans, %zu MACs, %d floors\n",
              mall.spec.name.c_str(), dataset.size(),
              dataset.DistinctMacCount(), mall.spec.num_floors);

  const rf::Dataset fully_labeled = dataset;  // kept for the comparison below
  Rng rng(9);
  // QR check-ins supply 10 labels per floor — a busy mall gets that within
  // a day, and the 5-floor 10 000 m^2 footprint needs a few more anchors
  // than the paper's median building.
  dataset.KeepLabelsPerFloor(10, rng);

  core::Grafics grafics;
  grafics.Train(dataset.records());
  std::printf("offline training done (%zu clusters)\n\n",
              grafics.clustering().num_clusters());

  // --- flow 1: geofencing --------------------------------------------------
  // An elderly-care wristband is registered to floor 1; alert when the
  // wearer appears elsewhere (paper Sec. I geofencing use case). Production
  // geofences debounce single-scan errors: an alert fires only when the
  // majority of the last three predictions disagrees with the permitted
  // floor.
  std::printf("geofencing: wristband registered to floor 1 "
              "(3-scan majority debounce)\n");
  int alerts = 0;
  std::vector<int> recent;
  for (int minute = 0; minute < 12; ++minute) {
    const int actual_floor = minute < 8 ? 1 : 3;  // wanders off at minute 8
    const rf::SignalRecord scan = simulator.MeasureAt(
        {30.0 + minute * 2.0, 40.0, actual_floor * 4.0 + 1.2}, actual_floor);
    const auto predicted = grafics.Predict(scan);
    if (predicted) {
      recent.push_back(*predicted);
      if (recent.size() > 3) recent.erase(recent.begin());
    }
    const auto off_floor = static_cast<std::size_t>(
        std::count_if(recent.begin(), recent.end(),
                      [](int floor) { return floor != 1; }));
    const bool alert = recent.size() == 3 && off_floor >= 2;
    if (alert) ++alerts;
    std::printf("  minute %2d: actual=F%d predicted=%s %s\n", minute,
                actual_floor,
                predicted ? ("F" + std::to_string(*predicted)).c_str() : "?",
                alert ? "ALERT" : "ok");
  }
  std::printf("alerts raised over 12 minutes: %d (wander-off happens at "
              "minute 8)\n\n", alerts);

  // --- flow 2: floor heat-mapping ------------------------------------------
  std::printf("heat-mapping 200 anonymous scans...\n");
  std::map<rf::FloorId, int> histogram;
  Rng traffic_rng(31);
  for (int i = 0; i < 200; ++i) {
    // Shoppers concentrate on the ground and first floors.
    const int floor = static_cast<int>(traffic_rng.NextIndex(10)) < 6
                          ? static_cast<int>(traffic_rng.NextIndex(2))
                          : static_cast<int>(traffic_rng.NextIndex(5));
    const rf::SignalRecord scan = simulator.MeasureAt(
        {traffic_rng.Uniform(5.0, 115.0), traffic_rng.Uniform(5.0, 85.0),
         floor * 4.0 + 1.2},
        floor);
    if (const auto predicted = grafics.Predict(scan)) ++histogram[*predicted];
  }
  for (const auto& [floor, count] : histogram) {
    std::printf("  floor %d: %4d scans  %s\n", floor, count,
                std::string(static_cast<std::size_t>(count) / 4, '#').c_str());
  }

  // --- why the graph model matters -----------------------------------------
  std::printf("\ncomparison on this mall (4 labels/floor, 1 run):\n");
  core::ExperimentConfig config;
  config.labels_per_floor = 4;
  for (const auto algorithm :
       {core::Algorithm::kGrafics, core::Algorithm::kMatrixProx}) {
    const auto result =
        core::RunExperiment(algorithm, fully_labeled, config, /*seed=*/3);
    std::printf("  %-12s micro-F=%.3f macro-F=%.3f\n",
                core::AlgorithmName(algorithm).c_str(),
                result.metrics.micro.f_score, result.metrics.macro.f_score);
  }
  return 0;
}
