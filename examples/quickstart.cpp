// Quickstart: the full GRAFICS workflow in ~60 lines.
//
//  1. obtain a crowdsourced RF dataset (here: synthesized for a small
//     three-story building),
//  2. keep floor labels on only four records per floor,
//  3. train GRAFICS (bipartite graph -> E-LINE -> Prox clustering),
//  4. identify the floor of new online measurements.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "core/grafics.h"
#include "synth/presets.h"

int main() {
  using namespace grafics;

  // --- 1. crowdsourced data ------------------------------------------------
  // Each record is a variable-length list of (MAC, RSS) pairs. In a real
  // deployment these come from user phones; here a calibrated simulator
  // stands in for the building.
  auto building = synth::CampusBuildingConfig(/*seed=*/7, /*rpf=*/150);
  auto simulator = building.MakeSimulator();
  rf::Dataset dataset = simulator.GenerateDataset();
  std::printf("collected %zu records over %zu floors (%zu distinct MACs)\n",
              dataset.size(), dataset.Floors().size(),
              dataset.DistinctMacCount());

  // --- 2. label scarcity ---------------------------------------------------
  // Crowdsourcing rarely captures floor labels; keep only 4 per floor
  // (e.g. from QR-code check-ins) and remember the rest as ground truth
  // for scoring below.
  Rng rng(42);
  const auto ground_truth = dataset.KeepLabelsPerFloor(4, rng);
  std::printf("labels kept: %zu of %zu records\n", dataset.LabeledCount(),
              dataset.size());

  // --- 3. offline training -------------------------------------------------
  core::GraficsConfig config;      // paper defaults: dim 8, f(RSS)=RSS+120
  core::Grafics grafics(config);
  grafics.Train(dataset.records());
  std::printf("trained: graph has %zu records, %zu MACs, %zu edges; "
              "%zu clusters\n",
              grafics.graph().NumRecords(), grafics.graph().NumMacs(),
              grafics.graph().NumEdges(),
              grafics.clustering().num_clusters());

  // --- 4. online inference -------------------------------------------------
  // A user walks in and scans WiFi on floor 2: predict where they are.
  std::size_t correct = 0;
  constexpr int kProbes = 30;
  for (int i = 0; i < kProbes; ++i) {
    const int true_floor = i % 3;
    const rf::SignalRecord scan = simulator.MeasureAt(
        {10.0 + i, 15.0, true_floor * 4.0 + 1.2}, true_floor);
    const std::optional<rf::FloorId> predicted = grafics.Predict(scan);
    if (predicted && *predicted == true_floor) ++correct;
  }
  std::printf("online inference: %zu/%d probes on the correct floor\n",
              correct, kProbes);
  return correct >= kProbes * 8 / 10 ? 0 : 1;
}
