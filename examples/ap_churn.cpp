// Dynamic RF environments: APs get removed and installed over time
// (paper Sec. III-A "Dynamic RF environments" and Sec. IV-A's claim that
// the bipartite graph "can be adjusted to reflect installation and removal
// of APs/MACs").
//
// This example trains GRAFICS, then simulates environmental churn:
//   phase 1 — baseline accuracy,
//   phase 2 — 20 % of the building's APs are decommissioned; the graph is
//             updated with BipartiteGraph-level removals on the synthetic
//             side and accuracy is re-measured on scans from the degraded
//             environment,
//   phase 3 — replacement APs are installed (fresh MACs, never seen during
//             training); a crowdsourced adoption batch folds them into the
//             graph online via PredictBatch(keep=true).
//
// Run:  ./build/examples/ap_churn
#include <cstdio>
#include <vector>

#include "core/grafics.h"
#include "synth/presets.h"

namespace {

using namespace grafics;

/// Accuracy of `grafics` on `count` fresh scans per floor.
double MeasureAccuracy(core::Grafics& grafics,
                       synth::BuildingSimulator& simulator, int floors,
                       int count, Rng& rng) {
  int correct = 0;
  int total = 0;
  for (int floor = 0; floor < floors; ++floor) {
    for (int i = 0; i < count; ++i) {
      const rf::SignalRecord scan = simulator.MeasureAt(
          {rng.Uniform(5.0, 65.0), rng.Uniform(5.0, 45.0),
           floor * 4.0 + 1.2},
          floor);
      const auto predicted = grafics.Predict(scan);
      if (predicted && *predicted == floor) ++correct;
      ++total;
    }
  }
  return static_cast<double>(correct) / total;
}

}  // namespace

int main() {
  auto building = synth::CampusBuildingConfig(/*seed=*/515, /*rpf=*/150);
  auto simulator = building.MakeSimulator();
  rf::Dataset dataset = simulator.GenerateDataset();
  Rng rng(77);
  dataset.KeepLabelsPerFloor(4, rng);

  core::Grafics grafics;
  grafics.Train(dataset.records());
  const std::size_t initial_aps = simulator.ApCount();
  std::printf("trained on %zu records over %zu APs\n", dataset.size(),
              initial_aps);

  // --- phase 1: baseline ---------------------------------------------------
  Rng probe_rng(101);
  const double baseline = MeasureAccuracy(grafics, simulator, 3, 15,
                                          probe_rng);
  std::printf("phase 1  baseline accuracy:             %.3f\n", baseline);

  // --- phase 2: AP removal --------------------------------------------------
  const std::size_t removed = simulator.RemoveRandomAps(initial_aps / 5);
  std::printf("phase 2  removed %zu APs (%zu remain)\n", removed,
              simulator.ApCount());
  const double degraded = MeasureAccuracy(grafics, simulator, 3, 15,
                                          probe_rng);
  std::printf("         accuracy after removal:        %.3f\n", degraded);

  // --- phase 3: replacement APs (fresh MACs) --------------------------------
  simulator.InstallAps(removed);
  std::printf("phase 3  installed %zu replacement APs (fresh MACs)\n",
              removed);
  // Predictions are snapshot-isolated and never mutate the model, so fresh
  // MACs are adopted explicitly: serve a crowdsourced adoption batch with
  // keep=true, which folds the accepted records back into the graph and
  // learns the new MAC embeddings with the base model frozen (Sec. V-A).
  const std::size_t macs_before = grafics.graph().NumMacs();
  std::vector<rf::SignalRecord> adoption;
  for (int floor = 0; floor < 3; ++floor) {
    for (int i = 0; i < 10; ++i) {
      adoption.push_back(simulator.MeasureAt(
          {probe_rng.Uniform(5.0, 65.0), probe_rng.Uniform(5.0, 45.0),
           floor * 4.0 + 1.2},
          floor));
    }
  }
  grafics.PredictBatch(adoption, {.keep = true});
  const double recovered = MeasureAccuracy(grafics, simulator, 3, 15,
                                           probe_rng);
  std::printf("         accuracy with new APs online:  %.3f\n", recovered);
  std::printf("         graph grew from %zu to %zu MAC nodes\n", macs_before,
              grafics.graph().NumMacs());

  std::printf("\nexpected: accuracy dips modestly after removal and stays "
              "usable with replacement APs, without any retraining\n");
  return 0;
}
