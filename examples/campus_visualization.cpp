// Campus visualization: regenerates the data behind the paper's Figs. 6-8 —
// E-LINE embeddings of a three-story campus building, their t-SNE
// projection, and the clustering merge progression — and writes everything
// to CSV files an analyst can plot.
//
// Outputs (in ./example_artifacts/):
//   campus_tsne.csv        x,y,floor           (Fig. 6a analogue)
//   campus_progress_<p>.csv x,y,component      (Fig. 8 analogue at p%)
//   campus_silhouette.txt  embedding quality comparison vs MDS/autoencoder
//
// Run:  ./build/examples/campus_visualization
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "baselines/matrix_representation.h"
#include "baselines/mds.h"
#include "common/csv.h"
#include "common/stats.h"
#include "core/grafics.h"
#include "synth/presets.h"
#include "viz/tsne.h"

int main() {
  using namespace grafics;
  std::filesystem::create_directories("example_artifacts");

  auto building = synth::CampusBuildingConfig(/*seed=*/606, /*rpf=*/150);
  auto simulator = building.MakeSimulator();
  rf::Dataset dataset = simulator.GenerateDataset();
  std::vector<int> floors;
  floors.reserve(dataset.size());
  for (const auto& r : dataset.records()) floors.push_back(*r.floor());

  Rng rng(5);
  const auto truth = dataset.KeepLabelsPerFloor(4, rng);

  core::Grafics grafics;
  grafics.Train(dataset.records());
  const Matrix embeddings = grafics.TrainingEmbeddings();

  // --- Fig. 6 analogue: t-SNE of the E-LINE embeddings ---------------------
  viz::TsneConfig tsne_config;
  tsne_config.iterations = 400;
  tsne_config.perplexity = 25.0;
  const Matrix projected = viz::TsneEmbed(embeddings, tsne_config);
  {
    std::vector<CsvRow> rows;
    rows.push_back({"x", "y", "floor"});
    for (std::size_t i = 0; i < projected.rows(); ++i) {
      rows.push_back({std::to_string(projected(i, 0)),
                      std::to_string(projected(i, 1)),
                      std::to_string(floors[i])});
    }
    WriteCsvFile("example_artifacts/campus_tsne.csv", rows);
  }
  std::printf("wrote example_artifacts/campus_tsne.csv (%zu points)\n",
              projected.rows());

  // --- Fig. 8 analogue: merge progression ----------------------------------
  const auto& clustering = grafics.clustering();
  for (const double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto merges = static_cast<std::size_t>(
        fraction * static_cast<double>(clustering.merge_history.size()));
    const auto assignment = clustering.AssignmentsAfter(merges);
    std::vector<CsvRow> rows;
    rows.push_back({"x", "y", "component"});
    for (std::size_t i = 0; i < projected.rows(); ++i) {
      rows.push_back({std::to_string(projected(i, 0)),
                      std::to_string(projected(i, 1)),
                      std::to_string(assignment[i])});
    }
    const std::string path = "example_artifacts/campus_progress_" +
                             std::to_string(static_cast<int>(fraction * 100)) +
                             ".csv";
    WriteCsvFile(path, rows);
    std::printf("wrote %s (%zu components)\n", path.c_str(),
                1 + *std::max_element(assignment.begin(), assignment.end()));
  }

  // --- embedding quality summary (Fig. 6 comparison) -----------------------
  std::vector<std::vector<double>> eline_rows;
  for (std::size_t i = 0; i < embeddings.rows(); ++i) {
    eline_rows.emplace_back(embeddings.Row(i).begin(),
                            embeddings.Row(i).end());
  }
  const double eline_silhouette = MeanSilhouette(eline_rows, floors);

  const baselines::MatrixRepresentation repr(dataset.records());
  const Matrix raw = repr.ToMatrix(dataset.records());
  baselines::MdsConfig mds_config;
  mds_config.dim = 8;
  const baselines::MdsEmbedder mds(raw, mds_config);
  const Matrix mds_embedding = mds.Embed(raw);
  std::vector<std::vector<double>> mds_rows;
  for (std::size_t i = 0; i < mds_embedding.rows(); ++i) {
    mds_rows.emplace_back(mds_embedding.Row(i).begin(),
                          mds_embedding.Row(i).end());
  }
  const double mds_silhouette = MeanSilhouette(mds_rows, floors);

  std::ofstream summary("example_artifacts/campus_silhouette.txt");
  summary << "E-LINE silhouette: " << eline_silhouette << "\n"
          << "MDS silhouette:    " << mds_silhouette << "\n";
  std::printf("silhouettes: E-LINE=%.3f MDS=%.3f (higher is better)\n",
              eline_silhouette, mds_silhouette);
  return 0;
}
