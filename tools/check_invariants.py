#!/usr/bin/env python3
"""Repo-invariant lint, run as a ctest (see CMakeLists.txt) and by the
static-analysis CI job.

Checks five invariants that neither the compiler nor the unit tests can
express on their own:

1. sync-wrappers: no naked std::mutex / std::lock_guard / std::scoped_lock /
   std::unique_lock / std::condition_variable (or pthread equivalents) under
   src/ outside common/annotated_sync.h. Every lock must be a grafics::Mutex
   so the Clang thread-safety analysis sees it.

2. protocol-freeze: every wire dialect older than the current
   kProtocolVersion has a frozen-byte-layout assertion in
   tests/protocol_test.cc, marked by a `layout-frozen: v<k>` comment. A
   version bump without freezing the previous dialect's bytes fails here
   before it can ship an incompatible decoder.

3. durable-rename: every ::rename( in src/store/ is preceded (within the
   same file, a few dozen lines above) by an fsync/fdatasync call — the
   crash-safe commit pattern (write temp, fsync, rename). A rename without a
   sync can surface as a zero-length manifest after power loss.

4. obs-instruments: every telemetry instrument resolved under src/
   (obs::Registry::GetCounter/GetGauge/GetHistogram with a literal name)
   matches grafics_[a-z0-9_]+ AND is cataloged in docs/observability.md.
   Dashboards and alerts are written against the doc; an undocumented
   instrument silently drifts out of both.

5. kernel-loops: no hand-rolled dot/axpy/squared-distance inner loops
   (subscripted multiply-accumulate) under src/ outside
   src/common/matrix.{h,cc} and src/common/simd*. Those loops belong in the
   vector-kernel layer (common/simd.h): a stray copy silently forks the
   bit-identity anchor and dodges the SIMD backends.

Exit status 0 = all invariants hold; 1 = violations (printed one per line
as path:line: message). Run `tools/check_invariants.py --self-test` to
verify the lint itself still catches planted violations of each rule.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

BANNED_SYNC = re.compile(
    r"std::(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"
    r"|std::lock_guard\b"
    r"|std::scoped_lock\b"
    r"|std::unique_lock\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|pthread_(?:mutex|cond)_"
)

PROTOCOL_VERSION = re.compile(
    r"kProtocolVersion\s*=\s*(\d+)"
)

FROZEN_MARKER = re.compile(r"layout-frozen:\s*v(\d+)\b")

RENAME_CALL = re.compile(r"::rename\s*\(")
FSYNC_CALL = re.compile(r"\bf(?:data)?sync\s*\(")

# An instrument resolution with a literal name; \s* spans newlines so a
# name wrapped to the next line by clang-format still matches.
OBS_RESOLVE = re.compile(r"Get(?:Counter|Gauge|Histogram)\s*\(\s*\"([^\"]*)\"")
OBS_NAME = re.compile(r"grafics_[a-z0-9_]+")

# How many lines above a ::rename the justifying fsync may sit. The store's
# WriteFileDurably pattern keeps them adjacent; the window only needs to
# cover one helper function body.
RENAME_FSYNC_WINDOW = 40

# Hand-rolled kernel loop shapes (rule 5). Subscripted operands only:
# Matrix's paren accessors (m(r, c)) are element-wise code, not a packed
# inner loop, and stay out of scope.
#   dot:  sum += a[i] * b[i]
KERNEL_DOT = re.compile(
    r"\+=\s*[A-Za-z_][\w.\->]*\[[^\]]+\]\s*\*\s*[A-Za-z_][\w.\->]*\[[^\]]+\]")
#   axpy: y[i] += alpha * x[i]
KERNEL_AXPY = re.compile(
    r"\[[^\]]+\]\s*\+=\s*[A-Za-z_][\w.\->]*\s*\*\s*"
    r"[A-Za-z_][\w.\->]*\[[^\]]+\]")
#   distance: d = a[i] - b[i]; ... sum += d * d;
KERNEL_SQUARE_ACC = re.compile(r"\+=\s*([A-Za-z_]\w*)\s*\*\s*\1\s*;")
KERNEL_SUBSCRIPT_DIFF = re.compile(
    r"=\s*[A-Za-z_][\w.\->]*\[[^\]]+\]\s*-\s*[A-Za-z_][\w.\->]*\[[^\]]+\]")
# Lines above a squared accumulation where its subscripted difference may sit.
KERNEL_DIFF_WINDOW = 3

KERNEL_EXEMPT = (
    "src/common/matrix.h",
    "src/common/matrix.cc",
    "src/common/simd",  # simd.h, simd.cc, simd_avx2.cc, simd_neon.cc
)


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments, preserving line structure so reported
    line numbers stay correct. String literals are left alone — good enough
    for the token-level checks here (none of the banned tokens appear in
    string literals in this codebase, and a false positive is a one-line
    fix)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            if j < 0:
                break
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def iter_source_files(root: str):
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "src")):
        for filename in sorted(filenames):
            if filename.endswith((".h", ".cc")):
                yield os.path.join(dirpath, filename)


def check_sync_wrappers(root: str) -> list[str]:
    problems = []
    for path in iter_source_files(root):
        rel = os.path.relpath(path, root)
        if rel.replace(os.sep, "/") == "src/common/annotated_sync.h":
            continue
        with open(path, encoding="utf-8") as f:
            text = strip_comments(f.read())
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = BANNED_SYNC.search(line)
            if match:
                problems.append(
                    f"{rel}:{lineno}: naked {match.group(0)} — use "
                    "grafics::Mutex/MutexLock/CondVar from "
                    "common/annotated_sync.h"
                )
    return problems


def check_protocol_freeze(root: str) -> list[str]:
    header = os.path.join(root, "src", "serve", "protocol.h")
    test = os.path.join(root, "tests", "protocol_test.cc")
    with open(header, encoding="utf-8") as f:
        match = PROTOCOL_VERSION.search(f.read())
    if not match:
        return [f"{os.path.relpath(header, root)}: kProtocolVersion not found"]
    current = int(match.group(1))
    with open(test, encoding="utf-8") as f:
        frozen = {int(m.group(1)) for m in FROZEN_MARKER.finditer(f.read())}
    problems = []
    for version in range(1, current):
        if version not in frozen:
            problems.append(
                f"tests/protocol_test.cc: no `layout-frozen: v{version}` "
                f"byte-layout assertion for protocol v{version} "
                f"(kProtocolVersion is {current}; every older dialect must "
                "keep a frozen-bytes test)"
            )
    return problems


def check_durable_rename(root: str) -> list[str]:
    problems = []
    store_dir = os.path.join(root, "src", "store")
    for dirpath, _dirnames, filenames in os.walk(store_dir):
        for filename in sorted(filenames):
            if not filename.endswith(".cc"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as f:
                lines = strip_comments(f.read()).splitlines()
            for lineno, line in enumerate(lines, start=1):
                if not RENAME_CALL.search(line):
                    continue
                window = lines[max(0, lineno - 1 - RENAME_FSYNC_WINDOW):
                               lineno - 1]
                if not any(FSYNC_CALL.search(w) for w in window):
                    problems.append(
                        f"{rel}:{lineno}: ::rename without a preceding "
                        f"fsync/fdatasync within {RENAME_FSYNC_WINDOW} lines "
                        "— commit pattern is write temp, fsync, rename"
                    )
    return problems


def check_obs_instruments(root: str) -> list[str]:
    problems = []
    doc_path = os.path.join(root, "docs", "observability.md")
    doc = None
    if os.path.exists(doc_path):
        with open(doc_path, encoding="utf-8") as f:
            doc = f.read()
    for path in iter_source_files(root):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = strip_comments(f.read())
        for match in OBS_RESOLVE.finditer(text):
            name = match.group(1)
            lineno = text.count("\n", 0, match.start()) + 1
            if not OBS_NAME.fullmatch(name):
                problems.append(
                    f"{rel}:{lineno}: obs instrument name \"{name}\" does "
                    "not match grafics_[a-z0-9_]+"
                )
                continue
            if doc is None:
                problems.append(
                    f"{rel}:{lineno}: obs instrument \"{name}\" registered "
                    "but docs/observability.md does not exist"
                )
            elif not re.search(rf"\b{re.escape(name)}\b", doc):
                problems.append(
                    f"{rel}:{lineno}: obs instrument \"{name}\" is not "
                    "cataloged in docs/observability.md"
                )
    return problems


def check_kernel_loops(root: str) -> list[str]:
    problems = []
    for path in iter_source_files(root):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if rel.startswith(KERNEL_EXEMPT):
            continue
        with open(path, encoding="utf-8") as f:
            lines = strip_comments(f.read()).splitlines()
        for lineno, line in enumerate(lines, start=1):
            kind = None
            if KERNEL_DOT.search(line):
                kind = "dot/multiply-accumulate"
            elif KERNEL_AXPY.search(line):
                kind = "axpy"
            elif KERNEL_SQUARE_ACC.search(line):
                window = lines[max(0, lineno - 1 - KERNEL_DIFF_WINDOW):
                               lineno - 1]
                if any(KERNEL_SUBSCRIPT_DIFF.search(w) for w in window):
                    kind = "squared-distance"
            if kind:
                problems.append(
                    f"{rel}:{lineno}: hand-rolled {kind} loop — route it "
                    "through the vector-kernel layer (common/simd.h or the "
                    "common/matrix.h wrappers)"
                )
    return problems


def run_checks(root: str) -> list[str]:
    problems = []
    problems += check_sync_wrappers(root)
    problems += check_protocol_freeze(root)
    problems += check_durable_rename(root)
    problems += check_obs_instruments(root)
    problems += check_kernel_loops(root)
    return problems


def self_test() -> int:
    """Plants one violation of each rule in a scratch tree and checks the
    lint reports all of them — the negative test proving the lint can fail."""
    with tempfile.TemporaryDirectory() as root:
        os.makedirs(os.path.join(root, "src", "serve"))
        os.makedirs(os.path.join(root, "src", "store"))
        os.makedirs(os.path.join(root, "tests"))
        with open(os.path.join(root, "src", "serve", "bad_sync.cc"),
                  "w", encoding="utf-8") as f:
            f.write("#include <mutex>\n"
                    "// std::mutex in a comment must NOT trip the lint\n"
                    "std::mutex naked_mutex;\n"
                    "void F() { std::lock_guard<std::mutex> l(naked_mutex); }"
                    "\n")
        with open(os.path.join(root, "src", "serve", "protocol.h"),
                  "w", encoding="utf-8") as f:
            f.write("constexpr int kProtocolVersion = 3;\n")
        with open(os.path.join(root, "tests", "protocol_test.cc"),
                  "w", encoding="utf-8") as f:
            f.write("// layout-frozen: v1\n")  # v2 marker missing on purpose
        with open(os.path.join(root, "src", "store", "bad_store.cc"),
                  "w", encoding="utf-8") as f:
            f.write("void Commit() {\n"
                    "  ::rename(\"tmp\", \"final\");  // no fsync before\n"
                    "}\n")
        os.makedirs(os.path.join(root, "docs"))
        with open(os.path.join(root, "docs", "observability.md"),
                  "w", encoding="utf-8") as f:
            f.write("# Telemetry\n\n`grafics_documented_total` is listed.\n")
        with open(os.path.join(root, "src", "serve", "bad_obs.cc"),
                  "w", encoding="utf-8") as f:
            f.write("void Wire(obs::Registry* r) {\n"
                    "  r->GetCounter(\"grafics_documented_total\", \"ok\");\n"
                    "  r->GetCounter(\"grafics_BadName_total\", \"bad\");\n"
                    "  r->GetGauge(\"grafics_undocumented_depth\", \"bad\");\n"
                    "}\n")
        os.makedirs(os.path.join(root, "src", "common"))
        with open(os.path.join(root, "src", "common", "matrix.cc"),
                  "w", encoding="utf-8") as f:
            # Exempt home of the reference loops: must NOT trip rule 5.
            f.write("double Dot(const double* a, const double* b, int n) {\n"
                    "  double sum = 0.0;\n"
                    "  for (int i = 0; i < n; ++i) sum += a[i] * b[i];\n"
                    "  return sum;\n"
                    "}\n")
        with open(os.path.join(root, "src", "serve", "bad_kernels.cc"),
                  "w", encoding="utf-8") as f:
            f.write("void F(const double* x, double* y, double a, int n) {\n"
                    "  double sum = 0.0;\n"
                    "  for (int i = 0; i < n; ++i) sum += x[i] * y[i];\n"
                    "  for (int i = 0; i < n; ++i) y[i] += a * x[i];\n"
                    "  for (int i = 0; i < n; ++i) {\n"
                    "    const double d = x[i] - y[i];\n"
                    "    sum += d * d;\n"
                    "  }\n"
                    "  // loss += diff * diff * scale below must NOT trip\n"
                    "  double diff = a - sum, scale = 0.5, loss = 0.0;\n"
                    "  loss += diff * diff * scale;\n"
                    "  (void)loss;\n"
                    "}\n")
        problems = run_checks(root)
        expected = [
            ("bad_sync.cc:3", "std::mutex"),
            ("bad_sync.cc:4", "std::lock_guard"),
            ("protocol_test.cc", "layout-frozen: v2"),
            ("bad_store.cc:2", "::rename without"),
            ("bad_obs.cc:3", "does not match grafics_[a-z0-9_]+"),
            ("bad_obs.cc:4", "not cataloged in docs/observability.md"),
            ("bad_kernels.cc:3", "dot/multiply-accumulate"),
            ("bad_kernels.cc:4", "axpy"),
            ("bad_kernels.cc:7", "squared-distance"),
        ]
        failures = []
        for needle_path, needle_msg in expected:
            if not any(needle_path in p and needle_msg in p
                       for p in problems):
                failures.append(
                    f"self-test: planted violation not caught: "
                    f"{needle_path} ({needle_msg})")
        comment_hits = [p for p in problems if "bad_sync.cc:2" in p]
        if comment_hits:
            failures.append("self-test: commented-out token tripped the lint")
        documented_hits = [p for p in problems if "bad_obs.cc:2" in p]
        if documented_hits:
            failures.append(
                "self-test: documented, well-named instrument tripped "
                "the obs lint")
        exempt_hits = [p for p in problems if "common/matrix.cc" in p]
        if exempt_hits:
            failures.append(
                "self-test: exempt common/matrix.cc tripped the "
                "kernel-loop lint")
        scaled_hits = [p for p in problems if "bad_kernels.cc:11" in p]
        if scaled_hits:
            failures.append(
                "self-test: scaled square accumulation (not a distance "
                "loop) tripped the kernel-loop lint")
        if failures:
            print("\n".join(failures))
            print("\nlint output was:")
            print("\n".join(problems) if problems else "  (empty)")
            return 1
    print("check_invariants self-test: all planted violations caught")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent dir)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the lint catches planted violations")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    problems = run_checks(root)
    if problems:
        print("\n".join(problems))
        print(f"\ncheck_invariants: {len(problems)} violation(s)")
        return 1
    print("check_invariants: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
