// Restart cost: full-journal replay vs base + delta checkpoint restore.
//
// Trains a campus-preset GRAFICS model, then lives the same ingest history
// twice. Life A journals every accepted record and restarts by replaying
// the whole journal (refolding every batch through Update). Life B runs
// the same stream against an ingest pipeline wired to a store::ModelStore,
// compacts the journal into a delta checkpoint, and restarts by loading
// base + delta from the store with an empty journal suffix. Both restarts
// must answer a held-out query set bit-identically to an in-process
// reference that folded the same chunks — only then are timings reported.
//
// Writes BENCH_checkpoint_restore.json for the CI perf-trajectory
// artifact.
//
// Run:  ./build/bench/checkpoint_restore
//       ./build/bench/checkpoint_restore --records-per-floor 200 \
//           --submit 120 --chunk 20 --queries 60
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli_flags.h"
#include "core/grafics.h"
#include "ingest/ingest_pipeline.h"
#include "rf/dataset.h"
#include "serve/model_registry.h"
#include "store/model_store.h"
#include "synth/presets.h"

namespace {

using namespace grafics;
using Clock = std::chrono::steady_clock;

struct Args {
  int records_per_floor = 400;
  std::size_t submit = 160;
  std::size_t chunk = 20;
  std::size_t queries = 80;
};

Args ParseArgs(int argc, char** argv) {
  const std::vector<std::string> raw(argv + 1, argv + argc);
  Args args;
  args.records_per_floor = static_cast<int>(ParseUnsigned(
      FlagValue(raw, "--records-per-floor", "400"), 100000,
      "--records-per-floor"));
  args.submit =
      ParseUnsigned(FlagValue(raw, "--submit", "160"), 1000000, "--submit");
  args.chunk = ParseUnsigned(FlagValue(raw, "--chunk", "20"), 4096, "--chunk");
  Require(args.chunk >= 1, "--chunk must be at least 1");
  args.queries =
      ParseUnsigned(FlagValue(raw, "--queries", "80"), 1000000, "--queries");
  return args;
}

double Seconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

std::string TempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/grafics_restore_") + tag + "_XXXXXX";
  Require(::mkdtemp(tmpl.data()) != nullptr, "cannot create temp directory");
  return tmpl;
}

/// Streams `records` into the pipeline in `chunk`-sized submissions,
/// waiting for each fold to publish so the batch boundaries (and thus the
/// folded model) are deterministic across both lives and the reference.
void StreamInto(ingest::IngestPipeline& pipeline,
                const std::vector<rf::SignalRecord>& records,
                std::size_t chunk) {
  for (std::size_t begin = 0; begin < records.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, records.size());
    const std::vector<rf::SignalRecord> slice(
        records.begin() + static_cast<long>(begin),
        records.begin() + static_cast<long>(end));
    for (const ingest::SubmitResult& result :
         pipeline.Submit("campus", slice)) {
      Require(result.accepted, "record rejected: " + result.error);
    }
    Require(pipeline.WaitUntilDrained(), "fold-in did not drain");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    args = ParseArgs(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "checkpoint_restore: %s\n", e.what());
    return 1;
  }

  std::printf("== checkpoint_restore: journal replay vs base+delta restore "
              "==\n");

  auto building = synth::CampusBuildingConfig(/*seed=*/17,
                                              args.records_per_floor);
  auto sim = building.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(23);
  auto [train, rest] = dataset.TrainTestSplit(0.6, rng);
  train.KeepLabelsPerFloor(6, rng);
  const std::size_t stream_size = std::min(args.submit, rest.size() / 2);
  const std::size_t query_size =
      std::min(args.queries, rest.size() - stream_size);
  const std::vector<rf::SignalRecord> stream(
      rest.records().begin(), rest.records().begin() + stream_size);
  const std::vector<rf::SignalRecord> queries(
      rest.records().begin() + stream_size,
      rest.records().begin() + stream_size + query_size);

  core::GraficsConfig model_config;
  model_config.trainer.samples_per_edge = 60;
  core::Grafics base(model_config);
  const auto train_start = Clock::now();
  base.Train(train.records());
  std::printf("   trained on %zu record(s) in %.2fs; streaming %zu in "
              "chunks of %zu\n",
              train.size(), Seconds(train_start), stream.size(), args.chunk);

  // In-process reference: the same chunked Update sequence on a clone.
  core::Grafics reference = base.Clone();
  for (std::size_t begin = 0; begin < stream.size(); begin += args.chunk) {
    const std::size_t end = std::min(begin + args.chunk, stream.size());
    reference.Update(std::vector<rf::SignalRecord>(
        stream.begin() + static_cast<long>(begin),
        stream.begin() + static_cast<long>(end)));
  }
  const std::vector<std::optional<rf::FloorId>> expected =
      reference.PredictBatch(queries, {.num_threads = 1});

  ingest::IngestConfig ingest_config;
  ingest_config.fold_batch_size = args.chunk;
  ingest_config.max_delay = std::chrono::milliseconds(20);

  // --- Life A: journal only; restart refolds the entire stream. ----------
  const std::string journal_a = TempDir("journal");
  std::uint64_t journal_bytes_full = 0;
  {
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->Load("campus",
                   std::make_shared<const core::Grafics>(base.Clone()));
    ingest::IngestConfig config = ingest_config;
    config.journal_dir = journal_a;
    ingest::IngestPipeline pipeline(registry, config);
    pipeline.Attach("campus");
    StreamInto(pipeline, stream, args.chunk);
    journal_bytes_full = pipeline.Stats().front().journal_bytes;
    pipeline.Stop();
    registry->Stop();
  }
  double replay_seconds = 0;
  std::uint64_t replayed_records = 0;
  {
    auto registry = std::make_shared<serve::ModelRegistry>();
    ingest::IngestConfig config = ingest_config;
    config.journal_dir = journal_a;
    const auto restart = Clock::now();
    registry->Load("campus",
                   std::make_shared<const core::Grafics>(base.Clone()));
    ingest::IngestPipeline pipeline(registry, config);
    pipeline.Attach("campus");
    replay_seconds = Seconds(restart);
    replayed_records = pipeline.Stats().front().replayed;
    const auto served = registry->Snapshot("campus")->PredictBatch(
        queries, {.num_threads = 1});
    Require(served == expected,
            "journal replay diverged from the Update reference");
    pipeline.Stop();
    registry->Stop();
  }

  // --- Life B: journal + store; compaction folds the journal into a delta
  // checkpoint, so the restart loads base + delta and replays nothing. ----
  const std::string journal_b = TempDir("journal");
  const std::string store_dir = TempDir("store");
  std::uint64_t journal_bytes_reclaimed = 0;
  std::uint64_t base_bytes = 0;
  std::uint64_t delta_bytes = 0;
  bool checkpoint_is_delta = false;
  {
    auto store = std::make_shared<store::ModelStore>(store_dir);
    store->WriteBase("campus",
                     std::make_shared<const core::Grafics>(base.Clone()));
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->AttachStore(store);
    registry->LoadFromStore("campus");
    ingest::IngestConfig config = ingest_config;
    config.journal_dir = journal_b;
    config.model_store = store;
    ingest::IngestPipeline pipeline(registry, config);
    pipeline.Attach("campus");
    StreamInto(pipeline, stream, args.chunk);
    const auto outcome = pipeline.CompactNow("campus");
    journal_bytes_reclaimed = outcome.journal_bytes_reclaimed;
    for (const store::ArtifactInfo& artifact : store->List("campus")) {
      if (artifact.is_delta) {
        delta_bytes += artifact.bytes;
        checkpoint_is_delta = true;
      } else {
        base_bytes += artifact.bytes;
      }
    }
    pipeline.Stop();
    registry->Stop();
  }
  double restore_seconds = 0;
  {
    auto store = std::make_shared<store::ModelStore>(store_dir);
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->AttachStore(store);
    ingest::IngestConfig config = ingest_config;
    config.journal_dir = journal_b;
    config.model_store = store;
    const auto restart = Clock::now();
    registry->LoadFromStore("campus");
    ingest::IngestPipeline pipeline(registry, config);
    pipeline.Attach("campus");
    restore_seconds = Seconds(restart);
    const serve::IngestModelStats stats = pipeline.Stats().front();
    Require(stats.replayed == 0,
            "store restart still replayed journal records");
    const auto served = registry->Snapshot("campus")->PredictBatch(
        queries, {.num_threads = 1});
    Require(served == expected,
            "base+delta restore diverged from the Update reference");
    pipeline.Stop();
    registry->Stop();
  }
  Require(checkpoint_is_delta,
          "compaction wrote a full base where a delta was expected");

  const double speedup =
      restore_seconds > 0 ? replay_seconds / restore_seconds : 0;
  std::printf("\n%24s %16s %10s\n", "restart path", "seconds", "replayed");
  std::printf("%24s %16.4f %10llu\n", "full journal replay", replay_seconds,
              static_cast<unsigned long long>(replayed_records));
  std::printf("%24s %16.4f %10u\n", "base+delta restore", restore_seconds,
              0u);
  std::printf("\nspeedup %.1fx; journal %llu B -> reclaimed %llu B; "
              "artifacts: base %llu B + delta %llu B\n", speedup,
              static_cast<unsigned long long>(journal_bytes_full),
              static_cast<unsigned long long>(journal_bytes_reclaimed),
              static_cast<unsigned long long>(base_bytes),
              static_cast<unsigned long long>(delta_bytes));
  std::printf("both restarts answered %zu queries bit-identically to the "
              "in-process reference\n", queries.size());

  bench::BenchReport report("checkpoint_restore");
  report.Add("replay_restore_seconds", replay_seconds);
  report.Add("store_restore_seconds", restore_seconds);
  report.Add("restore_speedup", speedup);
  report.Add("replayed_records", static_cast<double>(replayed_records));
  report.Add("journal_bytes_full", static_cast<double>(journal_bytes_full));
  report.Add("journal_bytes_reclaimed",
             static_cast<double>(journal_bytes_reclaimed));
  report.Add("base_artifact_bytes", static_cast<double>(base_bytes));
  report.Add("delta_artifact_bytes", static_cast<double>(delta_bytes));
  report.WriteJson();
  return 0;
}
