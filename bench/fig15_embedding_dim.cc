// Fig. 15 — insensitivity of GRAFICS to the embedding dimension (2^2..2^8).
// Paper shape: a flat curve; no careful tuning of the dimension is needed.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace grafics;
  using namespace grafics::bench;
  const BenchScale scale = GetScale();
  PrintHeader("Fig. 15", "F-scores vs embedding dimension", scale);

  for (const Corpus& corpus :
       {MicrosoftCorpus(scale, 51), HongKongCorpus(scale, 52)}) {
    std::printf("\n--- %s corpus ---\n", corpus.name.c_str());
    std::printf("%10s %10s %10s\n", "dim", "micro-F", "macro-F");
    for (const std::size_t dim : {4, 8, 16, 32, 64, 128, 256}) {
      core::ExperimentConfig config;
      config.labels_per_floor = 4;
      config.grafics.trainer.dim = dim;
      const core::MetricsSummary s =
          RunOnCorpus(core::Algorithm::kGrafics, corpus, config, 5000 + dim,
                      scale.repetitions);
      std::printf("%10zu %10.3f %10.3f\n", dim, s.micro_f_mean,
                  s.macro_f_mean);
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape: flat — GRAFICS is insensitive to the "
              "embedding dimension\n");
  return 0;
}
