// End-to-end QPS of the network serving daemon.
//
// Trains GRAFICS on the campus preset, starts an in-process serve::Server on
// an ephemeral loopback port, and hammers it with concurrent blocking
// clients. Before reporting anything the harness verifies every networked
// prediction bit-matches the in-process PredictBatch reference — the wire
// path must not change a single answer. Reports QPS per connection count
// plus micro-batch coalescing stats, and writes BENCH_serve_daemon_qps.json
// for the CI perf-trajectory artifact.
//
// Run:  ./build/bench/serve_daemon_qps
//       ./build/bench/serve_daemon_qps --records-per-floor 200 --queries 80 \
//           --connections 1,4 --max-batch 32 --max-delay-ms 2
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli_flags.h"
#include "core/grafics.h"
#include "rf/dataset.h"
#include "serve/client.h"
#include "serve/server.h"
#include "synth/presets.h"

namespace {

using namespace grafics;
using Clock = std::chrono::steady_clock;

struct Args {
  int records_per_floor = 400;
  std::size_t queries = 200;
  std::size_t max_batch = 32;
  unsigned max_delay_ms = 2;
  std::vector<std::size_t> connections = {1, 2, 4};
};

Args ParseArgs(int argc, char** argv) {
  const std::vector<std::string> raw(argv + 1, argv + argc);
  Args args;
  args.records_per_floor = static_cast<int>(ParseUnsigned(
      FlagValue(raw, "--records-per-floor", "400"), 100000,
      "--records-per-floor"));
  args.queries = ParseUnsigned(FlagValue(raw, "--queries", "200"), 1000000,
                               "--queries");
  args.max_batch = ParseUnsigned(FlagValue(raw, "--max-batch", "32"), 1 << 20,
                                 "--max-batch");
  args.max_delay_ms = static_cast<unsigned>(ParseUnsigned(
      FlagValue(raw, "--max-delay-ms", "2"), 60000, "--max-delay-ms"));
  const std::string list = FlagValue(raw, "--connections", "1,2,4");
  args.connections.clear();
  for (std::size_t begin = 0; begin < list.size();) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    args.connections.push_back(static_cast<std::size_t>(ParseUnsigned(
        list.substr(begin, end - begin), 1024, "--connections")));
    begin = end + 1;
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);

  auto building = synth::CampusBuildingConfig(/*seed=*/29,
                                              args.records_per_floor);
  auto sim = building.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(5);
  auto [train, test] = dataset.TrainTestSplit(0.7, rng);
  train.KeepLabelsPerFloor(6, rng);
  const std::size_t num_queries =
      std::min<std::size_t>(test.size(), args.queries);
  const std::vector<rf::SignalRecord> queries(
      test.records().begin(), test.records().begin() + num_queries);

  std::printf("== serve_daemon_qps: TCP daemon with micro-batching ==\n");
  std::printf("   campus preset: %zu train records, %zu queries, "
              "max-batch %zu, max-delay %ums\n",
              train.size(), queries.size(), args.max_batch,
              args.max_delay_ms);

  core::GraficsConfig model_config;
  model_config.trainer.samples_per_edge = 60;
  core::Grafics system(model_config);
  const auto train_start = Clock::now();
  system.Train(train.records());
  const double train_seconds =
      std::chrono::duration<double>(Clock::now() - train_start).count();
  const std::vector<std::optional<rf::FloorId>> reference =
      system.PredictBatch(queries, {.num_threads = 1});
  std::printf("   trained in %.2fs\n\n", train_seconds);

  serve::ServerConfig server_config;
  server_config.port = 0;  // ephemeral
  server_config.batcher.max_batch_size = args.max_batch;
  server_config.batcher.max_delay =
      std::chrono::milliseconds(args.max_delay_ms);
  server_config.batcher.predict_threads = 0;  // all cores per flush
  serve::Server server(
      std::make_shared<const core::Grafics>(std::move(system)),
      server_config);
  server.Start();

  bench::BenchReport report("serve_daemon_qps");
  report.Add("train_seconds", train_seconds);
  report.Add("queries", static_cast<double>(queries.size()));

  std::printf("%12s %12s %12s %10s %12s\n", "connections", "seconds",
              "queries/s", "batches", "mean batch");
  bool all_match = true;
  serve::BatcherStats before = server.batcher_stats();
  for (const std::size_t connections : args.connections) {
    std::vector<std::vector<std::optional<rf::FloorId>>> results(
        connections, std::vector<std::optional<rf::FloorId>>(queries.size()));
    // char, not bool: each connection thread writes its own slot.
    std::vector<char> failed(connections, 0);
    const auto start = Clock::now();
    std::vector<std::thread> workers;
    workers.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      workers.emplace_back([&, c] {
        try {
          serve::Client client("127.0.0.1", server.port());
          // Strided split: connection c serves queries c, c+C, c+2C, ...
          for (std::size_t i = c; i < queries.size(); i += connections) {
            results[c][i] = client.Predict(queries[i]);
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "connection %zu failed: %s\n", c, e.what());
          failed[c] = 1;
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    for (std::size_t c = 0; c < connections; ++c) {
      if (failed[c] != 0) all_match = false;
      for (std::size_t i = c; i < queries.size(); i += connections) {
        if (results[c][i] != reference[i]) all_match = false;
      }
    }
    const serve::BatcherStats after = server.batcher_stats();
    const std::uint64_t batches = after.batches - before.batches;
    const std::uint64_t requests = after.requests - before.requests;
    before = after;
    const double qps = static_cast<double>(queries.size()) / seconds;
    const double mean_batch =
        batches == 0 ? 0.0
                     : static_cast<double>(requests) /
                           static_cast<double>(batches);
    std::printf("%12zu %12.3f %12.1f %10llu %12.2f\n", connections, seconds,
                qps, static_cast<unsigned long long>(batches), mean_batch);
    report.Add("qps_c" + std::to_string(connections), qps);
    report.Add("mean_batch_c" + std::to_string(connections), mean_batch);
  }
  server.Stop();

  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: networked predictions differ from in-process "
                 "PredictBatch\n");
    return 1;
  }
  std::printf("\nall networked predictions bit-matched the in-process "
              "reference\n");
  report.WriteJson();
  return 0;
}
