// End-to-end QPS of the network serving daemon.
//
// Trains one GRAFICS model per --model name (campus-preset buildings with
// per-model seeds), loads them all into one serve::ModelRegistry behind an
// in-process serve::Server on an ephemeral loopback port, and hammers each
// named model with concurrent blocking clients. Before reporting anything
// the harness verifies every networked prediction bit-matches that model's
// in-process PredictBatch reference — the wire path must not change a
// single answer, and routing must never cross models. Reports QPS per
// (model, connection count) plus micro-batch coalescing stats and one
// batched-frame (protocol v2 PredictBatch) round-trip measurement per
// model, and writes a BENCH_serve_daemon_qps_<model>.json sidecar per model
// for the CI perf-trajectory artifact.
//
// Per-request latency is tracked per connection count and reported as
// p50/p99 alongside QPS. With --report NAME the harness additionally writes
// one combined BENCH_<NAME>.json (first model's QPS + percentiles per
// connection count) — CI uses `--connections 1,64,512 --report
// epoll_transport` to archive the epoll transport's latency trajectory.
//
// Run:  ./build/bench/serve_daemon_qps
//       ./build/bench/serve_daemon_qps --records-per-floor 200 --queries 80 \
//           --connections 1,4 --max-batch 32 --max-delay-ms 2 \
//           --model campus --model annex
//       ./build/bench/serve_daemon_qps --connections 1,64,512 \
//           --report epoll_transport
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli_flags.h"
#include "core/grafics.h"
#include "rf/dataset.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "synth/presets.h"

namespace {

using namespace grafics;
using Clock = std::chrono::steady_clock;

struct Args {
  int records_per_floor = 400;
  std::size_t queries = 200;
  std::size_t max_batch = 32;
  unsigned max_delay_ms = 2;
  std::vector<std::size_t> connections = {1, 2, 4};
  std::vector<std::string> models = {"campus"};
  std::string report;  // combined BENCH_<report>.json, empty = none
};

Args ParseArgs(int argc, char** argv) {
  const std::vector<std::string> raw(argv + 1, argv + argc);
  Args args;
  args.records_per_floor = static_cast<int>(ParseUnsigned(
      FlagValue(raw, "--records-per-floor", "400"), 100000,
      "--records-per-floor"));
  args.queries = ParseUnsigned(FlagValue(raw, "--queries", "200"), 1000000,
                               "--queries");
  args.max_batch = ParseUnsigned(FlagValue(raw, "--max-batch", "32"), 1 << 20,
                                 "--max-batch");
  args.max_delay_ms = static_cast<unsigned>(ParseUnsigned(
      FlagValue(raw, "--max-delay-ms", "2"), 60000, "--max-delay-ms"));
  const std::string list = FlagValue(raw, "--connections", "1,2,4");
  args.connections.clear();
  for (std::size_t begin = 0; begin < list.size();) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    args.connections.push_back(static_cast<std::size_t>(ParseUnsigned(
        list.substr(begin, end - begin), 1024, "--connections")));
    begin = end + 1;
  }
  const std::vector<std::string> models = FlagValues(raw, "--model");
  if (!models.empty()) args.models = models;
  args.report = FlagValue(raw, "--report", "");
  for (std::size_t i = 0; i < args.models.size(); ++i) {
    for (std::size_t j = i + 1; j < args.models.size(); ++j) {
      Require(args.models[i] != args.models[j],
              "--model names must be unique, got '" + args.models[i] +
                  "' twice");
    }
  }
  return args;
}

/// One named model: its own campus-preset building (per-model seed), its
/// queries, and the in-process reference every networked answer must match.
struct BenchModel {
  std::string name;
  std::vector<rf::SignalRecord> queries;
  std::vector<std::optional<rf::FloorId>> reference;
  double train_seconds = 0;
};

BenchModel TrainModel(const std::string& name, std::uint64_t seed,
                      const Args& args, serve::ModelRegistry& registry) {
  BenchModel bench;
  bench.name = name;
  auto building = synth::CampusBuildingConfig(seed, args.records_per_floor);
  auto sim = building.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(5);
  auto [train, test] = dataset.TrainTestSplit(0.7, rng);
  train.KeepLabelsPerFloor(6, rng);
  const std::size_t num_queries =
      std::min<std::size_t>(test.size(), args.queries);
  bench.queries.assign(test.records().begin(),
                       test.records().begin() + num_queries);

  core::GraficsConfig model_config;
  model_config.trainer.samples_per_edge = 60;
  core::Grafics system(model_config);
  const auto train_start = Clock::now();
  system.Train(train.records());
  bench.train_seconds =
      std::chrono::duration<double>(Clock::now() - train_start).count();
  bench.reference = system.PredictBatch(bench.queries, {.num_threads = 1});
  registry.Load(name,
                std::make_shared<const core::Grafics>(std::move(system)));
  std::printf("   model %-12s %zu train records, %zu queries, trained in "
              "%.2fs\n",
              name.c_str(), train.size(), bench.queries.size(),
              bench.train_seconds);
  return bench;
}

/// Percentile over an unsorted sample (sorts in place); 0 when empty.
double PercentileMs(std::vector<double>& sample, double fraction) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const std::size_t index = std::min(
      sample.size() - 1,
      static_cast<std::size_t>(fraction *
                               static_cast<double>(sample.size())));
  return sample[index];
}

/// One model's cumulative (requests, batches) from the registry stats.
std::pair<std::uint64_t, std::uint64_t> ModelCounters(
    const serve::ModelRegistry& registry, const std::string& name) {
  for (const serve::ModelStats& stats : registry.Stats()) {
    if (stats.name == name) return {stats.requests, stats.batches};
  }
  return {0, 0};
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    args = ParseArgs(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_daemon_qps: %s\n", e.what());
    return 1;
  }

  std::printf("== serve_daemon_qps: TCP daemon, %zu named model(s), "
              "micro-batching ==\n",
              args.models.size());
  std::printf("   campus preset per model, max-batch %zu, max-delay %ums\n",
              args.max_batch, args.max_delay_ms);

  serve::BatcherConfig batcher;
  batcher.max_batch_size = args.max_batch;
  batcher.max_delay = std::chrono::milliseconds(args.max_delay_ms);
  batcher.predict_threads = 0;  // one shared pool, all cores
  auto registry = std::make_shared<serve::ModelRegistry>(batcher);

  std::vector<BenchModel> models;
  models.reserve(args.models.size());
  for (std::size_t m = 0; m < args.models.size(); ++m) {
    models.push_back(
        TrainModel(args.models[m], /*seed=*/29 + m * 101, args, *registry));
  }
  std::printf("\n");

  serve::ServerConfig server_config;
  server_config.port = 0;  // ephemeral
  serve::Server server(registry, server_config);
  server.Start();

  bool all_match = true;
  // Written only after the correctness gate below: no perf sidecars from a
  // run whose answers were wrong.
  std::vector<bench::BenchReport> reports;
  reports.reserve(models.size());
  bench::BenchReport combined(args.report.empty() ? "unused" : args.report);
  std::printf("%12s %12s %12s %12s %10s %12s %9s %9s\n", "model",
              "connections", "seconds", "queries/s", "batches", "mean batch",
              "p50 ms", "p99 ms");
  for (const BenchModel& model : models) {
    bench::BenchReport report("serve_daemon_qps_" + model.name);
    report.Add("train_seconds", model.train_seconds);
    report.Add("queries", static_cast<double>(model.queries.size()));

    auto [seen_requests, seen_batches] = ModelCounters(*registry, model.name);
    for (const std::size_t connections : args.connections) {
      std::vector<std::vector<std::optional<rf::FloorId>>> results(
          connections,
          std::vector<std::optional<rf::FloorId>>(model.queries.size()));
      // char, not bool: each connection thread writes its own slot.
      std::vector<char> failed(connections, 0);
      std::vector<std::vector<double>> latencies(connections);
      const auto start = Clock::now();
      std::vector<std::thread> workers;
      workers.reserve(connections);
      for (std::size_t c = 0; c < connections; ++c) {
        workers.emplace_back([&, c] {
          try {
            serve::Client client("127.0.0.1", server.port());
            // Strided split: connection c serves queries c, c+C, c+2C, ...
            for (std::size_t i = c; i < model.queries.size();
                 i += connections) {
              const auto sent = Clock::now();
              results[c][i] = client.Predict(model.queries[i], model.name);
              latencies[c].push_back(
                  std::chrono::duration<double, std::milli>(Clock::now() -
                                                            sent)
                      .count());
            }
          } catch (const std::exception& e) {
            std::fprintf(stderr, "connection %zu failed: %s\n", c, e.what());
            failed[c] = 1;
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      std::vector<double> all_latencies;
      for (const std::vector<double>& per_conn : latencies) {
        all_latencies.insert(all_latencies.end(), per_conn.begin(),
                             per_conn.end());
      }
      const double p50 = PercentileMs(all_latencies, 0.50);
      const double p99 = PercentileMs(all_latencies, 0.99);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      for (std::size_t c = 0; c < connections; ++c) {
        if (failed[c] != 0) all_match = false;
        for (std::size_t i = c; i < model.queries.size(); i += connections) {
          if (results[c][i] != model.reference[i]) all_match = false;
        }
      }
      const auto [total_requests, total_batches] =
          ModelCounters(*registry, model.name);
      const std::uint64_t requests = total_requests - seen_requests;
      const std::uint64_t batches = total_batches - seen_batches;
      seen_requests = total_requests;
      seen_batches = total_batches;
      const double qps =
          static_cast<double>(model.queries.size()) / seconds;
      const double mean_batch =
          batches == 0 ? 0.0
                       : static_cast<double>(requests) /
                             static_cast<double>(batches);
      std::printf("%12s %12zu %12.3f %12.1f %10llu %12.2f %9.3f %9.3f\n",
                  model.name.c_str(), connections, seconds, qps,
                  static_cast<unsigned long long>(batches), mean_batch, p50,
                  p99);
      const std::string suffix = "_c" + std::to_string(connections);
      report.Add("qps" + suffix, qps);
      report.Add("mean_batch" + suffix, mean_batch);
      report.Add("p50_ms" + suffix, p50);
      report.Add("p99_ms" + suffix, p99);
      // The combined report is meant for single-model runs (CI's epoll
      // transport trajectory); with several models the first one wins.
      if (&model == &models.front()) {
        combined.Add("qps" + suffix, qps);
        combined.Add("p50_ms" + suffix, p50);
        combined.Add("p99_ms" + suffix, p99);
      }
    }

    // Protocol v2 batched predict: the whole query set in kMaxBatchRecords
    // frames over one connection — one RTT per frame instead of per scan.
    try {
      serve::Client client("127.0.0.1", server.port());
      const auto start = Clock::now();
      const auto batched = client.PredictBatch(model.queries, model.name);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      for (std::size_t i = 0; i < batched.size(); ++i) {
        if (batched[i] != model.reference[i]) all_match = false;
      }
      const double qps =
          static_cast<double>(model.queries.size()) / seconds;
      std::printf("%12s %12s %12.3f %12.1f %10s %12s %9s %9s\n",
                  model.name.c_str(), "batched", seconds, qps, "-", "-", "-",
                  "-");
      report.Add("qps_batched", qps);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "batched predict failed: %s\n", e.what());
      all_match = false;
    }
    reports.push_back(std::move(report));
  }
  server.Stop();
  registry->Stop();

  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: networked predictions differ from in-process "
                 "PredictBatch\n");
    return 1;
  }
  std::printf("\nall networked predictions bit-matched their model's "
              "in-process reference\n");
  for (const bench::BenchReport& report : reports) report.WriteJson();
  if (!args.report.empty()) combined.WriteJson();
  return 0;
}
