// End-to-end throughput of the online ingestion pipeline.
//
// Trains a campus-preset GRAFICS model, serves it from an in-process
// serve::Server with an ingest::IngestPipeline (durable journal in a temp
// directory), and streams crowdsourced records into it over TCP in chunks:
// each chunk is submitted (journaled + acknowledged), then the harness
// waits for the background fold-in to publish before sending the next, so
// the measured rate covers the whole accept → journal → clone → Update →
// publish path and the fold batch boundaries are deterministic.
//
// Before reporting anything the harness verifies correctness end to end:
// post-ingest networked predictions must bit-match an in-process reference
// built by applying the same Update batches to a clone of the base model,
// and a fresh pipeline pointed at the same journal must replay to the same
// answers (the restart story). Writes BENCH_ingest_throughput.json for the
// CI perf-trajectory artifact.
//
// Run:  ./build/bench/ingest_throughput
//       ./build/bench/ingest_throughput --records-per-floor 200 \
//           --submit 80 --chunk 20 --queries 60
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli_flags.h"
#include "core/grafics.h"
#include "ingest/ingest_pipeline.h"
#include "rf/dataset.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "synth/presets.h"

namespace {

using namespace grafics;
using Clock = std::chrono::steady_clock;

struct Args {
  int records_per_floor = 400;
  std::size_t submit = 120;
  std::size_t chunk = 40;
  std::size_t queries = 80;
  std::string journal_dir;  // empty = fresh temp directory
};

Args ParseArgs(int argc, char** argv) {
  const std::vector<std::string> raw(argv + 1, argv + argc);
  Args args;
  args.records_per_floor = static_cast<int>(ParseUnsigned(
      FlagValue(raw, "--records-per-floor", "400"), 100000,
      "--records-per-floor"));
  args.submit =
      ParseUnsigned(FlagValue(raw, "--submit", "120"), 1000000, "--submit");
  args.chunk = ParseUnsigned(FlagValue(raw, "--chunk", "40"),
                             serve::kMaxBatchRecords, "--chunk");
  Require(args.chunk >= 1, "--chunk must be at least 1");
  args.queries =
      ParseUnsigned(FlagValue(raw, "--queries", "80"), 1000000, "--queries");
  args.journal_dir = FlagValue(raw, "--journal-dir", "");
  return args;
}

double Seconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    args = ParseArgs(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ingest_throughput: %s\n", e.what());
    return 1;
  }
  if (args.journal_dir.empty()) {
    char tmpl[] = "/tmp/grafics_ingest_bench_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    Require(dir != nullptr, "cannot create temp journal dir");
    args.journal_dir = dir;
  }

  std::printf("== ingest_throughput: journaled submit + background fold-in "
              "==\n");
  std::printf("   campus preset, %zu record(s) in chunks of %zu, journal in "
              "%s\n",
              args.submit, args.chunk, args.journal_dir.c_str());

  // Base model plus the ingest stream and held-out queries.
  auto building = synth::CampusBuildingConfig(/*seed=*/17,
                                              args.records_per_floor);
  auto sim = building.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(23);
  auto [train, rest] = dataset.TrainTestSplit(0.6, rng);
  train.KeepLabelsPerFloor(6, rng);
  const std::size_t stream_size = std::min(args.submit, rest.size() / 2);
  const std::size_t query_size =
      std::min(args.queries, rest.size() - stream_size);
  const std::vector<rf::SignalRecord> stream(
      rest.records().begin(), rest.records().begin() + stream_size);
  const std::vector<rf::SignalRecord> queries(
      rest.records().begin() + stream_size,
      rest.records().begin() + stream_size + query_size);

  core::GraficsConfig model_config;
  model_config.trainer.samples_per_edge = 60;
  core::Grafics base(model_config);
  const auto train_start = Clock::now();
  base.Train(train.records());
  const double train_seconds = Seconds(train_start);
  std::printf("   trained on %zu record(s) in %.2fs; streaming %zu, "
              "querying %zu\n",
              train.size(), train_seconds, stream.size(), queries.size());

  // In-process reference: the same chunked Update sequence on a clone.
  core::Grafics reference = base.Clone();

  serve::BatcherConfig batcher;
  batcher.max_batch_size = 32;
  batcher.max_delay = std::chrono::milliseconds(2);
  auto registry = std::make_shared<serve::ModelRegistry>(batcher);
  registry->Load("campus",
                 std::make_shared<const core::Grafics>(base.Clone()));

  ingest::IngestConfig ingest_config;
  ingest_config.fold_batch_size = args.chunk;
  ingest_config.max_delay = std::chrono::milliseconds(50);
  ingest_config.journal_dir = args.journal_dir;
  auto pipeline =
      std::make_shared<ingest::IngestPipeline>(registry, ingest_config);
  pipeline->Attach("campus");

  serve::Server server(registry, serve::ServerConfig{.port = 0});
  server.AttachIngest(pipeline);
  server.Start();

  bool ok = true;
  double submit_seconds = 0;  // client-visible accept latency (journal sync)
  const auto ingest_start = Clock::now();
  try {
    serve::Client client("127.0.0.1", server.port());
    for (std::size_t begin = 0; begin < stream.size();
         begin += args.chunk) {
      const std::size_t end = std::min(begin + args.chunk, stream.size());
      const std::vector<rf::SignalRecord> chunk(
          stream.begin() + static_cast<long>(begin),
          stream.begin() + static_cast<long>(end));
      const auto submit_start = Clock::now();
      const auto results = client.Submit(chunk, "campus");
      submit_seconds += Seconds(submit_start);
      for (const serve::SubmitResult& result : results) {
        if (result.status != serve::SubmitStatus::kAccepted) {
          std::fprintf(stderr, "record rejected: %s\n",
                       result.error.c_str());
          ok = false;
        }
      }
      // Wait for the publish so the next chunk folds on its own — the
      // measured rate is the full accept-to-published pipeline.
      if (!pipeline->WaitUntilDrained()) {
        std::fprintf(stderr, "fold-in did not drain\n");
        ok = false;
        break;
      }
      reference.Update(chunk);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ingest stream failed: %s\n", e.what());
    ok = false;
  }
  const double ingest_seconds = Seconds(ingest_start);

  // Correctness gate 1: the served model must now answer exactly like the
  // reference clone that folded the same chunks.
  const std::vector<std::optional<rf::FloorId>> expected =
      reference.PredictBatch(queries, {.num_threads = 1});
  serve::IngestModelStats ingest_stats;
  try {
    serve::Client client("127.0.0.1", server.port());
    const auto served = client.PredictBatch(queries, "campus");
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (served[i] != expected[i]) ok = false;
    }
    const serve::IngestStatsResponse stats = client.IngestStats("campus");
    Require(stats.enabled && stats.models.size() == 1,
            "ingest stats missing");
    ingest_stats = stats.models.front();
    if (ingest_stats.folded != stream.size()) ok = false;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "post-ingest verification failed: %s\n", e.what());
    ok = false;
  }
  const std::uint64_t generation = registry->generation("campus");
  server.Stop();
  pipeline->Stop();
  registry->Stop();

  // Correctness gate 2 (the restart story): a fresh registry + pipeline on
  // the same journal must replay to the same predictions.
  try {
    auto replay_registry = std::make_shared<serve::ModelRegistry>(batcher);
    replay_registry->Load(
        "campus", std::make_shared<const core::Grafics>(base.Clone()));
    ingest::IngestPipeline replay_pipeline(replay_registry, ingest_config);
    replay_pipeline.Attach("campus");
    const auto replayed =
        replay_registry->Snapshot("campus")->PredictBatch(queries,
                                                          {.num_threads = 1});
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (replayed[i] != expected[i]) ok = false;
    }
    replay_pipeline.Stop();
    replay_registry->Stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "journal replay verification failed: %s\n",
                 e.what());
    ok = false;
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: ingest pipeline diverged from the "
                 "in-process Update reference\n");
    return 1;
  }

  const double submit_rate =
      static_cast<double>(stream.size()) / submit_seconds;
  const double ingest_rate =
      static_cast<double>(stream.size()) / ingest_seconds;
  std::printf("\n%18s %14s %14s %10s %12s\n", "records", "submit rec/s",
              "ingest rec/s", "publishes", "journal B");
  std::printf("%18zu %14.1f %14.1f %10llu %12llu\n", stream.size(),
              submit_rate, ingest_rate,
              static_cast<unsigned long long>(ingest_stats.publishes),
              static_cast<unsigned long long>(ingest_stats.journal_bytes));
  std::printf("\nserved predictions matched the in-process Update reference "
              "(generation %llu), and the journal replayed to the same "
              "answers\n",
              static_cast<unsigned long long>(generation));

  bench::BenchReport report("ingest_throughput");
  report.Add("train_seconds", train_seconds);
  report.Add("records", static_cast<double>(stream.size()));
  report.Add("submit_records_per_s", submit_rate);
  report.Add("ingest_records_per_s", ingest_rate);
  report.Add("publishes", static_cast<double>(ingest_stats.publishes));
  report.Add("journal_bytes",
             static_cast<double>(ingest_stats.journal_bytes));
  report.Add("final_generation", static_cast<double>(generation));
  report.WriteJson();
  return 0;
}
