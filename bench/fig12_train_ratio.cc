// Fig. 12 — F-scores vs the ratio of data used for training (10..90 %),
// with the number of labeled samples fixed at four per floor.
// Paper shape: performance improves monotonically with more (unlabeled)
// training data — the graph gets denser, so embeddings get better.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace grafics;
  using namespace grafics::bench;
  const BenchScale scale = GetScale();
  PrintHeader("Fig. 12", "F-scores vs training-data ratio (#labels = 4)",
              scale);

  for (const Corpus& corpus :
       {MicrosoftCorpus(scale, 21), HongKongCorpus(scale, 22)}) {
    std::printf("\n--- %s corpus ---\n", corpus.name.c_str());
    std::printf("%10s %10s %10s\n", "ratio(%)", "micro-F", "macro-F");
    for (const double ratio : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      core::ExperimentConfig config;
      config.train_ratio = ratio;
      config.labels_per_floor = 4;
      const core::MetricsSummary s =
          RunOnCorpus(core::Algorithm::kGrafics, corpus, config,
                      2000 + static_cast<std::uint64_t>(ratio * 100),
                      scale.repetitions);
      std::printf("%10.0f %10.3f %10.3f\n", ratio * 100.0, s.micro_f_mean,
                  s.macro_f_mean);
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape: both scores rise with the training ratio\n");
  return 0;
}
