// Fig. 13 — GRAFICS with E-LINE vs GRAFICS with LINE (second-order), with
// 4 and 40 labeled samples per floor. Includes the LINE(1st+2nd) ablation
// row the paper mentions but omits for space.
// Paper shape: at 4 labels LINE is markedly worse and higher-variance;
// at 40 labels the gap narrows.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace grafics;
  using namespace grafics::bench;
  const BenchScale scale = GetScale();
  PrintHeader("Fig. 13", "E-LINE vs LINE (P/R/F, micro and macro)", scale);

  const core::Algorithm variants[] = {core::Algorithm::kGrafics,
                                      core::Algorithm::kGraficsLine,
                                      core::Algorithm::kGraficsLineBoth};

  for (const Corpus& corpus :
       {MicrosoftCorpus(scale, 31), HongKongCorpus(scale, 32)}) {
    for (const std::size_t labels : {std::size_t{4}, std::size_t{40}}) {
      std::printf("\n--- %s corpus, #labels = %zu ---\n", corpus.name.c_str(),
                  labels);
      std::printf("%-24s %7s %7s %7s %7s %7s %7s %9s\n", "variant", "miP",
                  "miR", "miF", "maP", "maR", "maF", "miF stdev");
      for (const core::Algorithm algorithm : variants) {
        core::ExperimentConfig config;
        config.labels_per_floor = labels;
        const core::MetricsSummary s = RunOnCorpus(
            algorithm, corpus, config, 3000 + labels,
            std::max<std::size_t>(2, scale.repetitions));
        std::printf("%-24s %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f %9.3f\n",
                    core::AlgorithmName(algorithm).c_str(), s.micro_p_mean,
                    s.micro_r_mean, s.micro_f_mean, s.macro_p_mean,
                    s.macro_r_mean, s.macro_f_mean, s.micro_f_stddev);
        std::fflush(stdout);
      }
    }
  }
  std::printf("\nexpected shape: E-LINE > LINE everywhere; the gap and "
              "LINE's variance are largest at 4 labels\n");
  return 0;
}
