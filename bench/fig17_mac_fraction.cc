// Fig. 17 — robustness to sparse RF environments: F-scores when only a
// fraction of the MAC addresses remain available on-site.
// Paper shape: >= 0.8 F with just 10 % of MACs; >= 0.9 with 30-40 %.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace grafics;
  using namespace grafics::bench;
  const BenchScale scale = GetScale();
  PrintHeader("Fig. 17", "F-scores vs percentage of MACs available", scale);

  for (Corpus corpus : {MicrosoftCorpus(scale, 71), HongKongCorpus(scale, 72)}) {
    std::printf("\n--- %s corpus ---\n", corpus.name.c_str());
    std::printf("%10s %10s %10s\n", "%MACs", "micro-F", "macro-F");
    for (const double fraction : {0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0}) {
      // Filter a fresh copy of each building down to the MAC fraction.
      Corpus filtered;
      filtered.name = corpus.name;
      Rng rng(900 + static_cast<std::uint64_t>(fraction * 100));
      for (const rf::Dataset& ds : corpus.buildings) {
        rf::Dataset copy = ds;
        copy.RetainMacFraction(fraction, rng);
        filtered.buildings.push_back(std::move(copy));
      }
      core::ExperimentConfig config;
      config.labels_per_floor = 4;
      const core::MetricsSummary s =
          RunOnCorpus(core::Algorithm::kGrafics, filtered, config,
                      7000 + static_cast<std::uint64_t>(fraction * 100),
                      scale.repetitions);
      std::printf("%10.0f %10.3f %10.3f\n", fraction * 100.0, s.micro_f_mean,
                  s.macro_f_mean);
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape: graceful degradation; usable accuracy even "
              "at 10%% of MACs\n");
  return 0;
}
