// Serving throughput of the snapshot-isolated inference engine.
//
// Trains GRAFICS on the paper's dense single-floor mall preset (Fig. 1:
// 8 274 records, 805 MACs at full scale) and measures PredictBatch
// queries/sec at 1/2/4/8 worker threads. Because every query runs against
// an immutable model snapshot with a context-local scratch overlay, the
// parallel results are bit-identical to the serial ones — the harness
// verifies that on every run before reporting speedups.
//
// Run:  ./build/bench/serve_throughput            (reduced mall, quick)
//       GRAFICS_BENCH_SCALE=full ./build/bench/serve_throughput
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/grafics.h"
#include "rf/dataset.h"
#include "synth/presets.h"

namespace {

using namespace grafics;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  const char* env = std::getenv("GRAFICS_BENCH_SCALE");
  const bool full = env != nullptr && std::string(env) == "full";

  auto building = synth::MallFloorConfig(/*seed=*/71);
  if (!full) building.spec.records_per_floor = 1500;
  auto sim = building.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(17);
  auto [train, test] = dataset.TrainTestSplit(0.7, rng);
  train.KeepLabelsPerFloor(8, rng);
  const std::size_t num_queries =
      full ? test.size() : std::min<std::size_t>(test.size(), 300);
  const std::vector<rf::SignalRecord> queries(
      test.records().begin(), test.records().begin() + num_queries);

  std::printf("== serve_throughput: snapshot-isolated PredictBatch ==\n");
  std::printf("   mall preset: %zu train records, %zu MACs, %zu queries%s\n",
              train.size(), train.DistinctMacCount(), queries.size(),
              full ? " (full scale)" : " (reduced; GRAFICS_BENCH_SCALE=full)");

  core::GraficsConfig config;
  config.trainer.samples_per_edge = full ? 150 : 60;
  core::Grafics system(config);
  const auto train_start = Clock::now();
  system.Train(train.records());
  const double train_seconds = SecondsSince(train_start);
  std::printf("   trained in %.2fs (%zu graph nodes)\n\n", train_seconds,
              system.graph().NumNodes());
  bench::BenchReport report("serve_throughput");
  report.Add("train_seconds", train_seconds);
  report.Add("queries", static_cast<double>(queries.size()));

  std::printf("%8s %12s %12s %10s\n", "threads", "seconds", "queries/s",
              "speedup");
  const std::vector<std::optional<rf::FloorId>> reference =
      system.PredictBatch(queries, {.num_threads = 1});
  double serial_seconds = 0.0;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    const auto start = Clock::now();
    const auto predictions =
        system.PredictBatch(queries, {.num_threads = threads});
    const double seconds = SecondsSince(start);
    if (predictions != reference) {
      std::fprintf(stderr,
                   "FAIL: %zu-thread predictions differ from serial\n",
                   threads);
      return 1;
    }
    if (threads == 1) serial_seconds = seconds;
    const double qps = static_cast<double>(queries.size()) / seconds;
    std::printf("%8zu %12.3f %12.1f %9.2fx\n", threads, seconds, qps,
                serial_seconds / seconds);
    report.Add("qps_t" + std::to_string(threads), qps);
  }
  std::printf("\nall thread counts returned bit-identical predictions\n");
  report.WriteJson();
  return 0;
}
