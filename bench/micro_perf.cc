// Throughput micro-benchmarks (google-benchmark) for the performance-
// critical GRAFICS components: graph construction, alias sampling, E-LINE
// training, online embedding refinement, constrained clustering,
// nearest-centroid prediction, and the simd vector-kernel layer (with
// p50/p99 latency, exported by CI as BENCH_simd_kernels.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <numeric>

#include "cluster/centroid_classifier.h"
#include "cluster/proximity_clusterer.h"
#include "common/alias_sampler.h"
#include "common/simd.h"
#include "core/grafics.h"
#include "embed/trainer.h"
#include "graph/bipartite_graph.h"
#include "synth/presets.h"

namespace {

using namespace grafics;

rf::Dataset& CachedDataset() {
  static rf::Dataset dataset = [] {
    auto config = synth::CampusBuildingConfig(/*seed=*/4242, /*rpf=*/150);
    auto sim = config.MakeSimulator();
    return sim.GenerateDataset();
  }();
  return dataset;
}

void BM_GraphConstruction(benchmark::State& state) {
  const rf::Dataset& dataset = CachedDataset();
  const auto weight = graph::OffsetWeight(120.0);
  for (auto _ : state) {
    auto g = graph::BipartiteGraph::FromRecords(dataset.records(), weight);
    benchmark::DoNotOptimize(g.NumEdges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_GraphConstruction)->Unit(benchmark::kMillisecond);

void BM_AliasSampler(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> weights(n);
  Rng rng(1);
  for (double& w : weights) w = rng.Uniform(0.1, 10.0);
  const AliasSampler sampler(weights);
  Rng draw_rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(draw_rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSampler)->Arg(1000)->Arg(100000);

void BM_ELineTraining(benchmark::State& state) {
  const rf::Dataset& dataset = CachedDataset();
  const auto g = graph::BipartiteGraph::FromRecords(
      dataset.records(), graph::OffsetWeight(120.0));
  embed::TrainerConfig config;
  config.samples_per_edge = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto store = embed::TrainEmbeddings(g, config);
    benchmark::DoNotOptimize(store.num_nodes());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(config.samples_per_edge * g.NumEdges()));
}
BENCHMARK(BM_ELineTraining)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_OnlineInference(benchmark::State& state) {
  rf::Dataset dataset = CachedDataset();
  Rng rng(3);
  dataset.KeepLabelsPerFloor(4, rng);
  core::GraficsConfig config;
  config.trainer.samples_per_edge = 40;
  config.online_refine_iterations =
      static_cast<std::size_t>(state.range(0));
  core::Grafics system(config);
  system.Train(dataset.records());
  auto sim_config = synth::CampusBuildingConfig(/*seed=*/4242, /*rpf=*/1);
  auto sim = sim_config.MakeSimulator();
  for (auto _ : state) {
    state.PauseTiming();
    const rf::SignalRecord probe = sim.MeasureAt({20.0, 20.0, 1.2}, 0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(system.Predict(probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineInference)->Arg(200)->Arg(600)->Unit(benchmark::kMillisecond);

void BM_ConstrainedClustering(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Matrix points(n, 8);
  std::vector<std::optional<rf::FloorId>> labels(n, std::nullopt);
  for (std::size_t i = 0; i < n; ++i) {
    const int floor = static_cast<int>(i % 3);
    for (std::size_t c = 0; c < 8; ++c) {
      points(i, c) = floor * 5.0 + rng.Normal(0.0, 0.5);
    }
    if (i < 12) labels[i] = floor;
  }
  for (auto _ : state) {
    auto result = cluster::ClusterEmbeddings(points, labels);
    benchmark::DoNotOptimize(result.num_clusters());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConstrainedClustering)
    ->Arg(200)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_CentroidPrediction(benchmark::State& state) {
  Rng rng(9);
  const std::size_t centroids = 48;
  Matrix means(centroids, 8);
  std::vector<rf::FloorId> labels(centroids);
  for (std::size_t i = 0; i < centroids; ++i) {
    labels[i] = static_cast<rf::FloorId>(i % 12);
    for (std::size_t c = 0; c < 8; ++c) means(i, c) = rng.Normal(0.0, 1.0);
  }
  const cluster::CentroidClassifier classifier(means, labels);
  std::vector<double> probe(8);
  for (double& v : probe) v = rng.Normal(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Predict(probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CentroidPrediction);

// --- copy-on-write snapshot benches ---------------------------------------
// Run at two model sizes (records per floor): fork cost must stay flat while
// the deep-materialization baseline and the model itself grow. The CI
// bench-smoke job exports these as BENCH_snapshot_fork.json (report-only).

core::Grafics& CachedSystem(int records_per_floor) {
  static std::map<int, core::Grafics> systems;
  const auto it = systems.find(records_per_floor);
  if (it != systems.end()) return it->second;
  auto config = synth::CampusBuildingConfig(/*seed=*/4242, records_per_floor);
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(3);
  dataset.KeepLabelsPerFloor(4, rng);
  core::GraficsConfig grafics_config;
  grafics_config.trainer.samples_per_edge = 20;
  grafics_config.online_refine_iterations = 100;
  core::Grafics system(grafics_config);
  system.Train(dataset.records());
  return systems.emplace(records_per_floor, std::move(system)).first->second;
}

void BM_SnapshotFork(benchmark::State& state) {
  const core::Grafics& system =
      CachedSystem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::Grafics fork = system.Clone();
    benchmark::DoNotOptimize(fork.is_trained());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["model_nodes"] =
      static_cast<double>(system.graph().NumNodes());
}
BENCHMARK(BM_SnapshotFork)->Arg(60)->Arg(240);

void BM_DeepMaterialize(benchmark::State& state) {
  // The pre-refactor Clone cost: materialize every embedding row and every
  // adjacency list. Fork-vs-deep-copy baseline for BM_SnapshotFork.
  const core::Grafics& system =
      CachedSystem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const Matrix ego = system.embedding_store().ego_matrix();
    const Matrix context = system.embedding_store().context_matrix();
    const auto edges = system.graph().Edges();
    benchmark::DoNotOptimize(ego.rows() + context.rows() + edges.size());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["model_nodes"] =
      static_cast<double>(system.graph().NumNodes());
}
BENCHMARK(BM_DeepMaterialize)->Arg(60)->Arg(240)->Unit(benchmark::kMillisecond);

void BM_FoldPublish(benchmark::State& state) {
  // One ingest fold: fork the served snapshot, Update a fixed-size batch,
  // wrap for publish. With copy-on-write chunks the cost tracks the batch,
  // not the model — compare across the two Arg sizes.
  const core::Grafics& system =
      CachedSystem(static_cast<int>(state.range(0)));
  auto config = synth::CampusBuildingConfig(/*seed=*/4242, /*rpf=*/1);
  auto sim = config.MakeSimulator();
  std::vector<rf::SignalRecord> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(sim.MeasureAt({10.0 + i, 12.0, 1.2}, 0));
  }
  for (auto _ : state) {
    core::Grafics fork = system.Clone();
    fork.Update(batch);
    auto published = std::make_shared<const core::Grafics>(std::move(fork));
    benchmark::DoNotOptimize(published->graph().NumNodes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
  state.counters["model_nodes"] =
      static_cast<double>(system.graph().NumNodes());
}
BENCHMARK(BM_FoldPublish)->Arg(60)->Arg(240)->Unit(benchmark::kMillisecond);

void BM_HogwildTrainingThreads(benchmark::State& state) {
  const rf::Dataset& dataset = CachedDataset();
  const auto g = graph::BipartiteGraph::FromRecords(
      dataset.records(), graph::OffsetWeight(120.0));
  embed::TrainerConfig config;
  config.samples_per_edge = 20;
  config.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto store = embed::TrainEmbeddings(g, config);
    benchmark::DoNotOptimize(store.num_nodes());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(config.samples_per_edge * g.NumEdges()));
}
BENCHMARK(BM_HogwildTrainingThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()  // worker threads run outside the harness's CPU clock
    ->Unit(benchmark::kMillisecond);

// --- simd vector-kernel latency benches ------------------------------------
// Tail latency matters more than the mean on the serving hot path, so these
// collect a per-op sample every iteration and report p50/p99 alongside the
// harness mean. The bench-smoke CI job exports them as
// BENCH_simd_kernels.json (report-only); every bench labels itself with the
// active kernel backend so runs on different fleets stay comparable.

/// Sorted-percentile (linear interpolation) + mean over per-op samples, in
/// nanoseconds, attached as counters so they land in the JSON export.
void ReportLatencyPercentiles(benchmark::State& state,
                              std::vector<double> samples_ns) {
  if (samples_ns.empty()) return;
  std::sort(samples_ns.begin(), samples_ns.end());
  const auto percentile = [&samples_ns](double q) {
    const double pos = q * static_cast<double>(samples_ns.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_ns.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_ns[lo] + frac * (samples_ns[hi] - samples_ns[lo]);
  };
  state.counters["p50_ns"] = percentile(0.5);
  state.counters["p99_ns"] = percentile(0.99);
  state.counters["mean_ns"] =
      std::accumulate(samples_ns.begin(), samples_ns.end(), 0.0) /
      static_cast<double>(samples_ns.size());
}

void BM_DotKernel(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<double> a(dim), b(dim);
  for (double& v : a) v = rng.Uniform(-1.0, 1.0);
  for (double& v : b) v = rng.Uniform(-1.0, 1.0);
  // A single dot is below clock resolution: time blocks of 256, divide.
  constexpr std::size_t kBlock = 256;
  std::vector<double> samples_ns;
  double sink = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kBlock; ++i) {
      sink += simd::Dot(a.data(), b.data(), dim);
    }
    const auto stop = std::chrono::steady_clock::now();
    samples_ns.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(kBlock));
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBlock));
  state.SetLabel(simd::BackendName(simd::ActiveBackend()));
  ReportLatencyPercentiles(state, std::move(samples_ns));
}
BENCHMARK(BM_DotKernel)->Arg(8)->Arg(64);

void BM_DistanceScan(benchmark::State& state) {
  // The centroid/kNN classifier shape: one embedding against a packed
  // row-major block, via the one-to-many kernel.
  const auto rows = static_cast<std::size_t>(state.range(0));
  const std::size_t cols = 8;
  Rng rng(13);
  std::vector<double> block(rows * cols);
  std::vector<double> query(cols);
  for (double& v : block) v = rng.Normal(0.0, 1.0);
  for (double& v : query) v = rng.Normal(0.0, 1.0);
  std::vector<double> out(rows);
  constexpr std::size_t kBlockScans = 16;
  std::vector<double> samples_ns;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kBlockScans; ++i) {
      simd::SquaredL2DistanceMany(query.data(), block.data(), rows, cols,
                                  out.data());
      benchmark::DoNotOptimize(out.data());
    }
    const auto stop = std::chrono::steady_clock::now();
    samples_ns.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(kBlockScans));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBlockScans * rows));
  state.SetLabel(simd::BackendName(simd::ActiveBackend()));
  ReportLatencyPercentiles(state, std::move(samples_ns));
}
BENCHMARK(BM_DistanceScan)->Arg(48)->Arg(1024);

struct RefineFixture {
  graph::BipartiteGraph graph;
  embed::EmbeddingStore store;
  embed::TrainerConfig config;
  embed::NegativeSamplerSet negatives;
  graph::NodeId new_node = 0;
};

RefineFixture& CachedRefineFixture() {
  static RefineFixture* fixture = [] {
    const rf::Dataset& dataset = CachedDataset();
    auto graph = graph::BipartiteGraph::FromRecords(
        dataset.records(), graph::OffsetWeight(120.0));
    embed::TrainerConfig config;
    config.samples_per_edge = 20;
    config.seed = 4242;
    embed::EmbeddingStore store = embed::TrainEmbeddings(graph, config);
    auto sim_config = synth::CampusBuildingConfig(/*seed=*/4242, /*rpf=*/1);
    auto sim = sim_config.MakeSimulator();
    const std::size_t nodes_before = graph.NumNodes();
    const graph::NodeId new_node = graph.AddRecord(
        sim.MeasureAt({20.0, 20.0, 1.2}, 0), graph::OffsetWeight(120.0));
    Rng rng(17);
    store.Grow(graph.NumNodes() - nodes_before, rng);
    auto negatives = embed::NegativeSamplerSet::Build(graph);
    return new RefineFixture{std::move(graph), std::move(store),
                             config, std::move(negatives), new_node};
  }();
  return *fixture;
}

void BM_RefineNewNodes(benchmark::State& state) {
  // One online fold's SGD refinement of a single new node. Repeat calls are
  // deterministic: RefineNewNodes re-derives the node's warm start from its
  // neighbors before refining, so the fixture needs no reset.
  RefineFixture& fixture = CachedRefineFixture();
  const auto iterations = static_cast<std::size_t>(state.range(0));
  const std::vector<graph::NodeId> new_nodes = {fixture.new_node};
  std::vector<double> samples_ns;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    embed::RefineNewNodes(fixture.graph, new_nodes, fixture.store,
                          fixture.config, iterations, fixture.negatives);
    const auto stop = std::chrono::steady_clock::now();
    samples_ns.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(iterations));
  state.SetLabel(simd::BackendName(simd::ActiveBackend()));
  ReportLatencyPercentiles(state, std::move(samples_ns));
}
BENCHMARK(BM_RefineNewNodes)->Arg(200)->Arg(600)->Unit(benchmark::kMicrosecond);

}  // namespace
