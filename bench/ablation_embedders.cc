// Ablation (beyond the paper's figures): embedding algorithm and inference
// head on the 3-story campus building with 4 labels/floor.
//
//   Part 1 — embedding quality in isolation: E-LINE vs LINE vs a
//   DeepWalk-style random-walk embedder, all feeding the same constrained
//   Prox clustering. Scored by *virtual-label accuracy*: the fraction of
//   (unlabeled) training records whose final cluster carries their true
//   floor. This isolates the embedding from any out-of-sample machinery.
//
//   Part 2 — inference head end-to-end: the full GRAFICS pipeline with the
//   nearest-centroid rule (paper Sec. V-B) vs the weighted k-NN head.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/proximity_clusterer.h"
#include "core/grafics.h"
#include "core/metrics.h"
#include "embed/random_walk.h"
#include "embed/trainer.h"
#include "graph/bipartite_graph.h"

namespace {

using namespace grafics;

Matrix RecordEmbeddings(const graph::BipartiteGraph& graph,
                        const embed::EmbeddingStore& store,
                        std::size_t count) {
  Matrix points(count, store.dim());
  for (std::size_t i = 0; i < count; ++i) {
    const auto ego = store.Ego(graph.RecordNode(i));
    std::copy(ego.begin(), ego.end(), points.Row(i).begin());
  }
  return points;
}

double VirtualLabelAccuracy(
    const Matrix& points,
    const std::vector<std::optional<rf::FloorId>>& sparse_labels,
    const std::vector<rf::FloorId>& truth) {
  const auto clustering = cluster::ClusterEmbeddings(points, sparse_labels);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto label =
        clustering.cluster_label[clustering.cluster_of_point[i]];
    if (label && *label == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace

int main() {
  std::printf("== Ablation: embedding algorithm and inference head ==\n");
  auto config = synth::CampusBuildingConfig(/*seed=*/1212, /*rpf=*/150);
  config.channel.floor_attenuation_db = 9.0;  // realistic difficulty
  config.channel.shadowing_stddev_db = 5.0;
  config.crowd.scan_cap_min = 8;
  config.crowd.scan_cap_max = 22;
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();

  // --- Part 1: embedding quality via virtual-label accuracy ---------------
  rf::Dataset train = dataset;
  Rng rng(5);
  const auto truth_opt = train.KeepLabelsPerFloor(4, rng);
  std::vector<rf::FloorId> truth;
  truth.reserve(truth_opt.size());
  for (const auto& t : truth_opt) truth.push_back(*t);
  std::vector<std::optional<rf::FloorId>> sparse_labels(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    sparse_labels[i] = train.record(i).floor();
  }
  const auto g = graph::BipartiteGraph::FromRecords(
      train.records(), graph::OffsetWeight(120.0));

  constexpr std::uint64_t kSeeds[] = {404, 405, 406};
  std::printf("\n%-16s %28s\n", "embedder",
              "virtual-label accuracy (mean/min over 3 seeds)");
  const auto report = [&](const char* name, auto&& train_fn) {
    double mean = 0.0;
    double worst = 1.0;
    for (const std::uint64_t seed : kSeeds) {
      const auto store = train_fn(seed);
      const double acc = VirtualLabelAccuracy(
          RecordEmbeddings(g, store, train.size()), sparse_labels, truth);
      mean += acc;
      worst = std::min(worst, acc);
    }
    mean /= static_cast<double>(std::size(kSeeds));
    std::printf("%-16s %17.3f / %.3f\n", name, mean, worst);
  };
  report("E-LINE", [&](std::uint64_t seed) {
    embed::TrainerConfig trainer;
    trainer.seed = seed;
    return embed::TrainEmbeddings(g, trainer);
  });
  report("LINE(2nd)", [&](std::uint64_t seed) {
    embed::TrainerConfig trainer;
    trainer.objective = embed::Objective::kLineSecondOrder;
    trainer.seed = seed;
    return embed::TrainEmbeddings(g, trainer);
  });
  report("DeepWalk-style", [&](std::uint64_t seed) {
    embed::RandomWalkConfig walks;
    walks.seed = seed;
    return embed::TrainRandomWalkEmbeddings(g, walks);
  });

  // --- Part 2: inference head, full pipeline ------------------------------
  Rng split_rng(9);
  auto [head_train, head_test] = dataset.TrainTestSplit(0.7, split_rng);
  head_train.KeepLabelsPerFloor(4, split_rng);
  std::vector<rf::FloorId> head_truth;
  for (const auto& r : head_test.records()) head_truth.push_back(*r.floor());

  std::printf("\n%-16s %10s %10s\n", "head", "micro-F", "macro-F");
  for (const auto head : {core::InferenceHead::kCentroid,
                          core::InferenceHead::kKnn}) {
    core::GraficsConfig grafics_config;
    grafics_config.head = head;
    grafics_config.trainer.seed = 404;
    core::Grafics system(grafics_config);
    system.Train(head_train.records());
    const auto metrics = core::ComputeMetrics(
        head_truth, system.PredictBatch(head_test.records()));
    std::printf("%-16s %10.3f %10.3f\n",
                head == core::InferenceHead::kCentroid ? "centroid"
                                                       : "weighted 5-NN",
                metrics.micro.f_score, metrics.macro.f_score);
  }
  std::printf("\nexpected shape: E-LINE's worst seed stays high while "
              "LINE's dips (the Fig. 13 stability gap); DeepWalk trails "
              "both; the two heads are comparable\n");
  return 0;
}
