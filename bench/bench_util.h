// Shared helpers for the figure-reproduction benchmark binaries.
//
// Scaling: the paper's corpora are 204 buildings x ~1000 records/floor with
// 10 repetitions per configuration. Reproducing that verbatim takes CPU-days;
// each bench defaults to a reduced fleet (recorded in its output header and
// in EXPERIMENTS.md) and honors the environment variable GRAFICS_BENCH_SCALE:
//   GRAFICS_BENCH_SCALE=full   -> paper-scale fleets (slow)
//   GRAFICS_BENCH_SCALE=small  -> default reduced fleets
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "rf/dataset.h"
#include "synth/presets.h"

namespace grafics::bench {

struct BenchScale {
  std::size_t microsoft_buildings = 2;
  std::size_t hongkong_buildings = 2;  // of the 5 facilities
  int records_per_floor = 130;
  std::size_t repetitions = 1;
};

inline BenchScale GetScale() {
  BenchScale scale;
  const char* env = std::getenv("GRAFICS_BENCH_SCALE");
  if (env != nullptr && std::string(env) == "full") {
    scale.microsoft_buildings = 204;
    scale.hongkong_buildings = 5;
    scale.records_per_floor = 1000;
    scale.repetitions = 10;
  }
  return scale;
}

/// Named dataset collection for one corpus.
struct Corpus {
  std::string name;
  std::vector<rf::Dataset> buildings;
};

inline Corpus MicrosoftCorpus(const BenchScale& scale, std::uint64_t seed) {
  Corpus corpus;
  corpus.name = "Microsoft";
  const auto fleet = synth::MicrosoftLikeFleet(scale.microsoft_buildings,
                                               seed, scale.records_per_floor);
  for (const auto& config : fleet) {
    auto sim = config.MakeSimulator();
    corpus.buildings.push_back(sim.GenerateDataset());
  }
  return corpus;
}

inline Corpus HongKongCorpus(const BenchScale& scale, std::uint64_t seed) {
  Corpus corpus;
  corpus.name = "HongKong";
  const auto fleet = synth::HongKongFleet(seed, scale.records_per_floor);
  for (std::size_t b = 0;
       b < scale.hongkong_buildings && b < fleet.size(); ++b) {
    auto sim = fleet[b].MakeSimulator();
    corpus.buildings.push_back(sim.GenerateDataset());
  }
  return corpus;
}

/// Mean of per-building summaries for one (algorithm, config) cell.
inline core::MetricsSummary RunOnCorpus(core::Algorithm algorithm,
                                        const Corpus& corpus,
                                        const core::ExperimentConfig& config,
                                        std::uint64_t seed,
                                        std::size_t repetitions) {
  std::vector<core::ClassificationMetrics> runs;
  for (std::size_t b = 0; b < corpus.buildings.size(); ++b) {
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      runs.push_back(core::RunExperiment(algorithm, corpus.buildings[b],
                                         config, seed + b * 131 + rep * 7919)
                         .metrics);
    }
  }
  return core::SummarizeMetrics(runs);
}

inline void PrintHeader(const char* figure, const char* description,
                        const BenchScale& scale) {
  std::printf("== %s: %s ==\n", figure, description);
  std::printf(
      "   corpus scale: %zu Microsoft-like + %zu Hong-Kong buildings, "
      "%d records/floor, %zu repetition(s)\n",
      scale.microsoft_buildings, scale.hongkong_buildings,
      scale.records_per_floor, scale.repetitions);
}

/// Machine-readable sidecar for perf-tracking benches: collects named scalar
/// metrics and writes them as BENCH_<name>.json (into $GRAFICS_BENCH_OUT, or
/// the working directory) so CI can archive the perf trajectory per commit.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& metric, double value) {
    metrics_.emplace_back(metric, value);
  }

  void WriteJson() const {
    const char* out_dir = std::getenv("GRAFICS_BENCH_OUT");
    const std::string path = (out_dir != nullptr ? std::string(out_dir) + "/"
                                                 : std::string()) +
                             "BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"metrics\": {",
                 name_.c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(out, "%s\n    \"%s\": %.6g", i == 0 ? "" : ",",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(out, "\n  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace grafics::bench
