// Fig. 9 — summary of building information: one row per building with
// floor count, per-floor area, distinct MACs, and record count.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace grafics;
  using namespace grafics::bench;
  const BenchScale scale = GetScale();
  PrintHeader("Fig. 9", "building fleet summary", scale);

  std::vector<synth::BuildingConfig> fleet = synth::MicrosoftLikeFleet(
      scale.microsoft_buildings, 1, scale.records_per_floor);
  const auto hk = synth::HongKongFleet(2, scale.records_per_floor);
  for (std::size_t b = 0; b < scale.hongkong_buildings && b < hk.size(); ++b) {
    fleet.push_back(hk[b]);
  }

  std::printf("%-20s %8s %12s %8s %10s\n", "building", "floors", "area(m^2)",
              "#MACs", "#records");
  int min_floors = 1000;
  int max_floors = 0;
  std::size_t max_macs = 0;
  std::size_t max_records = 0;
  for (const synth::BuildingConfig& config : fleet) {
    auto sim = config.MakeSimulator();
    const rf::Dataset ds = sim.GenerateDataset();
    min_floors = std::min(min_floors, config.spec.num_floors);
    max_floors = std::max(max_floors, config.spec.num_floors);
    max_macs = std::max(max_macs, ds.DistinctMacCount());
    max_records = std::max(max_records, ds.size());
    std::printf("%-20s %8d %12.0f %8zu %10zu\n", config.spec.name.c_str(),
                config.spec.num_floors, config.spec.FloorArea(),
                ds.DistinctMacCount(), ds.size());
  }
  std::printf(
      "\nfleet ranges: floors %d..%d (paper: 2..12), max #MACs %zu "
      "(paper: ~2500), max #records %zu (paper: 50749)\n",
      min_floors, max_floors, max_macs, max_records);
  return 0;
}
