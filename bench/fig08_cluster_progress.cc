// Fig. 8 — progress of the proximity-based hierarchical clustering on a
// three-story building with four labeled samples per floor: cluster-purity
// snapshots at 20/40/60/80/100 % of the merge sequence.
//
// At each snapshot we report (i) the number of remaining components and
// (ii) the floor purity of the components (weighted fraction of points whose
// component majority-floor matches their own) — in the paper's figure the
// same information is conveyed by coloring.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "cluster/proximity_clusterer.h"
#include "core/grafics.h"

int main() {
  using namespace grafics;
  std::printf("== Fig. 8: clustering progress, 3-story building, "
              "4 labels/floor ==\n");

  auto config = synth::CampusBuildingConfig(/*seed=*/808, /*rpf=*/150);
  auto sim = config.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(5);
  const auto truth = dataset.KeepLabelsPerFloor(4, rng);

  core::Grafics system;
  system.Train(dataset.records());
  const cluster::ClusteringResult& clustering = system.clustering();
  const std::size_t total_merges = clustering.merge_history.size();

  std::printf("%10s %12s %12s\n", "progress", "#components", "floor purity");
  for (const double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto merge_count =
        static_cast<std::size_t>(fraction * static_cast<double>(total_merges));
    const auto assignment = clustering.AssignmentsAfter(merge_count);

    // Majority floor per component.
    std::map<std::size_t, std::map<rf::FloorId, std::size_t>> votes;
    std::size_t num_components = 0;
    for (std::size_t p = 0; p < assignment.size(); ++p) {
      ++votes[assignment[p]][*truth[p]];
      num_components = std::max(num_components, assignment[p] + 1);
    }
    std::size_t pure = 0;
    for (const auto& [component, floor_votes] : votes) {
      std::size_t best = 0;
      for (const auto& [floor, count] : floor_votes) {
        best = std::max(best, count);
      }
      pure += best;
    }
    std::printf("%9.0f%% %12zu %12.3f\n", fraction * 100.0, num_components,
                static_cast<double>(pure) /
                    static_cast<double>(assignment.size()));
  }
  std::printf("\nfinal clusters: %zu (= 3 floors x 4 labels); expected "
              "purity near 1.0 throughout (paper: unlabeled samples always "
              "merge into same-floor clusters)\n",
              clustering.num_clusters());
  return 0;
}
