// Fig. 6 — embedding quality of E-LINE vs MDS vs autoencoder on a fully
// labeled three-story campus building.
//
// The paper shows t-SNE scatter plots; a bench binary cannot render them, so
// we report the quantitative equivalents — silhouette score and 1-NN floor
// purity in the embedding space (higher = the same-floor samples form
// tighter, better-separated clusters) — and export 2-D t-SNE coordinates to
// bench_artifacts/fig06_<method>.csv for plotting.
#include <cstdio>
#include <filesystem>

#include "baselines/autoencoder.h"
#include "baselines/matrix_representation.h"
#include "baselines/mds.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "embed/trainer.h"
#include "graph/bipartite_graph.h"
#include "viz/tsne.h"

namespace {

using namespace grafics;

/// Fraction of points whose nearest neighbor shares their floor.
double OneNnPurity(const Matrix& points, const std::vector<int>& labels) {
  std::size_t pure = 0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = i;
    for (std::size_t j = 0; j < points.rows(); ++j) {
      if (j == i) continue;
      const double d = SquaredL2Distance(points.Row(i), points.Row(j));
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    if (labels[i] == labels[best_j]) ++pure;
  }
  return static_cast<double>(pure) / static_cast<double>(points.rows());
}

void Report(const std::string& method, const Matrix& embeddings,
            const std::vector<int>& labels) {
  std::vector<std::vector<double>> rows;
  rows.reserve(embeddings.rows());
  for (std::size_t i = 0; i < embeddings.rows(); ++i) {
    rows.emplace_back(embeddings.Row(i).begin(), embeddings.Row(i).end());
  }
  const double silhouette = MeanSilhouette(rows, labels);
  const double purity = OneNnPurity(embeddings, labels);
  std::printf("%-14s silhouette=%+.3f  1-NN floor purity=%.3f\n",
              method.c_str(), silhouette, purity);

  // t-SNE export for plotting.
  viz::TsneConfig tsne;
  tsne.iterations = 300;
  tsne.perplexity = 25.0;
  const Matrix projected = viz::TsneEmbed(embeddings, tsne);
  std::filesystem::create_directories("bench_artifacts");
  std::vector<CsvRow> csv;
  csv.push_back({"x", "y", "floor"});
  for (std::size_t i = 0; i < projected.rows(); ++i) {
    csv.push_back({std::to_string(projected(i, 0)),
                   std::to_string(projected(i, 1)),
                   std::to_string(labels[i])});
  }
  WriteCsvFile("bench_artifacts/fig06_" + method + ".csv", csv);
}

}  // namespace

int main() {
  using namespace grafics::bench;
  std::printf("== Fig. 6: embedding quality on a 3-story campus building ==\n");
  std::printf("   (silhouette / 1-NN purity stand in for the paper's t-SNE "
              "plots; coordinates exported to bench_artifacts/)\n");

  auto config = synth::CampusBuildingConfig(/*seed=*/606, /*rpf=*/150);
  // Realistic campus conditions (stairwell leakage, low-end devices, sparse
  // scans) — the regime where the paper's Fig. 6 shows MDS and the
  // autoencoder failing while E-LINE still separates floors.
  config.channel.floor_attenuation_db = 9.0;
  config.channel.shadowing_stddev_db = 5.0;
  config.crowd.scan_cap_min = 8;
  config.crowd.scan_cap_max = 22;
  config.crowd.miss_probability = 0.3;
  config.crowd.device_bias_stddev_db = 6.0;
  auto sim = config.MakeSimulator();
  const rf::Dataset dataset = sim.GenerateDataset();
  std::vector<int> labels;
  labels.reserve(dataset.size());
  for (const auto& r : dataset.records()) labels.push_back(*r.floor());

  // --- E-LINE over the bipartite graph ------------------------------------
  const auto graph = graph::BipartiteGraph::FromRecords(
      dataset.records(), graph::OffsetWeight(120.0));
  embed::TrainerConfig trainer;
  trainer.seed = 99;
  const embed::EmbeddingStore store = embed::TrainEmbeddings(graph, trainer);
  Matrix eline(dataset.size(), trainer.dim);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto ego = store.Ego(graph.RecordNode(i));
    std::copy(ego.begin(), ego.end(), eline.Row(i).begin());
  }
  Report("eline", eline, labels);

  // --- MDS over the matrix representation ---------------------------------
  const baselines::MatrixRepresentation repr(dataset.records());
  const Matrix raw = repr.ToMatrix(dataset.records());
  baselines::MdsConfig mds_config;
  mds_config.dim = trainer.dim;
  const baselines::MdsEmbedder mds(raw, mds_config);
  Report("mds", mds.Embed(raw), labels);

  // --- Conv1D autoencoder over the matrix representation ------------------
  const Matrix norm = baselines::MatrixRepresentation::Normalize(raw);
  baselines::AutoencoderConfig ae_config;
  ae_config.dim = trainer.dim;
  baselines::AutoencoderEmbedder autoencoder(norm, ae_config);
  Report("autoencoder", autoencoder.Embed(norm), labels);

  std::printf("\nexpected shape: E-LINE well above MDS and autoencoder "
              "(paper Fig. 6: only E-LINE forms per-floor clusters)\n");
  return 0;
}
