// Fig. 11 — micro-/macro-F of GRAFICS vs Scalable-DNN, SAE, MDS+Prox and
// Autoencoder+Prox as the number of labeled samples per floor grows.
// Paper shape: GRAFICS is near its ceiling with 4 labels/floor while the
// supervised baselines need orders of magnitude more labels to catch up.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace grafics;
  using namespace grafics::bench;
  const BenchScale scale = GetScale();
  PrintHeader("Fig. 11", "F-scores vs #labeled samples per floor", scale);

  const core::Algorithm algorithms[] = {
      core::Algorithm::kGrafics, core::Algorithm::kScalableDnn,
      core::Algorithm::kSae, core::Algorithm::kMdsProx,
      core::Algorithm::kAutoencoderProx};
  const std::size_t label_counts[] = {1, 4, 10, 40, 100};

  for (const Corpus& corpus :
       {MicrosoftCorpus(scale, 11), HongKongCorpus(scale, 12)}) {
    std::printf("\n--- %s corpus (%zu buildings) ---\n", corpus.name.c_str(),
                corpus.buildings.size());
    std::printf("%-18s", "#labels/floor");
    for (const std::size_t labels : label_counts) {
      std::printf("   %6zu      ", labels);
    }
    std::printf("\n");
    for (const core::Algorithm algorithm : algorithms) {
      std::printf("%-18s", core::AlgorithmName(algorithm).c_str());
      for (const std::size_t labels : label_counts) {
        core::ExperimentConfig config;
        config.labels_per_floor = labels;
        const core::MetricsSummary s = RunOnCorpus(
            algorithm, corpus, config, 1000 + labels, scale.repetitions);
        std::printf(" %5.3f/%5.3f ", s.micro_f_mean, s.macro_f_mean);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    std::printf("(cells are micro-F/macro-F averaged over buildings)\n");
  }
  return 0;
}
