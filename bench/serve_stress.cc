// Stress/soak harness for the epoll serving transport.
//
// Trains one campus-preset GRAFICS model, starts an in-process serve::Server
// on an ephemeral loopback port, then drives it with --connections concurrent
// TCP connections, each keeping up to --pipeline predict requests in flight,
// until --requests total predictions have been answered. The generator is
// itself a small epoll loop (a handful of threads multiplexing thousands of
// nonblocking sockets), so 2000+ connections cost file descriptors, not
// threads.
//
// This is a correctness gate, not a benchmark: every reply must arrive on
// the connection that asked, in request order, bit-identical to the
// in-process PredictBatch reference. Any mismatch, per-record error,
// protocol violation, or connection dying early fails the run (non-zero
// exit). After the load drains it also asserts a clean shutdown and that
// admission control never fired (the pipeline depth stays below the
// server's in-flight cap).
//
// Run:  ./build/bench/serve_stress                       # 2000 x 8 pipeline
//       ./build/bench/serve_stress --connections 128 --requests 4096 \
//           --pipeline 4                                  # ctest-sized soak
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli_flags.h"
#include "common/error.h"
#include "core/grafics.h"
#include "rf/dataset.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "synth/presets.h"

namespace {

using namespace grafics;
using Clock = std::chrono::steady_clock;

struct Args {
  std::size_t connections = 2000;
  std::size_t requests = 40000;
  std::size_t pipeline = 8;
  std::size_t generator_threads = 4;
  std::size_t event_workers = 4;
  int records_per_floor = 200;
  std::size_t queries = 64;
  unsigned deadline_s = 420;
};

Args ParseArgs(int argc, char** argv) {
  const std::vector<std::string> raw(argv + 1, argv + argc);
  Args args;
  args.connections = ParseUnsigned(FlagValue(raw, "--connections", "2000"),
                                   100000, "--connections");
  args.requests = ParseUnsigned(FlagValue(raw, "--requests", "40000"),
                                100000000, "--requests");
  args.pipeline =
      ParseUnsigned(FlagValue(raw, "--pipeline", "8"), 64, "--pipeline");
  args.generator_threads = ParseUnsigned(
      FlagValue(raw, "--generator-threads", "4"), 64, "--generator-threads");
  args.event_workers = ParseUnsigned(FlagValue(raw, "--event-workers", "4"),
                                     256, "--event-workers");
  args.records_per_floor = static_cast<int>(ParseUnsigned(
      FlagValue(raw, "--records-per-floor", "200"), 100000,
      "--records-per-floor"));
  args.queries =
      ParseUnsigned(FlagValue(raw, "--queries", "64"), 100000, "--queries");
  args.deadline_s = static_cast<unsigned>(ParseUnsigned(
      FlagValue(raw, "--deadline-s", "420"), 86400, "--deadline-s"));
  Require(args.connections >= 1, "--connections must be >= 1");
  Require(args.pipeline >= 1, "--pipeline must be >= 1");
  Require(args.generator_threads >= 1, "--generator-threads must be >= 1");
  return args;
}

/// Global query index for request k on connection c: deterministic, spreads
/// every connection across the whole query set so verification is a table
/// lookup on the receive path.
std::size_t QueryIndex(std::size_t conn, std::size_t k,
                       std::size_t num_queries) {
  return (conn * 131 + k * 7) % num_queries;
}

/// Failure tallies shared by the generator threads. Everything must stay
/// zero for the run to pass.
struct Tally {
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> record_errors{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> dropped_connections{0};
  std::atomic<std::uint64_t> connect_retries{0};
};

/// One generator-side connection: a nonblocking socket pipelining its share
/// of the request stream and verifying replies in order.
struct LoadConn {
  int fd = -1;
  std::size_t id = 0;       // global connection index
  std::size_t target = 0;   // requests this connection must complete
  std::size_t sent = 0;
  std::size_t received = 0;
  bool connecting = true;
  int retries_left = 8;
  std::string out;
  std::size_t out_off = 0;  // consumed prefix of `out`
  std::string in;
};

class Generator {
 public:
  Generator(const Args& args, std::uint16_t port,
            const std::vector<std::string>& encoded,
            const std::vector<std::optional<rf::FloorId>>& reference,
            Tally& tally)
      : args_(args), port_(port), encoded_(encoded), reference_(reference),
        tally_(tally) {}

  /// Drives connections [first, first+count) to completion (or deadline).
  void Run(std::size_t first, std::size_t count, Clock::time_point deadline) {
    epoll_fd_ = ::epoll_create1(0);
    Require(epoll_fd_ >= 0, "serve_stress: epoll_create1 failed");
    conns_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t id = first + i;
      conns_[i].id = id;
      conns_[i].target = args_.requests / args_.connections +
                         (id < args_.requests % args_.connections ? 1 : 0);
      if (conns_[i].target == 0) {
        ++done_;
        continue;
      }
      Connect(conns_[i]);
    }
    std::vector<epoll_event> events(256);
    while (done_ < conns_.size()) {
      if (Clock::now() > deadline) break;
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()), 1000);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int e = 0; e < n; ++e) {
        LoadConn& conn = conns_[events[e].data.u64];
        if (conn.fd < 0) continue;
        if (conn.connecting) {
          FinishConnect(conn, events[e].events);
          continue;
        }
        if ((events[e].events & (EPOLLERR | EPOLLHUP)) != 0) {
          Fail(conn);
          continue;
        }
        if ((events[e].events & EPOLLIN) != 0 && !ReadReplies(conn)) continue;
        if ((events[e].events & EPOLLOUT) != 0) FlushOut(conn);
        if (conn.fd >= 0) UpdateInterest(conn);
      }
    }
    // Anything still open at the deadline is a drop.
    for (LoadConn& conn : conns_) {
      if (conn.fd >= 0) Fail(conn);
    }
    ::close(epoll_fd_);
  }

 private:
  void Connect(LoadConn& conn) {
    conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    Require(conn.fd >= 0, "serve_stress: socket() failed (raise ulimit -n?)");
    int one = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    conn.connecting = true;
    conn.sent = conn.received = 0;
    conn.out.clear();
    conn.out_off = 0;
    conn.in.clear();
    if (::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      conn.connecting = false;
      Pump(conn);
    } else if (errno != EINPROGRESS) {
      Retry(conn);
      return;
    }
    epoll_event event{};
    event.events = EPOLLIN | EPOLLOUT;
    event.data.u64 = &conn - conns_.data();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &event);
  }

  void FinishConnect(LoadConn& conn, std::uint32_t events) {
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if ((events & (EPOLLERR | EPOLLHUP)) != 0 || soerr != 0) {
      Retry(conn);
      return;
    }
    conn.connecting = false;
    Pump(conn);
    FlushOut(conn);
    if (conn.fd >= 0) UpdateInterest(conn);
  }

  /// A refused/reset connect is load-induced (SYN backlog overflow under a
  /// few thousand simultaneous connects), not a correctness failure — retry
  /// a few times before counting it as a drop.
  void Retry(LoadConn& conn) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
    if (conn.retries_left-- <= 0) {
      ++tally_.dropped_connections;
      ++done_;
      return;
    }
    ++tally_.connect_retries;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    Connect(conn);
  }

  /// Queues frames until the pipeline window is full or the stream is done.
  void Pump(LoadConn& conn) {
    while (conn.sent < conn.target &&
           conn.sent - conn.received < args_.pipeline) {
      conn.out +=
          encoded_[QueryIndex(conn.id, conn.sent, encoded_.size())];
      ++conn.sent;
    }
  }

  void FlushOut(LoadConn& conn) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_off,
                 conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EAGAIN) break;
      if (n < 0 && errno == EINTR) continue;
      Fail(conn);
      return;
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
    }
  }

  /// Reads every complete reply frame, verifying order and bit-identity
  /// against the in-process reference. Returns false when the connection
  /// was closed (done or failed).
  bool ReadReplies(LoadConn& conn) {
    char chunk[16 * 1024];
    while (true) {
      const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) {
        conn.in.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EAGAIN) break;
      if (n < 0 && errno == EINTR) continue;
      Fail(conn);  // EOF or reset with replies outstanding
      return false;
    }
    while (conn.in.size() >= 4) {
      std::uint32_t length = 0;
      std::memcpy(&length, conn.in.data(), sizeof(length));
      if (conn.in.size() < 4 + static_cast<std::size_t>(length)) break;
      VerifyReply(conn, conn.in.substr(4, length));
      conn.in.erase(0, 4 + static_cast<std::size_t>(length));
      ++conn.received;
      if (conn.received == conn.target) {
        Done(conn);
        return false;
      }
    }
    Pump(conn);
    FlushOut(conn);
    return conn.fd >= 0;
  }

  void VerifyReply(LoadConn& conn, const std::string& payload) {
    const std::size_t query =
        QueryIndex(conn.id, conn.received, encoded_.size());
    try {
      const serve::Message message = serve::DecodePayload(payload);
      const auto* response = std::get_if<serve::PredictResponse>(&message);
      if (response == nullptr || response->results.size() != 1) {
        ++tally_.protocol_errors;
        return;
      }
      const serve::PredictResult& result = response->results[0];
      const std::optional<rf::FloorId> expected = reference_[query];
      if (result.status == serve::PredictStatus::kError) {
        ++tally_.record_errors;
      } else if (result.status == serve::PredictStatus::kOk
                     ? (expected != result.floor)
                     : expected.has_value()) {
        ++tally_.mismatches;
      }
      ++tally_.answered;
    } catch (const std::exception&) {
      ++tally_.protocol_errors;
    }
  }

  void UpdateInterest(LoadConn& conn) {
    epoll_event event{};
    event.events = EPOLLIN | (conn.out_off < conn.out.size() ? EPOLLOUT : 0);
    event.data.u64 = &conn - conns_.data();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &event);
  }

  void Done(LoadConn& conn) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
    ++done_;
  }

  void Fail(LoadConn& conn) {
    ++tally_.dropped_connections;
    Done(conn);
  }

  const Args& args_;
  const std::uint16_t port_;
  const std::vector<std::string>& encoded_;
  const std::vector<std::optional<rf::FloorId>>& reference_;
  Tally& tally_;
  int epoll_fd_ = -1;
  std::vector<LoadConn> conns_;
  std::size_t done_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    args = ParseArgs(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_stress: %s\n", e.what());
    return 1;
  }

  std::printf("== serve_stress: %zu connections x pipeline %zu, %zu total "
              "predicts, %zu event workers ==\n",
              args.connections, args.pipeline, args.requests,
              args.event_workers);

  // Train one model and freeze the in-process reference answers.
  auto building = synth::CampusBuildingConfig(/*seed=*/29,
                                              args.records_per_floor);
  auto sim = building.MakeSimulator();
  rf::Dataset dataset = sim.GenerateDataset();
  Rng rng(5);
  auto [train, test] = dataset.TrainTestSplit(0.7, rng);
  train.KeepLabelsPerFloor(6, rng);
  core::GraficsConfig model_config;
  model_config.trainer.samples_per_edge = 60;
  core::Grafics system(model_config);
  system.Train(train.records());
  const std::size_t num_queries =
      std::min<std::size_t>(test.size(), args.queries);
  Require(num_queries >= 1, "serve_stress: no test queries");
  const std::vector<rf::SignalRecord> queries(
      test.records().begin(), test.records().begin() + num_queries);
  const std::vector<std::optional<rf::FloorId>> reference =
      system.PredictBatch(queries, {.num_threads = 1});
  std::printf("   trained campus model: %zu train records, %zu distinct "
              "queries\n", train.size(), num_queries);

  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->Load("campus",
                 std::make_shared<const core::Grafics>(std::move(system)));

  serve::ServerConfig server_config;
  server_config.port = 0;  // ephemeral
  server_config.event_workers = args.event_workers;
  serve::Server server(registry, server_config);
  server.Start();

  // Every request for query i sends identical bytes; encode each once.
  std::vector<std::string> encoded;
  encoded.reserve(num_queries);
  for (const rf::SignalRecord& query : queries) {
    encoded.push_back(
        serve::EncodeFrame(serve::PredictRequest{"campus", {query}}));
  }

  Tally tally;
  const auto deadline =
      Clock::now() + std::chrono::seconds(args.deadline_s);
  const auto start = Clock::now();
  const std::size_t num_threads =
      std::min(args.generator_threads, args.connections);
  // Fully built before any thread starts: spawning while still growing the
  // vector would race its internals.
  std::vector<std::unique_ptr<Generator>> generators;
  for (std::size_t t = 0; t < num_threads; ++t) {
    generators.push_back(std::make_unique<Generator>(
        args, server.port(), encoded, reference, tally));
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    const std::size_t first = args.connections * t / num_threads;
    const std::size_t last = args.connections * (t + 1) / num_threads;
    threads.emplace_back([&generators, t, first, last, deadline] {
      generators[t]->Run(first, last - first, deadline);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  const serve::TransportStats transport = server.transport_stats();
  server.Stop();
  registry->Stop();

  const std::uint64_t answered = tally.answered.load();
  std::printf("\n   %llu/%zu answered in %.2fs (%.0f predicts/s), "
              "%llu connect retries\n",
              static_cast<unsigned long long>(answered), args.requests,
              seconds, static_cast<double>(answered) / seconds,
              static_cast<unsigned long long>(tally.connect_retries.load()));
  std::printf("   transport: frames_in=%llu frames_out=%llu bytes_in=%llu "
              "bytes_out=%llu harvested_idle=%llu rejected_busy=%llu\n",
              static_cast<unsigned long long>(transport.frames_in),
              static_cast<unsigned long long>(transport.frames_out),
              static_cast<unsigned long long>(transport.bytes_in),
              static_cast<unsigned long long>(transport.bytes_out),
              static_cast<unsigned long long>(
                  transport.connections_harvested_idle),
              static_cast<unsigned long long>(
                  transport.requests_rejected_busy));

  bool ok = true;
  const auto check = [&ok](bool condition, const char* what,
                           std::uint64_t count) {
    if (condition) return;
    std::fprintf(stderr, "FAIL: %s (%llu)\n", what,
                 static_cast<unsigned long long>(count));
    ok = false;
  };
  check(answered == args.requests, "answered != requested", answered);
  check(tally.mismatches.load() == 0,
        "replies differing from the in-process reference",
        tally.mismatches.load());
  check(tally.record_errors.load() == 0, "per-record error replies",
        tally.record_errors.load());
  check(tally.protocol_errors.load() == 0, "undecodable reply frames",
        tally.protocol_errors.load());
  check(tally.dropped_connections.load() == 0,
        "connections dropped before finishing",
        tally.dropped_connections.load());
  check(transport.requests_rejected_busy == 0,
        "unexpected admission-control rejections",
        transport.requests_rejected_busy);
  if (!ok) return 1;
  std::printf("\nall %llu pipelined replies arrived in order, bit-identical "
              "to the in-process reference; clean shutdown\n",
              static_cast<unsigned long long>(answered));
  return 0;
}
