// Fig. 14 — bipartite-graph modeling + E-LINE vs the raw matrix
// representation (-120 dBm imputation) with the same Prox clustering.
// Paper shape: the matrix representation is far worse (missing-value
// problem), the graph path is near-perfect.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace grafics;
  using namespace grafics::bench;
  const BenchScale scale = GetScale();
  PrintHeader("Fig. 14", "graph modeling + E-LINE vs matrix representation",
              scale);

  for (const Corpus& corpus :
       {MicrosoftCorpus(scale, 41), HongKongCorpus(scale, 42)}) {
    std::printf("\n--- %s corpus ---\n", corpus.name.c_str());
    std::printf("%-14s %7s %7s %7s %7s %7s %7s\n", "repr", "miP", "miR",
                "miF", "maP", "maR", "maF");
    for (const core::Algorithm algorithm :
         {core::Algorithm::kGrafics, core::Algorithm::kMatrixProx}) {
      core::ExperimentConfig config;
      config.labels_per_floor = 4;
      const core::MetricsSummary s =
          RunOnCorpus(algorithm, corpus, config, 4000, scale.repetitions);
      std::printf("%-14s %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f\n",
                  algorithm == core::Algorithm::kGrafics ? "Graph" : "Matrix",
                  s.micro_p_mean, s.micro_r_mean, s.micro_f_mean,
                  s.macro_p_mean, s.macro_r_mean, s.macro_f_mean);
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape: Graph well above Matrix on every metric\n");
  return 0;
}
