// Fig. 16 — impact of the edge-weight function: f(RSS) = RSS + 120 vs the
// power-domain conversion g(RSS) = 10^{RSS/10}, plus the offset-value
// ablation the paper describes in text ("we also tested different offset
// values and observed that the performance is more or less the same").
#include <cstdio>

#include "bench/bench_util.h"
#include "graph/weight_function.h"

int main() {
  using namespace grafics;
  using namespace grafics::bench;
  const BenchScale scale = GetScale();
  PrintHeader("Fig. 16", "weight function f (offset) vs g (power)", scale);

  struct Variant {
    const char* name;
    graph::WeightFn weight;
  };
  const Variant variants[] = {
      {"f: RSS+120", graph::OffsetWeight(120.0)},
      {"g: 10^(RSS/10)", graph::PowerWeight()},
      {"f: RSS+105", graph::OffsetWeight(105.0)},
      {"f: RSS+150", graph::OffsetWeight(150.0)},
      {"f: RSS+200", graph::OffsetWeight(200.0)},
      {"binary", graph::BinaryWeight()},
  };

  for (const Corpus& corpus :
       {MicrosoftCorpus(scale, 61), HongKongCorpus(scale, 62)}) {
    std::printf("\n--- %s corpus ---\n", corpus.name.c_str());
    std::printf("%-16s %7s %7s %7s %7s %7s %7s\n", "weight", "miP", "miR",
                "miF", "maP", "maR", "maF");
    for (const Variant& variant : variants) {
      core::ExperimentConfig config;
      config.labels_per_floor = 4;
      config.grafics.custom_weight = variant.weight;
      const core::MetricsSummary s =
          RunOnCorpus(core::Algorithm::kGrafics, corpus, config, 6000,
                      scale.repetitions);
      std::printf("%-16s %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f\n", variant.name,
                  s.micro_p_mean, s.micro_r_mean, s.micro_f_mean,
                  s.macro_p_mean, s.macro_r_mean, s.macro_f_mean);
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape: all offset variants comparable and well "
              "above g (power compresses RSS differences)\n");
  return 0;
}
