// Fig. 1 — statistics of RF signal records on one mall floor:
// (a) CDF of the number of MACs in a signal record;
// (b) CDF of the pairwise overlap ratio.
// Paper reference values: 8 274 records, 805 distinct MACs, most records
// under 40 MACs, 78 % of pairs overlap below 0.5.
#include <cstdio>

#include "bench/bench_util.h"
#include "rf/dataset_stats.h"

int main() {
  using namespace grafics;
  std::printf("== Fig. 1: record statistics on a dense mall floor ==\n");

  auto config = synth::MallFloorConfig(/*seed=*/20220601);
  auto sim = config.MakeSimulator();
  const rf::Dataset dataset = sim.GenerateDataset();
  std::printf("records=%zu distinct MACs=%zu (paper: 8274 records, 805 MACs)\n",
              dataset.size(), dataset.DistinctMacCount());

  // (a) CDF of #MACs per record.
  const std::vector<double> macs = rf::MacsPerRecord(dataset);
  std::printf("\n(a) CDF of #MACs in a signal record\n");
  std::printf("%8s %8s\n", "#MACs", "CDF");
  for (const double x : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0, 60.0}) {
    std::printf("%8.0f %8.3f\n", x, FractionAtOrBelow(macs, x));
  }

  // (b) CDF of pairwise overlap ratio (sampled pairs).
  Rng rng(17);
  const std::vector<double> overlaps =
      rf::PairwiseOverlapRatios(dataset, /*max_pairs=*/200000, rng);
  std::printf("\n(b) CDF of pairwise overlap ratio (%zu sampled pairs)\n",
              overlaps.size());
  std::printf("%8s %8s\n", "overlap", "CDF");
  for (const double x : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0}) {
    std::printf("%8.1f %8.3f\n", x, FractionAtOrBelow(overlaps, x));
  }

  Rng stats_rng(23);
  const rf::RecordStats stats =
      rf::ComputeRecordStats(dataset, 200000, stats_rng);
  std::printf("\nheadline shape checks\n");
  std::printf("  fraction of records with <= 40 MACs: %.3f (paper: 'most')\n",
              stats.fraction_records_below_40_macs);
  std::printf("  fraction of pairs with overlap < 0.5: %.3f (paper: 0.78)\n",
              stats.fraction_pairs_overlap_below_half);
  std::printf("  mean MACs/record: %.1f  min=%.0f max=%.0f\n",
              stats.macs_per_record.mean, stats.macs_per_record.min,
              stats.macs_per_record.max);
  return 0;
}
