// Optimizers for the neural baselines.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/layers.h"

namespace grafics::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies accumulated gradients to `params` and zeroes them.
  virtual void Step(const std::vector<Parameter*>& params) = 0;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0)
      : learning_rate_(learning_rate), momentum_(momentum) {}

  void Step(const std::vector<Parameter*>& params) override;

 private:
  double learning_rate_;
  double momentum_;
  std::unordered_map<Parameter*, Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8)
      : learning_rate_(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon) {}

  void Step(const std::vector<Parameter*>& params) override;

 private:
  struct State {
    Matrix m;
    Matrix v;
    std::size_t t = 0;
  };
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::unordered_map<Parameter*, State> state_;
};

}  // namespace grafics::nn
