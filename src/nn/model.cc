#include "nn/model.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace grafics::nn {

Matrix Sequential::Forward(const Matrix& input, bool training) {
  Matrix x = input;
  for (const auto& layer : layers_) x = layer->Forward(x, training);
  return x;
}

Matrix Sequential::Backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> params;
  for (const auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

namespace {

Matrix TakeRows(const Matrix& source, std::span<const std::size_t> rows) {
  Matrix out(rows.size(), source.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::copy(source.Row(rows[i]).begin(), source.Row(rows[i]).end(),
              out.Row(i).begin());
  }
  return out;
}

template <typename BatchLoss>
double FitLoop(Sequential& model, Optimizer& optimizer, std::size_t num_rows,
               const FitConfig& config, BatchLoss&& batch_loss) {
  Require(num_rows > 0, "Fit: empty training set");
  Require(config.batch_size > 0, "Fit: batch_size must be positive");
  std::vector<std::size_t> order(num_rows);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(config.shuffle_seed);
  const std::vector<Parameter*> params = model.Parameters();

  double epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < num_rows;
         start += config.batch_size) {
      const std::size_t end = std::min(num_rows, start + config.batch_size);
      const std::span<const std::size_t> batch(order.data() + start,
                                               end - start);
      epoch_loss += batch_loss(batch);
      optimizer.Step(params);
      ++batches;
    }
    epoch_loss /= static_cast<double>(batches);
    if (config.on_epoch) config.on_epoch(epoch, epoch_loss);
  }
  return epoch_loss;
}

}  // namespace

double FitRegression(Sequential& model, Optimizer& optimizer,
                     const Matrix& inputs, const Matrix& targets,
                     const FitConfig& config) {
  Require(inputs.rows() == targets.rows(), "FitRegression: row mismatch");
  return FitLoop(model, optimizer, inputs.rows(), config,
                 [&](std::span<const std::size_t> batch) {
                   const Matrix x = TakeRows(inputs, batch);
                   const Matrix y = TakeRows(targets, batch);
                   const Matrix pred = model.Forward(x, /*training=*/true);
                   LossValue loss = MseLoss(pred, y);
                   model.Backward(loss.gradient);
                   return loss.value;
                 });
}

double FitClassifier(Sequential& model, Optimizer& optimizer,
                     const Matrix& inputs,
                     const std::vector<std::size_t>& labels,
                     const FitConfig& config) {
  Require(inputs.rows() == labels.size(), "FitClassifier: row mismatch");
  return FitLoop(model, optimizer, inputs.rows(), config,
                 [&](std::span<const std::size_t> batch) {
                   const Matrix x = TakeRows(inputs, batch);
                   std::vector<std::size_t> y(batch.size());
                   for (std::size_t i = 0; i < batch.size(); ++i) {
                     y[i] = labels[batch[i]];
                   }
                   const Matrix logits = model.Forward(x, /*training=*/true);
                   LossValue loss = SoftmaxCrossEntropyLoss(logits, y);
                   model.Backward(loss.gradient);
                   return loss.value;
                 });
}

std::vector<std::size_t> PredictClasses(Sequential& model,
                                        const Matrix& inputs) {
  const Matrix logits = model.Forward(inputs, /*training=*/false);
  std::vector<std::size_t> classes(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.Row(r);
    classes[r] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return classes;
}

}  // namespace grafics::nn
