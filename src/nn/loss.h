// Loss functions for the neural baselines.
#pragma once

#include <vector>

#include "common/matrix.h"

namespace grafics::nn {

struct LossValue {
  double value = 0.0;  // mean loss over the batch
  Matrix gradient;     // dL/d(prediction), already divided by batch size
};

/// Mean squared error: L = mean over batch of ||pred - target||^2 / cols.
LossValue MseLoss(const Matrix& prediction, const Matrix& target);

/// Softmax cross-entropy against integer class labels.
/// `logits` is (batch, classes); labels[i] in [0, classes).
LossValue SoftmaxCrossEntropyLoss(const Matrix& logits,
                                  const std::vector<std::size_t>& labels);

/// Row-wise softmax (exposed for prediction).
Matrix Softmax(const Matrix& logits);

}  // namespace grafics::nn
