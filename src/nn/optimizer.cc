#include "nn/optimizer.h"

#include <cmath>

namespace grafics::nn {

void Sgd::Step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    if (momentum_ == 0.0) {
      for (std::size_t r = 0; r < p->value.rows(); ++r) {
        Axpy(-learning_rate_, p->grad.Row(r), p->value.Row(r));
      }
    } else {
      auto [it, inserted] = velocity_.try_emplace(
          p, Matrix(p->value.rows(), p->value.cols()));
      Matrix& vel = it->second;
      for (std::size_t r = 0; r < p->value.rows(); ++r) {
        for (std::size_t c = 0; c < p->value.cols(); ++c) {
          vel(r, c) = momentum_ * vel(r, c) - learning_rate_ * p->grad(r, c);
          p->value(r, c) += vel(r, c);
        }
      }
    }
    p->ZeroGrad();
  }
}

void Adam::Step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    auto [it, inserted] = state_.try_emplace(p);
    State& s = it->second;
    if (inserted) {
      s.m = Matrix(p->value.rows(), p->value.cols());
      s.v = Matrix(p->value.rows(), p->value.cols());
    }
    ++s.t;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(s.t));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(s.t));
    for (std::size_t r = 0; r < p->value.rows(); ++r) {
      for (std::size_t c = 0; c < p->value.cols(); ++c) {
        const double g = p->grad(r, c);
        s.m(r, c) = beta1_ * s.m(r, c) + (1.0 - beta1_) * g;
        s.v(r, c) = beta2_ * s.v(r, c) + (1.0 - beta2_) * g * g;
        const double m_hat = s.m(r, c) / bc1;
        const double v_hat = s.v(r, c) / bc2;
        p->value(r, c) -=
            learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
      }
    }
    p->ZeroGrad();
  }
}

}  // namespace grafics::nn
