#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace grafics::nn {

// ---------------------------------------------------------------- Dense ----

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : weight_(Matrix::RandomNormal(
          in_features, out_features, rng,
          // Xavier/Glorot initialization.
          std::sqrt(2.0 / static_cast<double>(in_features + out_features)))),
      bias_(Matrix(1, out_features)) {}

Matrix Dense::Forward(const Matrix& input, bool training) {
  Require(input.cols() == in_features(), "Dense::Forward: dim mismatch");
  if (training) cached_input_ = input;
  Matrix out = input.MatMul(weight_.value);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    Axpy(1.0, bias_.value.Row(0), out.Row(r));
  }
  return out;
}

Matrix Dense::Backward(const Matrix& grad_output) {
  Require(cached_input_.rows() == grad_output.rows(),
          "Dense::Backward: call Forward(training=true) first");
  weight_.grad += cached_input_.Transposed().MatMul(grad_output);
  for (std::size_t r = 0; r < grad_output.rows(); ++r) {
    Axpy(1.0, grad_output.Row(r), bias_.grad.Row(0));
  }
  return grad_output.MatMul(weight_.value.Transposed());
}

// ----------------------------------------------------------- activations ---

Matrix ReLU::Forward(const Matrix& input, bool training) {
  if (training) cached_input_ = input;
  Matrix out = input;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (double& v : out.Row(r)) v = std::max(0.0, v);
  }
  return out;
}

Matrix ReLU::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      if (cached_input_(r, c) <= 0.0) grad(r, c) = 0.0;
    }
  }
  return grad;
}

Matrix Sigmoid::Forward(const Matrix& input, bool training) {
  Matrix out = input;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (double& v : out.Row(r)) v = grafics::Sigmoid(v);
  }
  if (training) cached_output_ = out;
  return out;
}

Matrix Sigmoid::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      const double y = cached_output_(r, c);
      grad(r, c) *= y * (1.0 - y);
    }
  }
  return grad;
}

Matrix Tanh::Forward(const Matrix& input, bool training) {
  Matrix out = input;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (double& v : out.Row(r)) v = std::tanh(v);
  }
  if (training) cached_output_ = out;
  return out;
}

Matrix Tanh::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      const double y = cached_output_(r, c);
      grad(r, c) *= 1.0 - y * y;
    }
  }
  return grad;
}

// -------------------------------------------------------------- Dropout ----

Dropout::Dropout(double probability, std::uint64_t seed)
    : probability_(probability), rng_(seed) {
  Require(probability >= 0.0 && probability < 1.0,
          "Dropout: probability must be in [0,1)");
}

Matrix Dropout::Forward(const Matrix& input, bool training) {
  if (!training || probability_ == 0.0) return input;
  mask_ = Matrix(input.rows(), input.cols());
  const double keep_scale = 1.0 / (1.0 - probability_);
  Matrix out = input;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      const bool keep = !rng_.Bernoulli(probability_);
      mask_(r, c) = keep ? keep_scale : 0.0;
      out(r, c) *= mask_(r, c);
    }
  }
  return out;
}

Matrix Dropout::Backward(const Matrix& grad_output) {
  if (mask_.empty()) return grad_output;
  Matrix grad = grad_output;
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    for (std::size_t c = 0; c < grad.cols(); ++c) grad(r, c) *= mask_(r, c);
  }
  return grad;
}

// --------------------------------------------------------------- Conv1D ----

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t length, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      length_(length),
      kernel_(Matrix::RandomNormal(
          out_channels, in_channels * kernel_size, rng,
          std::sqrt(2.0 / static_cast<double>(in_channels * kernel_size +
                                              out_channels)))),
      bias_(Matrix(1, out_channels)) {
  Require(kernel_size % 2 == 1, "Conv1D: kernel size must be odd ('same')");
}

Matrix Conv1D::Forward(const Matrix& input, bool training) {
  Require(input.cols() == in_channels_ * length_,
          "Conv1D::Forward: dim mismatch");
  if (training) cached_input_ = input;
  const std::ptrdiff_t half =
      static_cast<std::ptrdiff_t>(kernel_size_) / 2;
  Matrix out(input.rows(), out_channels_ * length_);
  for (std::size_t b = 0; b < input.rows(); ++b) {
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      for (std::size_t t = 0; t < length_; ++t) {
        double acc = bias_.value(0, oc);
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          for (std::size_t k = 0; k < kernel_size_; ++k) {
            const std::ptrdiff_t src =
                static_cast<std::ptrdiff_t>(t) + static_cast<std::ptrdiff_t>(k) - half;
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(length_)) {
              continue;  // zero padding
            }
            acc += kernel_.value(oc, ic * kernel_size_ + k) *
                   input(b, ic * length_ + static_cast<std::size_t>(src));
          }
        }
        out(b, oc * length_ + t) = acc;
      }
    }
  }
  return out;
}

Matrix Conv1D::Backward(const Matrix& grad_output) {
  Require(grad_output.cols() == out_channels_ * length_,
          "Conv1D::Backward: dim mismatch");
  const std::ptrdiff_t half =
      static_cast<std::ptrdiff_t>(kernel_size_) / 2;
  Matrix grad_input(cached_input_.rows(), in_channels_ * length_);
  for (std::size_t b = 0; b < grad_output.rows(); ++b) {
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      for (std::size_t t = 0; t < length_; ++t) {
        const double g = grad_output(b, oc * length_ + t);
        if (g == 0.0) continue;
        bias_.grad(0, oc) += g;
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          for (std::size_t k = 0; k < kernel_size_; ++k) {
            const std::ptrdiff_t src =
                static_cast<std::ptrdiff_t>(t) + static_cast<std::ptrdiff_t>(k) - half;
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(length_)) {
              continue;
            }
            const std::size_t in_index =
                ic * length_ + static_cast<std::size_t>(src);
            kernel_.grad(oc, ic * kernel_size_ + k) +=
                g * cached_input_(b, in_index);
            grad_input(b, in_index) +=
                g * kernel_.value(oc, ic * kernel_size_ + k);
          }
        }
      }
    }
  }
  return grad_input;
}

}  // namespace grafics::nn
