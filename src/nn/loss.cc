#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace grafics::nn {

LossValue MseLoss(const Matrix& prediction, const Matrix& target) {
  Require(prediction.rows() == target.rows() &&
              prediction.cols() == target.cols(),
          "MseLoss: shape mismatch");
  LossValue loss;
  loss.gradient = Matrix(prediction.rows(), prediction.cols());
  const double scale = 1.0 / (static_cast<double>(prediction.rows()) *
                              static_cast<double>(prediction.cols()));
  for (std::size_t r = 0; r < prediction.rows(); ++r) {
    for (std::size_t c = 0; c < prediction.cols(); ++c) {
      const double diff = prediction(r, c) - target(r, c);
      loss.value += diff * diff * scale;
      loss.gradient(r, c) = 2.0 * diff * scale;
    }
  }
  return loss;
}

Matrix Softmax(const Matrix& logits) {
  Matrix out = logits;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const auto row = out.Row(r);
    const double max_logit = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (double& v : row) {
      v = std::exp(v - max_logit);
      sum += v;
    }
    for (double& v : row) v /= sum;
  }
  return out;
}

LossValue SoftmaxCrossEntropyLoss(const Matrix& logits,
                                  const std::vector<std::size_t>& labels) {
  Require(logits.rows() == labels.size(),
          "SoftmaxCrossEntropyLoss: batch/labels mismatch");
  LossValue loss;
  loss.gradient = Softmax(logits);
  const double scale = 1.0 / static_cast<double>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    Require(labels[r] < logits.cols(),
            "SoftmaxCrossEntropyLoss: label out of range");
    const double p = std::max(loss.gradient(r, labels[r]), 1e-15);
    loss.value -= std::log(p) * scale;
    loss.gradient(r, labels[r]) -= 1.0;
  }
  for (std::size_t r = 0; r < loss.gradient.rows(); ++r) {
    Scale(loss.gradient.Row(r), scale);
  }
  return loss;
}

}  // namespace grafics::nn
