// Sequential container of layers with a mini-batch training loop.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace grafics::nn {

class Sequential {
 public:
  Sequential() = default;

  Sequential& Add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename L, typename... Args>
  Sequential& Emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  Matrix Forward(const Matrix& input, bool training = false);
  /// Backpropagates dL/d(output); returns dL/d(input).
  Matrix Backward(const Matrix& grad_output);

  std::vector<Parameter*> Parameters();
  std::size_t NumLayers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

struct FitConfig {
  std::size_t epochs = 50;
  std::size_t batch_size = 32;
  std::uint64_t shuffle_seed = 7;
  /// Optional per-epoch callback (epoch index, mean loss).
  std::function<void(std::size_t, double)> on_epoch;
};

/// Mini-batch training against MSE: targets are a matrix (e.g. autoencoder
/// reconstruction). Returns the mean loss of the final epoch.
double FitRegression(Sequential& model, Optimizer& optimizer,
                     const Matrix& inputs, const Matrix& targets,
                     const FitConfig& config);

/// Mini-batch training against softmax cross-entropy on integer labels.
/// Returns the mean loss of the final epoch.
double FitClassifier(Sequential& model, Optimizer& optimizer,
                     const Matrix& inputs,
                     const std::vector<std::size_t>& labels,
                     const FitConfig& config);

/// Argmax class per row of `logits`.
std::vector<std::size_t> PredictClasses(Sequential& model,
                                        const Matrix& inputs);

}  // namespace grafics::nn
