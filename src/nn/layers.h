// Minimal feed-forward neural-network layers with manual backprop.
//
// This substrate exists only to implement the paper's comparison baselines
// (autoencoder, stacked autoencoder / SAE, Scalable-DNN) without external
// dependencies. Batches are dense row-major matrices: one sample per row.
// Conv1D flattens (channels, length) as [c0 | c1 | ...] within a row.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace grafics::nn {

/// A trainable parameter tensor paired with its gradient accumulator.
struct Parameter {
  Matrix value;
  Matrix grad;

  explicit Parameter(Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols()) {}
  void ZeroGrad() { grad.Fill(0.0); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; layers cache what Backward needs.
  virtual Matrix Forward(const Matrix& input, bool training) = 0;
  /// Backward pass: consumes dL/d(output), returns dL/d(input), and
  /// accumulates parameter gradients.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<Parameter*> Parameters() { return {}; }
  virtual std::string Name() const = 0;
};

/// Fully connected: y = x W + b. W is (in, out).
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Dense"; }

  std::size_t in_features() const { return weight_.value.rows(); }
  std::size_t out_features() const { return weight_.value.cols(); }

 private:
  Parameter weight_;
  Parameter bias_;  // (1, out)
  Matrix cached_input_;
};

class ReLU : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "ReLU"; }

 private:
  Matrix cached_input_;
};

class Sigmoid : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Sigmoid"; }

 private:
  Matrix cached_output_;
};

class Tanh : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Tanh"; }

 private:
  Matrix cached_output_;
};

/// Inverted dropout: scales survivors by 1/(1-p) at train time, identity at
/// inference.
class Dropout : public Layer {
 public:
  Dropout(double probability, std::uint64_t seed);

  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Dropout"; }

 private:
  double probability_;
  Rng rng_;
  Matrix mask_;
};

/// 1-D convolution with 'same' zero padding and stride 1.
/// Input rows are (in_channels * length); output rows are
/// (out_channels * length).
class Conv1D : public Layer {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_size, std::size_t length, Rng& rng);

  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&kernel_, &bias_}; }
  std::string Name() const override { return "Conv1D"; }

  std::size_t length() const { return length_; }
  std::size_t out_channels() const { return out_channels_; }

 private:
  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_size_;
  std::size_t length_;
  Parameter kernel_;  // (out_channels, in_channels * kernel_size)
  Parameter bias_;    // (1, out_channels)
  Matrix cached_input_;
};

}  // namespace grafics::nn
