#include "ingest/ingest_pipeline.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <utility>

#include "common/error.h"
#include "core/grafics.h"
#include "serve/protocol.h"
#include "store/model_store.h"

namespace grafics::ingest {

namespace {

/// Pause before retrying a failed fold-in, so a persistent fault (e.g. the
/// model was unloaded) does not spin the worker; Stop() interrupts it.
constexpr std::chrono::milliseconds kFoldRetryBackoff{250};

/// Journal file for (model, epoch): epoch 0 is the bare legacy name, later
/// epochs append ".<epoch>". Each compaction replaces the journal file with
/// the next epoch's; the manifest records which epoch is the replay source.
std::string JournalPathFor(const std::string& dir, const std::string& name,
                           std::uint64_t epoch) {
  std::string path = dir;
  path += '/';
  path += JournalFileName(name);
  if (epoch > 0) {
    path += '.';
    path += std::to_string(epoch);
  }
  return path;
}

/// fsyncs `path` and its directory: the new epoch journal (header + pending
/// frames + its directory entry) must be durable BEFORE the manifest commit
/// makes it the replay source, or a crash right after the commit could lose
/// acknowledged records.
void SyncFileAndDir(const std::string& path, const std::string& dir) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// Unlinks every epoch file of `name` except the manifest's active one:
/// a crash between writing epoch E+1 and committing the manifest (stray
/// E+1), or between committing and unlinking (stray E), leaves files that
/// RecordJournal would happily open and misread as live journals.
void RemoveStaleJournals(const std::string& dir, const std::string& name,
                         std::uint64_t active_epoch) {
  const std::string base = JournalFileName(name);
  const std::string active =
      active_epoch == 0 ? base : base + "." + std::to_string(active_epoch);
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  while (const dirent* entry = ::readdir(handle)) {
    const std::string file = entry->d_name;
    bool is_epoch_file = file == base;
    if (!is_epoch_file && file.size() > base.size() + 1 &&
        file.compare(0, base.size(), base) == 0 &&
        file[base.size()] == '.') {
      const std::string suffix = file.substr(base.size() + 1);
      is_epoch_file =
          std::all_of(suffix.begin(), suffix.end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
          });
    }
    if (is_epoch_file && file != active) {
      ::unlink((dir + "/" + file).c_str());
    }
  }
  ::closedir(handle);
}

/// Validation shared by Submit and (implicitly) replay: the reasons a single
/// record can never be folded. Returns an empty string for foldable records.
std::string RejectReason(const rf::SignalRecord& record) {
  if (record.empty()) return "empty record";
  if (record.size() > serve::kMaxObservations) {
    return "too many observations";
  }
  return {};
}

}  // namespace

std::string JournalFileName(const std::string& model_name) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string file;
  file.reserve(model_name.size() + sizeof(".journal"));
  for (const char c : model_name) {
    const auto byte = static_cast<unsigned char>(c);
    const bool safe = (byte >= 'A' && byte <= 'Z') ||
                      (byte >= 'a' && byte <= 'z') ||
                      (byte >= '0' && byte <= '9') || byte == '.' ||
                      byte == '_' || byte == '-';
    if (safe) {
      file.push_back(c);
    } else {
      file.push_back('%');
      file.push_back(kHex[byte >> 4]);
      file.push_back(kHex[byte & 0xF]);
    }
  }
  return file + ".journal";
}

IngestPipeline::IngestPipeline(std::shared_ptr<serve::ModelRegistry> registry,
                               IngestConfig config)
    : config_(std::move(config)), registry_(std::move(registry)) {
  Require(registry_ != nullptr, "IngestPipeline: registry required");
  Require(config_.fold_batch_size >= 1,
          "IngestPipeline: fold_batch_size >= 1");
  Require(config_.max_pending >= 1, "IngestPipeline: max_pending >= 1");
  registry_->SetIngestDepthProbe(
      [this](const std::string& name) { return PendingDepth(name); });
  if (config_.obs != nullptr) {
    obs_hook_.Attach(config_.obs, [this] { SyncObs(); });
  }
}

IngestPipeline::~IngestPipeline() {
  // Quiesce the scrape hook before the entries it walks start dying.
  obs_hook_.Detach();
  Stop();
  registry_->SetIngestDepthProbe(nullptr);
}

void IngestPipeline::Attach(const std::string& name) {
  const MutexLock lock(&mutex_);
  Require(!stopped_, "IngestPipeline::Attach after Stop");
  Require(entries_.count(name) == 0,
          "IngestPipeline::Attach: '" + name + "' already attached");
  // Throws for names the registry does not hold — ingestion only ever folds
  // into served models.
  std::shared_ptr<const core::Grafics> snapshot = registry_->Snapshot(name);

  auto entry = std::make_shared<Entry>();
  entry->name = name;
  if (config_.obs != nullptr) {
    const obs::Labels labels = {{"model", name}};
    entry->obs.journal_fsync_us = config_.obs->GetHistogram(
        "grafics_ingest_journal_fsync_us",
        "Microseconds one journal Append (write + fdatasync) took.",
        obs::DefaultLatencyBucketsUs(), labels);
    entry->obs.fold_us = config_.obs->GetHistogram(
        "grafics_ingest_fold_us",
        "Microseconds one fold (fork + Update + publish) took.",
        obs::DefaultLatencyBucketsUs(), labels);
    entry->obs.compaction_us = config_.obs->GetHistogram(
        "grafics_ingest_compaction_us",
        "Microseconds one committed journal compaction took.",
        obs::DefaultLatencyBucketsUs(), labels);
  }
  // Entry not yet published, but the worker thread spawned below reads all
  // of this under entry->mutex — initialize under it too so the
  // happens-before edge is the lock, not the std::thread constructor.
  const MutexLock entry_lock(&entry->mutex);
  entry->stats.name = name;
  if (!config_.journal_dir.empty()) {
    if (config_.model_store != nullptr) {
      // The manifest names the journal epoch that pairs with the store's
      // latest generation; any other epoch file is a crashed compaction's
      // leftover and must not survive to be opened later.
      entry->journal_epoch = config_.model_store->JournalEpoch(name);
      RemoveStaleJournals(config_.journal_dir, name, entry->journal_epoch);
    }
    entry->journal = std::make_unique<RecordJournal>(
        JournalPathFor(config_.journal_dir, name, entry->journal_epoch),
        name);
    JournalReplay replay = entry->journal->TakeReplay();
    if (replay.dropped_bytes > 0) {
      std::fprintf(stderr,
                   "IngestPipeline: dropped %llu torn tail byte(s) from %s\n",
                   static_cast<unsigned long long>(replay.dropped_bytes),
                   entry->journal->path().c_str());
    }
    entry->stats.journal_dropped_bytes = replay.dropped_bytes;
    entry->stats.replayed_batches = replay.folded_batches.size();
    entry->stats.replayed = replay.TotalRecords();
    if (!replay.folded_batches.empty()) {
      // Re-apply the committed folds with their original batch boundaries
      // (one Update call per recorded publish), then publish once: the
      // served snapshot is bit-equal to the pre-restart one without
      // replaying N intermediate generations through the registry. The fork
      // is O(1); only the replayed deltas are materialized. Not a fold-
      // latency sample: replay spans many batches and would permanently
      // skew the per-fold min/mean/max.
      core::Grafics updated = snapshot->Clone();
      std::uint64_t folded = 0;
      for (const std::vector<rf::SignalRecord>& batch :
           replay.folded_batches) {
        updated.Update(batch);
        folded += batch.size();
      }
      registry_->Load(name,
                      std::make_shared<const core::Grafics>(std::move(updated)),
                      {}, serve::PublishSource::kIngest);
      entry->stats.folded = folded;
      entry->stats.publishes = 1;
      entry->stats.last_publish_generation = registry_->generation(name);
    }
    // Records accepted but never folded re-enter the queue; the background
    // worker folds them like any fresh submission (and only then writes
    // their fold-commit frame).
    const auto now = std::chrono::steady_clock::now();
    for (rf::SignalRecord& record : replay.unfolded) {
      entry->pending.push_back({std::move(record), now});
    }
    entry->stats.journal_bytes = entry->journal->bytes();
  }
  Entry* raw = entry.get();
  entry->worker = std::thread([this, raw] { WorkerLoop(*raw); });
  entries_.emplace(name, std::move(entry));
}

std::vector<SubmitResult> IngestPipeline::Submit(
    const std::string& name, std::vector<rf::SignalRecord> records) {
  std::vector<SubmitResult> results(records.size());
  const std::string resolved =
      name.empty() ? registry_->default_model() : name;
  const std::shared_ptr<Entry> entry = Find(resolved);
  if (entry == nullptr) {
    for (SubmitResult& result : results) {
      result.error = "ingest: model '" + resolved +
                     "' is not attached for ingestion";
    }
    return results;
  }

  const MutexLock lock(&entry->mutex);
  if (entry->stopping) {
    for (SubmitResult& result : results) {
      result.error = "ingest: pipeline stopped";
    }
    return results;
  }
  // Pass 1: decide each record's fate under the buffer bound, so the
  // journal write below covers exactly the accepted set.
  std::vector<rf::SignalRecord> accepted;
  std::size_t capacity =
      config_.max_pending -
      std::min(config_.max_pending, entry->pending.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::string reason = RejectReason(records[i]);
    if (reason.empty() && capacity == 0) {
      reason = "ingest: buffer full (backpressure), retry later";
    }
    if (!reason.empty()) {
      results[i].error = std::move(reason);
      continue;
    }
    --capacity;
    results[i].accepted = true;
    accepted.push_back(std::move(records[i]));
  }
  if (accepted.empty()) {
    entry->stats.rejected += records.size();
    return results;
  }
  // Pass 2: make the accepted set durable BEFORE acknowledging. A journal
  // failure (disk full, I/O error) demotes every would-be-accepted record
  // to rejected — nothing unjournaled is ever folded.
  if (entry->journal != nullptr) {
    try {
      const auto append_start = std::chrono::steady_clock::now();
      entry->journal->Append(accepted);
      if (entry->obs.journal_fsync_us != nullptr) {
        entry->obs.journal_fsync_us->Observe(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - append_start)
                .count()));
      }
      entry->stats.journal_bytes = entry->journal->bytes();
    } catch (const std::exception& e) {
      for (SubmitResult& result : results) {
        if (!result.accepted) continue;
        result.accepted = false;
        result.error = e.what();
      }
      entry->stats.rejected += records.size();
      return results;
    }
  }
  const auto now = std::chrono::steady_clock::now();
  for (rf::SignalRecord& record : accepted) {
    entry->pending.push_back({std::move(record), now});
  }
  entry->stats.accepted += accepted.size();
  entry->stats.rejected += records.size() - accepted.size();
  entry->wake.NotifyOne();
  return results;
}

std::vector<serve::IngestModelStats> IngestPipeline::Stats(
    const std::string& name_filter) const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    const MutexLock lock(&mutex_);
    entries.reserve(name_filter.empty() ? entries_.size() : 1);
    for (const auto& [name, entry] : entries_) {
      if (!name_filter.empty() && name != name_filter) continue;
      entries.push_back(entry);
    }
  }
  std::vector<serve::IngestModelStats> stats;
  stats.reserve(entries.size());
  for (const std::shared_ptr<Entry>& entry : entries) {
    const MutexLock lock(&entry->mutex);
    serve::IngestModelStats s = entry->stats;
    s.pending = entry->pending.size() + entry->in_flight;
    stats.push_back(std::move(s));
  }
  return stats;
}

std::uint64_t IngestPipeline::PendingDepth(const std::string& name) const {
  const std::shared_ptr<Entry> entry = Find(name);
  if (entry == nullptr) return 0;
  const MutexLock lock(&entry->mutex);
  return entry->pending.size() + entry->in_flight;
}

bool IngestPipeline::WaitUntilDrained(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool drained = true;
    {
      std::vector<std::shared_ptr<Entry>> entries;
      {
        const MutexLock lock(&mutex_);
        for (const auto& [name, entry] : entries_) entries.push_back(entry);
      }
      for (const std::shared_ptr<Entry>& entry : entries) {
        const MutexLock lock(&entry->mutex);
        if (!entry->pending.empty() || entry->in_flight > 0) {
          drained = false;
          break;
        }
      }
    }
    if (drained) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void IngestPipeline::Stop() {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    const MutexLock lock(&mutex_);
    stopped_ = true;
    for (const auto& [name, entry] : entries_) entries.push_back(entry);
  }
  for (const std::shared_ptr<Entry>& entry : entries) {
    {
      const MutexLock lock(&entry->mutex);
      entry->stopping = true;
    }
    entry->wake.NotifyAll();
    entry->compaction_done.NotifyAll();  // release CompactNow waiters
  }
  for (const std::shared_ptr<Entry>& entry : entries) {
    if (entry->worker.joinable()) entry->worker.join();
    // Worker gone: sync and close the journal now, not at destruction —
    // the shutdown contract is "journal closed before the registry dies".
    const MutexLock lock(&entry->mutex);
    entry->journal.reset();
  }
}

void IngestPipeline::WorkerLoop(Entry& entry) {
  // Explicit Lock/Unlock instead of RAII: the loop releases the mutex
  // around FoldAndPublish and the analysis checks the pairing on every
  // path. Nothing inside the locked regions throws (CommitFold is caught
  // below, Compact never throws).
  entry.mutex.Lock();
  for (;;) {
    // Compaction runs here, between folds, so nothing is ever in flight
    // while the journal is swapped.
    if (WantsCompaction(entry)) Compact(entry);
    if (entry.pending.empty()) {
      if (entry.stopping) {
        entry.mutex.Unlock();
        return;
      }
      while (!entry.stopping && !entry.compact_requested &&
             entry.pending.empty()) {
        entry.wake.Wait(entry.mutex);
      }
      continue;
    }
    // Let the batch fill, but no longer than the oldest record's fold
    // budget. Stop() folds whatever is pending immediately.
    const auto deadline = entry.pending.front().enqueued + config_.max_delay;
    while (entry.pending.size() < config_.fold_batch_size &&
           !entry.stopping && !entry.compact_requested) {
      if (entry.wake.WaitUntil(entry.mutex, deadline) ==
          std::cv_status::timeout) {
        break;
      }
      // Whether full, stopping, compacting, or past the deadline: fold what
      // we have (an explicit compaction request checkpoints after the fold).
    }
    const std::size_t take =
        std::min(entry.pending.size(), config_.fold_batch_size);
    std::vector<rf::SignalRecord> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(entry.pending.front().record));
      entry.pending.pop_front();
    }
    entry.in_flight = take;
    entry.mutex.Unlock();
    const FoldOutcome outcome = FoldAndPublish(entry, batch);
    entry.mutex.Lock();
    entry.in_flight = 0;
    if (outcome.generation != 0) {
      entry.stats.folded += take;
      ++entry.stats.publishes;
      entry.stats.last_publish_generation = outcome.generation;
      RecordFoldLatency(entry, outcome.micros);
      if (entry.obs.fold_us != nullptr) {
        entry.obs.fold_us->Observe(outcome.micros);
      }
      if (entry.journal != nullptr) {
        try {
          entry.journal->CommitFold(take);
          entry.stats.journal_bytes = entry.journal->bytes();
        } catch (const std::exception& e) {
          // The fold itself is published; a missing commit frame only makes
          // the next replay fold these records as part of a later batch.
          std::fprintf(stderr, "IngestPipeline: commit frame for %s: %s\n",
                       entry.name.c_str(), e.what());
        }
      }
      ++entry.folds_since_compaction;
    } else {
      ++entry.fold_failures;
      if (entry.stopping) {
        // Shutdown drain: the records stay journaled without a commit
        // frame, so the next start replays them as unfolded. No later
        // commit can be written (this worker is exiting), so the journal's
        // commit-pairing invariant holds.
        continue;
      }
      // Mid-flight failure (model unloaded, transient Update error):
      // dropping the batch would orphan its journaled records in front of
      // any LATER commit frame and corrupt replay's oldest-uncommitted
      // pairing. Re-queue it at the front, in order, and retry after a
      // pause; backpressure bounds the buildup while the fault persists.
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t i = batch.size(); i > 0; --i) {
        entry.pending.push_front({std::move(batch[i - 1]), now});
      }
      const auto retry_at = now + kFoldRetryBackoff;
      while (!entry.stopping) {
        if (entry.wake.WaitUntil(entry.mutex, retry_at) ==
            std::cv_status::timeout) {
          break;
        }
      }
    }
  }
}

bool IngestPipeline::WantsCompaction(const Entry& entry) const {
  if (entry.stopping || entry.journal == nullptr ||
      config_.model_store == nullptr) {
    return false;
  }
  if (entry.compact_requested) return true;
  // Both automatic policies arm only after at least one fold: a journal
  // holding nothing but pending records would be rewritten byte-for-byte,
  // and the byte bound would then retrigger forever.
  if (entry.folds_since_compaction == 0) return false;
  if (config_.compact_every_n_folds > 0 &&
      entry.folds_since_compaction >= config_.compact_every_n_folds) {
    return true;
  }
  return config_.max_journal_bytes > 0 &&
         entry.journal->bytes() > config_.max_journal_bytes;
}

void IngestPipeline::FinishCompaction(Entry& entry, std::string error) {
  if (!error.empty()) {
    std::fprintf(stderr, "IngestPipeline: compaction for %s failed: %s\n",
                 entry.name.c_str(), error.c_str());
  }
  entry.last_compaction_error = std::move(error);
  entry.compact_requested = false;
  // Re-arm the fold-count policy from zero on failure too, so a persistent
  // fault (full disk) retries every N folds, not every fold.
  entry.folds_since_compaction = 0;
  ++entry.compaction_attempts;
  entry.compaction_done.NotifyAll();
}

void IngestPipeline::Compact(Entry& entry) {
  // Only committed compactions are observed below; failed attempts abort at
  // wildly different points and would pollute the distribution.
  const auto compaction_start = std::chrono::steady_clock::now();
  // The served snapshot, read under entry.mutex: with in_flight == 0 it is
  // exactly the fold of the journal's committed prefix (publishes only
  // happen from this worker), and the pending deque is exactly the
  // journal's uncommitted suffix — the state split the checkpoint + new
  // epoch below must capture.
  std::shared_ptr<const core::Grafics> snapshot;
  try {
    snapshot = registry_->Snapshot(entry.name);
  } catch (const std::exception& e) {
    FinishCompaction(entry, e.what());
    return;
  }
  if (snapshot == nullptr || !snapshot->is_trained()) {
    FinishCompaction(entry, "no trained snapshot for '" + entry.name + "'");
    return;
  }
  const std::uint64_t old_bytes = entry.journal->bytes();

  // Stage the artifact outside the lock — serializing a base can take a
  // while and Submit must not block on it. The artifact file is durable but
  // invisible (no manifest reference) after this; on failure or crash it is
  // a stray that the next attempt overwrites.
  entry.mutex.Unlock();
  store::StagedArtifact staged;
  std::string stage_error;
  try {
    staged = config_.model_store->StageCheckpoint(entry.name, snapshot);
  } catch (const std::exception& e) {
    stage_error = e.what();
  }
  entry.mutex.Lock();
  if (!stage_error.empty()) {
    FinishCompaction(entry, std::move(stage_error));
    return;
  }

  // Under the lock again (Submit cannot interleave): write journal epoch
  // E+1 holding exactly the pending suffix, make it durable, then commit
  // the manifest — the single atomic point where artifact + truncated
  // journal replace full-journal replay. A crash before the commit leaves
  // the manifest (and thus restart behavior) untouched; a crash after it
  // restores base + deltas + pending suffix. Either side is bit-identical.
  const std::uint64_t new_epoch = entry.journal_epoch + 1;
  const std::string new_path =
      JournalPathFor(config_.journal_dir, entry.name, new_epoch);
  const std::string old_path = entry.journal->path();
  std::unique_ptr<RecordJournal> fresh;
  try {
    ::unlink(new_path.c_str());  // stray from a crashed earlier attempt
    fresh = std::make_unique<RecordJournal>(new_path, entry.name);
    if (!entry.pending.empty()) {
      std::vector<rf::SignalRecord> pending;
      pending.reserve(entry.pending.size());
      for (const PendingRecord& p : entry.pending) {
        pending.push_back(p.record);
      }
      fresh->Append(pending);
    }
    SyncFileAndDir(new_path, config_.journal_dir);
    config_.model_store->CommitStaged(entry.name, staged, new_epoch,
                                      snapshot);
  } catch (const std::exception& e) {
    fresh.reset();
    ::unlink(new_path.c_str());
    FinishCompaction(entry, e.what());
    return;
  }
  entry.journal = std::move(fresh);  // closes the old epoch's fd
  entry.journal_epoch = new_epoch;
  entry.stats.journal_bytes = entry.journal->bytes();
  const std::uint64_t reclaimed =
      old_bytes > entry.stats.journal_bytes
          ? old_bytes - entry.stats.journal_bytes
          : 0;
  entry.journal_bytes_reclaimed += reclaimed;
  entry.last_compaction_generation = staged.generation;
  entry.last_compaction_reclaimed = reclaimed;
  ::unlink(old_path.c_str());
  if (entry.obs.compaction_us != nullptr) {
    entry.obs.compaction_us->Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - compaction_start)
            .count()));
  }
  FinishCompaction(entry, {});
}

IngestPipeline::CompactOutcome IngestPipeline::CompactNow(
    const std::string& name) {
  const std::string resolved =
      name.empty() ? registry_->default_model() : name;
  const std::shared_ptr<Entry> entry = Find(resolved);
  Require(entry != nullptr,
          "ingest: model '" + resolved + "' is not attached for ingestion");
  const MutexLock lock(&entry->mutex);
  Require(entry->journal != nullptr,
          "ingest: compaction requires journaling (--journal-dir)");
  Require(config_.model_store != nullptr,
          "ingest: compaction requires a model store (--store-dir)");
  Require(!entry->stopping, "ingest: pipeline stopped");
  const std::uint64_t target = entry->compaction_attempts + 1;
  entry->compact_requested = true;
  entry->wake.NotifyAll();
  while (entry->compaction_attempts < target && !entry->stopping) {
    entry->compaction_done.Wait(entry->mutex);
  }
  Require(entry->compaction_attempts >= target,
          "ingest: pipeline stopped before the compaction ran");
  Require(entry->last_compaction_error.empty(),
          "ingest: compaction failed: " + entry->last_compaction_error);
  return {entry->last_compaction_generation,
          entry->last_compaction_reclaimed};
}

std::uint64_t IngestPipeline::JournalBytesReclaimed() const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    const MutexLock lock(&mutex_);
    entries.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) entries.push_back(entry);
  }
  std::uint64_t total = 0;
  for (const std::shared_ptr<Entry>& entry : entries) {
    const MutexLock lock(&entry->mutex);
    total += entry->journal_bytes_reclaimed;
  }
  return total;
}

IngestPipeline::FoldOutcome IngestPipeline::FoldAndPublish(
    Entry& entry, const std::vector<rf::SignalRecord>& batch) {
  const auto started = std::chrono::steady_clock::now();
  try {
    const std::shared_ptr<const core::Grafics> snapshot =
        registry_->Snapshot(entry.name);
    Require(snapshot != nullptr && snapshot->is_trained(),
            "IngestPipeline: no trained snapshot for '" + entry.name + "'");
    // Copy-on-write fold: Clone is an O(1) structural fork sharing every
    // chunk with the served snapshot; Update copy-on-writes only the chunks
    // the batch touches while the registry keeps serving the old snapshot.
    // The publish below swaps atomically (in-flight batches finish on the
    // snapshot they started with, exactly like a hot reload) — total cost
    // O(batch), independent of model size.
    core::Grafics updated = snapshot->Clone();
    updated.Update(batch);
    registry_->Load(entry.name,
                    std::make_shared<const core::Grafics>(std::move(updated)),
                    {}, serve::PublishSource::kIngest);
    FoldOutcome outcome;
    outcome.generation = registry_->generation(entry.name);
    outcome.micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
    return outcome;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "IngestPipeline: fold-in for %s failed: %s\n",
                 entry.name.c_str(), e.what());
    return {};
  }
}

void IngestPipeline::RecordFoldLatency(Entry& entry, std::uint64_t micros) {
  ++entry.fold_count;
  entry.fold_total_us += micros;
  serve::IngestModelStats& stats = entry.stats;
  stats.last_fold_us = micros;
  stats.fold_min_us =
      entry.fold_count == 1 ? micros : std::min(stats.fold_min_us, micros);
  stats.fold_max_us = std::max(stats.fold_max_us, micros);
  stats.fold_mean_us = entry.fold_total_us / entry.fold_count;
}

std::shared_ptr<IngestPipeline::Entry> IngestPipeline::Find(
    const std::string& name) const {
  const MutexLock lock(&mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

void IngestPipeline::SyncObs() const {
  obs::Registry& obs = *config_.obs;
  for (const serve::IngestModelStats& stats : Stats()) {
    const obs::Labels labels = {{"model", stats.name}};
    obs.GetCounter("grafics_ingest_accepted_total",
                   "Records validated, journaled, and acknowledged.", labels)
        ->SyncTo(stats.accepted);
    obs.GetCounter("grafics_ingest_rejected_total",
                   "Records refused (validation, backpressure, journal "
                   "failure).",
                   labels)
        ->SyncTo(stats.rejected);
    obs.GetCounter("grafics_ingest_folded_total",
                   "Records folded into a published snapshot.", labels)
        ->SyncTo(stats.folded);
    obs.GetCounter("grafics_ingest_publishes_total",
                   "Fold-in publishes through the model registry.", labels)
        ->SyncTo(stats.publishes);
    obs.GetGauge("grafics_ingest_backlog",
                 "Records accepted but not yet folded (pending + in "
                 "flight).",
                 labels)
        ->Set(static_cast<std::int64_t>(stats.pending));
    obs.GetGauge("grafics_ingest_journal_bytes",
                 "Current size of the model's journal epoch file.", labels)
        ->Set(static_cast<std::int64_t>(stats.journal_bytes));
  }
}

}  // namespace grafics::ingest
