// Online ingestion pipeline: crowdsourced records submitted at serving time
// are journaled durably, buffered per model, folded into the model by a
// background worker, and published atomically — the serving-side realization
// of the paper's "easily extendable for new RF records" claim.
//
// Data path per model:
//
//   Submit(records)                       background worker
//     validate + bound the buffer   -->     drain a batch
//     journal Append + fdatasync            fork the served snapshot (O(1))
//     enqueue, ack "accepted"               Grafics::Update on the fork
//                                           registry Load (generation + 1)
//                                           journal CommitFold
//
// The fold never mutates the served shared_ptr<const Grafics>: it runs
// Grafics::Update on a structurally shared fork (Grafics::Clone — an O(1)
// pointer copy whose chunked storage is copy-on-write, see
// docs/architecture.md) and publishes the fork into the serve::ModelRegistry,
// so in-flight predictions keep their old snapshot exactly like a hot
// reload. Because the fork shares every untouched chunk with the snapshot it
// came from, a publish costs O(batch), not O(model), and resident memory
// never doubles. Submission is bounded (max_pending) — beyond it records are
// rejected with a backpressure error rather than growing the heap without
// limit. Per-fold latency (fork + Update + publish) is tracked and surfaced
// through IngestStats.
//
// With a journal directory configured, Attach replays the journal before
// serving: committed fold batches are re-applied with the same batch
// boundaries the live daemon used (see record_journal.h on why that makes
// the replayed model deterministic) and records that were accepted but
// never folded re-enter the pending queue.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_sync.h"
#include "ingest/record_journal.h"
#include "obs/metrics.h"
#include "rf/signal_record.h"
#include "serve/model_registry.h"

namespace grafics::store {
class ModelStore;
}

namespace grafics::ingest {

struct IngestConfig {
  /// Fold as soon as this many records are pending.
  std::size_t fold_batch_size = 64;
  /// Fold once the oldest pending record has waited this long.
  std::chrono::milliseconds max_delay{200};
  /// Submission buffer bound per model; records beyond it are rejected
  /// ("backpressure") until the worker catches up.
  std::size_t max_pending = 4096;
  /// Directory for the per-model journals; empty disables durability (and
  /// replay) — records then live only in the pending buffer.
  std::string journal_dir;
  /// Persistence store for journal compaction: the worker periodically
  /// folds the journal's committed prefix into a store checkpoint and
  /// truncates the journal to the pending suffix, so restart cost is
  /// O(base + deltas + suffix) instead of O(whole journal). Null disables
  /// compaction (and CompactNow throws).
  std::shared_ptr<store::ModelStore> model_store;
  /// Compact after this many folds since the last compaction (0 = only on
  /// explicit CompactNow / the byte bound below).
  std::size_t compact_every_n_folds = 0;
  /// Compact when the journal exceeds this many bytes (0 = no byte bound).
  std::uint64_t max_journal_bytes = 0;
  /// Telemetry registry; null records nothing. Per-model latency histograms
  /// (journal fsync, fold, compaction) are resolved at Attach time, and the
  /// ingest counters/gauges are synced by a collection hook at every
  /// scrape.
  std::shared_ptr<obs::Registry> obs;
};

/// One submitted record's fate, the in-process twin of the wire-level
/// serve::SubmitResult.
struct SubmitResult {
  bool accepted = false;
  std::string error;
};

class IngestPipeline {
 public:
  /// The registry is shared with the serving transport; published snapshots
  /// go through ModelRegistry::Load with PublishSource::kIngest. The
  /// pipeline registers itself as the registry's ingest-depth probe (and
  /// unregisters on destruction).
  IngestPipeline(std::shared_ptr<serve::ModelRegistry> registry,
                 IngestConfig config = {});
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Enables ingestion for `name`, which must already be loaded in the
  /// registry. With a journal_dir, opens the model's journal, folds its
  /// committed batches and queues its unfolded records (one publish when
  /// anything was replayed), so the served snapshot reflects every record
  /// accepted before the restart. Throws grafics::Error for unknown models,
  /// journal I/O failures, or a journal recorded for a different model.
  void Attach(const std::string& name);

  /// Validates and journals a batch for the named model (empty = default),
  /// returning one result per record in request order. Accepted records are
  /// durable (journaled + synced) when this returns; rejected records
  /// report why (unknown/unattached model, empty record, too many
  /// observations, backpressure). Never throws for per-record problems.
  std::vector<SubmitResult> Submit(const std::string& name,
                                   std::vector<rf::SignalRecord> records);

  /// Per-model ingest counters, sorted by name. A non-empty `name_filter`
  /// returns only that model's entry (empty result for unknown names).
  std::vector<serve::IngestModelStats> Stats(
      const std::string& name_filter = {}) const;

  /// Accepted-but-not-yet-folded depth for one model (0 for unknown names);
  /// the registry's Stats probe.
  std::uint64_t PendingDepth(const std::string& name) const;

  /// Blocks until every record pending at the time of the call has been
  /// folded and published (test/CI helper). Returns false on timeout.
  bool WaitUntilDrained(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(30000));

  /// What one compaction committed; the wire-level CompactResponse's twin.
  struct CompactOutcome {
    /// Store generation the compaction committed.
    std::uint64_t generation = 0;
    /// Journal bytes reclaimed by truncating to the pending suffix.
    std::uint64_t journal_bytes_reclaimed = 0;
  };

  /// Requests a compaction of `name`'s journal and blocks until the worker
  /// has performed it (it runs between folds, on the worker thread, so
  /// nothing is ever in flight during the stage/commit sequence). Throws
  /// when the model is not attached, the pipeline runs without a journal or
  /// store, the attempt fails, or the pipeline stops first.
  CompactOutcome CompactNow(const std::string& name);

  /// Journal bytes reclaimed by compaction across every model since the
  /// pipeline started; feeds the v6 store-stats block.
  std::uint64_t JournalBytesReclaimed() const;

  /// Folds and publishes everything pending, syncs and closes the journals,
  /// and rejects further Submits. Idempotent; also run by the destructor.
  /// Call this BEFORE ModelRegistry::Stop — a stopped registry rejects the
  /// final publishes (the records stay journaled for the next start, but
  /// the drain is lost).
  void Stop();

 private:
  struct PendingRecord {
    rf::SignalRecord record;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Entry {
    std::string name;  // immutable after Attach
    /// Telemetry handles (any may be null), resolved in Attach before the
    /// worker spawns and immutable after — read lock-free like `name`.
    struct {
      obs::Histogram* journal_fsync_us = nullptr;
      obs::Histogram* fold_us = nullptr;
      obs::Histogram* compaction_us = nullptr;
    } obs;
    mutable Mutex mutex;
    CondVar wake;
    std::deque<PendingRecord> pending GRAFICS_GUARDED_BY(mutex);
    /// Records drained by the worker but not yet published; Stats and the
    /// registry probe count them as pending so "pending == 0" means folded.
    std::size_t in_flight GRAFICS_GUARDED_BY(mutex) = 0;
    serve::IngestModelStats stats GRAFICS_GUARDED_BY(mutex);
    /// Accumulators behind stats.fold_*_us (mean needs the running total).
    std::uint64_t fold_count GRAFICS_GUARDED_BY(mutex) = 0;
    std::uint64_t fold_total_us GRAFICS_GUARDED_BY(mutex) = 0;
    std::uint64_t fold_failures GRAFICS_GUARDED_BY(mutex) = 0;
    std::unique_ptr<RecordJournal> journal GRAFICS_GUARDED_BY(mutex);
    /// Journal epoch the journal member is writing (file name suffix; 0 is
    /// the bare legacy name). Bumped by each committed compaction.
    std::uint64_t journal_epoch GRAFICS_GUARDED_BY(mutex) = 0;
    /// Folds committed since the last compaction; drives the
    /// compact_every_n_folds policy.
    std::uint64_t folds_since_compaction GRAFICS_GUARDED_BY(mutex) = 0;
    /// CompactNow sets this; the worker compacts at the next loop turn.
    bool compact_requested GRAFICS_GUARDED_BY(mutex) = false;
    /// Compaction attempt/result channel for CompactNow waiters.
    CondVar compaction_done;
    std::uint64_t compaction_attempts GRAFICS_GUARDED_BY(mutex) = 0;
    std::string last_compaction_error GRAFICS_GUARDED_BY(mutex);
    std::uint64_t last_compaction_generation GRAFICS_GUARDED_BY(mutex) = 0;
    std::uint64_t last_compaction_reclaimed GRAFICS_GUARDED_BY(mutex) = 0;
    std::uint64_t journal_bytes_reclaimed GRAFICS_GUARDED_BY(mutex) = 0;
    bool stopping GRAFICS_GUARDED_BY(mutex) = false;
    std::thread worker;  // last member: joined before the rest is destroyed
  };

  void WorkerLoop(Entry& entry) GRAFICS_EXCLUDES(entry.mutex);
  /// Stage + journal-swap + commit for one compaction; called by the worker
  /// with entry.mutex held and in_flight == 0 (it drops the lock around the
  /// artifact staging, like the fold path). Records the outcome in the entry
  /// and notifies CompactNow waiters; never throws.
  void Compact(Entry& entry) GRAFICS_REQUIRES(entry.mutex);
  /// Records a compaction attempt's outcome and wakes CompactNow waiters.
  static void FinishCompaction(Entry& entry, std::string error)
      GRAFICS_REQUIRES(entry.mutex);
  /// True when the compaction policy (explicit request, fold count, journal
  /// bytes) asks for a compaction.
  bool WantsCompaction(const Entry& entry) const
      GRAFICS_REQUIRES(entry.mutex);
  struct FoldOutcome {
    /// Published generation, or 0 when the publish failed.
    std::uint64_t generation = 0;
    /// Wall-clock cost of fork + Update + publish, microseconds.
    std::uint64_t micros = 0;
  };
  /// Fork + Update + publish one batch; called without entry.mutex held.
  FoldOutcome FoldAndPublish(Entry& entry,
                             const std::vector<rf::SignalRecord>& batch)
      GRAFICS_EXCLUDES(entry.mutex);
  /// Folds one latency sample into entry.stats.
  static void RecordFoldLatency(Entry& entry, std::uint64_t micros)
      GRAFICS_REQUIRES(entry.mutex);
  std::shared_ptr<Entry> Find(const std::string& name) const
      GRAFICS_EXCLUDES(mutex_);
  /// Collection-hook body: syncs per-model ingest counters/gauges into
  /// config_.obs.
  void SyncObs() const GRAFICS_EXCLUDES(mutex_);

  const IngestConfig config_;
  const std::shared_ptr<serve::ModelRegistry> registry_;

  mutable Mutex mutex_;
  std::map<std::string, std::shared_ptr<Entry>> entries_
      GRAFICS_GUARDED_BY(mutex_);
  bool stopped_ GRAFICS_GUARDED_BY(mutex_) = false;

  obs::ScopedHook obs_hook_;  // detached in the destructor, before entries_
};

/// Journal file name for a model: every byte outside [A-Za-z0-9._-] is
/// percent-encoded, so registry names (which may contain '/') can never
/// escape the journal directory.
std::string JournalFileName(const std::string& model_name);

}  // namespace grafics::ingest
