// Durable per-model append-only journal of submitted rf::SignalRecords.
//
// The journal is the write-ahead log of the online ingestion pipeline: a
// submitted record is acknowledged "accepted" only after its frame is on
// disk and fdatasync'd, so accepted records survive a daemon crash and are
// replayed into the model on the next start. The file is a header followed
// by CRC-framed entries over common/serialize.h primitives:
//
//   header:  "GJNL" magic + u32 version (WriteHeader), string model_name
//   frame:   u32 payload_length | u32 crc32(payload) | payload
//   payload: u8 frame type + body
//            type 0 (record):      WriteSignalRecord bytes
//            type 1 (fold commit): u64 count — the oldest `count` not-yet-
//                                  committed records were folded into one
//                                  published snapshot
//
// Fold-commit frames make replay deterministic: Grafics::Update refines new
// embeddings against the negative sampler rebuilt at the previous batch
// boundary, so the folded model depends on how records were batched.
// Recording each publish's batch boundary lets replay reproduce the exact
// same sequence of Update calls — a restarted daemon converges to the same
// model bytes the live daemon had.
//
// Torn tails are expected (a crash mid-write): opening the journal scans to
// the last frame that is complete and CRC-clean, truncates everything after
// it, and appends from there. Corruption never throws the daemon away —
// only the torn suffix is dropped, and the count of discarded bytes is
// reported.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rf/signal_record.h"

namespace grafics::ingest {

/// Upper bound on one journal frame's payload; declared lengths beyond this
/// are treated as a torn tail, before any allocation. A maximal record
/// (kMaxObservations observations) encodes to ~1 MiB.
inline constexpr std::size_t kMaxJournalFrameBytes = 2u << 20;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `data`; the frame
/// checksum. Exposed for tests that forge corrupt frames.
std::uint32_t Crc32(const void* data, std::size_t size);

/// What a journal held when it was opened, reconstructed for replay:
/// the committed fold batches in publish order, then the records that were
/// accepted but never folded (they re-enter the pending queue).
struct JournalReplay {
  std::vector<std::vector<rf::SignalRecord>> folded_batches;
  std::vector<rf::SignalRecord> unfolded;
  /// Torn/corrupt tail bytes discarded by the open scan (0 = clean file).
  std::uint64_t dropped_bytes = 0;

  std::size_t TotalRecords() const {
    std::size_t total = unfolded.size();
    for (const auto& batch : folded_batches) total += batch.size();
    return total;
  }
};

class RecordJournal {
 public:
  /// Opens (or creates) the journal at `path` for `model_name`, replaying
  /// any existing content: scans every complete CRC-clean frame, truncates
  /// the torn tail, and leaves the file positioned for appending. Throws
  /// grafics::Error when the file cannot be opened/created or belongs to a
  /// different model (name recorded in the header).
  RecordJournal(std::string path, std::string model_name);
  ~RecordJournal();

  RecordJournal(const RecordJournal&) = delete;
  RecordJournal& operator=(const RecordJournal&) = delete;

  /// The records reconstructed by the opening scan; call once, the replay
  /// buffer is moved out.
  JournalReplay TakeReplay();

  /// Appends one frame per record (buffered into a single write) and
  /// fdatasyncs, so records are durable when this returns. Throws
  /// grafics::Error on write failures (e.g. a full disk) — the caller must
  /// then reject the submission instead of acknowledging it.
  void Append(std::span<const rf::SignalRecord> records);

  /// Appends a fold-commit frame: the oldest `count` uncommitted records
  /// were folded into one published snapshot. Synced like Append.
  void CommitFold(std::uint64_t count);

  /// Current journal size in bytes.
  std::uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  /// write()s `frames` and fdatasyncs; on any failure rolls the file back
  /// to the last durable frame boundary (bytes_) before throwing, so a
  /// partial write can never strand later frames behind torn bytes. If the
  /// rollback itself fails the journal fail-stops: the fd is closed and
  /// every further append throws.
  void AppendDurably(const std::string& frames);
  void RollBack();

  std::string path_;
  std::string model_name_;
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  JournalReplay replay_;
};

}  // namespace grafics::ingest
