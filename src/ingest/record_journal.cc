#include "ingest/record_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/serialize.h"
#include "serve/protocol.h"

namespace grafics::ingest {

namespace {

constexpr char kJournalMagic[4] = {'G', 'J', 'N', 'L'};
constexpr std::uint32_t kJournalVersion = 1;

enum class FrameType : std::uint8_t {
  kRecord = 0,
  kFoldCommit = 1,
};

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

/// One frame (length + crc + payload) appended to `out`.
void AppendFrame(std::string& out, const std::string& payload) {
  Require(payload.size() <= kMaxJournalFrameBytes,
          "RecordJournal: frame payload too large");
  const auto length = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = Crc32(payload.data(), payload.size());
  out.append(reinterpret_cast<const char*>(&length), sizeof(length));
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out.append(payload);
}

std::string EncodeRecordFrame(const rf::SignalRecord& record) {
  std::ostringstream payload;
  WriteU8(payload, static_cast<std::uint8_t>(FrameType::kRecord));
  // Reuse the serving wire codec for the record body so the journal format
  // cannot drift from the protocol's (both validate on read).
  serve::WriteSignalRecord(payload, record);
  return std::move(payload).str();
}

std::string EncodeCommitFrame(std::uint64_t count) {
  std::ostringstream payload;
  WriteU8(payload, static_cast<std::uint8_t>(FrameType::kFoldCommit));
  WriteU64(payload, count);
  return std::move(payload).str();
}

/// read() until `size` bytes or EOF; returns bytes read, throws on errors.
std::size_t ReadExactly(int fd, char* data, std::size_t size) {
  std::size_t total = 0;
  while (total < size) {
    const ssize_t n = ::read(fd, data + total, size - total);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("RecordJournal: read failed: ") +
                  std::strerror(errno));
    }
    total += static_cast<std::size_t>(n);
  }
  return total;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

RecordJournal::RecordJournal(std::string path, std::string model_name)
    : path_(std::move(path)), model_name_(std::move(model_name)) {
  fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  Require(fd_ >= 0, "RecordJournal: cannot open " + path_ + ": " +
                        std::strerror(errno));
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  Require(size >= 0, "RecordJournal: cannot seek " + path_);
  ::lseek(fd_, 0, SEEK_SET);

  std::ostringstream header_stream;
  WriteHeader(header_stream, kJournalMagic, kJournalVersion);
  WriteString(header_stream, model_name_);
  const std::string header = std::move(header_stream).str();

  std::string content(static_cast<std::size_t>(size), '\0');
  Require(ReadExactly(fd_, content.data(), content.size()) == content.size(),
          "RecordJournal: short read on " + path_);
  if (content.size() < header.size() &&
      content == header.substr(0, content.size())) {
    // Empty file, or a crash tore the very first write mid-header (writes
    // land as prefixes): no record was ever accepted, so reinitialize.
    replay_.dropped_bytes = content.size();
    Require(::ftruncate(fd_, 0) == 0,
            "RecordJournal: cannot reset torn header of " + path_);
    ::lseek(fd_, 0, SEEK_SET);
    AppendDurably(header);
    return;
  }

  // Existing journal: validate the header strictly (a mismatched magic,
  // version, or model name is operator error, not a torn tail), then scan
  // frames up to the first incomplete or corrupt one.
  std::istringstream in(content);
  CheckHeader(in, kJournalMagic, kJournalVersion);
  {
    const std::uint64_t name_size = ReadU64(in);
    Require(name_size <= serve::kMaxModelNameBytes,
            "RecordJournal: corrupt header in " + path_);
    std::string name(name_size, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_size));
    Require(in.good() || name_size == 0,
            "RecordJournal: corrupt header in " + path_);
    Require(name == model_name_, "RecordJournal: " + path_ +
                                     " belongs to model '" + name +
                                     "', not '" + model_name_ + "'");
  }
  std::size_t valid_end = static_cast<std::size_t>(in.tellg());

  while (valid_end + 8 <= content.size()) {
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    std::memcpy(&length, content.data() + valid_end, sizeof(length));
    std::memcpy(&crc, content.data() + valid_end + 4, sizeof(crc));
    if (length > kMaxJournalFrameBytes ||
        valid_end + 8 + length > content.size()) {
      break;  // torn or nonsense tail
    }
    const char* payload = content.data() + valid_end + 8;
    if (Crc32(payload, length) != crc) break;
    // CRC-clean payload: parse it. A parse failure here means a frame was
    // written by a different build; treat it like a torn tail too.
    try {
      std::istringstream frame(std::string(payload, length));
      const auto type = static_cast<FrameType>(ReadU8(frame));
      if (type == FrameType::kRecord) {
        replay_.unfolded.push_back(serve::ReadSignalRecord(frame));
      } else if (type == FrameType::kFoldCommit) {
        const std::uint64_t count = ReadU64(frame);
        Require(count >= 1 && count <= replay_.unfolded.size(),
                "RecordJournal: commit frame count out of range");
        std::vector<rf::SignalRecord> batch(
            replay_.unfolded.begin(),
            replay_.unfolded.begin() + static_cast<long>(count));
        replay_.unfolded.erase(
            replay_.unfolded.begin(),
            replay_.unfolded.begin() + static_cast<long>(count));
        replay_.folded_batches.push_back(std::move(batch));
      } else {
        throw Error("RecordJournal: unknown frame type");
      }
      Require(frame.peek() == std::istream::traits_type::eof(),
              "RecordJournal: trailing bytes in frame");
    } catch (const std::exception&) {
      break;
    }
    valid_end += 8 + length;
  }

  replay_.dropped_bytes = content.size() - valid_end;
  if (replay_.dropped_bytes > 0) {
    // Drop the torn tail so new frames never land after garbage (replay
    // would stop at the garbage and lose everything appended behind it).
    Require(::ftruncate(fd_, static_cast<off_t>(valid_end)) == 0,
            "RecordJournal: cannot truncate torn tail of " + path_);
  }
  ::lseek(fd_, static_cast<off_t>(valid_end), SEEK_SET);
  bytes_ = valid_end;
}

RecordJournal::~RecordJournal() {
  if (fd_ >= 0) {
    ::fdatasync(fd_);
    ::close(fd_);
  }
}

JournalReplay RecordJournal::TakeReplay() {
  return std::exchange(replay_, JournalReplay{});
}

void RecordJournal::RollBack() {
  // Restore the last durable frame boundary so the failed frames can never
  // strand later (acknowledged!) appends behind torn bytes. If even that
  // fails, fail-stop: a journal whose tail cannot be trusted must reject
  // every further append rather than ack records it may lose.
  if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET) < 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void RecordJournal::AppendDurably(const std::string& frames) {
  Require(fd_ >= 0, "RecordJournal: journal " + path_ +
                        " is broken (a failed write could not be rolled "
                        "back)");
  std::size_t written = 0;
  while (written < frames.size()) {
    const ssize_t n =
        ::write(fd_, frames.data() + written, frames.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string reason = std::strerror(errno);
      RollBack();
      throw Error("RecordJournal: write to " + path_ + " failed: " + reason);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fdatasync(fd_) != 0) {
    // Unsynced frames would still replay as accepted even though the
    // caller is about to report rejection — roll them back too.
    RollBack();
    throw Error("RecordJournal: fdatasync of " + path_ + " failed");
  }
  bytes_ += frames.size();
}

void RecordJournal::Append(std::span<const rf::SignalRecord> records) {
  std::string frames;
  for (const rf::SignalRecord& record : records) {
    AppendFrame(frames, EncodeRecordFrame(record));
  }
  AppendDurably(frames);
}

void RecordJournal::CommitFold(std::uint64_t count) {
  Require(count >= 1, "RecordJournal::CommitFold: count >= 1");
  std::string frames;
  AppendFrame(frames, EncodeCommitFrame(count));
  AppendDurably(frames);
}

}  // namespace grafics::ingest
