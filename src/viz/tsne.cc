#include "viz/tsne.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace grafics::viz {

namespace {

/// Binary-searches the Gaussian bandwidth of row i so the conditional
/// distribution P(j|i) has the requested perplexity.
void CalibrateRow(const Matrix& sq_dist, std::size_t i, double perplexity,
                  Matrix& p_conditional) {
  const std::size_t n = sq_dist.rows();
  const double target_entropy = std::log(perplexity);
  double beta = 1.0;  // 1 / (2 sigma^2)
  double beta_min = 0.0;
  double beta_max = std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < 64; ++iter) {
    double sum = 0.0;
    double weighted = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double p = std::exp(-beta * sq_dist(i, j));
      p_conditional(i, j) = p;
      sum += p;
      weighted += beta * sq_dist(i, j) * p;
    }
    if (sum <= 0.0) sum = 1e-12;
    const double entropy = std::log(sum) + weighted / sum;
    const double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) break;
    if (diff > 0.0) {
      beta_min = beta;
      beta = std::isinf(beta_max) ? beta * 2.0 : (beta + beta_max) / 2.0;
    } else {
      beta_max = beta;
      beta = (beta + beta_min) / 2.0;
    }
  }
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j != i) sum += p_conditional(i, j);
  }
  if (sum <= 0.0) sum = 1e-12;
  for (std::size_t j = 0; j < n; ++j) {
    if (j != i) p_conditional(i, j) /= sum;
  }
}

}  // namespace

Matrix TsneEmbed(const Matrix& points, const TsneConfig& config) {
  const std::size_t n = points.rows();
  Require(n >= 4, "TsneEmbed: need at least 4 points");
  Require(config.perplexity * 3.0 < static_cast<double>(n),
          "TsneEmbed: perplexity too large for n");

  // Pairwise squared distances in the input space.
  Matrix sq_dist(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = SquaredL2Distance(points.Row(i), points.Row(j));
      sq_dist(i, j) = d;
      sq_dist(j, i) = d;
    }
  }

  // Symmetrized affinities P.
  Matrix p_conditional(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    CalibrateRow(sq_dist, i, config.perplexity, p_conditional);
  }
  Matrix p(n, n);
  const double inv_2n = 1.0 / (2.0 * static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      p(i, j) = std::max((p_conditional(i, j) + p_conditional(j, i)) * inv_2n,
                         1e-12);
    }
  }

  // Initialize output with small Gaussian noise.
  Rng rng(config.seed);
  Matrix y = Matrix::RandomNormal(n, config.output_dim, rng, 1e-4);
  Matrix velocity(n, config.output_dim);
  Matrix gains(n, config.output_dim, 1.0);

  Matrix q_num(n, n);  // unnormalized Student-t affinities
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iters ? config.early_exaggeration : 1.0;
    const double momentum = iter < config.momentum_switch_iter
                                ? config.initial_momentum
                                : config.final_momentum;

    double q_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      q_num(i, i) = 0.0;
      for (std::size_t j = i + 1; j < n; ++j) {
        const double q =
            1.0 / (1.0 + SquaredL2Distance(y.Row(i), y.Row(j)));
        q_num(i, j) = q;
        q_num(j, i) = q;
        q_sum += 2.0 * q;
      }
    }
    q_sum = std::max(q_sum, 1e-12);

    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> grad(config.output_dim, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double q = std::max(q_num(i, j) / q_sum, 1e-12);
        const double coeff =
            4.0 * (exaggeration * p(i, j) - q) * q_num(i, j);
        for (std::size_t c = 0; c < config.output_dim; ++c) {
          grad[c] += coeff * (y(i, c) - y(j, c));
        }
      }
      for (std::size_t c = 0; c < config.output_dim; ++c) {
        // Adaptive gains as in the reference implementation.
        const bool same_sign = (grad[c] > 0.0) == (velocity(i, c) > 0.0);
        gains(i, c) = std::max(
            0.01, same_sign ? gains(i, c) * 0.8 : gains(i, c) + 0.2);
        velocity(i, c) = momentum * velocity(i, c) -
                         config.learning_rate * gains(i, c) * grad[c];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      Axpy(1.0, velocity.Row(i), y.Row(i));
    }
    // Re-center to keep the embedding bounded.
    std::vector<double> mean(config.output_dim, 0.0);
    for (std::size_t i = 0; i < n; ++i) Axpy(1.0, y.Row(i), mean);
    Scale(mean, 1.0 / static_cast<double>(n));
    for (std::size_t i = 0; i < n; ++i) Axpy(-1.0, mean, y.Row(i));
  }
  return y;
}

}  // namespace grafics::viz
