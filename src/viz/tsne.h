// Exact t-SNE (van der Maaten & Hinton, JMLR 2008).
//
// The paper visualizes embedding quality with t-SNE (Figs. 6 and 8). This is
// the exact O(n^2) variant with perplexity-calibrated Gaussian affinities,
// early exaggeration, and momentum gradient descent — sufficient for the
// few-thousand-point exports the figures use.
#pragma once

#include <cstdint>

#include "common/matrix.h"

namespace grafics::viz {

struct TsneConfig {
  std::size_t output_dim = 2;
  double perplexity = 30.0;
  std::size_t iterations = 500;
  double learning_rate = 200.0;
  double early_exaggeration = 12.0;
  std::size_t exaggeration_iters = 100;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  std::size_t momentum_switch_iter = 250;
  std::uint64_t seed = 42;
};

/// Embeds the rows of `points` into `config.output_dim` dimensions.
Matrix TsneEmbed(const Matrix& points, const TsneConfig& config = {});

}  // namespace grafics::viz
