// Principal component analysis via the Jacobi eigensolver.
//
// Used to project embeddings to 2-D/3-D for the Fig. 6 / Fig. 8 style
// visual exports, and as the t-SNE initialization.
#pragma once

#include <cstddef>

#include "common/matrix.h"

namespace grafics::viz {

/// Projects the rows of `points` onto their top `dim` principal components.
/// Returns an (n, dim) matrix. Requires dim <= points.cols().
Matrix PcaProject(const Matrix& points, std::size_t dim);

}  // namespace grafics::viz
