#include "viz/pca.h"

#include "common/eigen.h"
#include "common/error.h"

namespace grafics::viz {

Matrix PcaProject(const Matrix& points, std::size_t dim) {
  Require(dim >= 1 && dim <= points.cols(),
          "PcaProject: dim must be in [1, cols]");
  Require(points.rows() >= 2, "PcaProject: need at least two points");
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();

  // Center.
  std::vector<double> mean(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) Axpy(1.0, points.Row(r), mean);
  Scale(mean, 1.0 / static_cast<double>(n));
  Matrix centered = points;
  for (std::size_t r = 0; r < n; ++r) Axpy(-1.0, mean, centered.Row(r));

  // Covariance (d x d) and top eigenvectors.
  Matrix cov = centered.Transposed().MatMul(centered);
  cov *= 1.0 / static_cast<double>(n - 1);
  const EigenDecomposition eig = JacobiEigenDecomposition(cov);

  Matrix projection(d, dim);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      projection(r, c) = eig.eigenvectors(r, c);
    }
  }
  return centered.MatMul(projection);
}

}  // namespace grafics::viz
