#include "rf/dataset.h"

#include <algorithm>
#include <unordered_map>

#include "common/csv.h"
#include "common/error.h"

namespace grafics::rf {

const SignalRecord& Dataset::record(std::size_t i) const {
  Require(i < records_.size(), "Dataset::record: index out of range");
  return records_[i];
}

std::vector<MacAddress> Dataset::DistinctMacs() const {
  std::unordered_set<MacAddress> seen;
  std::vector<MacAddress> macs;
  for (const SignalRecord& r : records_) {
    for (const Observation& o : r.observations()) {
      if (seen.insert(o.mac).second) macs.push_back(o.mac);
    }
  }
  return macs;
}

std::vector<FloorId> Dataset::Floors() const {
  std::unordered_set<FloorId> seen;
  std::vector<FloorId> floors;
  for (const SignalRecord& r : records_) {
    if (r.floor() && seen.insert(*r.floor()).second) {
      floors.push_back(*r.floor());
    }
  }
  std::sort(floors.begin(), floors.end());
  return floors;
}

std::map<FloorId, std::size_t> Dataset::RecordsPerFloor() const {
  std::map<FloorId, std::size_t> counts;
  for (const SignalRecord& r : records_) {
    if (r.floor()) ++counts[*r.floor()];
  }
  return counts;
}

std::size_t Dataset::LabeledCount() const {
  std::size_t count = 0;
  for (const SignalRecord& r : records_) {
    if (r.is_labeled()) ++count;
  }
  return count;
}

std::vector<std::optional<FloorId>> Dataset::KeepLabelsPerFloor(
    std::size_t labels_per_floor, Rng& rng) {
  std::vector<std::optional<FloorId>> ground_truth(records_.size());
  std::unordered_map<FloorId, std::vector<std::size_t>> by_floor;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    ground_truth[i] = records_[i].floor();
    if (records_[i].floor()) by_floor[*records_[i].floor()].push_back(i);
  }
  for (auto& [floor, indices] : by_floor) {
    rng.Shuffle(indices);
    for (std::size_t k = labels_per_floor; k < indices.size(); ++k) {
      records_[indices[k]].set_floor(std::nullopt);
    }
  }
  return ground_truth;
}

std::pair<Dataset, Dataset> Dataset::TrainTestSplit(double train_ratio,
                                                    Rng& rng) const {
  Require(train_ratio > 0.0 && train_ratio < 1.0,
          "Dataset::TrainTestSplit: ratio must be in (0,1)");
  std::vector<std::size_t> order(records_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const auto train_count = static_cast<std::size_t>(
      train_ratio * static_cast<double>(records_.size()));
  Dataset train(building_name_ + "/train");
  Dataset test(building_name_ + "/test");
  for (std::size_t k = 0; k < order.size(); ++k) {
    (k < train_count ? train : test).Add(records_[order[k]]);
  }
  return {std::move(train), std::move(test)};
}

void Dataset::RetainMacFraction(double fraction, Rng& rng) {
  Require(fraction > 0.0 && fraction <= 1.0,
          "Dataset::RetainMacFraction: fraction must be in (0,1]");
  std::vector<MacAddress> macs = DistinctMacs();
  const auto keep_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction *
                                  static_cast<double>(macs.size())));
  const std::vector<std::size_t> keep_indices =
      rng.SampleWithoutReplacement(macs.size(), keep_count);
  std::unordered_set<MacAddress> keep;
  keep.reserve(keep_count);
  for (std::size_t idx : keep_indices) keep.insert(macs[idx]);
  for (SignalRecord& r : records_) {
    r.RemoveObservationsIf(
        [&](const Observation& o) { return !keep.contains(o.mac); });
  }
  std::erase_if(records_, [](const SignalRecord& r) { return r.empty(); });
}

void Dataset::SaveCsv(const std::string& path) const {
  std::vector<CsvRow> rows;
  rows.reserve(records_.size());
  for (const SignalRecord& r : records_) {
    CsvRow row;
    row.push_back(r.floor() ? std::to_string(*r.floor()) : "");
    for (const Observation& o : r.observations()) {
      row.push_back(o.mac.ToString());
      row.push_back(std::to_string(o.rssi_dbm));
    }
    rows.push_back(std::move(row));
  }
  WriteCsvFile(path, rows);
}

Dataset Dataset::LoadCsv(const std::string& path, std::string building_name) {
  Dataset ds(std::move(building_name));
  for (const CsvRow& row : ReadCsvFile(path)) {
    Require(!row.empty() && row.size() % 2 == 1,
            "Dataset::LoadCsv: malformed row in " + path);
    SignalRecord record;
    if (!row[0].empty()) record.set_floor(std::stoi(row[0]));
    for (std::size_t i = 1; i + 1 < row.size(); i += 2) {
      record.Add(MacAddress::Parse(row[i]), std::stod(row[i + 1]));
    }
    ds.Add(std::move(record));
  }
  return ds;
}

}  // namespace grafics::rf
