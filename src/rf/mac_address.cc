#include "rf/mac_address.h"

#include <cctype>

#include "common/error.h"

namespace grafics::rf {

MacAddress::MacAddress(std::uint64_t bits) : bits_(bits) {
  Require((bits >> 48) == 0, "MacAddress: value exceeds 48 bits");
}

namespace {
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

MacAddress MacAddress::Parse(const std::string& text) {
  Require(text.size() == 17, "MacAddress::Parse: expected aa:bb:cc:dd:ee:ff");
  std::uint64_t bits = 0;
  for (int octet = 0; octet < 6; ++octet) {
    const std::size_t pos = static_cast<std::size_t>(octet) * 3;
    const int hi = HexValue(text[pos]);
    const int lo = HexValue(text[pos + 1]);
    Require(hi >= 0 && lo >= 0, "MacAddress::Parse: invalid hex digit");
    if (octet < 5) {
      Require(text[pos + 2] == ':', "MacAddress::Parse: expected ':'");
    }
    bits = (bits << 8) | static_cast<std::uint64_t>(hi * 16 + lo);
  }
  return MacAddress(bits);
}

std::string MacAddress::ToString() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(17, ':');
  for (int octet = 0; octet < 6; ++octet) {
    const auto byte =
        static_cast<unsigned>((bits_ >> (8 * (5 - octet))) & 0xff);
    out[static_cast<std::size_t>(octet) * 3] = kHex[byte >> 4];
    out[static_cast<std::size_t>(octet) * 3 + 1] = kHex[byte & 0xf];
  }
  return out;
}

}  // namespace grafics::rf
