#include "rf/signal_record.h"

#include <algorithm>
#include <unordered_set>

#include "common/error.h"

namespace grafics::rf {

SignalRecord::SignalRecord(std::vector<Observation> observations,
                           std::optional<FloorId> floor)
    : observations_(std::move(observations)), floor_(floor) {
  std::unordered_set<MacAddress> seen;
  for (const Observation& o : observations_) {
    Require(seen.insert(o.mac).second,
            "SignalRecord: duplicate MAC " + o.mac.ToString());
  }
}

void SignalRecord::Add(MacAddress mac, double rssi_dbm) {
  Require(!Contains(mac), "SignalRecord::Add: duplicate MAC " + mac.ToString());
  observations_.push_back({mac, rssi_dbm});
}

std::optional<double> SignalRecord::RssiFor(MacAddress mac) const {
  for (const Observation& o : observations_) {
    if (o.mac == mac) return o.rssi_dbm;
  }
  return std::nullopt;
}

bool SignalRecord::Contains(MacAddress mac) const {
  return RssiFor(mac).has_value();
}

double SignalRecord::OverlapRatio(const SignalRecord& other) const {
  if (observations_.empty() && other.observations_.empty()) return 0.0;
  std::unordered_set<MacAddress> mine;
  mine.reserve(observations_.size());
  for (const Observation& o : observations_) mine.insert(o.mac);
  std::size_t intersection = 0;
  std::unordered_set<MacAddress> all = mine;
  for (const Observation& o : other.observations_) {
    if (mine.contains(o.mac)) ++intersection;
    all.insert(o.mac);
  }
  return static_cast<double>(intersection) / static_cast<double>(all.size());
}

}  // namespace grafics::rf
