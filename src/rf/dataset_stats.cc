#include "rf/dataset_stats.h"

#include <utility>

namespace grafics::rf {

std::vector<double> MacsPerRecord(const Dataset& dataset) {
  std::vector<double> counts;
  counts.reserve(dataset.size());
  for (const SignalRecord& r : dataset.records()) {
    counts.push_back(static_cast<double>(r.size()));
  }
  return counts;
}

std::vector<double> PairwiseOverlapRatios(const Dataset& dataset,
                                          std::size_t max_pairs, Rng& rng) {
  const std::size_t n = dataset.size();
  std::vector<double> ratios;
  if (n < 2) return ratios;
  const std::size_t total_pairs = n * (n - 1) / 2;
  if (total_pairs <= max_pairs) {
    ratios.reserve(total_pairs);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        ratios.push_back(dataset.record(i).OverlapRatio(dataset.record(j)));
      }
    }
    return ratios;
  }
  ratios.reserve(max_pairs);
  for (std::size_t k = 0; k < max_pairs; ++k) {
    std::size_t i = rng.NextIndex(n);
    std::size_t j = rng.NextIndex(n - 1);
    if (j >= i) ++j;  // uniform unordered pair (i != j)
    ratios.push_back(dataset.record(i).OverlapRatio(dataset.record(j)));
  }
  return ratios;
}

RecordStats ComputeRecordStats(const Dataset& dataset, std::size_t max_pairs,
                               Rng& rng) {
  RecordStats stats;
  const std::vector<double> macs = MacsPerRecord(dataset);
  stats.macs_per_record = Summarize(macs);
  stats.fraction_records_below_40_macs = FractionAtOrBelow(macs, 40.0);
  const std::vector<double> overlaps =
      PairwiseOverlapRatios(dataset, max_pairs, rng);
  stats.fraction_pairs_overlap_below_half =
      FractionAtOrBelow(overlaps, 0.5);
  return stats;
}

}  // namespace grafics::rf
