// A crowdsourced RF dataset for one building, plus the label/split
// manipulations every experiment in the paper performs on it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "rf/signal_record.h"

namespace grafics::rf {

/// Ordered collection of signal records from a single building.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::string building_name)
      : building_name_(std::move(building_name)) {}

  const std::string& building_name() const { return building_name_; }
  void set_building_name(std::string name) { building_name_ = std::move(name); }

  const std::vector<SignalRecord>& records() const { return records_; }
  std::vector<SignalRecord>& mutable_records() { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const SignalRecord& record(std::size_t i) const;

  void Add(SignalRecord record) { records_.push_back(std::move(record)); }

  /// Distinct MACs across all records.
  std::vector<MacAddress> DistinctMacs() const;
  std::size_t DistinctMacCount() const { return DistinctMacs().size(); }

  /// Distinct floor labels present (sorted ascending).
  std::vector<FloorId> Floors() const;

  /// Number of records per floor label (unlabeled records are skipped).
  std::map<FloorId, std::size_t> RecordsPerFloor() const;

  /// Count of labeled records.
  std::size_t LabeledCount() const;

  /// Randomly keeps the floor label on at most `labels_per_floor` records per
  /// floor and strips it from the rest. The ground-truth labels are returned
  /// (index-aligned with records) so evaluation can still score predictions.
  /// Records whose ground truth is unknown get std::nullopt.
  std::vector<std::optional<FloorId>> KeepLabelsPerFloor(
      std::size_t labels_per_floor, Rng& rng);

  /// Shuffles records and splits into (train, test) by `train_ratio`.
  /// Both halves keep their labels; callers typically follow with
  /// KeepLabelsPerFloor on the training half.
  std::pair<Dataset, Dataset> TrainTestSplit(double train_ratio,
                                             Rng& rng) const;

  /// Keeps only a random `fraction` of distinct MACs; observations of dropped
  /// MACs are removed from every record, and records left empty are dropped.
  /// Models the sparse-AP robustness study (paper Fig. 17).
  void RetainMacFraction(double fraction, Rng& rng);

  /// CSV round-trip. Row format:
  ///   floor(,empty if unlabeled),mac1,rss1,mac2,rss2,...
  void SaveCsv(const std::string& path) const;
  static Dataset LoadCsv(const std::string& path, std::string building_name);

 private:
  std::string building_name_;
  std::vector<SignalRecord> records_;
};

}  // namespace grafics::rf
