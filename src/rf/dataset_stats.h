// Dataset-level statistics reproducing the paper's Fig. 1 analysis:
// the CDF of MACs per record and the CDF of pairwise MAC overlap ratios.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "rf/dataset.h"

namespace grafics::rf {

/// Number of MACs in every record, as doubles (ready for EmpiricalCdf).
std::vector<double> MacsPerRecord(const Dataset& dataset);

/// Overlap ratios (|A∩B|/|A∪B|) for up to `max_pairs` uniformly sampled
/// unordered record pairs. With max_pairs >= n(n-1)/2 all pairs are used.
std::vector<double> PairwiseOverlapRatios(const Dataset& dataset,
                                          std::size_t max_pairs, Rng& rng);

/// Headline Fig. 1 shape numbers for assertions and the bench report.
struct RecordStats {
  Summary macs_per_record;
  double fraction_records_below_40_macs = 0.0;  // paper: "most" records
  double fraction_pairs_overlap_below_half = 0.0;  // paper: 78 %
};

RecordStats ComputeRecordStats(const Dataset& dataset, std::size_t max_pairs,
                               Rng& rng);

}  // namespace grafics::rf
