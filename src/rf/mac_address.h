// Strongly-typed 48-bit MAC address.
//
// Crowdsourced RF records identify access points by the MAC address of each
// sensed BSSID. We store the 48 bits in a uint64 value type with parsing and
// formatting of the conventional "aa:bb:cc:dd:ee:ff" form.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace grafics::rf {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  /// Constructs from a raw 48-bit value; bits above 48 must be zero.
  explicit MacAddress(std::uint64_t bits);

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive). Throws grafics::Error on
  /// malformed input.
  static MacAddress Parse(const std::string& text);

  /// Formats as lower-case "aa:bb:cc:dd:ee:ff".
  std::string ToString() const;

  std::uint64_t bits() const { return bits_; }

  auto operator<=>(const MacAddress&) const = default;

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace grafics::rf

template <>
struct std::hash<grafics::rf::MacAddress> {
  std::size_t operator()(const grafics::rf::MacAddress& mac) const noexcept {
    // Finalizer of SplitMix64: excellent avalanche for sequential MACs.
    std::uint64_t z = mac.bits() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
