// A single crowdsourced RF measurement record.
//
// Each record is a variable-length list of (MAC, RSS dBm) observations plus
// an optional floor label — most crowdsourced records are unlabeled, which is
// the central premise of the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rf/mac_address.h"

namespace grafics::rf {

/// Floor index. Ground floor is 0; basements are negative.
using FloorId = int;

struct Observation {
  MacAddress mac;
  double rssi_dbm = 0.0;

  bool operator==(const Observation&) const = default;
};

class SignalRecord {
 public:
  SignalRecord() = default;
  explicit SignalRecord(std::vector<Observation> observations,
                        std::optional<FloorId> floor = std::nullopt);

  const std::vector<Observation>& observations() const {
    return observations_;
  }
  std::size_t size() const { return observations_.size(); }
  bool empty() const { return observations_.empty(); }

  std::optional<FloorId> floor() const { return floor_; }
  bool is_labeled() const { return floor_.has_value(); }
  void set_floor(std::optional<FloorId> floor) { floor_ = floor; }

  /// Adds one observation. Throws if `mac` already appears in the record.
  void Add(MacAddress mac, double rssi_dbm);

  /// RSS for `mac` if observed.
  std::optional<double> RssiFor(MacAddress mac) const;
  bool Contains(MacAddress mac) const;

  /// Jaccard overlap of the MAC sets of two records: |A∩B| / |A∪B|
  /// (the "overlap ratio" of the paper's Fig. 1b). Zero when both empty.
  double OverlapRatio(const SignalRecord& other) const;

  /// Removes observations whose MAC fails the predicate; returns #removed.
  template <typename Predicate>
  std::size_t RemoveObservationsIf(Predicate&& drop) {
    const std::size_t before = observations_.size();
    std::erase_if(observations_,
                  [&](const Observation& o) { return drop(o); });
    return before - observations_.size();
  }

  bool operator==(const SignalRecord&) const = default;

 private:
  std::vector<Observation> observations_;
  std::optional<FloorId> floor_;
};

}  // namespace grafics::rf
