#include "synth/path_loss.h"

#include <cmath>
#include <cstdlib>

namespace grafics::synth {

double PathLossModel::MeanRssi(const AccessPoint& ap, const Point& receiver,
                               int receiver_floor) const {
  const double dx = ap.position.x - receiver.x;
  const double dy = ap.position.y - receiver.y;
  const double dz = ap.position.z - receiver.z;
  // Clamp below 1 m: inside the reference distance the model is not valid
  // and the received power saturates at the 1 m reference power.
  const double d = std::max(1.0, std::sqrt(dx * dx + dy * dy + dz * dz));
  const int floors_crossed = std::abs(ap.floor - receiver_floor);
  return ap.tx_power_dbm -
         10.0 * params_.path_loss_exponent * std::log10(d) -
         params_.floor_attenuation_db * static_cast<double>(floors_crossed);
}

double PathLossModel::SampleRssi(const AccessPoint& ap, const Point& receiver,
                                 int receiver_floor, Rng& rng) const {
  return MeanRssi(ap, receiver, receiver_floor) +
         rng.Normal(0.0, params_.shadowing_stddev_db);
}

}  // namespace grafics::synth
