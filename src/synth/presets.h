// Fleet presets mirroring the two corpora the paper evaluates on.
//
// The Microsoft Kaggle corpus covers 204 Hangzhou buildings from 2 to 12
// floors (paper Fig. 9); the Hong Kong corpus covers five large facilities
// (two office towers, a hospital, two malls). The presets draw building
// specs from the ranges Fig. 9 plots, with ~1000 records per floor as the
// paper states. Fleet size is a parameter so tests/benches can trade corpus
// size for runtime; the default bench configuration records how many were
// used in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "synth/generator.h"

namespace grafics::synth {

/// Fully-specified synthetic building: spec + channel + crowdsourcing knobs.
struct BuildingConfig {
  BuildingSpec spec;
  PathLossParams channel;
  CrowdsourceParams crowd;
  std::uint64_t seed = 0;

  BuildingSimulator MakeSimulator() const {
    return BuildingSimulator(spec, channel, crowd, seed);
  }
};

/// `count` buildings shaped like the Microsoft-Kaggle corpus:
/// floors ~ U{2..12}, per-floor area 1200–8000 m^2, AP density matched to
/// Fig. 9's MAC counts, records_per_floor ~= 1000.
std::vector<BuildingConfig> MicrosoftLikeFleet(std::size_t count,
                                               std::uint64_t seed,
                                               int records_per_floor = 1000);

/// The five Hong-Kong facilities: two office towers, one hospital, two
/// shopping malls — larger, denser, taller than the Kaggle median.
std::vector<BuildingConfig> HongKongFleet(std::uint64_t seed,
                                          int records_per_floor = 1000);

/// The single dense mall floor of the paper's Fig. 1 (8 274 records,
/// 805 distinct MACs on one floor).
BuildingConfig MallFloorConfig(std::uint64_t seed);

/// The three-story campus building used by Figs. 6–8.
BuildingConfig CampusBuildingConfig(std::uint64_t seed,
                                    int records_per_floor = 200);

}  // namespace grafics::synth
