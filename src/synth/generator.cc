#include "synth/generator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace grafics::synth {

namespace {
// Distinct 48-bit MAC space per building so multi-building fleets never
// collide: the building hash seeds the upper bits.
std::uint64_t MacBase(std::uint64_t seed) {
  std::uint64_t s = seed;
  return (SplitMix64(s) & 0xffff00000000ULL);
}
}  // namespace

BuildingSimulator::BuildingSimulator(BuildingSpec spec, PathLossParams channel,
                                     CrowdsourceParams crowd,
                                     std::uint64_t seed)
    : spec_(std::move(spec)),
      channel_(channel),
      crowd_(crowd),
      rng_(seed),
      next_mac_bits_(MacBase(seed)) {
  Require(spec_.num_floors >= 1, "BuildingSimulator: need >= 1 floor");
  Require(spec_.aps_per_floor >= 1, "BuildingSimulator: need >= 1 AP/floor");
  aps_.reserve(static_cast<std::size_t>(spec_.num_floors) *
               static_cast<std::size_t>(spec_.aps_per_floor));
  for (int floor = 0; floor < spec_.num_floors; ++floor) {
    for (int k = 0; k < spec_.aps_per_floor; ++k) {
      AccessPoint ap;
      ap.mac_bits = next_mac_bits_++;
      ap.floor = floor;
      ap.position = {rng_.Uniform(0.0, spec_.floor_width_m),
                     rng_.Uniform(0.0, spec_.floor_depth_m),
                     static_cast<double>(floor) * spec_.floor_height_m + 2.5};
      ap.tx_power_dbm = rng_.Uniform(-38.0, -30.0);  // AP model diversity
      aps_.push_back(ap);
    }
    for (int h = 0; h < crowd_.hotspots_per_floor; ++h) {
      hotspots_.push_back({rng_.Uniform(0.0, spec_.floor_width_m),
                           rng_.Uniform(0.0, spec_.floor_depth_m),
                           static_cast<double>(floor) * spec_.floor_height_m +
                               1.2});
    }
  }
}

Point BuildingSimulator::RandomPositionOnFloor(int floor) {
  const double z = static_cast<double>(floor) * spec_.floor_height_m + 1.2;
  if (crowd_.hotspots_per_floor > 0 && rng_.Bernoulli(crowd_.hotspot_fraction)) {
    const std::size_t base =
        static_cast<std::size_t>(floor) *
        static_cast<std::size_t>(crowd_.hotspots_per_floor);
    const Point& hotspot =
        hotspots_[base + rng_.NextIndex(
                             static_cast<std::uint64_t>(
                                 crowd_.hotspots_per_floor))];
    return {std::clamp(hotspot.x + rng_.Normal(0.0, 4.0), 0.0,
                       spec_.floor_width_m),
            std::clamp(hotspot.y + rng_.Normal(0.0, 4.0), 0.0,
                       spec_.floor_depth_m),
            z};
  }
  return {rng_.Uniform(0.0, spec_.floor_width_m),
          rng_.Uniform(0.0, spec_.floor_depth_m), z};
}

rf::SignalRecord BuildingSimulator::MeasureAtInternal(const Point& position,
                                                      int floor) {
  // Per-record device characteristics.
  const double device_bias = rng_.Normal(0.0, crowd_.device_bias_stddev_db);
  const auto scan_cap = static_cast<std::size_t>(
      rng_.UniformInt(crowd_.scan_cap_min, crowd_.scan_cap_max));

  std::vector<rf::Observation> detected;
  for (const AccessPoint& ap : aps_) {
    double rssi = channel_.SampleRssi(ap, position, floor, rng_) +
                  device_bias +
                  rng_.Normal(0.0, crowd_.observation_noise_db);
    if (!channel_.Detectable(rssi)) continue;
    if (rng_.Bernoulli(crowd_.miss_probability)) continue;
    rssi = std::clamp(rssi, -100.0, -20.0);  // radio reporting range
    detected.push_back({rf::MacAddress(ap.mac_bits), rssi});
  }
  // Limited scan capability: keep the scan_cap strongest.
  if (detected.size() > scan_cap) {
    std::partial_sort(detected.begin(),
                      detected.begin() + static_cast<std::ptrdiff_t>(scan_cap),
                      detected.end(),
                      [](const rf::Observation& a, const rf::Observation& b) {
                        return a.rssi_dbm > b.rssi_dbm;
                      });
    detected.resize(scan_cap);
  }
  return rf::SignalRecord(std::move(detected), floor);
}

rf::SignalRecord BuildingSimulator::MeasureAt(const Point& position,
                                              int floor) {
  return MeasureAtInternal(position, floor);
}

std::vector<rf::SignalRecord> BuildingSimulator::GenerateTrajectory(
    int floor, std::size_t num_scans, double step_m) {
  Require(floor >= 0 && floor < spec_.num_floors,
          "GenerateTrajectory: floor out of range");
  Require(step_m > 0.0, "GenerateTrajectory: step must be positive");
  std::vector<rf::SignalRecord> trajectory;
  trajectory.reserve(num_scans);
  Point position = RandomPositionOnFloor(floor);
  double heading = rng_.Uniform(0.0, 6.283185307179586);
  while (trajectory.size() < num_scans) {
    rf::SignalRecord scan = MeasureAtInternal(position, floor);
    if (!scan.empty()) trajectory.push_back(std::move(scan));
    // Correlated random walk: small heading perturbations, wall bounces.
    heading += rng_.Normal(0.0, 0.5);
    position.x += step_m * std::cos(heading);
    position.y += step_m * std::sin(heading);
    if (position.x < 0.0 || position.x > spec_.floor_width_m ||
        position.y < 0.0 || position.y > spec_.floor_depth_m) {
      heading += 3.14159265358979;  // turn around at walls
      position.x = std::clamp(position.x, 0.0, spec_.floor_width_m);
      position.y = std::clamp(position.y, 0.0, spec_.floor_depth_m);
    }
  }
  return trajectory;
}

std::vector<rf::SignalRecord> BuildingSimulator::GenerateMultiFloorTrajectory(
    int start_floor, int end_floor, std::size_t scans_per_floor,
    double step_m) {
  Require(start_floor >= 0 && start_floor < spec_.num_floors &&
              end_floor >= 0 && end_floor < spec_.num_floors,
          "GenerateMultiFloorTrajectory: floor out of range");
  std::vector<rf::SignalRecord> trajectory;
  const int direction = end_floor >= start_floor ? 1 : -1;
  for (int floor = start_floor; floor != end_floor + direction;
       floor += direction) {
    auto leg = GenerateTrajectory(floor, scans_per_floor, step_m);
    for (auto& scan : leg) trajectory.push_back(std::move(scan));
  }
  return trajectory;
}

std::vector<rf::SignalRecord> BuildingSimulator::GenerateRecordsOnFloor(
    int floor, std::size_t count) {
  Require(floor >= 0 && floor < spec_.num_floors,
          "GenerateRecordsOnFloor: floor out of range");
  std::vector<rf::SignalRecord> records;
  records.reserve(count);
  while (records.size() < count) {
    rf::SignalRecord record =
        MeasureAtInternal(RandomPositionOnFloor(floor), floor);
    // Empty scans happen in reality but carry no information; redraw.
    if (!record.empty()) records.push_back(std::move(record));
  }
  return records;
}

rf::Dataset BuildingSimulator::GenerateDataset() {
  rf::Dataset dataset(spec_.name);
  for (int floor = 0; floor < spec_.num_floors; ++floor) {
    for (rf::SignalRecord& record : GenerateRecordsOnFloor(
             floor, static_cast<std::size_t>(spec_.records_per_floor))) {
      dataset.Add(std::move(record));
    }
  }
  return dataset;
}

std::size_t BuildingSimulator::RemoveRandomAps(std::size_t count) {
  const std::size_t removed = std::min(count, aps_.size());
  for (std::size_t k = 0; k < removed; ++k) {
    const std::size_t i = rng_.NextIndex(aps_.size());
    aps_[i] = aps_.back();
    aps_.pop_back();
  }
  return removed;
}

void BuildingSimulator::InstallAps(std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    AccessPoint ap;
    ap.mac_bits = next_mac_bits_++;
    ap.floor = static_cast<int>(
        rng_.NextIndex(static_cast<std::uint64_t>(spec_.num_floors)));
    ap.position = {rng_.Uniform(0.0, spec_.floor_width_m),
                   rng_.Uniform(0.0, spec_.floor_depth_m),
                   static_cast<double>(ap.floor) * spec_.floor_height_m + 2.5};
    ap.tx_power_dbm = rng_.Uniform(-38.0, -30.0);
    aps_.push_back(ap);
  }
}

}  // namespace grafics::synth
