// Log-distance path-loss channel with per-floor attenuation.
//
// The standard multi-wall multi-floor indoor propagation model (the same
// family ViFi [29] fits from data):
//
//   RSS(d, k) = P1m − 10·n·log10(d / 1 m) − k·FAF + X_sigma
//
// where d is 3-D distance, n the path-loss exponent, k the number of floor
// slabs crossed, FAF the floor attenuation factor, and X_sigma log-normal
// shadowing. This is what lets the synthetic corpus reproduce the paper's
// record sparsity and overlap statistics.
#pragma once

#include "common/rng.h"
#include "synth/building.h"

namespace grafics::synth {

struct PathLossParams {
  double path_loss_exponent = 2.8;
  double floor_attenuation_db = 15.0;
  double shadowing_stddev_db = 3.0;
  double detection_threshold_dbm = -92.0;
};

class PathLossModel {
 public:
  explicit PathLossModel(PathLossParams params) : params_(params) {}

  const PathLossParams& params() const { return params_; }

  /// Mean received power (dBm) from `ap` at `receiver`, no shadowing.
  double MeanRssi(const AccessPoint& ap, const Point& receiver,
                  int receiver_floor) const;

  /// One stochastic measurement (mean + shadowing draw).
  double SampleRssi(const AccessPoint& ap, const Point& receiver,
                    int receiver_floor, Rng& rng) const;

  bool Detectable(double rssi_dbm) const {
    return rssi_dbm >= params_.detection_threshold_dbm;
  }

 private:
  PathLossParams params_;
};

}  // namespace grafics::synth
