// Crowdsourced-measurement generator for a synthetic building.
//
// Models every heterogeneity source the paper's Sec. III-A lists:
//  * limited AP coverage        -> path-loss detection threshold
//  * device heterogeneity       -> per-record RSS bias + per-device scan cap
//  * measurement noise          -> shadowing + per-observation jitter
//  * limited scanning capability-> top-K strongest truncation
//  * environmental change       -> AP churn (RemoveAps / InstallAps)
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "rf/dataset.h"
#include "synth/building.h"
#include "synth/path_loss.h"

namespace grafics::synth {

struct CrowdsourceParams {
  /// Per-record device bias stddev (dB): cheap vs calibrated radios.
  double device_bias_stddev_db = 4.0;
  /// Extra per-observation jitter beyond shadowing (dB).
  double observation_noise_db = 1.5;
  /// Scan-capability cap: a device reports at most K strongest MACs,
  /// K ~ U{scan_cap_min .. scan_cap_max}.
  int scan_cap_min = 15;
  int scan_cap_max = 45;
  /// Probability an otherwise-detectable observation is missed entirely
  /// (collisions, scan timing).
  double miss_probability = 0.15;
  /// Fraction of records drawn near "hotspots" (shop entrances, check-ins)
  /// instead of uniformly; crowdsourced data is spatially bursty.
  double hotspot_fraction = 0.4;
  int hotspots_per_floor = 5;
};

/// A synthetic building: geometry + deployed APs + channel.
class BuildingSimulator {
 public:
  /// Deploys APs uniformly at random on every floor. Deterministic in seed.
  BuildingSimulator(BuildingSpec spec, PathLossParams channel,
                    CrowdsourceParams crowd, std::uint64_t seed);

  const BuildingSpec& spec() const { return spec_; }
  const std::vector<AccessPoint>& access_points() const { return aps_; }
  std::size_t ApCount() const { return aps_.size(); }

  /// Generates `spec.records_per_floor` labeled records on every floor.
  /// All records carry their ground-truth floor label; experiments strip
  /// labels afterwards via Dataset::KeepLabelsPerFloor.
  rf::Dataset GenerateDataset();

  /// Generates `count` records on one floor (for targeted tests/benches).
  std::vector<rf::SignalRecord> GenerateRecordsOnFloor(int floor,
                                                       std::size_t count);

  /// One record at an explicit position (for online-inference scenarios).
  rf::SignalRecord MeasureAt(const Point& position, int floor);

  /// A trajectory of scans from one user walking on `floor`: a bounded
  /// random walk with `step_m` meters between consecutive scans. Unlike the
  /// sporadic crowdsourced records, consecutive trajectory records are
  /// spatially correlated (the setting RNN baselines [13] assume).
  std::vector<rf::SignalRecord> GenerateTrajectory(int floor,
                                                   std::size_t num_scans,
                                                   double step_m = 2.0);

  /// A trajectory that rides the elevator/stairs: walks `scans_per_floor`
  /// scans on each floor from `start_floor` to `end_floor` inclusive.
  /// Exercises floor-transition detection scenarios.
  std::vector<rf::SignalRecord> GenerateMultiFloorTrajectory(
      int start_floor, int end_floor, std::size_t scans_per_floor,
      double step_m = 2.0);

  /// Environmental churn: removes `count` random APs. Returns #removed.
  std::size_t RemoveRandomAps(std::size_t count);
  /// Installs `count` new APs on random floors (fresh MACs).
  void InstallAps(std::size_t count);

 private:
  Point RandomPositionOnFloor(int floor);
  rf::SignalRecord MeasureAtInternal(const Point& position, int floor);

  BuildingSpec spec_;
  PathLossModel channel_;
  CrowdsourceParams crowd_;
  Rng rng_;
  std::vector<AccessPoint> aps_;
  std::vector<Point> hotspots_;       // hotspots_per_floor per floor
  std::uint64_t next_mac_bits_ = 0;   // monotonically increasing MAC space
};

}  // namespace grafics::synth
