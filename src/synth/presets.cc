#include "synth/presets.h"

#include <cmath>
#include <string>

namespace grafics::synth {

std::vector<BuildingConfig> MicrosoftLikeFleet(std::size_t count,
                                               std::uint64_t seed,
                                               int records_per_floor) {
  Rng rng(seed);
  std::vector<BuildingConfig> fleet;
  fleet.reserve(count);
  for (std::size_t b = 0; b < count; ++b) {
    BuildingConfig config;
    config.spec.name = "ms-" + std::to_string(b);
    config.spec.num_floors = static_cast<int>(rng.UniformInt(2, 12));
    // Per-floor footprint: Fig. 9 spans roughly 1.2k–8k m^2 per floor.
    const double aspect = rng.Uniform(0.8, 1.6);
    const double area = rng.Uniform(1200.0, 8000.0);
    config.spec.floor_width_m = std::sqrt(area * aspect);
    config.spec.floor_depth_m = std::sqrt(area / aspect);
    // AP density ~ one AP per 60–120 m^2 keeps distinct-MAC counts within
    // Fig. 9's 100–2500 band across the fleet.
    config.spec.aps_per_floor = std::max(
        8, static_cast<int>(area / rng.Uniform(60.0, 120.0)));
    config.spec.records_per_floor = records_per_floor;
    config.channel.path_loss_exponent = rng.Uniform(2.5, 3.1);
    // Effective floor attenuation is lower than slab-only values: stair
    // wells, atria and elevator shafts leak signal between floors, which is
    // what makes real crowdsourced floor identification hard.
    config.channel.floor_attenuation_db = rng.Uniform(8.0, 13.0);
    config.channel.shadowing_stddev_db = rng.Uniform(3.5, 5.5);
    config.crowd.device_bias_stddev_db = rng.Uniform(4.0, 7.0);
    config.crowd.scan_cap_min = 8;
    config.crowd.scan_cap_max = static_cast<int>(rng.UniformInt(20, 35));
    config.crowd.miss_probability = rng.Uniform(0.25, 0.35);
    config.seed = seed ^ (0x1000 + b);
    fleet.push_back(config);
  }
  return fleet;
}

std::vector<BuildingConfig> HongKongFleet(std::uint64_t seed,
                                          int records_per_floor) {
  struct Shape {
    const char* name;
    int floors;
    double width;
    double depth;
    int aps_per_floor;
  };
  // Two office towers, a hospital, two malls (paper Sec. VI-A).
  static constexpr Shape kShapes[] = {
      {"hk-office-tower-1", 10, 45.0, 40.0, 55},
      {"hk-office-tower-2", 12, 40.0, 40.0, 50},
      {"hk-hospital", 8, 90.0, 70.0, 90},
      {"hk-mall-1", 6, 110.0, 85.0, 130},
      {"hk-mall-2", 5, 120.0, 90.0, 140},
  };
  std::vector<BuildingConfig> fleet;
  fleet.reserve(std::size(kShapes));
  std::uint64_t i = 0;
  for (const Shape& shape : kShapes) {
    BuildingConfig config;
    config.spec.name = shape.name;
    config.spec.num_floors = shape.floors;
    config.spec.floor_width_m = shape.width;
    config.spec.floor_depth_m = shape.depth;
    config.spec.aps_per_floor = shape.aps_per_floor;
    config.spec.records_per_floor = records_per_floor;
    // Dense HK construction but heavily glazed cores and atria: strong
    // inter-floor leakage, strong shadowing, bursty low-end devices.
    config.channel.floor_attenuation_db = 9.5;
    config.channel.shadowing_stddev_db = 5.0;
    config.crowd.device_bias_stddev_db = 6.0;
    config.crowd.scan_cap_min = 8;
    config.crowd.scan_cap_max = 25;
    config.crowd.miss_probability = 0.3;
    config.seed = seed ^ (0x2000 + i++);
    fleet.push_back(config);
  }
  return fleet;
}

BuildingConfig MallFloorConfig(std::uint64_t seed) {
  BuildingConfig config;
  config.spec.name = "mall-floor";
  config.spec.num_floors = 1;
  config.spec.floor_width_m = 150.0;
  config.spec.floor_depth_m = 100.0;
  // 805 distinct MACs on one mall floor (paper Fig. 1).
  config.spec.aps_per_floor = 805;
  config.spec.records_per_floor = 8274;
  config.crowd.scan_cap_min = 10;
  config.crowd.scan_cap_max = 45;
  config.seed = seed;
  return config;
}

BuildingConfig CampusBuildingConfig(std::uint64_t seed,
                                    int records_per_floor) {
  BuildingConfig config;
  config.spec.name = "campus-3f";
  config.spec.num_floors = 3;
  config.spec.floor_width_m = 70.0;
  config.spec.floor_depth_m = 50.0;
  config.spec.aps_per_floor = 45;
  config.spec.records_per_floor = records_per_floor;
  config.seed = seed;
  return config;
}

}  // namespace grafics::synth
