// Geometry and configuration of a synthetic multi-floor building.
//
// Substitute for the paper's Microsoft-Kaggle and Hong Kong corpora: we keep
// only what determines the statistical shape of the RF records — floor plan
// size, floor count, AP density, and crowdsourcing volume.
#pragma once

#include <cstdint>
#include <string>

namespace grafics::synth {

/// 3-D point inside a building (meters). z encodes height above ground.
struct Point {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// One deployed access point (a single BSSID).
struct AccessPoint {
  std::uint64_t mac_bits = 0;
  Point position;
  int floor = 0;
  double tx_power_dbm = 0.0;  // received power at 1 m reference distance
};

struct BuildingSpec {
  std::string name = "building";
  int num_floors = 3;
  double floor_width_m = 80.0;
  double floor_depth_m = 60.0;
  double floor_height_m = 4.0;
  int aps_per_floor = 60;
  int records_per_floor = 1000;

  /// Area of one floor (m^2), as plotted in the paper's Fig. 9.
  double FloorArea() const { return floor_width_m * floor_depth_m; }
};

}  // namespace grafics::synth
