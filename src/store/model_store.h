// Unified model persistence: named artifact chains + crash-safe manifests.
//
// A ModelStore owns every on-disk representation of a served model:
//
//  * base artifacts — full Grafics snapshots (Grafics::SaveModel), one per
//    chain start;
//  * delta checkpoints — only the copy-on-write chunks a snapshot owns
//    relative to the previous generation (Grafics::SaveDelta), so
//    checkpointing a K-record fold costs O(owned chunks), not O(model);
//  * a per-model manifest listing the chain plus the active journal epoch,
//    committed by write-temp + fsync + rename — the rename is the single
//    atomic commit point for both "artifact exists" and "journal truncated",
//    which is what makes compaction crash-safe (docs/persistence.md).
//
// Open(name, generation) resolves a generation (0 = latest) to its nearest
// base plus the delta chain behind it and replays the deltas in order; the
// result is bit-identical to the snapshot that was checkpointed, folds and
// sampler state included. Generations are never rewritten, so any recorded
// generation doubles as a rollback point.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotated_sync.h"
#include "core/grafics.h"
#include "obs/metrics.h"

namespace grafics::store {

/// One entry of a model's artifact chain.
struct ArtifactInfo {
  std::uint64_t generation = 0;
  bool is_delta = false;
  /// True for artifacts recorded by ImportBase: `file` is then the external
  /// path as given (by reference, never copied into the store directory).
  bool external = false;
  /// File name inside the store directory, or the external path.
  std::string file;
  std::uint64_t bytes = 0;
};

/// Store-wide artifact totals, surfaced through protocol v6 store stats.
struct ArtifactCounts {
  std::uint64_t base_count = 0;
  std::uint64_t delta_count = 0;
};

/// An artifact written durably to disk but not yet referenced by any
/// manifest — invisible to Open until CommitStaged renames the manifest.
struct StagedArtifact {
  std::uint64_t generation = 0;
  bool is_delta = false;
  std::string file;
  std::uint64_t bytes = 0;
};

class ModelStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir`.
  explicit ModelStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Loads the model at `generation` (0 = latest): nearest base artifact
  /// plus every delta up to the generation, applied in order. Throws when
  /// the model or generation is unknown. Opening the latest generation
  /// retains the loaded snapshot as the delta base for future checkpoints;
  /// opening an older one (rollback) does not — the next checkpoint then
  /// starts a fresh base chain.
  std::shared_ptr<const core::Grafics> Open(const std::string& name,
                                            std::uint64_t generation = 0);

  /// Latest generation of `name`, or 0 when the store has never seen it.
  std::uint64_t LatestGeneration(const std::string& name) const;

  std::vector<ArtifactInfo> List(const std::string& name) const;
  std::vector<std::string> ListModels() const;
  ArtifactCounts Counts() const;

  /// Writes a full snapshot as the next generation and commits it.
  std::uint64_t WriteBase(const std::string& name,
                          std::shared_ptr<const core::Grafics> model);

  /// Writes the next generation and commits it: a delta checkpoint against
  /// the retained previous generation when the model is a fold-descendant
  /// of it (Grafics::DeltaCompatible), a full base otherwise. Reports what
  /// was written through `info` when non-null.
  std::uint64_t WriteCheckpoint(const std::string& name,
                                std::shared_ptr<const core::Grafics> model,
                                StagedArtifact* info = nullptr);

  /// Records an externally produced artifact file (daemon --model
  /// NAME=PATH) as the next generation without copying it. Re-importing the
  /// path that is already the latest generation is a no-op returning that
  /// generation, so daemon restarts do not grow the chain.
  std::uint64_t ImportBase(const std::string& name, const std::string& path);

  /// Compaction protocol, used by ingest::IngestPipeline. StageCheckpoint
  /// writes the artifact file durably WITHOUT touching the manifest; after
  /// the caller has made the replacement journal epoch durable,
  /// CommitStaged publishes artifact + epoch in one atomic manifest rename.
  /// A crash between the two leaves the manifest — and therefore restart
  /// behavior — exactly as before the stage.
  StagedArtifact StageCheckpoint(const std::string& name,
                                 std::shared_ptr<const core::Grafics> model);
  void CommitStaged(const std::string& name, const StagedArtifact& staged,
                    std::uint64_t journal_epoch,
                    std::shared_ptr<const core::Grafics> model);

  /// Journal epoch the manifest points at (0 for legacy/unknown models).
  /// The epoch names the journal file the ingest pipeline must replay.
  std::uint64_t JournalEpoch(const std::string& name) const;

  /// Attaches the telemetry registry: WriteBase/WriteCheckpoint durations
  /// feed a histogram, and a collection hook syncs artifact counts and
  /// per-model chain lengths at every scrape. Attach once, before
  /// checkpoints start flowing; null is rejected.
  void AttachObs(std::shared_ptr<obs::Registry> obs);

  /// Percent-encodes `name` into a filesystem-safe file stem; the same
  /// scheme the ingest journal uses, so store and journal files for one
  /// model sort together.
  static std::string EncodedFileStem(const std::string& name);

 private:
  struct Manifest {
    std::uint64_t journal_epoch = 0;
    std::vector<ArtifactInfo> artifacts;
  };

  std::string ManifestPath(const std::string& name) const;
  std::string ArtifactPath(const ArtifactInfo& info) const;
  Manifest ReadManifest(const std::string& name) const;
  void WriteManifest(const std::string& name, const Manifest& manifest) const;
  StagedArtifact StageLocked(const std::string& name,
                             const std::shared_ptr<const core::Grafics>& model)
      GRAFICS_REQUIRES(mutex_);
  void CommitLocked(const std::string& name, const StagedArtifact& staged,
                    std::uint64_t journal_epoch,
                    const std::shared_ptr<const core::Grafics>& model)
      GRAFICS_REQUIRES(mutex_);

  /// Collection-hook body: syncs artifact counts/chain lengths into `obs`.
  void SyncObs(obs::Registry& obs) const GRAFICS_EXCLUDES(mutex_);

  std::string dir_;
  mutable Mutex mutex_;
  /// Last committed generation's in-memory snapshot per model: the base the
  /// next delta checkpoint diffs against (chunk identity, not content).
  std::map<std::string, std::shared_ptr<const core::Grafics>> retained_
      GRAFICS_GUARDED_BY(mutex_);
  obs::Histogram* checkpoint_us_ GRAFICS_GUARDED_BY(mutex_) = nullptr;
  /// Last member: destroyed (and thus quiesced) before everything SyncObs
  /// reads.
  obs::ScopedHook obs_hook_;
};

}  // namespace grafics::store
