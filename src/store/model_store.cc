#include "store/model_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/serialize.h"
#include "ingest/record_journal.h"  // Crc32

namespace grafics::store {

namespace {

constexpr char kManifestMagic[4] = {'G', 'M', 'A', 'N'};
constexpr std::uint32_t kManifestVersion = 1;
constexpr char kManifestSuffix[] = ".manifest";

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Best-effort directory fsync so a just-renamed file survives power loss.
/// Some filesystems reject fsync on directories; that only weakens
/// durability, never consistency, so failures are ignored.
void FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Writes `content` to `path` atomically: temp file + fsync + rename. The
/// file either keeps its previous content or holds all of `content`.
void WriteFileDurably(const std::string& dir, const std::string& path,
                      const std::string& content) {
  const std::string temp = path + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  Require(fd >= 0, ErrnoMessage("ModelStore: cannot create " + temp));
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(temp.c_str());
      throw Error(ErrnoMessage("ModelStore: cannot write " + temp));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(temp.c_str());
    throw Error(ErrnoMessage("ModelStore: cannot fsync " + temp));
  }
  ::close(fd);
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    throw Error(ErrnoMessage("ModelStore: cannot rename " + temp));
  }
  FsyncDir(dir);
}

std::uint64_t FileBytes(const std::string& path) {
  struct stat st = {};
  Require(::stat(path.c_str(), &st) == 0,
          ErrnoMessage("ModelStore: cannot stat " + path));
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace

std::string ModelStore::EncodedFileStem(const std::string& name) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string stem;
  stem.reserve(name.size());
  for (const char c : name) {
    const auto byte = static_cast<unsigned char>(c);
    const bool safe =
        (byte >= 'A' && byte <= 'Z') || (byte >= 'a' && byte <= 'z') ||
        (byte >= '0' && byte <= '9') || byte == '.' || byte == '_' ||
        byte == '-';
    if (safe) {
      stem.push_back(c);
    } else {
      stem.push_back('%');
      stem.push_back(kHex[byte >> 4]);
      stem.push_back(kHex[byte & 0xF]);
    }
  }
  return stem;
}

ModelStore::ModelStore(std::string dir) : dir_(std::move(dir)) {
  Require(!dir_.empty(), "ModelStore: empty directory");
  ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine
  struct stat st = {};
  Require(::stat(dir_.c_str(), &st) == 0 && S_ISDIR(st.st_mode),
          "ModelStore: cannot create directory " + dir_);
}

std::string ModelStore::ManifestPath(const std::string& name) const {
  return dir_ + "/" + EncodedFileStem(name) + kManifestSuffix;
}

std::string ModelStore::ArtifactPath(const ArtifactInfo& info) const {
  return info.external ? info.file : dir_ + "/" + info.file;
}

namespace {

/// Parses a manifest file into (model name, epoch, artifacts). The file is
/// rename-committed so it is either the previous or the new version in
/// full; the trailing CRC turns any other state into a loud error instead
/// of a silently wrong artifact chain.
struct ParsedManifest {
  std::string name;
  std::uint64_t journal_epoch = 0;
  std::vector<ArtifactInfo> artifacts;
};

ParsedManifest ParseManifestFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  Require(file.is_open(), "ModelStore: cannot open manifest " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string content = buffer.str();
  Require(content.size() > 4, "ModelStore: manifest truncated: " + path);
  const std::size_t body_size = content.size() - 4;
  std::istringstream in(content);
  std::uint32_t stored_crc = 0;
  {
    std::istringstream tail(content.substr(body_size));
    stored_crc = ReadU32(tail);
  }
  Require(ingest::Crc32(content.data(), body_size) == stored_crc,
          "ModelStore: manifest checksum mismatch: " + path);
  CheckHeader(in, kManifestMagic, kManifestVersion);
  ParsedManifest parsed;
  parsed.name = ReadString(in);
  parsed.journal_epoch = ReadU64(in);
  const std::uint32_t count = ReadU32(in);
  parsed.artifacts.reserve(count);
  std::uint64_t previous_generation = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    ArtifactInfo info;
    info.generation = ReadU64(in);
    info.is_delta = ReadU8(in) != 0;
    info.external = ReadU8(in) != 0;
    info.file = ReadString(in);
    info.bytes = ReadU64(in);
    Require(info.generation > previous_generation,
            "ModelStore: manifest generations out of order: " + path);
    Require(i > 0 || !info.is_delta,
            "ModelStore: manifest starts with a delta: " + path);
    previous_generation = info.generation;
    parsed.artifacts.push_back(std::move(info));
  }
  Require(in.good(), "ModelStore: manifest truncated: " + path);
  return parsed;
}

}  // namespace

ModelStore::Manifest ModelStore::ReadManifest(const std::string& name) const {
  const std::string path = ManifestPath(name);
  struct stat st = {};
  if (::stat(path.c_str(), &st) != 0) return Manifest{};  // unknown model
  ParsedManifest parsed = ParseManifestFile(path);
  Require(parsed.name == name,
          "ModelStore: manifest " + path + " belongs to model '" +
              parsed.name + "', not '" + name + "'");
  return Manifest{parsed.journal_epoch, std::move(parsed.artifacts)};
}

void ModelStore::WriteManifest(const std::string& name,
                               const Manifest& manifest) const {
  std::ostringstream out;
  WriteHeader(out, kManifestMagic, kManifestVersion);
  WriteString(out, name);
  WriteU64(out, manifest.journal_epoch);
  WriteU32(out, static_cast<std::uint32_t>(manifest.artifacts.size()));
  for (const ArtifactInfo& info : manifest.artifacts) {
    WriteU64(out, info.generation);
    WriteU8(out, info.is_delta ? 1 : 0);
    WriteU8(out, info.external ? 1 : 0);
    WriteString(out, info.file);
    WriteU64(out, info.bytes);
  }
  std::string body = out.str();
  std::ostringstream crc;
  WriteU32(crc, ingest::Crc32(body.data(), body.size()));
  body += crc.str();
  WriteFileDurably(dir_, ManifestPath(name), body);
}

std::shared_ptr<const core::Grafics> ModelStore::Open(
    const std::string& name, std::uint64_t generation) {
  const MutexLock lock(&mutex_);
  const Manifest manifest = ReadManifest(name);
  Require(!manifest.artifacts.empty(),
          "ModelStore: unknown model '" + name + "'");
  const std::uint64_t latest = manifest.artifacts.back().generation;
  const std::uint64_t target = generation == 0 ? latest : generation;
  std::size_t index = manifest.artifacts.size();
  for (std::size_t i = 0; i < manifest.artifacts.size(); ++i) {
    if (manifest.artifacts[i].generation == target) {
      index = i;
      break;
    }
  }
  Require(index < manifest.artifacts.size(),
          "ModelStore: model '" + name + "' has no generation " +
              std::to_string(target));
  std::size_t base = index;
  while (manifest.artifacts[base].is_delta) --base;  // index 0 is a base
  const std::string base_path = ArtifactPath(manifest.artifacts[base]);
  std::ifstream base_in(base_path, std::ios::binary);
  Require(base_in.is_open(), "ModelStore: cannot open artifact " + base_path);
  core::Grafics model = core::Grafics::LoadModel(base_in);
  for (std::size_t i = base + 1; i <= index; ++i) {
    const std::string delta_path = ArtifactPath(manifest.artifacts[i]);
    std::ifstream delta_in(delta_path, std::ios::binary);
    Require(delta_in.is_open(),
            "ModelStore: cannot open artifact " + delta_path);
    model.ApplyDelta(delta_in);
  }
  auto loaded = std::make_shared<const core::Grafics>(std::move(model));
  // Opening the latest generation re-anchors the delta chain on the loaded
  // snapshot; a rollback open leaves the retained base untouched (pointer
  // identity in DeltaCompatible keeps stale bases harmless — the next
  // checkpoint of an unrelated lineage writes a full base).
  if (target == latest) retained_[name] = loaded;
  return loaded;
}

std::uint64_t ModelStore::LatestGeneration(const std::string& name) const {
  const MutexLock lock(&mutex_);
  const Manifest manifest = ReadManifest(name);
  return manifest.artifacts.empty() ? 0
                                    : manifest.artifacts.back().generation;
}

std::vector<ArtifactInfo> ModelStore::List(const std::string& name) const {
  const MutexLock lock(&mutex_);
  return ReadManifest(name).artifacts;
}

std::vector<std::string> ModelStore::ListModels() const {
  const MutexLock lock(&mutex_);
  std::vector<std::string> names;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) return names;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string file = entry->d_name;
    const std::size_t suffix = sizeof(kManifestSuffix) - 1;
    if (file.size() <= suffix ||
        file.compare(file.size() - suffix, suffix, kManifestSuffix) != 0) {
      continue;
    }
    try {
      names.push_back(ParseManifestFile(dir_ + "/" + file).name);
    } catch (const Error&) {
      // A corrupt manifest fails loudly on Open; stats keep working.
    }
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

ArtifactCounts ModelStore::Counts() const {
  ArtifactCounts counts;
  for (const std::string& name : ListModels()) {
    for (const ArtifactInfo& info : List(name)) {
      if (info.is_delta) {
        ++counts.delta_count;
      } else {
        ++counts.base_count;
      }
    }
  }
  return counts;
}

StagedArtifact ModelStore::StageLocked(
    const std::string& name,
    const std::shared_ptr<const core::Grafics>& model) {
  Require(model != nullptr, "ModelStore: null model");
  const Manifest manifest = ReadManifest(name);
  const std::uint64_t generation =
      (manifest.artifacts.empty() ? 0 : manifest.artifacts.back().generation) +
      1;
  const auto retained = retained_.find(name);
  const bool is_delta = !manifest.artifacts.empty() &&
                        retained != retained_.end() &&
                        retained->second != nullptr &&
                        model->DeltaCompatible(*retained->second);
  std::ostringstream artifact;
  if (is_delta) {
    model->SaveDelta(artifact, *retained->second);
  } else {
    model->SaveModel(artifact);
  }
  const std::string content = artifact.str();
  const std::string file = EncodedFileStem(name) + ".g" +
                           std::to_string(generation) +
                           (is_delta ? ".delta" : ".base");
  WriteFileDurably(dir_, dir_ + "/" + file, content);
  return StagedArtifact{generation, is_delta, file, content.size()};
}

void ModelStore::CommitLocked(const std::string& name,
                              const StagedArtifact& staged,
                              std::uint64_t journal_epoch,
                              const std::shared_ptr<const core::Grafics>& model) {
  Manifest manifest = ReadManifest(name);
  const std::uint64_t latest =
      manifest.artifacts.empty() ? 0 : manifest.artifacts.back().generation;
  Require(staged.generation == latest + 1,
          "ModelStore: staged generation " +
              std::to_string(staged.generation) + " of '" + name +
              "' raced another commit (latest is " + std::to_string(latest) +
              ")");
  manifest.artifacts.push_back(ArtifactInfo{
      staged.generation, staged.is_delta, false, staged.file, staged.bytes});
  manifest.journal_epoch = journal_epoch;
  WriteManifest(name, manifest);
  retained_[name] = model;
}

std::uint64_t ModelStore::WriteBase(
    const std::string& name, std::shared_ptr<const core::Grafics> model) {
  const MutexLock lock(&mutex_);
  const auto started = std::chrono::steady_clock::now();
  // Forgetting the retained base forces StageLocked onto the full-snapshot
  // path; CommitLocked re-retains `model`.
  retained_.erase(name);
  const StagedArtifact staged = StageLocked(name, model);
  CommitLocked(name, staged, ReadManifest(name).journal_epoch, model);
  if (checkpoint_us_ != nullptr) {
    checkpoint_us_->Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count()));
  }
  return staged.generation;
}

std::uint64_t ModelStore::WriteCheckpoint(
    const std::string& name, std::shared_ptr<const core::Grafics> model,
    StagedArtifact* info) {
  const MutexLock lock(&mutex_);
  const auto started = std::chrono::steady_clock::now();
  const StagedArtifact staged = StageLocked(name, model);
  CommitLocked(name, staged, ReadManifest(name).journal_epoch, model);
  if (checkpoint_us_ != nullptr) {
    checkpoint_us_->Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count()));
  }
  if (info != nullptr) *info = staged;
  return staged.generation;
}

std::uint64_t ModelStore::ImportBase(const std::string& name,
                                     const std::string& path) {
  const MutexLock lock(&mutex_);
  Manifest manifest = ReadManifest(name);
  if (!manifest.artifacts.empty() && manifest.artifacts.back().external &&
      manifest.artifacts.back().file == path) {
    return manifest.artifacts.back().generation;  // restart with same --model
  }
  const std::uint64_t generation =
      (manifest.artifacts.empty() ? 0 : manifest.artifacts.back().generation) +
      1;
  manifest.artifacts.push_back(
      ArtifactInfo{generation, false, true, path, FileBytes(path)});
  WriteManifest(name, manifest);
  // The imported file's in-memory snapshot is unknown here; Open(name)
  // re-anchors the delta chain when the daemon loads it.
  retained_.erase(name);
  return generation;
}

StagedArtifact ModelStore::StageCheckpoint(
    const std::string& name, std::shared_ptr<const core::Grafics> model) {
  const MutexLock lock(&mutex_);
  return StageLocked(name, model);
}

void ModelStore::CommitStaged(const std::string& name,
                              const StagedArtifact& staged,
                              std::uint64_t journal_epoch,
                              std::shared_ptr<const core::Grafics> model) {
  const MutexLock lock(&mutex_);
  CommitLocked(name, staged, journal_epoch, model);
}

std::uint64_t ModelStore::JournalEpoch(const std::string& name) const {
  const MutexLock lock(&mutex_);
  return ReadManifest(name).journal_epoch;
}

void ModelStore::AttachObs(std::shared_ptr<obs::Registry> obs) {
  Require(obs != nullptr, "ModelStore::AttachObs: null obs registry");
  {
    const MutexLock lock(&mutex_);
    Require(checkpoint_us_ == nullptr,
            "ModelStore::AttachObs: already attached");
    checkpoint_us_ = obs->GetHistogram(
        "grafics_store_checkpoint_us",
        "Microseconds one committed checkpoint (stage + manifest commit) "
        "took.",
        obs::DefaultLatencyBucketsUs());
  }
  obs::Registry* raw = obs.get();  // kept alive by the hook's shared_ptr
  obs_hook_.Attach(std::move(obs), [this, raw] { SyncObs(*raw); });
}

void ModelStore::SyncObs(obs::Registry& obs) const {
  ArtifactCounts totals;
  for (const std::string& name : ListModels()) {
    std::uint64_t chain = 0;
    for (const ArtifactInfo& info : List(name)) {
      ++chain;
      if (info.is_delta) {
        ++totals.delta_count;
      } else {
        ++totals.base_count;
      }
    }
    obs.GetGauge("grafics_store_chain_length",
                 "Artifacts (bases + deltas) in the model's chain.",
                 {{"model", name}})
        ->Set(static_cast<std::int64_t>(chain));
  }
  obs.GetGauge("grafics_store_base_artifacts",
               "Base artifacts across every model.")
      ->Set(static_cast<std::int64_t>(totals.base_count));
  obs.GetGauge("grafics_store_delta_artifacts",
               "Delta checkpoints across every model.")
      ->Set(static_cast<std::int64_t>(totals.delta_count));
}

}  // namespace grafics::store
