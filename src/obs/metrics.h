// Lock-cheap runtime telemetry: a registry of named instruments with an
// atomic hot path and Prometheus text exposition.
//
// The design splits the cost asymmetrically:
//
//  * Instrument *resolution* (GetCounter / GetGauge / GetHistogram) takes a
//    registry mutex, validates the name, and returns a stable raw pointer.
//    Instrumented code resolves its handles once — at construction, load,
//    or attach time — and never does a string lookup on a request path.
//  * Instrument *updates* (Counter::Add, Gauge::Set, Histogram::Observe)
//    are a handful of relaxed atomic operations. No locks, no allocation,
//    safe from any thread, TSan-clean by construction.
//  * *Rendering* (RenderPrometheus) takes the mutex again, runs registered
//    collection hooks (for values that live elsewhere, e.g. queue depths
//    snapshot from a batcher), and emits the text exposition format a
//    Prometheus scraper expects. Scrapes are rare; their cost is
//    irrelevant.
//
// Relaxed ordering is deliberate: each instrument is an independent
// statistic, and a scrape that observes a count a few nanoseconds stale is
// indistinguishable from a scrape that arrived a few nanoseconds earlier.
// Histogram bucket counts, sum, and count are each individually atomic but
// not mutually consistent within one scrape — standard for lock-free
// histograms, and harmless for rate/quantile math.
//
// Naming is enforced here AND by the repo lint: every instrument name must
// match grafics_[a-z0-9_]+ and be cataloged in docs/observability.md
// (tools/check_invariants.py cross-checks the sources against the doc).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotated_sync.h"

namespace grafics::obs {

/// Label set for one instrument handle, resolved once at Get time. Order is
/// preserved into the exposition output.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Raises the counter to `total` if it is currently lower — the bridge
  /// for values maintained as lifetime totals elsewhere (EventLoopStats,
  /// BatcherStats) and synced into the registry by a collection hook.
  /// Monotonic by construction: a stale sync can never move it backward.
  void SyncTo(std::uint64_t total) {
    std::uint64_t current = value_.load(std::memory_order_relaxed);
    while (total > current &&
           !value_.compare_exchange_weak(current, total,
                                         std::memory_order_relaxed)) {
    }
  }

  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Counter() = default;
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (queue depth, bytes held, generation).
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(std::int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }

  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative integer observations
/// (microseconds, batch sizes). Bounds are inclusive upper edges, strictly
/// increasing; an implicit +Inf bucket catches the overflow tail.
class Histogram {
 public:
  void Observe(std::uint64_t value) {
    std::size_t index = 0;
    while (index < bounds_.size() && value > bounds_[index]) ++index;
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }

  /// Observations in bucket `index` (NOT cumulative); index bounds_.size()
  /// is the +Inf bucket.
  std::uint64_t bucket(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(std::vector<std::uint64_t> bounds);

  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// ~50µs .. 1s latency edges, the default for every *_us histogram.
std::vector<std::uint64_t> DefaultLatencyBucketsUs();
/// Powers of two 1..max (inclusive when max is itself a power of two).
std::vector<std::uint64_t> PowerOfTwoBuckets(std::uint64_t max);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Resolves (creating on first use) the instrument for `name` + `labels`.
  /// The returned pointer is stable for the registry's lifetime — cache it;
  /// never resolve on a hot path. The same name+labels always returns the
  /// same instrument. Throws grafics::Error when the name violates
  /// grafics_[a-z0-9_]+, when the name is already registered as a different
  /// kind, when `help` disagrees with the first registration, or (for
  /// histograms) when `bounds` disagree or are not strictly increasing.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::vector<std::uint64_t>& bounds,
                          const Labels& labels = {});

  /// Collection hooks run at the start of every RenderPrometheus, outside
  /// the registry mutex — the place to snapshot values that live elsewhere
  /// (EventLoopStats, per-model queue depths) into gauges/counters. A hook
  /// may resolve new instruments. Returns an id for RemoveHook; hooks whose
  /// captured objects die before the registry must be removed first.
  std::uint64_t AddHook(std::function<void()> hook);
  void RemoveHook(std::uint64_t id);

  /// Prometheus text exposition format, version 0.0.4: one # HELP / # TYPE
  /// pair per family, series sorted deterministically, label values
  /// escaped. Histograms emit cumulative _bucket series plus _sum/_count.
  std::string RenderPrometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<std::uint64_t> bounds;  // histograms only
    std::map<std::string, Series> series;  // keyed by serialized labels
  };

  Family& ResolveFamily(const std::string& name, const std::string& help,
                        Kind kind) GRAFICS_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, Family> families_ GRAFICS_GUARDED_BY(mutex_);
  std::map<std::uint64_t, std::function<void()>> hooks_
      GRAFICS_GUARDED_BY(mutex_);
  std::uint64_t next_hook_id_ GRAFICS_GUARDED_BY(mutex_) = 1;
};

/// RAII collection-hook registration with *quiescent* detach. RemoveHook
/// alone does not stop a render already in flight from invoking the hook it
/// copied, so a hook that captures `this` of a shorter-lived object needs
/// more: ScopedHook runs the callback under an internal mutex, and Detach()
/// (or the destructor) blocks until an in-flight invocation finishes, then
/// guarantees the callback never runs again. Every instrumented subsystem
/// registers its sync hook through one of these and detaches it before the
/// captured state dies.
class ScopedHook {
 public:
  ScopedHook() = default;
  ~ScopedHook();

  ScopedHook(const ScopedHook&) = delete;
  ScopedHook& operator=(const ScopedHook&) = delete;

  /// Registers `fn` on `registry` (both must be non-null; the registry is
  /// kept alive by the held shared_ptr). At most one attachment at a time.
  void Attach(std::shared_ptr<Registry> registry, std::function<void()> fn);
  /// Blocks until any in-flight invocation returns, then unregisters.
  /// Idempotent; safe on a never-attached hook.
  void Detach();

  bool attached() const { return registry_ != nullptr; }

 private:
  struct State {
    Mutex mutex;
    std::function<void()> fn GRAFICS_GUARDED_BY(mutex);
  };

  std::shared_ptr<State> state_;
  std::shared_ptr<Registry> registry_;
  std::uint64_t id_ = 0;
};

}  // namespace grafics::obs
