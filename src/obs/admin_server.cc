#include "obs/admin_server.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/error.h"

namespace grafics::obs {

namespace {

/// Bound on one request head; a scraper that needs more than this is not a
/// scraper.
constexpr std::size_t kMaxRequestHeadBytes = 8 * 1024;

constexpr char kMetricsContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

/// Cuts the input at the HTTP header terminator (CRLFCRLF, with bare LFLF
/// tolerated for hand-typed requests). The "frame" handed to the handler is
/// the raw request head; request bodies are unsupported, so any bytes after
/// the terminator belong to the next (pipelined) request — which the
/// close-on-reply semantics will never answer, matching HTTP/1.0.
serve::ExtractResult HttpExtract(const std::string& in) {
  serve::ExtractResult result;
  std::size_t end = in.find("\r\n\r\n");
  std::size_t terminator = 4;
  if (end == std::string::npos) {
    end = in.find("\n\n");
    terminator = 2;
  }
  if (end == std::string::npos) {
    if (in.size() > kMaxRequestHeadBytes) {
      result.status = serve::ExtractResult::Status::kError;
      result.error = "request head exceeds " +
                     std::to_string(kMaxRequestHeadBytes) + " bytes";
    }
    return result;
  }
  if (end > kMaxRequestHeadBytes) {
    result.status = serve::ExtractResult::Status::kError;
    result.error = "request head exceeds " +
                   std::to_string(kMaxRequestHeadBytes) + " bytes";
    return result;
  }
  result.status = serve::ExtractResult::Status::kFrame;
  result.consumed = end + terminator;
  result.payload = in.substr(0, end);
  return result;
}

std::string HttpResponse(int status, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Splits "METHOD PATH HTTP/x.y" out of the request head's first line;
/// false when it is not even that.
bool ParseRequestLine(const std::string& head, std::string* method,
                      std::string* path) {
  const std::size_t line_end = head.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t first_space = line.find(' ');
  if (first_space == std::string::npos || first_space == 0) return false;
  const std::size_t second_space = line.find(' ', first_space + 1);
  if (second_space == std::string::npos ||
      second_space == first_space + 1) {
    return false;
  }
  *method = line.substr(0, first_space);
  *path = line.substr(first_space + 1, second_space - first_space - 1);
  // Query strings are legal on probes (?verbose=1); routing ignores them.
  const std::size_t query = path->find('?');
  if (query != std::string::npos) path->erase(query);
  return true;
}

}  // namespace

AdminServer::AdminServer(AdminServerConfig config, MetricsRenderer metrics,
                         ReadyProbe ready)
    : config_(std::move(config)),
      metrics_(std::move(metrics)),
      ready_(std::move(ready)) {
  Require(metrics_ != nullptr, "AdminServer: metrics renderer required");
}

AdminServer::~AdminServer() { Stop(); }

std::string AdminServer::Handle(const std::string& request_head) const {
  std::string method;
  std::string path;
  if (!ParseRequestLine(request_head, &method, &path)) {
    return HttpResponse(400, "Bad Request", "text/plain",
                        "malformed request line\n");
  }
  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is supported\n");
  }
  if (path == "/metrics") {
    try {
      return HttpResponse(200, "OK", kMetricsContentType, metrics_());
    } catch (const std::exception& e) {
      return HttpResponse(500, "Internal Server Error", "text/plain",
                          std::string("metrics render failed: ") + e.what() +
                              "\n");
    }
  }
  if (path == "/healthz") {
    return HttpResponse(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/readyz") {
    bool ready = true;
    if (ready_ != nullptr) {
      try {
        ready = ready_();
      } catch (...) {
        ready = false;
      }
    }
    return ready ? HttpResponse(200, "OK", "text/plain", "ready\n")
                 : HttpResponse(503, "Service Unavailable", "text/plain",
                                "not ready\n");
  }
  return HttpResponse(404, "Not Found", "text/plain",
                      "unknown path " + path + "\n");
}

void AdminServer::Start() {
  Require(!started_.exchange(true), "AdminServer::Start: already started");

  serve::EventLoopConfig loop_config;
  loop_config.workers = 1;  // scrape traffic never needs more
  loop_config.idle_timeout = config_.idle_timeout;
  loop_config.extractor = HttpExtract;
  loop_ = std::make_unique<serve::EventLoop>(
      loop_config,
      [this](std::string head, std::size_t /*inflight*/,
             serve::EventLoop::Completion done) {
        // Every response closes the connection: HTTP/1.0 semantics, and it
        // maps straight onto the transport's close_after error path.
        done.Send(Handle(head), /*close_after=*/true);
      },
      [](const std::string& what) {
        return HttpResponse(431, "Request Header Fields Too Large",
                            "text/plain", what + "\n");
      });

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* addresses = nullptr;
  const int rc =
      ::getaddrinfo(config_.host.c_str(), std::to_string(config_.port).c_str(),
                    &hints, &addresses);
  Require(rc == 0, "AdminServer: cannot resolve " + config_.host + ": " +
                       std::string(::gai_strerror(rc)));
  std::string reason = "no addresses";
  for (const addrinfo* ai = addresses; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      listen_fd_ = fd;
      break;
    }
    reason = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(addresses);
  Require(listen_fd_ >= 0, "AdminServer: cannot listen on " + config_.host +
                               ":" + std::to_string(config_.port) + ": " +
                               reason);
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    if (bound.ss_family == AF_INET) {
      bound_port_ =
          ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      bound_port_ =
          ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  if (bound_port_ == 0) bound_port_ = config_.port;

  loop_->Start();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void AdminServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop (or a fatal accept error)
    }
    loop_->Adopt(fd);
  }
}

void AdminServer::Stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  // Shutdown before close pops a blocked accept() on every platform.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (loop_ != nullptr) loop_->Stop();
}

}  // namespace grafics::obs
