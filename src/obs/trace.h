// Per-request pipeline tracing for the slow-request log.
//
// A Trace captures a monotonic start time at construction and records one
// entry per pipeline stage: Stamp("frame-decoded") stores the elapsed time
// since the start, Note("predict", us) stores a duration measured elsewhere
// (e.g. inside the batcher flush thread and carried back in the
// completion). Breakdown() renders the whole request as one log-friendly
// line:
//
//   frame-decoded=+12us enqueued=+31us queue-wait=842us predict=1204us
//   reply-flushed=+2117us
//
// A Trace is deliberately NOT thread-safe: it is owned by one request and
// every mutation must be ordered by something else (the server stamps
// before handing the request to the batcher; the batcher mutex is the
// happens-before edge to the completion that stamps the tail). Traces are
// heap-allocated only when slow-request logging is enabled, so the default
// request path never pays for them.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace grafics::obs {

class Trace {
 public:
  Trace() : start_(std::chrono::steady_clock::now()) {}

  /// Records `stage` at the current elapsed time since construction.
  void Stamp(const char* stage) {
    entries_.emplace_back(Entry{stage, ElapsedUs(), /*relative=*/true});
  }

  /// Records a duration measured elsewhere (not an offset from the start).
  void Note(const char* stage, std::uint64_t us) {
    entries_.emplace_back(Entry{stage, us, /*relative=*/false});
  }

  std::uint64_t ElapsedUs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  /// "stage=+Nus" for stamps (offset from start), "stage=Nus" for notes.
  std::string Breakdown() const {
    std::string out;
    for (const Entry& entry : entries_) {
      if (!out.empty()) out.push_back(' ');
      out += entry.stage;
      out += entry.relative ? "=+" : "=";
      out += std::to_string(entry.us);
      out += "us";
    }
    return out;
  }

 private:
  struct Entry {
    const char* stage;
    std::uint64_t us;
    bool relative;
  };

  std::chrono::steady_clock::time_point start_;
  std::vector<Entry> entries_;
};

}  // namespace grafics::obs
