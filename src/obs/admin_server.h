// Minimal HTTP/1.0 admin listener for scrapers and orchestrators.
//
// Serves exactly three read-only endpoints on its own port:
//
//   GET /metrics  — Prometheus text exposition (obs::Registry render)
//   GET /healthz  — liveness: 200 while the process serves at all
//   GET /readyz   — readiness: 200 when the ready probe passes (for the
//                   daemon: default model loaded), 503 otherwise
//
// Rather than growing a second network stack, this reuses serve::EventLoop
// with a substituted FrameExtractor that cuts the byte stream at HTTP
// header boundaries instead of length prefixes — one "frame" is one request
// head, and the reply slot carries a complete HTTP response with
// Connection: close semantics (close_after). Everything the transport
// already solved — nonblocking reads, buffered writes, idle harvesting of
// half-open scrapers — applies to the admin surface for free.
//
// The surface is intentionally not general HTTP: requests with bodies are
// not supported, headers beyond the request line are ignored, and every
// response closes the connection (curl, Prometheus, and kubelet probes are
// all happy with HTTP/1.0 close semantics).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "serve/event_loop.h"

namespace grafics::obs {

struct AdminServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via port().
  std::uint16_t port = 0;
  /// Harvest half-open scraper connections after this long.
  std::chrono::milliseconds idle_timeout{10000};
};

class AdminServer {
 public:
  /// Renders the /metrics body (typically Registry::RenderPrometheus).
  using MetricsRenderer = std::function<std::string()>;
  /// Readiness probe for /readyz; may be null (then readyz mirrors
  /// healthz). Must not block and must not throw — a throwing probe is
  /// reported as not ready.
  using ReadyProbe = std::function<bool()>;

  AdminServer(AdminServerConfig config, MetricsRenderer metrics,
              ReadyProbe ready);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds, listens, and spawns the accept thread plus one event-loop
  /// worker. Throws grafics::Error when the port cannot be bound.
  void Start();
  /// Stops accepting, closes every admin connection, joins. Idempotent.
  void Stop();

  /// Bound port, valid after Start() (resolves port 0).
  std::uint16_t port() const { return bound_port_; }

 private:
  void AcceptLoop();
  /// One complete HTTP response (status line + headers + body) for one
  /// request head.
  std::string Handle(const std::string& request_head) const;

  const AdminServerConfig config_;
  const MetricsRenderer metrics_;
  const ReadyProbe ready_;

  std::unique_ptr<serve::EventLoop> loop_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
};

}  // namespace grafics::obs
