#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace grafics::obs {

namespace {

constexpr char kNamePrefix[] = "grafics_";

/// grafics_[a-z0-9_]+ — the rule the repo lint also enforces against
/// docs/observability.md.
bool ValidMetricName(const std::string& name) {
  const std::size_t prefix = sizeof(kNamePrefix) - 1;
  if (name.size() <= prefix || name.compare(0, prefix, kNamePrefix) != 0) {
    return false;
  }
  for (std::size_t i = prefix; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

/// Label-value escaping per the exposition format: backslash, double
/// quote, and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// HELP-text escaping: backslash and newline only (quotes are legal there).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Canonical series key AND the rendered {label="value",...} text; labels
/// are escaped here once, so the key doubles as the output fragment.
std::string SerializeLabels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    Require(ValidLabelName(labels[i].first),
            "obs: invalid label name '" + labels[i].first + "'");
    if (i > 0) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

/// Like SerializeLabels but with one extra label appended — how histogram
/// _bucket series get their le="..." edge.
std::string SerializeLabelsWith(const Labels& labels, const char* extra_name,
                                const std::string& extra_value) {
  Labels extended = labels;
  extended.emplace_back(extra_name, extra_value);
  return SerializeLabels(extended);
}

}  // namespace

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> DefaultLatencyBucketsUs() {
  return {50,    100,   250,   500,    1000,   2500,   5000,
          10000, 25000, 50000, 100000, 250000, 500000, 1000000};
}

std::vector<std::uint64_t> PowerOfTwoBuckets(std::uint64_t max) {
  Require(max >= 1, "obs: PowerOfTwoBuckets needs max >= 1");
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t edge = 1; edge <= max; edge *= 2) {
    bounds.push_back(edge);
    if (edge > max / 2) break;  // avoid overflow past 2^63
  }
  return bounds;
}

Registry::Family& Registry::ResolveFamily(const std::string& name,
                                          const std::string& help,
                                          Kind kind) {
  Require(ValidMetricName(name),
          "obs: instrument name '" + name +
              "' does not match grafics_[a-z0-9_]+");
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.kind = kind;
    family.help = help;
  } else {
    Require(family.kind == kind,
            "obs: instrument '" + name + "' already registered as a "
            "different kind");
    Require(family.help == help,
            "obs: instrument '" + name + "' re-registered with different "
            "help text");
  }
  return family;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help, const Labels& labels) {
  const std::string key = SerializeLabels(labels);
  const MutexLock lock(&mutex_);
  Family& family = ResolveFamily(name, help, Kind::kCounter);
  auto [it, inserted] = family.series.try_emplace(key);
  if (inserted) {
    it->second.labels = labels;
    it->second.counter.reset(new Counter());
  }
  return it->second.counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          const Labels& labels) {
  const std::string key = SerializeLabels(labels);
  const MutexLock lock(&mutex_);
  Family& family = ResolveFamily(name, help, Kind::kGauge);
  auto [it, inserted] = family.series.try_emplace(key);
  if (inserted) {
    it->second.labels = labels;
    it->second.gauge.reset(new Gauge());
  }
  return it->second.gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  const std::vector<std::uint64_t>& bounds,
                                  const Labels& labels) {
  Require(!bounds.empty(), "obs: histogram '" + name + "' needs bounds");
  Require(std::is_sorted(bounds.begin(), bounds.end()) &&
              std::adjacent_find(bounds.begin(), bounds.end()) ==
                  bounds.end(),
          "obs: histogram '" + name +
              "' bounds must be strictly increasing");
  const std::string key = SerializeLabels(labels);
  const MutexLock lock(&mutex_);
  Family& family = ResolveFamily(name, help, Kind::kHistogram);
  if (family.series.empty()) {
    family.bounds = bounds;
  } else {
    Require(family.bounds == bounds,
            "obs: histogram '" + name +
                "' re-registered with different bounds");
  }
  auto [it, inserted] = family.series.try_emplace(key);
  if (inserted) {
    it->second.labels = labels;
    it->second.histogram.reset(new Histogram(bounds));
  }
  return it->second.histogram.get();
}

std::uint64_t Registry::AddHook(std::function<void()> hook) {
  Require(hook != nullptr, "obs: null collection hook");
  const MutexLock lock(&mutex_);
  const std::uint64_t id = next_hook_id_++;
  hooks_.emplace(id, std::move(hook));
  return id;
}

void Registry::RemoveHook(std::uint64_t id) {
  const MutexLock lock(&mutex_);
  hooks_.erase(id);
}

std::string Registry::RenderPrometheus() const {
  // Hooks run outside the mutex: they resolve instruments and take the
  // mutex themselves. Copying the map keeps RemoveHook safe mid-render.
  std::vector<std::function<void()>> hooks;
  {
    const MutexLock lock(&mutex_);
    hooks.reserve(hooks_.size());
    for (const auto& [id, hook] : hooks_) hooks.push_back(hook);
  }
  for (const auto& hook : hooks) hook();

  std::ostringstream out;
  const MutexLock lock(&mutex_);
  for (const auto& [name, family] : families_) {
    out << "# HELP " << name << " " << EscapeHelp(family.help) << "\n";
    out << "# TYPE " << name << " ";
    switch (family.kind) {
      case Kind::kCounter:
        out << "counter\n";
        break;
      case Kind::kGauge:
        out << "gauge\n";
        break;
      case Kind::kHistogram:
        out << "histogram\n";
        break;
    }
    for (const auto& [key, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out << name << key << " " << series.counter->value() << "\n";
          break;
        case Kind::kGauge:
          out << name << key << " " << series.gauge->value() << "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& histogram = *series.histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < histogram.bounds().size(); ++i) {
            cumulative += histogram.bucket(i);
            out << name << "_bucket"
                << SerializeLabelsWith(series.labels, "le",
                                       std::to_string(histogram.bounds()[i]))
                << " " << cumulative << "\n";
          }
          cumulative += histogram.bucket(histogram.bounds().size());
          out << name << "_bucket"
              << SerializeLabelsWith(series.labels, "le", "+Inf") << " "
              << cumulative << "\n";
          out << name << "_sum" << key << " " << histogram.sum() << "\n";
          out << name << "_count" << key << " " << histogram.count() << "\n";
          break;
        }
      }
    }
  }
  return out.str();
}

ScopedHook::~ScopedHook() { Detach(); }

void ScopedHook::Attach(std::shared_ptr<Registry> registry,
                        std::function<void()> fn) {
  Require(registry != nullptr && fn != nullptr,
          "obs: ScopedHook::Attach needs a registry and a callback");
  Require(registry_ == nullptr, "obs: ScopedHook already attached");
  state_ = std::make_shared<State>();
  {
    const MutexLock lock(&state_->mutex);
    state_->fn = std::move(fn);
  }
  registry_ = std::move(registry);
  // The registered closure owns only the State; after Detach clears fn it
  // is inert no matter how long a copied hook lingers inside a render.
  id_ = registry_->AddHook([state = state_] {
    const MutexLock lock(&state->mutex);
    if (state->fn) state->fn();
  });
}

void ScopedHook::Detach() {
  if (registry_ == nullptr) return;
  {
    // Blocks until an in-flight invocation releases the mutex — this is
    // the quiesce point that makes `this`-capturing callbacks safe.
    const MutexLock lock(&state_->mutex);
    state_->fn = nullptr;
  }
  registry_->RemoveHook(id_);
  registry_.reset();
  state_.reset();
  id_ = 0;
}

}  // namespace grafics::obs
