#include "baselines/matrix_representation.h"

#include <algorithm>

#include "common/error.h"

namespace grafics::baselines {

MatrixRepresentation::MatrixRepresentation(
    const std::vector<rf::SignalRecord>& train) {
  for (const rf::SignalRecord& record : train) {
    for (const rf::Observation& o : record.observations()) {
      column_of_mac_.try_emplace(o.mac, column_of_mac_.size());
    }
  }
  Require(!column_of_mac_.empty(),
          "MatrixRepresentation: no MACs in training records");
}

Matrix MatrixRepresentation::ToMatrix(
    const std::vector<rf::SignalRecord>& records) const {
  Matrix m(records.size(), num_columns(), kMissingDbm);
  for (std::size_t r = 0; r < records.size(); ++r) {
    for (const rf::Observation& o : records[r].observations()) {
      const auto it = column_of_mac_.find(o.mac);
      if (it == column_of_mac_.end()) continue;  // unseen MAC: drop
      m(r, it->second) = o.rssi_dbm;
    }
  }
  return m;
}

std::vector<double> MatrixRepresentation::ToRow(
    const rf::SignalRecord& record) const {
  std::vector<double> row(num_columns(), kMissingDbm);
  for (const rf::Observation& o : record.observations()) {
    const auto it = column_of_mac_.find(o.mac);
    if (it == column_of_mac_.end()) continue;
    row[it->second] = o.rssi_dbm;
  }
  return row;
}

Matrix MatrixRepresentation::Normalize(const Matrix& raw) {
  Matrix out = raw;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (double& v : out.Row(r)) {
      v = std::clamp((v - kMissingDbm) / (-20.0 - kMissingDbm), 0.0, 1.0);
    }
  }
  return out;
}

}  // namespace grafics::baselines
