// Autoencoder + Prox baseline (paper Sec. VI-A).
//
// "The autoencoder consists of the four layers of 1-D convolution with the
// ReLU activation function." We build a convolutional encoder over the
// normalized matrix representation (one channel of length #MACs), funnel it
// into a Dense bottleneck of the embedding dimension, and mirror it for the
// decoder. Training minimizes reconstruction MSE; Embed() returns the
// bottleneck activations.
#pragma once

#include <cstdint>
#include <memory>

#include "common/matrix.h"
#include "nn/model.h"

namespace grafics::baselines {

struct AutoencoderConfig {
  std::size_t dim = 8;          // bottleneck width
  std::size_t conv_channels = 4;
  std::size_t kernel_size = 5;
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;  // Adam
  std::uint64_t seed = 29;
};

class AutoencoderEmbedder {
 public:
  /// Trains on normalized matrix-representation rows (values in [0,1]).
  AutoencoderEmbedder(const Matrix& train, const AutoencoderConfig& config);

  std::size_t dim() const { return config_.dim; }
  double final_loss() const { return final_loss_; }

  /// Bottleneck embedding of rows with the same column layout as `train`.
  Matrix Embed(const Matrix& rows);

 private:
  AutoencoderConfig config_;
  std::size_t input_dim_ = 0;
  nn::Sequential encoder_;
  nn::Sequential decoder_;
  double final_loss_ = 0.0;
};

}  // namespace grafics::baselines
