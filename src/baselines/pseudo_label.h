// Pseudo-labeling for the supervised baselines (paper Sec. VI-A):
// every unlabeled embedding receives the label of its closest labeled
// embedding, so that Scalable-DNN and SAE can be trained on the full set.
#pragma once

#include <optional>
#include <vector>

#include "common/matrix.h"
#include "rf/signal_record.h"

namespace grafics::baselines {

/// Maps floors to dense class indices (sorted ascending floors).
struct FloorIndex {
  std::vector<rf::FloorId> floors;  // class index -> floor

  std::size_t NumClasses() const { return floors.size(); }
  std::size_t ClassOf(rf::FloorId floor) const;
  rf::FloorId FloorOf(std::size_t cls) const;

  static FloorIndex FromLabels(
      const std::vector<std::optional<rf::FloorId>>& labels);
};

/// Returns a dense class label per row: labeled rows keep their own label;
/// unlabeled rows copy the label of the nearest (Euclidean) labeled row.
/// Requires at least one labeled row.
std::vector<std::size_t> PseudoLabel(
    const Matrix& embeddings,
    const std::vector<std::optional<rf::FloorId>>& labels,
    const FloorIndex& index);

}  // namespace grafics::baselines
