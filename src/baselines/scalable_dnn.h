// Scalable-DNN baseline (Kim, Lee & Huang [30], as used in Sec. VI-A).
//
// "Embeddings are first generated through an encoding network, and floor ids
// are predicted as one-hot vectors through a feed-forward floor classifier."
// We pretrain the encoding network as an autoencoder (reconstruction), then
// train the feed-forward classifier on encodings with the encoder frozen.
// The label-aware constructor pseudo-labels unlabeled embeddings with their
// nearest labeled embedding, per the paper's evaluation protocol.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/pseudo_label.h"
#include "common/matrix.h"
#include "nn/model.h"

namespace grafics::baselines {

struct ScalableDnnConfig {
  std::vector<std::size_t> encoder_hidden = {128, 64};
  std::vector<std::size_t> classifier_hidden = {128, 128};
  std::size_t pretrain_epochs = 15;
  std::size_t classifier_epochs = 30;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;  // Adam
  double dropout = 0.2;
  std::uint64_t seed = 37;
};

class ScalableDnn {
 public:
  /// Fully-supervised construction with dense class indices.
  ScalableDnn(const Matrix& train, const std::vector<std::size_t>& classes,
              std::size_t num_classes, const ScalableDnnConfig& config);

  /// Semi-supervised construction: pretrain -> embed -> pseudo-label ->
  /// classifier.
  ScalableDnn(const Matrix& train,
              const std::vector<std::optional<rf::FloorId>>& labels,
              const ScalableDnnConfig& config);

  Matrix Embed(const Matrix& rows);
  std::vector<std::size_t> Predict(const Matrix& rows);
  std::vector<rf::FloorId> PredictFloors(const Matrix& rows);

  std::size_t num_classes() const { return num_classes_; }
  const FloorIndex& floor_index() const { return floor_index_; }

 private:
  void Pretrain(const Matrix& train);
  void TrainClassifier(const Matrix& train,
                       const std::vector<std::size_t>& classes);

  ScalableDnnConfig config_;
  std::size_t input_dim_ = 0;
  std::size_t num_classes_ = 0;
  FloorIndex floor_index_;
  Rng rng_;
  nn::Sequential encoder_;
  nn::Sequential classifier_;
};

}  // namespace grafics::baselines
