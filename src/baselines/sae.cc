#include "baselines/sae.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace grafics::baselines {

namespace {

/// Greedy pretraining of one dense autoencoder layer: learns
/// encode (in -> out, tanh) against a transposed decoder, returns the
/// trained Dense encoder layer and the encoded activations.
std::pair<std::unique_ptr<nn::Dense>, Matrix> PretrainLayer(
    const Matrix& activations, std::size_t out_dim, const SaeConfig& config,
    Rng& rng) {
  nn::Sequential auto_net;
  auto encoder_layer =
      std::make_unique<nn::Dense>(activations.cols(), out_dim, rng);
  nn::Dense* encoder_ptr = encoder_layer.get();
  auto_net.Add(std::move(encoder_layer));
  auto_net.Emplace<nn::Tanh>();
  auto_net.Emplace<nn::Dense>(out_dim, activations.cols(), rng);

  nn::Adam optimizer(config.learning_rate);
  nn::FitConfig fit;
  fit.epochs = config.pretrain_epochs;
  fit.batch_size = config.batch_size;
  fit.shuffle_seed = rng();
  nn::FitRegression(auto_net, optimizer, activations, activations, fit);

  // Extract encoder: reuse the trained Dense + Tanh for the forward pass.
  auto trained = std::make_unique<nn::Dense>(*encoder_ptr);
  Matrix encoded = trained->Forward(activations, /*training=*/false);
  nn::Tanh tanh;
  encoded = tanh.Forward(encoded, /*training=*/false);
  return {std::move(trained), std::move(encoded)};
}

}  // namespace

void SaeClassifier::Pretrain(const Matrix& train) {
  Matrix activations = train;
  for (const std::size_t width : config_.hidden) {
    auto [layer, encoded] = PretrainLayer(activations, width, config_, rng_);
    encoder_.Add(std::move(layer));
    encoder_.Emplace<nn::Tanh>();
    activations = std::move(encoded);
  }
}

void SaeClassifier::TrainHead(const Matrix& train,
                              const std::vector<std::size_t>& classes) {
  head_.Emplace<nn::Dense>(config_.hidden.back(), num_classes_, rng_);

  nn::Adam optimizer(config_.learning_rate);
  std::vector<nn::Parameter*> params = encoder_.Parameters();
  for (nn::Parameter* p : head_.Parameters()) params.push_back(p);

  std::vector<std::size_t> order(train.rows());
  std::iota(order.begin(), order.end(), 0);
  Rng shuffle_rng(config_.seed ^ 0xBEEFULL);
  for (std::size_t epoch = 0; epoch < config_.finetune_epochs; ++epoch) {
    shuffle_rng.Shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config_.batch_size);
      Matrix x(end - start, train.cols());
      std::vector<std::size_t> y(end - start);
      for (std::size_t i = start; i < end; ++i) {
        std::copy(train.Row(order[i]).begin(), train.Row(order[i]).end(),
                  x.Row(i - start).begin());
        y[i - start] = classes[order[i]];
      }
      const Matrix z = encoder_.Forward(x, /*training=*/true);
      const Matrix logits = head_.Forward(z, /*training=*/true);
      nn::LossValue loss = nn::SoftmaxCrossEntropyLoss(logits, y);
      const Matrix grad_z = head_.Backward(loss.gradient);
      encoder_.Backward(grad_z);
      optimizer.Step(params);
    }
  }
}

SaeClassifier::SaeClassifier(const Matrix& train,
                             const std::vector<std::size_t>& classes,
                             std::size_t num_classes, const SaeConfig& config)
    : config_(config),
      input_dim_(train.cols()),
      num_classes_(num_classes),
      rng_(config.seed) {
  Require(train.rows() == classes.size(), "SaeClassifier: label mismatch");
  Require(num_classes >= 1, "SaeClassifier: need >= 1 class");
  // Dense-class construction: floor i <-> class i.
  floor_index_.floors.resize(num_classes);
  std::iota(floor_index_.floors.begin(), floor_index_.floors.end(), 0);
  Pretrain(train);
  TrainHead(train, classes);
}

SaeClassifier::SaeClassifier(
    const Matrix& train,
    const std::vector<std::optional<rf::FloorId>>& labels,
    const SaeConfig& config)
    : config_(config),
      input_dim_(train.cols()),
      floor_index_(FloorIndex::FromLabels(labels)),
      rng_(config.seed) {
  Require(train.rows() == labels.size(), "SaeClassifier: label mismatch");
  num_classes_ = floor_index_.NumClasses();
  Pretrain(train);
  const Matrix embeddings = Embed(train);
  const std::vector<std::size_t> classes =
      PseudoLabel(embeddings, labels, floor_index_);
  TrainHead(train, classes);
}

Matrix SaeClassifier::Embed(const Matrix& rows) {
  Require(rows.cols() == input_dim_, "SaeClassifier::Embed: dim mismatch");
  return encoder_.Forward(rows, /*training=*/false);
}

std::vector<std::size_t> SaeClassifier::Predict(const Matrix& rows) {
  const Matrix z = Embed(rows);
  const Matrix logits = head_.Forward(z, /*training=*/false);
  std::vector<std::size_t> out(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.Row(r);
    out[r] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

std::vector<rf::FloorId> SaeClassifier::PredictFloors(const Matrix& rows) {
  const std::vector<std::size_t> classes = Predict(rows);
  std::vector<rf::FloorId> floors(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    floors[i] = floor_index_.FloorOf(classes[i]);
  }
  return floors;
}

}  // namespace grafics::baselines
