#include "baselines/mds.h"

#include <algorithm>
#include <cmath>

#include "common/eigen.h"
#include "common/error.h"

namespace grafics::baselines {

MdsEmbedder::MdsEmbedder(const Matrix& train, const MdsConfig& config)
    : config_(config) {
  Require(train.rows() >= 2, "MdsEmbedder: need at least two rows");
  Require(config.dim >= 1, "MdsEmbedder: dim must be positive");

  // --- pick landmarks -----------------------------------------------------
  Rng rng(config.seed);
  const std::size_t m = std::min(config.max_landmarks, train.rows());
  const std::vector<std::size_t> picks =
      rng.SampleWithoutReplacement(train.rows(), m);
  landmarks_ = Matrix(m, train.cols());
  for (std::size_t i = 0; i < m; ++i) {
    std::copy(train.Row(picks[i]).begin(), train.Row(picks[i]).end(),
              landmarks_.Row(i).begin());
  }

  // --- squared (1 - cosine) distances among landmarks ---------------------
  Matrix sq_dist(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double d = CosineDistance(landmarks_.Row(i), landmarks_.Row(j));
      sq_dist(i, j) = d * d;
      sq_dist(j, i) = d * d;
    }
  }

  // --- double centering: B = -1/2 J D² J ----------------------------------
  sq_dist_row_mean_.assign(m, 0.0);
  double grand_mean = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) sq_dist_row_mean_[i] += sq_dist(i, j);
    sq_dist_row_mean_[i] /= static_cast<double>(m);
    grand_mean += sq_dist_row_mean_[i];
  }
  grand_mean /= static_cast<double>(m);
  Matrix b(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      b(i, j) = -0.5 * (sq_dist(i, j) - sq_dist_row_mean_[i] -
                        sq_dist_row_mean_[j] + grand_mean);
    }
  }

  // --- top eigenpairs -> projection V Λ^{-1/2} ----------------------------
  const EigenDecomposition eig = JacobiEigenDecomposition(b);
  projection_ = Matrix(m, config_.dim);
  // Eigenvalues that are tiny relative to the leading one carry no signal;
  // including them would multiply centering noise by 1/sqrt(lambda) and blow
  // the embedding up, so their output coordinates stay zero.
  const double lambda_floor =
      std::max(1e-12, 1e-9 * std::max(eig.eigenvalues[0], 0.0));
  for (std::size_t k = 0; k < config_.dim && k < m; ++k) {
    const double lambda = eig.eigenvalues[k];
    if (lambda <= lambda_floor) continue;
    const double inv_sqrt = 1.0 / std::sqrt(lambda);
    for (std::size_t i = 0; i < m; ++i) {
      projection_(i, k) = eig.eigenvectors(i, k) * inv_sqrt;
    }
  }
}

std::vector<double> MdsEmbedder::SquaredDistancesToLandmarks(
    std::span<const double> row) const {
  std::vector<double> sq(landmarks_.rows());
  for (std::size_t i = 0; i < landmarks_.rows(); ++i) {
    const double d = CosineDistance(row, landmarks_.Row(i));
    sq[i] = d * d;
  }
  return sq;
}

Matrix MdsEmbedder::Embed(const Matrix& rows) const {
  Require(rows.cols() == landmarks_.cols(),
          "MdsEmbedder::Embed: column mismatch");
  Matrix out(rows.rows(), config_.dim);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    const std::vector<double> sq = SquaredDistancesToLandmarks(rows.Row(r));
    // Gower out-of-sample: x = 1/2 Λ^{-1/2} Vᵀ (row_means - d²).
    std::vector<double> centered(sq.size());
    for (std::size_t i = 0; i < sq.size(); ++i) {
      centered[i] = 0.5 * (sq_dist_row_mean_[i] - sq[i]);
    }
    const std::vector<double> x = projection_.TransposedMatVec(centered);
    std::copy(x.begin(), x.end(), out.Row(r).begin());
  }
  return out;
}

}  // namespace grafics::baselines
