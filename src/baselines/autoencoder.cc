#include "baselines/autoencoder.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace grafics::baselines {

AutoencoderEmbedder::AutoencoderEmbedder(const Matrix& train,
                                         const AutoencoderConfig& config)
    : config_(config), input_dim_(train.cols()) {
  Require(train.rows() > 0 && train.cols() > 0,
          "AutoencoderEmbedder: empty training matrix");
  Rng rng(config.seed);
  const std::size_t c = config.conv_channels;
  const std::size_t k = config.kernel_size;
  const std::size_t len = input_dim_;

  // Encoder: four 1-D conv layers (1->c->c->c->1 channels) + ReLU, then a
  // Dense funnel to the bottleneck.
  encoder_.Emplace<nn::Conv1D>(1, c, k, len, rng);
  encoder_.Emplace<nn::ReLU>();
  encoder_.Emplace<nn::Conv1D>(c, c, k, len, rng);
  encoder_.Emplace<nn::ReLU>();
  encoder_.Emplace<nn::Conv1D>(c, c, k, len, rng);
  encoder_.Emplace<nn::ReLU>();
  encoder_.Emplace<nn::Conv1D>(c, 1, k, len, rng);
  encoder_.Emplace<nn::ReLU>();
  encoder_.Emplace<nn::Dense>(len, config.dim, rng);

  // Decoder mirror.
  decoder_.Emplace<nn::Dense>(config.dim, len, rng);
  decoder_.Emplace<nn::ReLU>();
  decoder_.Emplace<nn::Conv1D>(1, c, k, len, rng);
  decoder_.Emplace<nn::ReLU>();
  decoder_.Emplace<nn::Conv1D>(c, 1, k, len, rng);
  decoder_.Emplace<nn::Sigmoid>();

  nn::Adam optimizer(config.learning_rate);
  std::vector<nn::Parameter*> params = encoder_.Parameters();
  for (nn::Parameter* p : decoder_.Parameters()) params.push_back(p);

  std::vector<std::size_t> order(train.rows());
  std::iota(order.begin(), order.end(), 0);
  Rng shuffle_rng(config.seed ^ 0xA5A5ULL);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    shuffle_rng.Shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config.batch_size);
      Matrix x(end - start, len);
      for (std::size_t i = start; i < end; ++i) {
        std::copy(train.Row(order[i]).begin(), train.Row(order[i]).end(),
                  x.Row(i - start).begin());
      }
      const Matrix z = encoder_.Forward(x, /*training=*/true);
      const Matrix reconstruction = decoder_.Forward(z, /*training=*/true);
      nn::LossValue loss = nn::MseLoss(reconstruction, x);
      const Matrix grad_z = decoder_.Backward(loss.gradient);
      encoder_.Backward(grad_z);
      optimizer.Step(params);
      epoch_loss += loss.value;
      ++batches;
    }
    final_loss_ = epoch_loss / static_cast<double>(batches);
  }
}

Matrix AutoencoderEmbedder::Embed(const Matrix& rows) {
  Require(rows.cols() == input_dim_, "AutoencoderEmbedder::Embed: dim mismatch");
  return encoder_.Forward(rows, /*training=*/false);
}

}  // namespace grafics::baselines
