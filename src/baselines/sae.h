// SAE baseline: stacked autoencoders + classifier
// (Nowicki & Wietrzykowski [15], as configured by the paper's Sec. VI-A).
//
// A stack of dense autoencoders (256-128-64 by default) is pretrained
// greedily layer by layer on reconstruction, then a softmax classifier head
// is fine-tuned end-to-end. With sparse labels, the paper assigns every
// unlabeled EMBEDDING the label of its nearest labeled embedding (pseudo-
// labeling) before the supervised stage; the label-aware constructor
// implements exactly that order: pretrain -> embed -> pseudo-label -> tune.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/pseudo_label.h"
#include "common/matrix.h"
#include "nn/model.h"

namespace grafics::baselines {

struct SaeConfig {
  std::vector<std::size_t> hidden = {256, 128, 64};
  std::size_t pretrain_epochs = 15;
  std::size_t finetune_epochs = 30;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;  // Adam
  std::uint64_t seed = 31;
};

class SaeClassifier {
 public:
  /// Fully-supervised construction: `classes` holds a dense class index per
  /// row of `train` (normalized matrix-representation rows).
  SaeClassifier(const Matrix& train, const std::vector<std::size_t>& classes,
                std::size_t num_classes, const SaeConfig& config);

  /// Semi-supervised construction (the paper's setting): unlabeled rows get
  /// the pseudo-label of the nearest labeled embedding after pretraining.
  SaeClassifier(const Matrix& train,
                const std::vector<std::optional<rf::FloorId>>& labels,
                const SaeConfig& config);

  /// Encoder output (the learned low-dimensional representation).
  Matrix Embed(const Matrix& rows);

  /// Predicted dense class per row (map through floor_index() for floors).
  std::vector<std::size_t> Predict(const Matrix& rows);
  /// Predicted floors per row.
  std::vector<rf::FloorId> PredictFloors(const Matrix& rows);

  std::size_t num_classes() const { return num_classes_; }
  const FloorIndex& floor_index() const { return floor_index_; }

 private:
  void Pretrain(const Matrix& train);
  void TrainHead(const Matrix& train, const std::vector<std::size_t>& classes);

  SaeConfig config_;
  std::size_t input_dim_ = 0;
  std::size_t num_classes_ = 0;
  FloorIndex floor_index_;
  Rng rng_;
  nn::Sequential encoder_;
  nn::Sequential head_;
};

}  // namespace grafics::baselines
