#include "baselines/scalable_dnn.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace grafics::baselines {

void ScalableDnn::Pretrain(const Matrix& train) {
  Require(!config_.encoder_hidden.empty(), "ScalableDnn: empty encoder");
  std::size_t in_dim = train.cols();
  for (const std::size_t width : config_.encoder_hidden) {
    encoder_.Emplace<nn::Dense>(in_dim, width, rng_);
    encoder_.Emplace<nn::ReLU>();
    in_dim = width;
  }
  nn::Sequential decoder;
  std::vector<std::size_t> mirror(config_.encoder_hidden.begin(),
                                  config_.encoder_hidden.end() - 1);
  std::reverse(mirror.begin(), mirror.end());
  mirror.push_back(train.cols());
  std::size_t dec_in = config_.encoder_hidden.back();
  for (std::size_t i = 0; i < mirror.size(); ++i) {
    decoder.Emplace<nn::Dense>(dec_in, mirror[i], rng_);
    if (i + 1 < mirror.size()) decoder.Emplace<nn::ReLU>();
    dec_in = mirror[i];
  }

  nn::Adam optimizer(config_.learning_rate);
  std::vector<nn::Parameter*> params = encoder_.Parameters();
  for (nn::Parameter* p : decoder.Parameters()) params.push_back(p);
  std::vector<std::size_t> order(train.rows());
  std::iota(order.begin(), order.end(), 0);
  Rng shuffle_rng(config_.seed ^ 0xFACEULL);
  for (std::size_t epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
    shuffle_rng.Shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config_.batch_size);
      Matrix x(end - start, train.cols());
      for (std::size_t i = start; i < end; ++i) {
        std::copy(train.Row(order[i]).begin(), train.Row(order[i]).end(),
                  x.Row(i - start).begin());
      }
      const Matrix z = encoder_.Forward(x, /*training=*/true);
      const Matrix reconstruction = decoder.Forward(z, /*training=*/true);
      nn::LossValue loss = nn::MseLoss(reconstruction, x);
      const Matrix grad_z = decoder.Backward(loss.gradient);
      encoder_.Backward(grad_z);
      optimizer.Step(params);
    }
  }
}

void ScalableDnn::TrainClassifier(const Matrix& train,
                                  const std::vector<std::size_t>& classes) {
  std::size_t cls_in = config_.encoder_hidden.back();
  for (const std::size_t width : config_.classifier_hidden) {
    classifier_.Emplace<nn::Dense>(cls_in, width, rng_);
    classifier_.Emplace<nn::ReLU>();
    classifier_.Emplace<nn::Dropout>(config_.dropout, rng_());
    cls_in = width;
  }
  classifier_.Emplace<nn::Dense>(cls_in, num_classes_, rng_);

  const Matrix encoded = encoder_.Forward(train, /*training=*/false);
  nn::Adam optimizer(config_.learning_rate);
  nn::FitConfig fit;
  fit.epochs = config_.classifier_epochs;
  fit.batch_size = config_.batch_size;
  fit.shuffle_seed = config_.seed ^ 0xD00DULL;
  nn::FitClassifier(classifier_, optimizer, encoded, classes, fit);
}

ScalableDnn::ScalableDnn(const Matrix& train,
                         const std::vector<std::size_t>& classes,
                         std::size_t num_classes,
                         const ScalableDnnConfig& config)
    : config_(config),
      input_dim_(train.cols()),
      num_classes_(num_classes),
      rng_(config.seed) {
  Require(train.rows() == classes.size(), "ScalableDnn: label mismatch");
  floor_index_.floors.resize(num_classes);
  std::iota(floor_index_.floors.begin(), floor_index_.floors.end(), 0);
  Pretrain(train);
  TrainClassifier(train, classes);
}

ScalableDnn::ScalableDnn(
    const Matrix& train,
    const std::vector<std::optional<rf::FloorId>>& labels,
    const ScalableDnnConfig& config)
    : config_(config),
      input_dim_(train.cols()),
      floor_index_(FloorIndex::FromLabels(labels)),
      rng_(config.seed) {
  Require(train.rows() == labels.size(), "ScalableDnn: label mismatch");
  num_classes_ = floor_index_.NumClasses();
  Pretrain(train);
  const Matrix embeddings = Embed(train);
  const std::vector<std::size_t> classes =
      PseudoLabel(embeddings, labels, floor_index_);
  TrainClassifier(train, classes);
}

Matrix ScalableDnn::Embed(const Matrix& rows) {
  Require(rows.cols() == input_dim_, "ScalableDnn::Embed: dim mismatch");
  return encoder_.Forward(rows, /*training=*/false);
}

std::vector<std::size_t> ScalableDnn::Predict(const Matrix& rows) {
  const Matrix z = Embed(rows);
  return nn::PredictClasses(classifier_, z);
}

std::vector<rf::FloorId> ScalableDnn::PredictFloors(const Matrix& rows) {
  const std::vector<std::size_t> classes = Predict(rows);
  std::vector<rf::FloorId> floors(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    floors[i] = floor_index_.FloorOf(classes[i]);
  }
  return floors;
}

}  // namespace grafics::baselines
