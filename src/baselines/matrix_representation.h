// Fixed-length matrix representation of RF records (the representation the
// paper argues against, Sec. II / Fig. 14).
//
// Rows are records, columns are the distinct MACs of the TRAINING set, and
// missing entries are imputed with -120 dBm — exactly the scheme the paper
// evaluates. Test-time records are projected onto the training columns;
// never-seen MACs are dropped.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/matrix.h"
#include "rf/signal_record.h"

namespace grafics::baselines {

class MatrixRepresentation {
 public:
  static constexpr double kMissingDbm = -120.0;

  /// Fixes the column vocabulary from the training records.
  explicit MatrixRepresentation(const std::vector<rf::SignalRecord>& train);

  std::size_t num_columns() const { return column_of_mac_.size(); }

  /// (n, num_columns) matrix for any record list, imputed with -120 dBm.
  Matrix ToMatrix(const std::vector<rf::SignalRecord>& records) const;

  /// Single-record row (for online paths).
  std::vector<double> ToRow(const rf::SignalRecord& record) const;

  /// Min-max normalizes a matrix built by ToMatrix into [0, 1] per the
  /// global dBm range [-120, -20]; neural baselines train on this scale.
  static Matrix Normalize(const Matrix& raw);

 private:
  std::unordered_map<rf::MacAddress, std::size_t> column_of_mac_;
};

}  // namespace grafics::baselines
