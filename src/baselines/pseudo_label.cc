#include "baselines/pseudo_label.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace grafics::baselines {

std::size_t FloorIndex::ClassOf(rf::FloorId floor) const {
  const auto it = std::lower_bound(floors.begin(), floors.end(), floor);
  Require(it != floors.end() && *it == floor,
          "FloorIndex::ClassOf: unknown floor");
  return static_cast<std::size_t>(it - floors.begin());
}

rf::FloorId FloorIndex::FloorOf(std::size_t cls) const {
  Require(cls < floors.size(), "FloorIndex::FloorOf: class out of range");
  return floors[cls];
}

FloorIndex FloorIndex::FromLabels(
    const std::vector<std::optional<rf::FloorId>>& labels) {
  FloorIndex index;
  for (const auto& label : labels) {
    if (label) index.floors.push_back(*label);
  }
  std::sort(index.floors.begin(), index.floors.end());
  index.floors.erase(
      std::unique(index.floors.begin(), index.floors.end()),
      index.floors.end());
  Require(!index.floors.empty(), "FloorIndex: no labeled samples");
  return index;
}

std::vector<std::size_t> PseudoLabel(
    const Matrix& embeddings,
    const std::vector<std::optional<rf::FloorId>>& labels,
    const FloorIndex& index) {
  Require(embeddings.rows() == labels.size(),
          "PseudoLabel: embeddings/labels size mismatch");
  std::vector<std::size_t> labeled_rows;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i]) labeled_rows.push_back(i);
  }
  Require(!labeled_rows.empty(), "PseudoLabel: need >= 1 labeled row");

  std::vector<std::size_t> classes(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i]) {
      classes[i] = index.ClassOf(*labels[i]);
      continue;
    }
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_row = labeled_rows.front();
    for (const std::size_t j : labeled_rows) {
      const double d =
          SquaredL2Distance(embeddings.Row(i), embeddings.Row(j));
      if (d < best) {
        best = d;
        best_row = j;
      }
    }
    classes[i] = index.ClassOf(*labels[best_row]);
  }
  return classes;
}

}  // namespace grafics::baselines
