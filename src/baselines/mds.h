// MDS + Prox baseline (paper Sec. VI-A).
//
// Classical (Torgerson) multidimensional scaling over the 1 − cosine
// distance between matrix-representation rows, exactly as the paper
// configures it. To stay tractable on crowdsourced-scale corpora we use the
// standard Landmark-MDS reduction: classical MDS on up to `max_landmarks`
// sampled rows (Jacobi eigendecomposition), then the Gower out-of-sample
// formula embeds every remaining row — including unseen test records.
#pragma once

#include <cstdint>

#include "common/matrix.h"
#include "common/rng.h"

namespace grafics::baselines {

struct MdsConfig {
  std::size_t dim = 8;
  std::size_t max_landmarks = 400;
  std::uint64_t seed = 17;
};

class MdsEmbedder {
 public:
  /// Fits landmark classical MDS on the rows of `train`.
  MdsEmbedder(const Matrix& train, const MdsConfig& config);

  std::size_t dim() const { return config_.dim; }

  /// Embeds arbitrary rows with the same column layout as `train`.
  Matrix Embed(const Matrix& rows) const;

 private:
  std::vector<double> SquaredDistancesToLandmarks(
      std::span<const double> row) const;

  MdsConfig config_;
  Matrix landmarks_;                  // raw landmark rows
  Matrix projection_;                 // (num_landmarks, dim): V Λ^{-1/2}
  std::vector<double> sq_dist_row_mean_;  // row means of landmark D²
};

}  // namespace grafics::baselines
