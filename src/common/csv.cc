#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace grafics {

CsvRow ParseCsvLine(const std::string& line) {
  CsvRow fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current.push_back(c);
    }
  }
  Require(!in_quotes, "ParseCsvLine: unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const CsvRow& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    const bool needs_quotes = f.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
      out += f;
      continue;
    }
    out.push_back('"');
    for (char c : f) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

std::vector<CsvRow> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  Require(in.good(), "ReadCsvFile: cannot open " + path);
  std::vector<CsvRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

void WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  Require(out.good(), "WriteCsvFile: cannot open " + path);
  for (const CsvRow& row : rows) out << FormatCsvLine(row) << '\n';
  Require(out.good(), "WriteCsvFile: write failed for " + path);
}

}  // namespace grafics
