// Dense row-major matrix and small vector-math helpers.
//
// This is the numeric workhorse shared by the embedding trainer, the neural
// substrate and the baselines. It deliberately stays small: double storage,
// row-major, bounds-checked accessors in debug builds, and the handful of
// BLAS-level-2/3 operations the library needs. All inner loops (dot, axpy,
// squared distance, the mat-vec products) dispatch through the vector-kernel
// layer in common/simd.h, which selects scalar/AVX2/NEON once per process;
// these span-based wrappers add the dimension checks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace grafics {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(std::size_t n);
  /// Entries i.i.d. uniform in [lo, hi).
  static Matrix Random(std::size_t rows, std::size_t cols, Rng& rng,
                       double lo = -0.5, double hi = 0.5);
  /// Entries i.i.d. normal(0, stddev).
  static Matrix RandomNormal(std::size_t rows, std::size_t cols, Rng& rng,
                             double stddev);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws grafics::Error).
  double& At(std::size_t r, std::size_t c);
  double At(std::size_t r, std::size_t c) const;

  std::span<double> Row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> Row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double value);
  Matrix Transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

  /// Matrix product (this * other).
  Matrix MatMul(const Matrix& other) const;
  /// Matrix-vector product.
  std::vector<double> MatVec(std::span<const double> x) const;
  /// this^T * x  (x has rows() entries, result has cols()).
  std::vector<double> TransposedMatVec(std::span<const double> x) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// --- free vector helpers (operate on spans so both Matrix rows and
//     std::vector can be passed) -------------------------------------------

double Dot(std::span<const double> a, std::span<const double> b);
double SquaredL2Distance(std::span<const double> a, std::span<const double> b);
double L2Norm(std::span<const double> a);
/// 1 - cosine similarity; returns 1 for zero vectors (maximally dissimilar
/// by convention, matching the MDS baseline in the paper).
double CosineDistance(std::span<const double> a, std::span<const double> b);
/// y += alpha * x
void Axpy(double alpha, std::span<const double> x, std::span<double> y);
void Scale(std::span<double> x, double alpha);
/// Numerically-stable logistic function.
double Sigmoid(double x);

}  // namespace grafics
