#include "common/thread_pool.h"

#include <algorithm>

#include "common/error.h"

namespace grafics {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(&mutex_);
    stopping_ = true;
  }
  condition_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const MutexLock lock(&mutex_);
    Require(!stopping_, "ThreadPool::Submit after shutdown");
    tasks_.push(std::move(packaged));
  }
  condition_.NotifyOne();
  return future;
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, num_threads());
  const std::size_t chunk_size = (total + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(Submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  for (auto& future : futures) future.get();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      const MutexLock lock(&mutex_);
      while (!stopping_ && tasks_.empty()) condition_.Wait(mutex_);
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace grafics
