// Deterministic, fast pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit 64-bit seed so
// experiments are reproducible bit-for-bit. We hand-roll xoshiro256** (public
// domain algorithm by Blackman & Vigna) seeded through SplitMix64 rather than
// relying on std::mt19937_64 stream details, and expose the distribution
// helpers the library actually needs.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace grafics {

/// SplitMix64 step: used for seeding and for cheap stateless hashing.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { Reseed(seed); }

  void Reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t NextIndex(std::uint64_t n) {
    Require(n > 0, "Rng::NextIndex: n must be positive");
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    Require(lo <= hi, "Rng::UniformInt: empty range");
    return lo + static_cast<std::int64_t>(
                    NextIndex(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state simple).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = NextIndex(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k) {
    Require(k <= n, "Rng::SampleWithoutReplacement: k > n");
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + NextIndex(n - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace grafics
