// Portable vector-kernel layer for the inference/fold hot path.
//
// Every per-query and per-fold cycle in GRAFICS bottoms out in three
// BLAS-level-1 loops — dot products, axpy, and squared-L2 distances — called
// from the online-refinement SGD inner loop (embed/trainer.cc), the
// centroid/kNN distance scans (cluster/), and agglomeration
// (cluster/proximity_clusterer.cc). This header is the single place those
// loops are implemented: a scalar reference backend plus AVX2 (x86) and NEON
// (aarch64) implementations behind one function-pointer table, selected once
// per process.
//
// Shapes: the one-to-one kernels (Dot / SquaredL2Distance / Axpy) operate on
// raw contiguous arrays; the one-to-many kernels (DotMany /
// SquaredL2DistanceMany) scan one query row against a contiguous row-major
// block — the shape the centroid and kNN classifiers actually have — so a
// whole scan is one call with no per-row span slicing.
//
// Determinism policy (see docs/performance.md):
//  * The scalar backend is bit-identical to the pre-SIMD hand-written loops:
//    same accumulation order, and its translation unit is compiled with
//    -ffp-contract=off so no FMA contraction can change a rounding.
//  * The backend is resolved ONCE per process (first kernel call or explicit
//    PinBackend) and never changes afterwards on the production path, so a
//    journal replay or a replica folding the same batches computes
//    bit-identical models within that process — and across processes that
//    pin the same backend via GRAFICS_SIMD.
//  * SIMD backends reorder the reduction (lane-wise partial sums), so their
//    Dot/SquaredL2Distance results may differ from scalar in the last bits;
//    parity is tested to 1e-12 relative tolerance. Axpy is element-wise with
//    no reduction, so every backend is bit-identical to scalar there.
//
// Selection order: PinBackend() if called before first use, else the
// GRAFICS_SIMD environment variable (scalar|avx2|neon), else the best
// backend the CPU supports. An explicitly requested backend that this build
// or CPU cannot run falls back to scalar with a one-line stderr warning —
// a fleet-wide GRAFICS_SIMD=avx2 must not crash the one NEON box — while
// the daemon's --simd flag treats unavailability as a hard error.
#pragma once

#include <cstddef>

namespace grafics::simd {

enum class Backend { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Stable lowercase name ("scalar", "avx2", "neon") — the GRAFICS_SIMD
/// vocabulary, the --simd flag vocabulary, and the obs gauge label.
const char* BackendName(Backend backend);

/// Parses a BackendName string. Throws grafics::Error on anything else.
Backend ParseBackendName(const char* name);

/// One backend's kernel implementations. All pointers are non-null.
/// No bounds checks here: callers (common/matrix.cc free functions, the
/// trainer, the classifiers) validate sizes before dispatch.
struct Kernels {
  double (*dot)(const double* a, const double* b, std::size_t n);
  double (*squared_l2_distance)(const double* a, const double* b,
                                std::size_t n);
  /// y += alpha * x
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);
  /// out[r] = dot(query, rows + r * cols) for r in [0, num_rows).
  void (*dot_many)(const double* query, const double* rows,
                   std::size_t num_rows, std::size_t cols, double* out);
  /// out[r] = squared_l2_distance(query, rows + r * cols).
  void (*squared_l2_distance_many)(const double* query, const double* rows,
                                   std::size_t num_rows, std::size_t cols,
                                   double* out);
};

/// Kernel table for `backend`, or nullptr when this build/CPU cannot run it
/// (e.g. kAvx2 on aarch64). The scalar table is always available. Used by
/// the parity tests to exercise every backend without re-pinning the
/// process-wide dispatch.
const Kernels* KernelsFor(Backend backend);

/// The process-wide active backend, resolving it on first call (see the
/// selection order above). Stable for the remainder of the process unless
/// PinBackend is called (tests only, on the production path the daemon pins
/// before any kernel runs).
Backend ActiveBackend();

/// Pins the process-wide backend explicitly, overriding GRAFICS_SIMD and
/// auto-detection. Returns false (and leaves the dispatch untouched) when
/// the backend is unavailable on this build/CPU. The daemon calls this for
/// --simd before loading models; tests use it to anchor scalar bit-identity.
bool PinBackend(Backend backend);

// --- hot-path entry points -------------------------------------------------
// Thin dispatch through the active table. `n`/`cols` may be zero.

double Dot(const double* a, const double* b, std::size_t n);
double SquaredL2Distance(const double* a, const double* b, std::size_t n);
void Axpy(double alpha, const double* x, double* y, std::size_t n);
void DotMany(const double* query, const double* rows, std::size_t num_rows,
             std::size_t cols, double* out);
void SquaredL2DistanceMany(const double* query, const double* rows,
                           std::size_t num_rows, std::size_t cols,
                           double* out);

namespace internal {
/// Backend factories (simd_avx2.cc / simd_neon.cc): the backend's kernel
/// table when this build target AND this CPU can run it, else nullptr.
const Kernels* Avx2Kernels();
const Kernels* NeonKernels();
}  // namespace internal

}  // namespace grafics::simd
