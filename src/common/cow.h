// Persistent (copy-on-write) chunked containers for structurally shared
// model snapshots.
//
// The serving stack forks the trained model on every ingest fold-in
// (Grafics::Clone) and keeps the parent snapshot serving while the fork is
// mutated and published. A deep copy makes that fork O(model); these
// containers make it O(1): storage is split into fixed-size chunks held
// through shared_ptr, copying a container copies one pointer (the chunk
// table), and the first write to a chunk after a fork copies just that
// chunk. A fold-in batch therefore pays O(delta * chunk) instead of
// O(model), and parent + fork share every untouched chunk byte-for-byte.
//
// Thread-safety contract (the same one BipartiteGraph/EmbeddingStore always
// had): concurrent const reads are safe, including against other forks being
// mutated — a mutator always observes use_count > 1 for anything a reader
// can still reach and copies before writing. Mutating and copying the SAME
// object concurrently is not allowed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/matrix.h"

namespace grafics {

/// Heap-byte split for structurally shared state: a chunk referenced by more
/// than one snapshot counts as shared, a chunk owned exclusively counts as
/// owned. Surfaced through ModelStats so the sharing is observable.
struct CowBytes {
  std::size_t shared_bytes = 0;
  std::size_t owned_bytes = 0;

  CowBytes& operator+=(const CowBytes& other) {
    shared_bytes += other.shared_bytes;
    owned_bytes += other.owned_bytes;
    return *this;
  }
};

/// Append-mostly vector with chunked copy-on-write storage. Reads are O(1)
/// (two pointer hops); copies are O(1); point writes copy at most one chunk.
template <typename T, std::size_t kChunkSize = 256>
class CowVector {
  static_assert(kChunkSize > 0, "CowVector: chunk size must be positive");

 public:
  CowVector() : table_(std::make_shared<Table>()) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](std::size_t i) const {
    return (*(*table_)[i / kChunkSize])[i % kChunkSize];
  }

  /// Mutable element access; copies the chunk table and/or the element's
  /// chunk first when they are shared with another snapshot.
  T& MutableAt(std::size_t i) {
    Require(i < size_, "CowVector::MutableAt: index out of range");
    return MutableChunk(i / kChunkSize)[i % kChunkSize];
  }

  void PushBack(T value) {
    EnsureOwnedTable();
    if (size_ % kChunkSize == 0) {
      auto chunk = std::make_shared<Chunk>();
      chunk->reserve(kChunkSize);
      table_->push_back(std::move(chunk));
    }
    MutableChunk(size_ / kChunkSize).push_back(std::move(value));
    ++size_;
  }

  /// Identity of the chunk backing element `i` (aliasing tests: two forks
  /// share storage for `i` iff their chunk addresses are equal).
  const void* ChunkAddress(std::size_t i) const {
    return (*table_)[i / kChunkSize].get();
  }

  std::size_t num_chunks() const { return table_->size(); }

  /// Identity of chunk `c`; two snapshots share chunk `c` iff equal.
  const void* ChunkIdentity(std::size_t c) const { return (*table_)[c].get(); }

  /// Read-only view of chunk `c`'s elements (delta serialization).
  std::span<const T> ChunkSpan(std::size_t c) const {
    const Chunk& chunk = *(*table_)[c];
    return {chunk.data(), chunk.size()};
  }

  /// Indices of chunks whose backing storage differs from `base` — exactly
  /// the chunks a delta checkpoint against `base` must carry. A chunk is
  /// skipped only when both tables hold the very same heap block at the
  /// same index, so the result is O(owned chunks), never a content scan.
  std::vector<std::size_t> DiffChunksAgainst(const CowVector& base) const {
    std::vector<std::size_t> diff;
    for (std::size_t c = 0; c < table_->size(); ++c) {
      if (c >= base.table_->size() || (*table_)[c] != (*base.table_)[c]) {
        diff.push_back(c);
      }
    }
    return diff;
  }

  /// Grows the logical size, leaving new chunk slots empty: every chunk
  /// whose contents differ from the loaded base must then arrive through
  /// ApplyChunk before the container is read (delta checkpoint load).
  void ResizeForDelta(std::size_t new_size) {
    Require(new_size >= size_, "CowVector::ResizeForDelta: cannot shrink");
    EnsureOwnedTable();
    size_ = new_size;
    table_->resize(new_size == 0 ? 0
                                 : (new_size + kChunkSize - 1) / kChunkSize);
  }

  /// Replaces chunk `c` wholesale (delta checkpoint load). `values` must be
  /// exactly the chunk's element count at the current size.
  void ApplyChunk(std::size_t c, std::vector<T> values) {
    Require(c < table_->size(), "CowVector::ApplyChunk: chunk out of range");
    const std::size_t expected = std::min(kChunkSize, size_ - c * kChunkSize);
    Require(values.size() == expected,
            "CowVector::ApplyChunk: element count mismatch");
    EnsureOwnedTable();
    (*table_)[c] = std::make_shared<Chunk>(std::move(values));
  }

  bool operator==(const CowVector& other) const {
    if (size_ != other.size_) return false;
    for (std::size_t i = 0; i < size_; ++i) {
      if (!((*this)[i] == other[i])) return false;
    }
    return true;
  }

  /// Chunk-granular heap accounting; `element_bytes` reports the extra heap
  /// owned by one element (0 for flat types). A chunk is shared when the
  /// whole table is (a fork copied the table pointer) or when the chunk
  /// itself survived a table split.
  template <typename ElementBytesFn>
  CowBytes MemoryBytes(ElementBytesFn&& element_bytes) const {
    CowBytes bytes;
    const bool table_shared = table_.use_count() > 1;
    for (const std::shared_ptr<Chunk>& chunk : *table_) {
      std::size_t b = chunk->capacity() * sizeof(T);
      for (const T& item : *chunk) b += element_bytes(item);
      (table_shared || chunk.use_count() > 1 ? bytes.shared_bytes
                                             : bytes.owned_bytes) += b;
    }
    return bytes;
  }

  CowBytes MemoryBytes() const {
    return MemoryBytes([](const T&) { return std::size_t{0}; });
  }

 private:
  using Chunk = std::vector<T>;
  using Table = std::vector<std::shared_ptr<Chunk>>;

  void EnsureOwnedTable() {
    if (table_.use_count() > 1) table_ = std::make_shared<Table>(*table_);
  }

  Chunk& MutableChunk(std::size_t chunk_index) {
    EnsureOwnedTable();
    std::shared_ptr<Chunk>& slot = (*table_)[chunk_index];
    if (slot.use_count() > 1) {
      auto copy = std::make_shared<Chunk>();
      copy->reserve(kChunkSize);
      copy->assign(slot->begin(), slot->end());
      slot = std::move(copy);
    }
    return *slot;
  }

  std::shared_ptr<Table> table_;
  std::size_t size_ = 0;
};

/// Row-major matrix of doubles with rows grouped into copy-on-write chunks.
/// The embedding-table sibling of CowVector: appending rows (online updates)
/// extends only the tail chunk, writing a row copies only its chunk, and
/// forking shares everything.
class CowMatrix {
 public:
  static constexpr std::size_t kRowsPerChunk = 256;

  CowMatrix() : table_(std::make_shared<Table>()) {}
  explicit CowMatrix(std::size_t cols) : CowMatrix() { cols_ = cols; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::span<const double> Row(std::size_t r) const {
    const Chunk& chunk = *(*table_)[r / kRowsPerChunk];
    return {chunk.data() + (r % kRowsPerChunk) * cols_, cols_};
  }

  /// Mutable row access; copies the row's chunk first when it is shared.
  std::span<double> MutableRow(std::size_t r) {
    Require(r < rows_, "CowMatrix::MutableRow: row out of range");
    Chunk& chunk = MutableChunk(r / kRowsPerChunk);
    return {chunk.data() + (r % kRowsPerChunk) * cols_, cols_};
  }

  /// Appends `count` zero-filled rows; only the tail chunk is copied when
  /// shared, new chunks are allocated at full capacity to avoid churn.
  void AppendRows(std::size_t count) {
    Require(cols_ > 0, "CowMatrix::AppendRows: matrix has no columns");
    EnsureOwnedTable();
    while (count > 0) {
      if (rows_ % kRowsPerChunk == 0) {
        auto chunk = std::make_shared<Chunk>();
        chunk->reserve(kRowsPerChunk * cols_);
        table_->push_back(std::move(chunk));
      }
      const std::size_t in_chunk = rows_ % kRowsPerChunk;
      const std::size_t take = std::min(count, kRowsPerChunk - in_chunk);
      MutableChunk(rows_ / kRowsPerChunk)
          .resize((in_chunk + take) * cols_, 0.0);
      rows_ += take;
      count -= take;
    }
  }

  /// Dense materialization (diagnostics, serialization, tests). O(size).
  Matrix ToMatrix() const {
    Matrix dense(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::span<const double> row = Row(r);
      std::copy(row.begin(), row.end(), dense.Row(r).begin());
    }
    return dense;
  }

  static CowMatrix FromMatrix(const Matrix& dense) {
    CowMatrix m(dense.cols());
    if (dense.rows() == 0) return m;
    m.AppendRows(dense.rows());
    for (std::size_t r = 0; r < dense.rows(); ++r) {
      const std::span<const double> row = dense.Row(r);
      std::copy(row.begin(), row.end(), m.MutableRow(r).begin());
    }
    return m;
  }

  std::size_t num_chunks() const { return table_->size(); }

  /// Identity of chunk `c`; two snapshots share chunk `c` iff equal.
  const void* ChunkIdentity(std::size_t c) const { return (*table_)[c].get(); }

  /// Read-only view of chunk `c`'s flattened rows (delta serialization).
  std::span<const double> ChunkSpan(std::size_t c) const {
    const Chunk& chunk = *(*table_)[c];
    return {chunk.data(), chunk.size()};
  }

  /// Chunks whose backing storage differs from `base` — the chunks a delta
  /// checkpoint must carry. Pointer comparison only, O(chunks).
  std::vector<std::size_t> DiffChunksAgainst(const CowMatrix& base) const {
    std::vector<std::size_t> diff;
    for (std::size_t c = 0; c < table_->size(); ++c) {
      if (c >= base.table_->size() || (*table_)[c] != (*base.table_)[c]) {
        diff.push_back(c);
      }
    }
    return diff;
  }

  /// Grows the logical row count, leaving new chunk slots empty until
  /// ApplyChunk fills them (delta checkpoint load).
  void ResizeForDelta(std::size_t new_rows) {
    Require(new_rows >= rows_, "CowMatrix::ResizeForDelta: cannot shrink");
    Require(cols_ > 0 || new_rows == 0,
            "CowMatrix::ResizeForDelta: matrix has no columns");
    EnsureOwnedTable();
    rows_ = new_rows;
    table_->resize(
        new_rows == 0 ? 0 : (new_rows + kRowsPerChunk - 1) / kRowsPerChunk);
  }

  /// Replaces chunk `c` wholesale (delta checkpoint load). `values` must
  /// hold exactly the chunk's rows * cols doubles at the current size.
  void ApplyChunk(std::size_t c, std::vector<double> values) {
    Require(c < table_->size(), "CowMatrix::ApplyChunk: chunk out of range");
    const std::size_t chunk_rows =
        std::min(kRowsPerChunk, rows_ - c * kRowsPerChunk);
    Require(values.size() == chunk_rows * cols_,
            "CowMatrix::ApplyChunk: element count mismatch");
    EnsureOwnedTable();
    (*table_)[c] = std::make_shared<Chunk>(std::move(values));
  }

  bool operator==(const CowMatrix& other) const {
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::span<const double> a = Row(r);
      const std::span<const double> b = other.Row(r);
      if (!std::equal(a.begin(), a.end(), b.begin())) return false;
    }
    return true;
  }

  CowBytes MemoryBytes() const {
    CowBytes bytes;
    const bool table_shared = table_.use_count() > 1;
    for (const std::shared_ptr<Chunk>& chunk : *table_) {
      const std::size_t b = chunk->capacity() * sizeof(double);
      (table_shared || chunk.use_count() > 1 ? bytes.shared_bytes
                                             : bytes.owned_bytes) += b;
    }
    return bytes;
  }

 private:
  using Chunk = std::vector<double>;
  using Table = std::vector<std::shared_ptr<Chunk>>;

  void EnsureOwnedTable() {
    if (table_.use_count() > 1) table_ = std::make_shared<Table>(*table_);
  }

  Chunk& MutableChunk(std::size_t chunk_index) {
    EnsureOwnedTable();
    std::shared_ptr<Chunk>& slot = (*table_)[chunk_index];
    if (slot.use_count() > 1) {
      auto copy = std::make_shared<Chunk>();
      copy->reserve(kRowsPerChunk * cols_);
      copy->assign(slot->begin(), slot->end());
      slot = std::move(copy);
    }
    return *slot;
  }

  std::shared_ptr<Table> table_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace grafics
