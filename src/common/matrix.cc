#include "common/matrix.h"

#include <cmath>

#include "common/simd.h"

namespace grafics {

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Random(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                      double hi) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::RandomNormal(std::size_t rows, std::size_t cols, Rng& rng,
                            double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Normal(0.0, stddev);
  return m;
}

double& Matrix::At(std::size_t r, std::size_t c) {
  Require(r < rows_ && c < cols_, "Matrix::At: index out of range");
  return (*this)(r, c);
}

double Matrix::At(std::size_t r, std::size_t c) const {
  Require(r < rows_ && c < cols_, "Matrix::At: index out of range");
  return (*this)(r, c);
}

void Matrix::Fill(double value) {
  for (double& v : data_) v = value;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  Require(rows_ == other.rows_ && cols_ == other.cols_,
          "Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  Require(rows_ == other.rows_ && cols_ == other.cols_,
          "Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  Require(cols_ == other.rows_, "Matrix::MatMul: inner dimension mismatch");
  Matrix out(rows_, other.cols_);
  // ikj loop order for cache-friendly access to `other` and `out`. The zero
  // skip stays ahead of the kernel call: sparse inputs (one-hot batches) skip
  // whole rows, and `0.0 * b` would still have to run to honour NaN/inf
  // propagation if it went through axpy.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.data() + k * other.cols_;
      double* orow = out.data() + i * other.cols_;
      simd::Axpy(a, brow, orow, other.cols_);
    }
  }
  return out;
}

std::vector<double> Matrix::MatVec(std::span<const double> x) const {
  Require(x.size() == cols_, "Matrix::MatVec: dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  simd::DotMany(x.data(), data(), rows_, cols_, y.data());
  return y;
}

std::vector<double> Matrix::TransposedMatVec(std::span<const double> x) const {
  Require(x.size() == rows_, "Matrix::TransposedMatVec: dimension mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    simd::Axpy(x[r], data() + r * cols_, y.data(), cols_);
  }
  return y;
}

double Matrix::FrobeniusNorm() const {
  return std::sqrt(simd::Dot(data(), data(), data_.size()));
}

double Dot(std::span<const double> a, std::span<const double> b) {
  Require(a.size() == b.size(), "Dot: dimension mismatch");
  return simd::Dot(a.data(), b.data(), a.size());
}

double SquaredL2Distance(std::span<const double> a,
                         std::span<const double> b) {
  Require(a.size() == b.size(), "SquaredL2Distance: dimension mismatch");
  return simd::SquaredL2Distance(a.data(), b.data(), a.size());
}

double L2Norm(std::span<const double> a) { return std::sqrt(Dot(a, a)); }

double CosineDistance(std::span<const double> a, std::span<const double> b) {
  const double na = L2Norm(a);
  const double nb = L2Norm(b);
  if (na == 0.0 || nb == 0.0) return 1.0;
  return 1.0 - Dot(a, b) / (na * nb);
}

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  Require(x.size() == y.size(), "Axpy: dimension mismatch");
  simd::Axpy(alpha, x.data(), y.data(), x.size());
}

void Scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

}  // namespace grafics
