// AVX2 kernels (x86-64), compiled via the per-function target attribute so
// the rest of the build needs no -mavx2 flag, and dispatched only after a
// runtime __builtin_cpu_supports("avx2") check.
//
// Rounding notes: reductions (dot, squared distance) keep four lane-wise
// partial sums and collapse them in a fixed (l0+l1)+(l2+l3) order, so their
// results can differ from scalar in the last bits (parity-tested to 1e-12
// relative). Axpy is pure element-wise multiply-then-add — the exact same
// two roundings as the scalar loop — so it is bit-identical to scalar; no
// FMA is used anywhere (AVX2 does not imply FMA, and this TU is compiled
// with -ffp-contract=off like the scalar anchor).
#include "common/simd.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define GRAFICS_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace grafics::simd::internal {

#if defined(GRAFICS_SIMD_HAVE_AVX2)

namespace {

__attribute__((target("avx2"))) double Avx2Dot(const double* a,
                                               const double* b,
                                               std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2"))) double Avx2SquaredL2Distance(const double* a,
                                                             const double* b,
                                                             std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2"))) void Avx2Axpy(double alpha, const double* x,
                                              double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void Avx2DotMany(const double* query,
                                                 const double* rows,
                                                 std::size_t num_rows,
                                                 std::size_t cols,
                                                 double* out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = Avx2Dot(query, rows + r * cols, cols);
  }
}

__attribute__((target("avx2"))) void Avx2SquaredL2DistanceMany(
    const double* query, const double* rows, std::size_t num_rows,
    std::size_t cols, double* out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = Avx2SquaredL2Distance(query, rows + r * cols, cols);
  }
}

constexpr Kernels kAvx2Kernels = {
    Avx2Dot,
    Avx2SquaredL2Distance,
    Avx2Axpy,
    Avx2DotMany,
    Avx2SquaredL2DistanceMany,
};

}  // namespace

const Kernels* Avx2Kernels() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
}

#else  // !GRAFICS_SIMD_HAVE_AVX2

const Kernels* Avx2Kernels() { return nullptr; }

#endif

}  // namespace grafics::simd::internal
