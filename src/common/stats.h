// Small descriptive-statistics helpers used by dataset analysis and the
// benchmark harness (CDFs for Fig. 1, means/stddevs for every figure).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace grafics {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1); 0 when count < 2
  double min = 0.0;
  double max = 0.0;
};

Summary Summarize(std::span<const double> values);

/// Empirical quantile with linear interpolation; q in [0, 1].
double Quantile(std::vector<double> values, double q);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cumulative_probability = 0.0;
};

/// Empirical CDF of `values` evaluated at each distinct sorted value.
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values);

/// Fraction of `values` that are <= threshold.
double FractionAtOrBelow(std::span<const double> values, double threshold);

/// Mean silhouette coefficient of a labeled embedding set: rows are points,
/// labels give their cluster assignments. Range [-1, 1]; higher means
/// tighter, better-separated clusters. Points in singleton clusters score 0.
double MeanSilhouette(const std::vector<std::vector<double>>& points,
                      const std::vector<int>& labels);

}  // namespace grafics
