// Tiny argv helpers shared by the command-line front ends (src/tools) and
// the bench load generators, so flag parsing exists exactly once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace grafics {

/// Returns the value after `flag`, or `fallback` when absent.
inline std::string FlagValue(const std::vector<std::string>& args,
                             const std::string& flag,
                             const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return fallback;
}

/// Returns every value of a repeatable `flag`, in order (e.g.
/// `--model mall=mall.bin --model campus=campus.bin`). A trailing flag with
/// no value is an error — silently dropping it would, say, start a daemon
/// minus one building.
inline std::vector<std::string> FlagValues(
    const std::vector<std::string>& args, const std::string& flag) {
  std::vector<std::string> values;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    Require(i + 1 < args.size(), flag + ": missing value");
    values.push_back(args[i + 1]);
  }
  return values;
}

/// Parses a decimal unsigned integer, rejecting sign markers, trailing
/// junk ("80abc"), and values above `max_value` — std::stoul would accept
/// the first two and silently truncate on narrowing casts.
inline std::uint64_t ParseUnsigned(const std::string& text,
                                   std::uint64_t max_value,
                                   const std::string& what) {
  Require(!text.empty() && text.size() <= 19 &&
              text.find_first_not_of("0123456789") == std::string::npos,
          what + ": expected an unsigned number, got '" + text + "'");
  const std::uint64_t value = std::stoull(text);
  Require(value <= max_value, what + ": " + text + " is above the maximum " +
                                  std::to_string(max_value));
  return value;
}

}  // namespace grafics
