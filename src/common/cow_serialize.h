// Chunk-level delta (de)serialization for the copy-on-write containers.
//
// A delta checkpoint (store::ModelStore) carries only the chunks a snapshot
// owns relative to a retained base snapshot — chunk identity, not content,
// decides what is written, so a K-record fold serializes O(owned chunks)
// instead of O(model). Applying a delta onto a freshly loaded base replaces
// exactly those chunks and leaves every other chunk as the base's storage,
// which is the on-disk mirror of Grafics::Clone's structural sharing.
//
// Wire layout (inside a versioned outer artifact, so no header here):
//   u64 new_size, u32 delta_chunk_count,
//   then per chunk: u32 chunk_index, u32 element_count, elements...
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "common/cow.h"
#include "common/error.h"
#include "common/serialize.h"

namespace grafics {

template <typename T, std::size_t kChunkSize, typename WriteElem>
void WriteCowVectorDelta(std::ostream& out,
                         const CowVector<T, kChunkSize>& current,
                         const CowVector<T, kChunkSize>& base,
                         WriteElem&& write_elem) {
  WriteU64(out, current.size());
  const std::vector<std::size_t> diff = current.DiffChunksAgainst(base);
  WriteU32(out, static_cast<std::uint32_t>(diff.size()));
  for (const std::size_t c : diff) {
    const std::span<const T> chunk = current.ChunkSpan(c);
    WriteU32(out, static_cast<std::uint32_t>(c));
    WriteU32(out, static_cast<std::uint32_t>(chunk.size()));
    for (const T& item : chunk) write_elem(out, item);
  }
}

/// Applies a delta written by WriteCowVectorDelta onto `target` (the loaded
/// base). Validates that every chunk slot is populated afterwards, so a
/// truncated or mismatched delta is an Error, never a null dereference.
template <typename T, std::size_t kChunkSize, typename ReadElem>
void ApplyCowVectorDelta(std::istream& in, CowVector<T, kChunkSize>& target,
                         ReadElem&& read_elem) {
  const std::uint64_t new_size = ReadU64(in);
  Require(new_size >= target.size(),
          "ApplyCowVectorDelta: delta shrinks the container");
  target.ResizeForDelta(new_size);
  const std::uint32_t delta_chunks = ReadU32(in);
  Require(delta_chunks <= target.num_chunks(),
          "ApplyCowVectorDelta: more delta chunks than chunks");
  for (std::uint32_t i = 0; i < delta_chunks; ++i) {
    const std::uint32_t c = ReadU32(in);
    Require(c < target.num_chunks(),
            "ApplyCowVectorDelta: chunk index out of range");
    const std::uint32_t count = ReadU32(in);
    Require(count <= kChunkSize, "ApplyCowVectorDelta: oversized chunk");
    std::vector<T> values;
    values.reserve(count);
    for (std::uint32_t e = 0; e < count; ++e) values.push_back(read_elem(in));
    target.ApplyChunk(c, std::move(values));
  }
  for (std::size_t c = 0; c < target.num_chunks(); ++c) {
    Require(target.ChunkIdentity(c) != nullptr,
            "ApplyCowVectorDelta: delta leaves chunk " + std::to_string(c) +
                " unpopulated");
  }
}

// Element-level sparse delta for CowVectors of heavyweight elements (e.g.
// adjacency lists). Chunk identity still gates the scan — shared chunks are
// skipped wholesale — but within an owned chunk only the elements that
// actually differ from the base travel, so one hot element does not drag
// its kChunkSize-1 untouched neighbors into the artifact.
//
// Wire layout: u64 new_size, u64 changed_count, then per element:
//   u32 index, element delta (writer-defined, may reference the base).
//
// `write_elem(out, current_elem, base_elem_or_null)` encodes one element;
// the base pointer is null for appended elements (index >= base size).
template <typename T, std::size_t kChunkSize, typename WriteElem>
void WriteCowVectorSparseDelta(std::ostream& out,
                               const CowVector<T, kChunkSize>& current,
                               const CowVector<T, kChunkSize>& base,
                               WriteElem&& write_elem) {
  WriteU64(out, current.size());
  std::vector<std::size_t> changed;
  for (const std::size_t c : current.DiffChunksAgainst(base)) {
    const std::size_t begin = c * kChunkSize;
    const std::span<const T> chunk = current.ChunkSpan(c);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      const std::size_t index = begin + i;
      if (index >= base.size() || !(chunk[i] == base[index])) {
        changed.push_back(index);
      }
    }
  }
  WriteU64(out, changed.size());
  for (const std::size_t index : changed) {
    WriteU32(out, static_cast<std::uint32_t>(index));
    write_elem(out, current[index],
               index < base.size() ? &base[index] : nullptr);
  }
}

/// Applies a sparse delta onto `target` (the loaded base). `read_elem(in,
/// elem)` decodes one element in place — `elem` holds the base value for
/// existing indices and is default-constructed for appended ones, so a
/// prefix-sharing encoding can extend it instead of rewriting it.
template <typename T, std::size_t kChunkSize, typename ReadElem>
void ApplyCowVectorSparseDelta(std::istream& in,
                               CowVector<T, kChunkSize>& target,
                               ReadElem&& read_elem) {
  const std::uint64_t new_size = ReadU64(in);
  Require(new_size >= target.size(),
          "ApplyCowVectorSparseDelta: delta shrinks the container");
  const std::uint64_t changed = ReadU64(in);
  Require(changed <= new_size,
          "ApplyCowVectorSparseDelta: more changed elements than elements");
  for (std::uint64_t i = 0; i < changed; ++i) {
    const std::uint32_t index = ReadU32(in);
    Require(index < new_size,
            "ApplyCowVectorSparseDelta: element index out of range");
    if (index < target.size()) {
      read_elem(in, target.MutableAt(index));
    } else {
      // Appended elements arrive in ascending order, each extending the
      // container by exactly one slot.
      Require(index == target.size(),
              "ApplyCowVectorSparseDelta: gap in appended elements");
      T element{};
      read_elem(in, element);
      target.PushBack(std::move(element));
    }
  }
  Require(target.size() == new_size,
          "ApplyCowVectorSparseDelta: delta missing appended elements");
}

inline void WriteCowMatrixDelta(std::ostream& out, const CowMatrix& current,
                                const CowMatrix& base) {
  Require(current.cols() == base.cols() || base.rows() == 0,
          "WriteCowMatrixDelta: column count changed");
  WriteU64(out, current.rows());
  const std::vector<std::size_t> diff = current.DiffChunksAgainst(base);
  WriteU32(out, static_cast<std::uint32_t>(diff.size()));
  for (const std::size_t c : diff) {
    const std::span<const double> chunk = current.ChunkSpan(c);
    WriteU32(out, static_cast<std::uint32_t>(c));
    WriteU32(out, static_cast<std::uint32_t>(chunk.size()));
    for (const double value : chunk) WriteDouble(out, value);
  }
}

inline void ApplyCowMatrixDelta(std::istream& in, CowMatrix& target) {
  const std::uint64_t new_rows = ReadU64(in);
  Require(new_rows >= target.rows(),
          "ApplyCowMatrixDelta: delta shrinks the matrix");
  target.ResizeForDelta(new_rows);
  const std::uint32_t delta_chunks = ReadU32(in);
  Require(delta_chunks <= target.num_chunks(),
          "ApplyCowMatrixDelta: more delta chunks than chunks");
  for (std::uint32_t i = 0; i < delta_chunks; ++i) {
    const std::uint32_t c = ReadU32(in);
    Require(c < target.num_chunks(),
            "ApplyCowMatrixDelta: chunk index out of range");
    const std::uint32_t count = ReadU32(in);
    Require(count <= CowMatrix::kRowsPerChunk * target.cols(),
            "ApplyCowMatrixDelta: oversized chunk");
    std::vector<double> values;
    values.reserve(count);
    for (std::uint32_t e = 0; e < count; ++e) values.push_back(ReadDouble(in));
    target.ApplyChunk(c, std::move(values));
  }
  for (std::size_t c = 0; c < target.num_chunks(); ++c) {
    Require(target.ChunkIdentity(c) != nullptr,
            "ApplyCowMatrixDelta: delta leaves chunk " + std::to_string(c) +
                " unpopulated");
  }
}

}  // namespace grafics
