// Error type shared across the GRAFICS library.
//
// The library reports unrecoverable misuse (bad dimensions, malformed input
// files, violated preconditions) by throwing `grafics::Error`, which carries a
// human-readable message. Recoverable conditions are expressed in return
// types (e.g. std::optional) instead.
#pragma once

#include <stdexcept>
#include <string>

namespace grafics {

/// Exception thrown on precondition violations and malformed input.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws grafics::Error with `message` when `condition` is false.
inline void Require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

/// Literal-message overload: defers std::string construction to the throw
/// path, keeping Require free of heap allocations on hot paths.
inline void Require(bool condition, const char* message) {
  if (!condition) throw Error(message);
}

}  // namespace grafics
