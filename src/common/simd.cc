// Scalar reference kernels + runtime backend dispatch.
//
// This translation unit is compiled with -ffp-contract=off (see
// CMakeLists.txt): the scalar kernels are the repo's bit-identity anchor —
// the exact accumulation order of the pre-SIMD loops in common/matrix.cc —
// and a compiler-contracted FMA would silently change their roundings.
#include "common/simd.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "common/error.h"

namespace grafics::simd {

namespace {

// --- scalar backend --------------------------------------------------------
// Accumulation order matches the pre-SIMD loops exactly; do not "improve"
// these with pairwise summation or unrolled partial sums — that would break
// the scalar bit-identity guarantee the replay/replication layers pin on.

double ScalarDot(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double ScalarSquaredL2Distance(const double* a, const double* b,
                               std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void ScalarAxpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarDotMany(const double* query, const double* rows,
                   std::size_t num_rows, std::size_t cols, double* out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = ScalarDot(query, rows + r * cols, cols);
  }
}

void ScalarSquaredL2DistanceMany(const double* query, const double* rows,
                                 std::size_t num_rows, std::size_t cols,
                                 double* out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = ScalarSquaredL2Distance(query, rows + r * cols, cols);
  }
}

constexpr Kernels kScalarKernels = {
    ScalarDot,
    ScalarSquaredL2Distance,
    ScalarAxpy,
    ScalarDotMany,
    ScalarSquaredL2DistanceMany,
};

// --- dispatch --------------------------------------------------------------

struct Dispatch {
  Backend backend = Backend::kScalar;
  const Kernels* kernels = &kScalarKernels;
};

std::atomic<const Dispatch*> g_active{nullptr};
std::once_flag g_resolve_once;

/// Best backend this build/CPU supports, in preference order.
Backend DetectBackend() {
  if (KernelsFor(Backend::kAvx2) != nullptr) return Backend::kAvx2;
  if (KernelsFor(Backend::kNeon) != nullptr) return Backend::kNeon;
  return Backend::kScalar;
}

/// One immutable Dispatch per backend, built once under the magic-static
/// lock: unavailable backends carry a null kernel table and are filtered by
/// the callers, and concurrent PinBackend/resolution only ever publish
/// pointers into this frozen array.
const Dispatch* MakeDispatch(Backend backend) {
  static const std::array<Dispatch, 3> dispatches = [] {
    return std::array<Dispatch, 3>{{
        {Backend::kScalar, &kScalarKernels},
        {Backend::kAvx2, KernelsFor(Backend::kAvx2)},
        {Backend::kNeon, KernelsFor(Backend::kNeon)},
    }};
  }();
  return &dispatches[static_cast<std::size_t>(backend)];
}

/// First-use resolution: GRAFICS_SIMD override, else CPU detection. An
/// explicitly named but unavailable backend degrades to scalar with a
/// warning — never a different SIMD backend, so the operator's determinism
/// intent (one named backend fleet-wide) is preserved conservatively.
void ResolveOnce() {
  std::call_once(g_resolve_once, [] {
    // A PinBackend that raced resolution wins; don't overwrite it.
    if (g_active.load(std::memory_order_acquire) != nullptr) return;
    Backend chosen = Backend::kScalar;
    const char* env = std::getenv("GRAFICS_SIMD");
    if (env != nullptr && env[0] != '\0') {
      const Backend requested = ParseBackendName(env);
      if (KernelsFor(requested) != nullptr) {
        chosen = requested;
      } else {
        std::fprintf(stderr,
                     "grafics: GRAFICS_SIMD=%s unavailable on this "
                     "build/CPU; falling back to scalar kernels\n",
                     env);
      }
    } else {
      chosen = DetectBackend();
    }
    g_active.store(MakeDispatch(chosen), std::memory_order_release);
  });
}

const Dispatch* Active() {
  const Dispatch* d = g_active.load(std::memory_order_acquire);
  if (d != nullptr) return d;
  ResolveOnce();
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "scalar";
}

Backend ParseBackendName(const char* name) {
  Require(name != nullptr, "simd backend name must not be null");
  if (std::strcmp(name, "scalar") == 0) return Backend::kScalar;
  if (std::strcmp(name, "avx2") == 0) return Backend::kAvx2;
  if (std::strcmp(name, "neon") == 0) return Backend::kNeon;
  throw Error("unknown simd backend '" + std::string(name) +
              "' (expected scalar|avx2|neon)");
}

const Kernels* KernelsFor(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &kScalarKernels;
    case Backend::kAvx2:
      return internal::Avx2Kernels();
    case Backend::kNeon:
      return internal::NeonKernels();
  }
  return nullptr;
}

Backend ActiveBackend() { return Active()->backend; }

bool PinBackend(Backend backend) {
  const Kernels* kernels = KernelsFor(backend);
  if (kernels == nullptr) return false;
  g_active.store(MakeDispatch(backend), std::memory_order_release);
  return true;
}

double Dot(const double* a, const double* b, std::size_t n) {
  return Active()->kernels->dot(a, b, n);
}

double SquaredL2Distance(const double* a, const double* b, std::size_t n) {
  return Active()->kernels->squared_l2_distance(a, b, n);
}

void Axpy(double alpha, const double* x, double* y, std::size_t n) {
  Active()->kernels->axpy(alpha, x, y, n);
}

void DotMany(const double* query, const double* rows, std::size_t num_rows,
             std::size_t cols, double* out) {
  Active()->kernels->dot_many(query, rows, num_rows, cols, out);
}

void SquaredL2DistanceMany(const double* query, const double* rows,
                           std::size_t num_rows, std::size_t cols,
                           double* out) {
  Active()->kernels->squared_l2_distance_many(query, rows, num_rows, cols,
                                              out);
}

}  // namespace grafics::simd
