// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Classical MDS (the paper's MDS baseline) needs the top eigenpairs of the
// double-centered squared-distance matrix. Jacobi is O(n^3) per sweep but
// robust and dependency-free; the matrices involved (a few thousand rows at
// most after sampling) stay well inside its comfort zone.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace grafics {

struct EigenDecomposition {
  std::vector<double> eigenvalues;  // sorted descending
  Matrix eigenvectors;              // column i <-> eigenvalues[i]
};

/// Full eigendecomposition of a symmetric matrix. Throws if `a` is not
/// square. Symmetry is assumed (the strictly-lower triangle is ignored).
EigenDecomposition JacobiEigenDecomposition(const Matrix& a,
                                            std::size_t max_sweeps = 64,
                                            double tolerance = 1e-12);

}  // namespace grafics
