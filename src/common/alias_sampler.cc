#include "common/alias_sampler.h"

#include <numeric>

#include "common/error.h"
#include "common/serialize.h"

namespace grafics {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  Require(!weights.empty(), "AliasSampler: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    Require(w >= 0.0, "AliasSampler: weights must be non-negative");
    total += w;
  }
  Require(total > 0.0, "AliasSampler: at least one weight must be positive");

  const std::size_t n = weights.size();
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);
  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Scaled probabilities; split into under- and over-full buckets.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }
  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) probability_[i] = 1.0;
  for (std::size_t i : small) probability_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasSampler::Sample(Rng& rng) const {
  Require(!empty(), "AliasSampler::Sample on empty sampler");
  const std::size_t bucket = rng.NextIndex(probability_.size());
  return rng.NextDouble() < probability_[bucket] ? bucket : alias_[bucket];
}

double AliasSampler::ProbabilityOf(std::size_t i) const {
  Require(i < normalized_.size(), "AliasSampler::ProbabilityOf out of range");
  return normalized_[i];
}

void AliasSampler::Save(std::ostream& out) const {
  WriteU64(out, probability_.size());
  for (const double p : probability_) WriteDouble(out, p);
  for (const std::size_t a : alias_) WriteU64(out, a);
  for (const double n : normalized_) WriteDouble(out, n);
}

AliasSampler AliasSampler::Load(std::istream& in) {
  AliasSampler sampler;
  const std::uint64_t n = ReadU64(in);
  sampler.probability_.resize(n);
  for (double& p : sampler.probability_) p = ReadDouble(in);
  sampler.alias_.resize(n);
  for (std::size_t& a : sampler.alias_) {
    a = ReadU64(in);
    Require(a < n, "AliasSampler::Load: alias index out of range");
  }
  sampler.normalized_.resize(n);
  for (double& v : sampler.normalized_) v = ReadDouble(in);
  return sampler;
}

}  // namespace grafics
