// Synchronization primitives carrying Clang thread-safety annotations.
//
// Every mutex in this codebase is a grafics::Mutex, every scoped lock a
// grafics::MutexLock, and every condition variable a grafics::CondVar from
// this header — tools/check_invariants.py rejects naked std::mutex /
// std::lock_guard / std::condition_variable anywhere else under src/. The
// wrappers cost nothing (they compile to the std primitives) but carry the
// Clang capability attributes, so under `clang++ -Wthread-safety` (turned
// into -Werror=thread-safety by CMake for Clang builds, and run by the
// static-analysis CI job) the locking contracts become compile-time
// properties:
//
//   * a field declared GRAFICS_GUARDED_BY(mutex_) cannot be read or written
//     without holding mutex_ — a forgotten lock is a build error, not a
//     probabilistic TSan finding;
//   * a private helper declared GRAFICS_REQUIRES(mutex_) cannot be called
//     without the lock, and cannot double-lock it;
//   * a blocking entry point declared GRAFICS_EXCLUDES(mutex_) cannot be
//     called with the lock held (self-deadlock becomes a build error).
//
// On non-Clang compilers (and pre-analysis Clang) the attribute macros
// expand to nothing; GCC builds see plain std::mutex semantics.
//
// Usage is the canonical pattern from the Clang thread-safety docs:
//
//   class Account {
//     grafics::Mutex mutex_;
//     int balance_ GRAFICS_GUARDED_BY(mutex_) = 0;
//     void DepositLocked(int n) GRAFICS_REQUIRES(mutex_) { balance_ += n; }
//    public:
//     void Deposit(int n) GRAFICS_EXCLUDES(mutex_) {
//       const grafics::MutexLock lock(&mutex_);
//       DepositLocked(n);
//     }
//   };
//
// Condition waits: CondVar::Wait(mutex) REQUIRES the mutex (a condvar wait
// atomically releases and reacquires, so "held" is the correct contract on
// both sides). Predicate waits are written as explicit while-loops in the
// annotated caller rather than predicate lambdas, so every guarded access
// stays inside a function the analysis can see:
//
//   while (!stopping_ && queue_.empty()) cond_.Wait(mutex_);
//
// See docs/development.md for how to annotate new code and how to reproduce
// the CI gate locally.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---- attribute macros -----------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GRAFICS_TS_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef GRAFICS_TS_ATTRIBUTE
#define GRAFICS_TS_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability ("mutex" names it in diagnostics).
#define GRAFICS_CAPABILITY(x) GRAFICS_TS_ATTRIBUTE(capability(x))
/// Declares an RAII type that acquires in its ctor and releases in its dtor.
#define GRAFICS_SCOPED_CAPABILITY GRAFICS_TS_ATTRIBUTE(scoped_lockable)
/// Field may only be touched while holding the named capability.
#define GRAFICS_GUARDED_BY(x) GRAFICS_TS_ATTRIBUTE(guarded_by(x))
/// Pointee may only be touched while holding the named capability.
#define GRAFICS_PT_GUARDED_BY(x) GRAFICS_TS_ATTRIBUTE(pt_guarded_by(x))
/// Function requires the capability held on entry (and leaves it held).
#define GRAFICS_REQUIRES(...) \
  GRAFICS_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
/// Function acquires the capability (must not be held on entry).
#define GRAFICS_ACQUIRE(...) \
  GRAFICS_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
/// Function releases the capability (must be held on entry).
#define GRAFICS_RELEASE(...) \
  GRAFICS_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define GRAFICS_TRY_ACQUIRE(...) \
  GRAFICS_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define GRAFICS_EXCLUDES(...) GRAFICS_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (informs the analysis).
#define GRAFICS_ASSERT_CAPABILITY(x) \
  GRAFICS_TS_ATTRIBUTE(assert_capability(x))
/// Function returns a reference to the named capability.
#define GRAFICS_RETURN_CAPABILITY(x) GRAFICS_TS_ATTRIBUTE(lock_returned(x))
/// Documents lock-acquisition order between capabilities.
#define GRAFICS_ACQUIRED_BEFORE(...) \
  GRAFICS_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define GRAFICS_ACQUIRED_AFTER(...) \
  GRAFICS_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the contract cannot be expressed.
#define GRAFICS_NO_THREAD_SAFETY_ANALYSIS \
  GRAFICS_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace grafics {

class CondVar;

// ---- Mutex ----------------------------------------------------------------

/// std::mutex carrying the `capability` attribute. Prefer MutexLock for
/// whole-scope critical sections; explicit Lock/Unlock is for loops that
/// release around blocking work (the analysis checks both styles).
class GRAFICS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GRAFICS_ACQUIRE() { mutex_.lock(); }
  void Unlock() GRAFICS_RELEASE() { mutex_.unlock(); }
  bool TryLock() GRAFICS_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// No-op at runtime; tells the analysis the lock is held on paths it
  /// cannot see (e.g. a callback documented to run under the lock).
  void AssertHeld() const GRAFICS_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;  // CondVar::Wait adopts the underlying std::mutex
  std::mutex mutex_;
};

// ---- MutexLock ------------------------------------------------------------

/// RAII lock for a whole scope; the SCOPED_CAPABILITY attribute lets the
/// analysis treat construction as acquire and destruction as release.
class GRAFICS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) GRAFICS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_->Lock();
  }
  ~MutexLock() GRAFICS_RELEASE() { mutex_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mutex_;
};

// ---- CondVar --------------------------------------------------------------

/// std::condition_variable over grafics::Mutex. Wait atomically releases and
/// reacquires, so the REQUIRES(mutex) contract holds on entry and exit;
/// spurious wakeups are possible exactly as with the std primitive — always
/// wait in a predicate loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mutex) GRAFICS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the re-acquired mutex
  }

  template <class Clock, class Duration>
  std::cv_status WaitUntil(Mutex& mutex,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) GRAFICS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mutex,
                         const std::chrono::duration<Rep, Period>& timeout)
      GRAFICS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace grafics
