// Fixed-size thread pool with a ParallelFor convenience wrapper.
//
// Used by the E-LINE trainer (hogwild-style asynchronous SGD shards) and by
// embarrassingly parallel experiment sweeps in the bench harness.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotated_sync.h"

namespace grafics {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1; 0 maps to hardware_concurrency).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; the returned future resolves when it finishes.
  std::future<void> Submit(std::function<void()> task)
      GRAFICS_EXCLUDES(mutex_);

  /// Runs fn(begin..end) split into one contiguous chunk per worker and
  /// blocks until all chunks complete. fn receives (chunk_begin, chunk_end).
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop() GRAFICS_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar condition_;
  std::queue<std::packaged_task<void()>> tasks_ GRAFICS_GUARDED_BY(mutex_);
  bool stopping_ GRAFICS_GUARDED_BY(mutex_) = false;
};

}  // namespace grafics
