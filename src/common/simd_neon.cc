// NEON kernels (aarch64). Advanced SIMD is architecturally guaranteed on
// AArch64, so availability is a compile-time question only — no runtime CPU
// probe needed.
//
// Rounding notes mirror simd_avx2.cc: reductions keep two lane-wise partial
// sums collapsed low-lane-first (parity-tested to 1e-12 relative against
// scalar), axpy is element-wise multiply-then-add and therefore bit-identical
// to scalar. vmulq/vaddq are used instead of vfmaq so no fused rounding
// sneaks in, and the TU is compiled with -ffp-contract=off.
#include "common/simd.h"

#if defined(__aarch64__) && defined(__ARM_NEON)
#define GRAFICS_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace grafics::simd::internal {

#if defined(GRAFICS_SIMD_HAVE_NEON)

namespace {

double NeonDot(const double* a, const double* b, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_f64(acc, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double NeonSquaredL2Distance(const double* a, const double* b,
                             std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    acc = vaddq_f64(acc, vmulq_f64(d, d));
  }
  double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void NeonAxpy(double alpha, const double* x, double* y, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i,
              vaddq_f64(vld1q_f64(y + i), vmulq_f64(va, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void NeonDotMany(const double* query, const double* rows,
                 std::size_t num_rows, std::size_t cols, double* out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = NeonDot(query, rows + r * cols, cols);
  }
}

void NeonSquaredL2DistanceMany(const double* query, const double* rows,
                               std::size_t num_rows, std::size_t cols,
                               double* out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = NeonSquaredL2Distance(query, rows + r * cols, cols);
  }
}

constexpr Kernels kNeonKernels = {
    NeonDot,
    NeonSquaredL2Distance,
    NeonAxpy,
    NeonDotMany,
    NeonSquaredL2DistanceMany,
};

}  // namespace

const Kernels* NeonKernels() { return &kNeonKernels; }

#else  // !GRAFICS_SIMD_HAVE_NEON

const Kernels* NeonKernels() { return nullptr; }

#endif

}  // namespace grafics::simd::internal
