// Binary stream serialization helpers.
//
// A tiny, explicit little-endian format used by the model save/load path:
// fixed-width integers and IEEE doubles, length-prefixed containers, and a
// magic/version header per top-level artifact. No reflection, no surprises.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/matrix.h"

namespace grafics {

void WriteU8(std::ostream& out, std::uint8_t value);
void WriteU32(std::ostream& out, std::uint32_t value);
void WriteU64(std::ostream& out, std::uint64_t value);
void WriteI32(std::ostream& out, std::int32_t value);
void WriteDouble(std::ostream& out, double value);
void WriteString(std::ostream& out, const std::string& value);
void WriteMatrix(std::ostream& out, const Matrix& value);
/// Optional int32 as a u8 presence flag followed by a fixed i32 payload
/// (zero when absent), so the encoding is constant-width. Used by the model
/// artifact (cluster labels) and the serve wire protocol (floor labels).
void WriteOptionalI32(std::ostream& out, std::optional<std::int32_t> value);

std::uint8_t ReadU8(std::istream& in);
std::uint32_t ReadU32(std::istream& in);
std::uint64_t ReadU64(std::istream& in);
std::int32_t ReadI32(std::istream& in);
double ReadDouble(std::istream& in);
std::string ReadString(std::istream& in);
Matrix ReadMatrix(std::istream& in);
std::optional<std::int32_t> ReadOptionalI32(std::istream& in);

/// Writes/checks a 4-byte magic plus u32 version.
void WriteHeader(std::ostream& out, const char magic[4],
                 std::uint32_t version);
/// Throws grafics::Error on magic or version mismatch.
void CheckHeader(std::istream& in, const char magic[4],
                 std::uint32_t expected_version);
/// Reads a magic + version header, throwing only on magic mismatch and
/// returning the version — for formats that decode a range of versions
/// (e.g. the serve wire protocol) instead of exactly one.
std::uint32_t ReadHeader(std::istream& in, const char magic[4]);

}  // namespace grafics
