#include "common/serialize.h"

#include <bit>
#include <cstring>

namespace grafics {

static_assert(std::endian::native == std::endian::little,
              "serialization assumes a little-endian host");

namespace {
template <typename T>
void WriteRaw(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  Require(out.good(), "serialize: write failed");
}

template <typename T>
T ReadRaw(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  Require(in.good(), "serialize: unexpected end of stream");
  return value;
}
}  // namespace

void WriteU8(std::ostream& out, std::uint8_t value) { WriteRaw(out, value); }
void WriteU32(std::ostream& out, std::uint32_t value) { WriteRaw(out, value); }
void WriteU64(std::ostream& out, std::uint64_t value) { WriteRaw(out, value); }
void WriteI32(std::ostream& out, std::int32_t value) { WriteRaw(out, value); }
void WriteDouble(std::ostream& out, double value) { WriteRaw(out, value); }

std::uint8_t ReadU8(std::istream& in) { return ReadRaw<std::uint8_t>(in); }
std::uint32_t ReadU32(std::istream& in) { return ReadRaw<std::uint32_t>(in); }
std::uint64_t ReadU64(std::istream& in) { return ReadRaw<std::uint64_t>(in); }
std::int32_t ReadI32(std::istream& in) { return ReadRaw<std::int32_t>(in); }
double ReadDouble(std::istream& in) { return ReadRaw<double>(in); }

void WriteString(std::ostream& out, const std::string& value) {
  WriteU64(out, value.size());
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
  Require(out.good(), "serialize: write failed");
}

std::string ReadString(std::istream& in) {
  const std::uint64_t size = ReadU64(in);
  Require(size < (1ULL << 32), "serialize: unreasonable string size");
  std::string value(size, '\0');
  in.read(value.data(), static_cast<std::streamsize>(size));
  Require(in.good(), "serialize: unexpected end of stream");
  return value;
}

void WriteOptionalI32(std::ostream& out, std::optional<std::int32_t> value) {
  WriteU8(out, value.has_value() ? 1 : 0);
  WriteI32(out, value.value_or(0));
}

std::optional<std::int32_t> ReadOptionalI32(std::istream& in) {
  const bool has_value = ReadU8(in) != 0;
  const std::int32_t value = ReadI32(in);
  if (!has_value) return std::nullopt;
  return value;
}

void WriteMatrix(std::ostream& out, const Matrix& value) {
  WriteU64(out, value.rows());
  WriteU64(out, value.cols());
  out.write(reinterpret_cast<const char*>(value.data()),
            static_cast<std::streamsize>(value.size() * sizeof(double)));
  Require(out.good(), "serialize: write failed");
}

Matrix ReadMatrix(std::istream& in) {
  const std::uint64_t rows = ReadU64(in);
  const std::uint64_t cols = ReadU64(in);
  Require(rows < (1ULL << 32) && cols < (1ULL << 32),
          "serialize: unreasonable matrix shape");
  Matrix value(rows, cols);
  in.read(reinterpret_cast<char*>(value.data()),
          static_cast<std::streamsize>(value.size() * sizeof(double)));
  Require(in.good(), "serialize: unexpected end of stream");
  return value;
}

void WriteHeader(std::ostream& out, const char magic[4],
                 std::uint32_t version) {
  out.write(magic, 4);
  WriteU32(out, version);
  Require(out.good(), "serialize: write failed");
}

void CheckHeader(std::istream& in, const char magic[4],
                 std::uint32_t expected_version) {
  const std::uint32_t version = ReadHeader(in, magic);
  Require(version == expected_version,
          "serialize: unsupported format version " + std::to_string(version));
}

std::uint32_t ReadHeader(std::istream& in, const char magic[4]) {
  char actual[4] = {};
  in.read(actual, 4);
  Require(in.good() && std::memcmp(actual, magic, 4) == 0,
          "serialize: bad magic (wrong file type?)");
  return ReadU32(in);
}

}  // namespace grafics
