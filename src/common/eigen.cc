#include "common/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace grafics {

EigenDecomposition JacobiEigenDecomposition(const Matrix& a,
                                            std::size_t max_sweeps,
                                            double tolerance) {
  Require(a.rows() == a.cols(), "JacobiEigenDecomposition: matrix not square");
  const std::size_t n = a.rows();
  Matrix m = a;
  // Mirror the upper triangle so we work on an exactly-symmetric copy.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) m(j, i) = m(i, j);
  }
  Matrix v = Matrix::Identity(n);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    }
    if (std::sqrt(off) <= tolerance * std::max(1.0, m.FrobeniusNorm())) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition result;
  result.eigenvalues.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.eigenvalues[i] = m(i, i);

  // Sort eigenpairs by eigenvalue, descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return result.eigenvalues[x] > result.eigenvalues[y];
  });
  std::vector<double> sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted_values[i] = result.eigenvalues[order[i]];
    for (std::size_t r = 0; r < n; ++r) sorted_vectors(r, i) = v(r, order[i]);
  }
  result.eigenvalues = std::move(sorted_values);
  result.eigenvectors = std::move(sorted_vectors);
  return result;
}

}  // namespace grafics
