// Minimal CSV reading/writing for dataset (de)serialization and bench output.
//
// Handles the subset of RFC 4180 the library emits: comma separation,
// double-quote quoting with embedded quotes doubled, and newline-terminated
// rows. No embedded newlines inside fields.
#pragma once

#include <string>
#include <vector>

namespace grafics {

using CsvRow = std::vector<std::string>;

/// Parses one CSV line into fields. Throws grafics::Error on unterminated
/// quotes.
CsvRow ParseCsvLine(const std::string& line);

/// Serializes fields into one CSV line (without trailing newline).
std::string FormatCsvLine(const CsvRow& fields);

/// Reads a whole CSV file. Throws grafics::Error if the file cannot be read.
std::vector<CsvRow> ReadCsvFile(const std::string& path);

/// Writes rows to `path`, overwriting. Throws grafics::Error on I/O failure.
void WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows);

}  // namespace grafics
