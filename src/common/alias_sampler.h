// Walker alias method for O(1) sampling from a fixed discrete distribution.
//
// Used for two hot paths in E-LINE training: sampling edges proportionally to
// their weight, and sampling negative nodes proportionally to degree^{3/4}.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "common/rng.h"

namespace grafics {

/// Immutable discrete distribution supporting O(1) draws after O(n) setup.
class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds the alias table from non-negative weights (not all zero).
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to weight.
  std::size_t Sample(Rng& rng) const;

  std::size_t size() const { return probability_.size(); }
  bool empty() const { return probability_.empty(); }

  /// Normalized probability of index i (for tests).
  double ProbabilityOf(std::size_t i) const;

  /// Serializes the table state verbatim (buckets, aliases, normalized
  /// weights), so Load reproduces the exact draw sequence of this sampler —
  /// rebuilding from weights is not guaranteed FP-identical.
  void Save(std::ostream& out) const;
  static AliasSampler Load(std::istream& in);

 private:
  std::vector<double> probability_;   // acceptance threshold per bucket
  std::vector<std::size_t> alias_;    // fallback index per bucket
  std::vector<double> normalized_;    // exact normalized input weights
};

}  // namespace grafics
