#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.h"
#include "common/matrix.h"

namespace grafics {

Summary Summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count >= 2) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

double Quantile(std::vector<double> values, double q) {
  Require(!values.empty(), "Quantile: empty input");
  Require(q >= 0.0 && q <= 1.0, "Quantile: q out of [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values) {
  std::vector<CdfPoint> cdf;
  if (values.empty()) return cdf;
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Keep only the last occurrence of each distinct value.
    if (i + 1 < values.size() && values[i + 1] == values[i]) continue;
    cdf.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

double FractionAtOrBelow(std::span<const double> values, double threshold) {
  if (values.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : values) {
    if (v <= threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double MeanSilhouette(const std::vector<std::vector<double>>& points,
                      const std::vector<int>& labels) {
  Require(points.size() == labels.size(),
          "MeanSilhouette: points/labels size mismatch");
  const std::size_t n = points.size();
  if (n == 0) return 0.0;

  std::unordered_map<int, std::size_t> cluster_size;
  for (int label : labels) ++cluster_size[label];
  if (cluster_size.size() < 2) return 0.0;

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cluster_size[labels[i]] <= 1) continue;  // singleton scores 0
    // Mean distance to own cluster (a) and nearest other cluster (b).
    std::unordered_map<int, double> dist_sum;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dist_sum[labels[j]] +=
          std::sqrt(SquaredL2Distance(points[i], points[j]));
    }
    const double a = dist_sum[labels[i]] /
                     static_cast<double>(cluster_size[labels[i]] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (const auto& [label, sum] : dist_sum) {
      if (label == labels[i]) continue;
      b = std::min(b, sum / static_cast<double>(cluster_size[label]));
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

}  // namespace grafics
