// Copy-on-write extension of a frozen BipartiteGraph.
//
// Online inference (paper Sec. V-A) extends the bipartite graph with the
// query record and its unseen MACs before refining their embeddings. Doing
// that directly on the trained graph mutates shared state, so serving N
// queries would grow the model N times and make predictions order-dependent.
// GraphOverlay instead layers a small scratch extension on top of an
// immutable base graph: scratch nodes get ids >= base.NumNodes(), scratch
// adjacency lists live in the overlay, and the base graph is never touched.
// Resetting the overlay between queries reuses its allocations, so a serving
// context adds no per-query heap churn beyond the scratch edges themselves.
//
// The base graph must outlive the overlay and must not grow while the
// overlay is alive (scratch ids are assigned from the base node count
// captured at construction).
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/weight_function.h"
#include "rf/signal_record.h"

namespace grafics::graph {

class GraphOverlay {
 public:
  explicit GraphOverlay(const BipartiteGraph& base);

  const BipartiteGraph& base() const { return *base_; }
  std::size_t BaseNodes() const { return base_nodes_; }
  std::size_t NumScratchNodes() const { return scratch_types_.size(); }
  std::size_t NumNodes() const { return base_nodes_ + scratch_types_.size(); }

  bool IsScratch(NodeId node) const { return node >= base_nodes_; }

  /// Adds one scratch record node with edges to its MAC nodes, creating
  /// scratch MAC nodes for MACs absent from the base graph. Mirrors
  /// BipartiteGraph::AddRecord's node-id ordering (record first, then new
  /// MACs in observation order).
  NodeId AddRecord(const rf::SignalRecord& record, const WeightFn& weight_fn);

  /// Base MAC node if present, else scratch MAC node if this overlay
  /// created one.
  std::optional<NodeId> FindMacNode(rf::MacAddress mac) const;

  NodeType TypeOf(NodeId node) const;

  /// Neighbors of a scratch node come from the overlay; neighbors of a base
  /// node are the base adjacency (scratch edges incident to base nodes are
  /// intentionally invisible from the base side — refinement only walks the
  /// neighborhoods of scratch nodes).
  std::span<const Neighbor> NeighborsOf(NodeId node) const;

  /// Drops all scratch nodes and edges, keeping allocations for reuse.
  void Reset();

 private:
  NodeId NewScratchNode(NodeType type);

  const BipartiteGraph* base_;
  std::size_t base_nodes_;
  std::vector<NodeType> scratch_types_;
  std::vector<std::vector<Neighbor>> scratch_adjacency_;
  std::unordered_map<rf::MacAddress, NodeId> scratch_macs_;
};

}  // namespace grafics::graph
