#include "graph/graph_overlay.h"

#include "common/error.h"

namespace grafics::graph {

GraphOverlay::GraphOverlay(const BipartiteGraph& base)
    : base_(&base), base_nodes_(base.NumNodes()) {}

NodeId GraphOverlay::NewScratchNode(NodeType type) {
  const auto id = static_cast<NodeId>(base_nodes_ + scratch_types_.size());
  scratch_types_.push_back(type);
  if (scratch_adjacency_.size() < scratch_types_.size()) {
    scratch_adjacency_.emplace_back();
  }
  return id;
}

NodeId GraphOverlay::AddRecord(const rf::SignalRecord& record,
                               const WeightFn& weight_fn) {
  const NodeId record_node = NewScratchNode(NodeType::kRecord);
  for (const rf::Observation& o : record.observations()) {
    NodeId mac_node;
    if (const auto base_mac = base_->FindMacNode(o.mac)) {
      mac_node = *base_mac;
    } else if (const auto it = scratch_macs_.find(o.mac);
               it != scratch_macs_.end()) {
      mac_node = it->second;
    } else {
      mac_node = NewScratchNode(NodeType::kMac);
      scratch_macs_.emplace(o.mac, mac_node);
    }
    const double weight = weight_fn(o.rssi_dbm);
    Require(weight > 0.0, "GraphOverlay::AddRecord: weight must be positive");
    scratch_adjacency_[record_node - base_nodes_].push_back(
        {mac_node, weight});
    if (IsScratch(mac_node)) {
      scratch_adjacency_[mac_node - base_nodes_].push_back(
          {record_node, weight});
    }
  }
  return record_node;
}

std::optional<NodeId> GraphOverlay::FindMacNode(rf::MacAddress mac) const {
  if (const auto base_mac = base_->FindMacNode(mac)) return base_mac;
  if (const auto it = scratch_macs_.find(mac); it != scratch_macs_.end()) {
    return it->second;
  }
  return std::nullopt;
}

NodeType GraphOverlay::TypeOf(NodeId node) const {
  if (!IsScratch(node)) return base_->TypeOf(node);
  Require(node - base_nodes_ < scratch_types_.size(),
          "GraphOverlay::TypeOf: bad node id");
  return scratch_types_[node - base_nodes_];
}

std::span<const Neighbor> GraphOverlay::NeighborsOf(NodeId node) const {
  if (!IsScratch(node)) return base_->NeighborsOf(node);
  Require(node - base_nodes_ < scratch_types_.size(),
          "GraphOverlay::NeighborsOf: bad node id");
  return scratch_adjacency_[node - base_nodes_];
}

void GraphOverlay::Reset() {
  for (std::size_t i = 0; i < scratch_types_.size(); ++i) {
    scratch_adjacency_[i].clear();
  }
  scratch_types_.clear();
  scratch_macs_.clear();
}

}  // namespace grafics::graph
