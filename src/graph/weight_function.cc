#include "graph/weight_function.h"

#include <cmath>

#include "common/error.h"

namespace grafics::graph {

WeightFn OffsetWeight(double alpha) {
  return [alpha](double rssi_dbm) {
    const double w = rssi_dbm + alpha;
    Require(w > 0.0,
            "OffsetWeight: alpha must exceed |RSS| for every observation");
    return w;
  };
}

WeightFn PowerWeight() {
  return [](double rssi_dbm) { return std::pow(10.0, rssi_dbm / 10.0); };
}

WeightFn BinaryWeight() {
  return [](double) { return 1.0; };
}

}  // namespace grafics::graph
