#include "graph/bipartite_graph.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/serialize.h"

namespace grafics::graph {

BipartiteGraph BipartiteGraph::FromRecords(
    const std::vector<rf::SignalRecord>& records, const WeightFn& weight_fn) {
  BipartiteGraph graph;
  for (const rf::SignalRecord& record : records) {
    graph.AddRecord(record, weight_fn);
  }
  return graph;
}

NodeId BipartiteGraph::NewNode(NodeType type) {
  const auto id = static_cast<NodeId>(types_.size());
  types_.push_back(type);
  active_.push_back(true);
  adjacency_.emplace_back();
  weighted_degree_.push_back(0.0);
  return id;
}

NodeId BipartiteGraph::AddRecord(const rf::SignalRecord& record,
                                 const WeightFn& weight_fn) {
  const NodeId record_node = NewNode(NodeType::kRecord);
  record_nodes_.push_back(record_node);
  for (const rf::Observation& o : record.observations()) {
    const NodeId mac_node = GetOrAddMacNode(o.mac);
    AddEdge(record_node, mac_node, weight_fn(o.rssi_dbm));
  }
  return record_node;
}

NodeId BipartiteGraph::GetOrAddMacNode(rf::MacAddress mac) {
  if (const auto it = mac_to_node_.find(mac); it != mac_to_node_.end()) {
    Require(active_[it->second],
            "BipartiteGraph: MAC " + mac.ToString() + " was removed");
    return it->second;
  }
  const NodeId id = NewNode(NodeType::kMac);
  mac_to_node_.emplace(mac, id);
  ++num_active_macs_;
  return id;
}

std::optional<NodeId> BipartiteGraph::FindMacNode(rf::MacAddress mac) const {
  const auto it = mac_to_node_.find(mac);
  if (it == mac_to_node_.end() || !active_[it->second]) return std::nullopt;
  return it->second;
}

void BipartiteGraph::AddEdge(NodeId record, NodeId mac, double weight) {
  Require(weight > 0.0, "BipartiteGraph::AddEdge: weight must be positive");
  adjacency_[record].push_back({mac, weight});
  adjacency_[mac].push_back({record, weight});
  weighted_degree_[record] += weight;
  weighted_degree_[mac] += weight;
  total_edge_weight_ += weight;
  ++num_edges_;
}

bool BipartiteGraph::RemoveMacNode(rf::MacAddress mac) {
  const auto it = mac_to_node_.find(mac);
  if (it == mac_to_node_.end() || !active_[it->second]) return false;
  const NodeId mac_node = it->second;
  for (const Neighbor& nb : adjacency_[mac_node]) {
    auto& rec_adj = adjacency_[nb.node];
    std::erase_if(rec_adj, [mac_node](const Neighbor& r) {
      return r.node == mac_node;
    });
    weighted_degree_[nb.node] -= nb.weight;
    total_edge_weight_ -= nb.weight;
    --num_edges_;
  }
  adjacency_[mac_node].clear();
  weighted_degree_[mac_node] = 0.0;
  active_[mac_node] = false;
  --num_active_macs_;
  return true;
}

NodeType BipartiteGraph::TypeOf(NodeId node) const {
  Require(node < types_.size(), "BipartiteGraph::TypeOf: bad node id");
  return types_[node];
}

bool BipartiteGraph::IsActive(NodeId node) const {
  Require(node < active_.size(), "BipartiteGraph::IsActive: bad node id");
  return active_[node];
}

NodeId BipartiteGraph::RecordNode(std::size_t record_index) const {
  Require(record_index < record_nodes_.size(),
          "BipartiteGraph::RecordNode: index out of range");
  return record_nodes_[record_index];
}

std::size_t BipartiteGraph::RecordIndexOf(NodeId node) const {
  Require(node < types_.size() && types_[node] == NodeType::kRecord,
          "BipartiteGraph::RecordIndexOf: not a record node");
  // Record nodes are appended in order, so binary search works.
  const auto it =
      std::lower_bound(record_nodes_.begin(), record_nodes_.end(), node);
  Require(it != record_nodes_.end() && *it == node,
          "BipartiteGraph::RecordIndexOf: unknown record node");
  return static_cast<std::size_t>(it - record_nodes_.begin());
}

std::span<const Neighbor> BipartiteGraph::NeighborsOf(NodeId node) const {
  Require(node < adjacency_.size(), "BipartiteGraph::NeighborsOf: bad id");
  return adjacency_[node];
}

double BipartiteGraph::WeightedDegree(NodeId node) const {
  Require(node < weighted_degree_.size(),
          "BipartiteGraph::WeightedDegree: bad id");
  return weighted_degree_[node];
}

namespace {
constexpr char kGraphMagic[4] = {'G', 'B', 'P', 'G'};
constexpr std::uint32_t kGraphVersion = 1;
}  // namespace

void BipartiteGraph::Save(std::ostream& out) const {
  WriteHeader(out, kGraphMagic, kGraphVersion);
  WriteU64(out, types_.size());
  for (std::size_t i = 0; i < types_.size(); ++i) {
    WriteU8(out, static_cast<std::uint8_t>(types_[i]));
    WriteU8(out, active_[i] ? 1 : 0);
  }
  WriteU64(out, record_nodes_.size());
  for (const NodeId node : record_nodes_) WriteU32(out, node);
  WriteU64(out, mac_to_node_.size());
  for (const auto& [mac, node] : mac_to_node_) {
    WriteU64(out, mac.bits());
    WriteU32(out, node);
  }
  // Record-side adjacency only; the MAC side is rebuilt on load.
  for (const NodeId record : record_nodes_) {
    WriteU64(out, adjacency_[record].size());
    for (const Neighbor& nb : adjacency_[record]) {
      WriteU32(out, nb.node);
      WriteDouble(out, nb.weight);
    }
  }
}

BipartiteGraph BipartiteGraph::Load(std::istream& in) {
  CheckHeader(in, kGraphMagic, kGraphVersion);
  BipartiteGraph g;
  const std::uint64_t num_nodes = ReadU64(in);
  g.types_.resize(num_nodes);
  g.active_.resize(num_nodes);
  g.adjacency_.resize(num_nodes);
  g.weighted_degree_.assign(num_nodes, 0.0);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    g.types_[i] = static_cast<NodeType>(ReadU8(in));
    g.active_[i] = ReadU8(in) != 0;
  }
  const std::uint64_t num_records = ReadU64(in);
  g.record_nodes_.resize(num_records);
  for (std::size_t i = 0; i < num_records; ++i) {
    g.record_nodes_[i] = ReadU32(in);
    Require(g.record_nodes_[i] < num_nodes, "BipartiteGraph::Load: bad id");
  }
  const std::uint64_t num_macs = ReadU64(in);
  g.num_active_macs_ = 0;
  for (std::size_t i = 0; i < num_macs; ++i) {
    const rf::MacAddress mac(ReadU64(in));
    const NodeId node = ReadU32(in);
    Require(node < num_nodes, "BipartiteGraph::Load: bad MAC node id");
    g.mac_to_node_.emplace(mac, node);
    if (g.active_[node]) ++g.num_active_macs_;
  }
  for (const NodeId record : g.record_nodes_) {
    const std::uint64_t degree = ReadU64(in);
    for (std::uint64_t e = 0; e < degree; ++e) {
      const NodeId mac = ReadU32(in);
      const double weight = ReadDouble(in);
      Require(mac < num_nodes && g.types_[mac] == NodeType::kMac,
              "BipartiteGraph::Load: bad edge endpoint");
      g.AddEdge(record, mac, weight);
    }
  }
  return g;
}

std::vector<Edge> BipartiteGraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (const NodeId record : record_nodes_) {
    for (const Neighbor& nb : adjacency_[record]) {
      edges.push_back({record, nb.node, nb.weight});
    }
  }
  return edges;
}

}  // namespace grafics::graph
