#include "graph/bipartite_graph.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/cow_serialize.h"
#include "common/error.h"
#include "common/serialize.h"

namespace grafics::graph {

BipartiteGraph BipartiteGraph::FromRecords(
    const std::vector<rf::SignalRecord>& records, const WeightFn& weight_fn) {
  BipartiteGraph graph;
  for (const rf::SignalRecord& record : records) {
    graph.AddRecord(record, weight_fn);
  }
  return graph;
}

NodeId BipartiteGraph::NewNode(NodeType type) {
  const auto id = static_cast<NodeId>(meta_.size());
  meta_.PushBack({type, /*active=*/true, /*weighted_degree=*/0.0});
  adjacency_.PushBack({});
  return id;
}

NodeId BipartiteGraph::AddRecord(const rf::SignalRecord& record,
                                 const WeightFn& weight_fn) {
  const NodeId record_node = NewNode(NodeType::kRecord);
  record_nodes_.PushBack(record_node);
  for (const rf::Observation& o : record.observations()) {
    const NodeId mac_node = GetOrAddMacNode(o.mac);
    AddEdge(record_node, mac_node, weight_fn(o.rssi_dbm));
  }
  return record_node;
}

std::optional<NodeId> BipartiteGraph::LookupMac(rf::MacAddress mac) const {
  if (const auto it = mac_delta_.find(mac); it != mac_delta_.end()) {
    return it->second;
  }
  if (mac_base_ != nullptr) {
    if (const auto it = mac_base_->find(mac); it != mac_base_->end()) {
      return it->second;
    }
  }
  return std::nullopt;
}

void BipartiteGraph::CompactMacIndexIfNeeded() {
  if (mac_delta_.size() < kMacDeltaCompactThreshold) return;
  auto merged = mac_base_ != nullptr ? std::make_shared<MacMap>(*mac_base_)
                                     : std::make_shared<MacMap>();
  merged->insert(mac_delta_.begin(), mac_delta_.end());
  mac_base_ = std::move(merged);
  mac_delta_.clear();
}

NodeId BipartiteGraph::GetOrAddMacNode(rf::MacAddress mac) {
  if (const std::optional<NodeId> existing = LookupMac(mac)) {
    Require(meta_[*existing].active,
            "BipartiteGraph: MAC " + mac.ToString() + " was removed");
    return *existing;
  }
  const NodeId id = NewNode(NodeType::kMac);
  mac_delta_.emplace(mac, id);
  ++num_active_macs_;
  CompactMacIndexIfNeeded();
  return id;
}

std::optional<NodeId> BipartiteGraph::FindMacNode(rf::MacAddress mac) const {
  const std::optional<NodeId> node = LookupMac(mac);
  if (!node.has_value() || !meta_[*node].active) return std::nullopt;
  return node;
}

void BipartiteGraph::AddEdge(NodeId record, NodeId mac, double weight) {
  Require(weight > 0.0, "BipartiteGraph::AddEdge: weight must be positive");
  adjacency_.MutableAt(record).push_back({mac, weight});
  adjacency_.MutableAt(mac).push_back({record, weight});
  meta_.MutableAt(record).weighted_degree += weight;
  meta_.MutableAt(mac).weighted_degree += weight;
  total_edge_weight_ += weight;
  ++num_edges_;
}

bool BipartiteGraph::RemoveMacNode(rf::MacAddress mac) {
  const std::optional<NodeId> found = LookupMac(mac);
  if (!found.has_value() || !meta_[*found].active) return false;
  const NodeId mac_node = *found;
  // Copy the neighbor list first: clearing the MAC's adjacency below may
  // copy-on-write the chunk the span points into.
  const std::span<const Neighbor> neighbors = adjacency_[mac_node];
  const std::vector<Neighbor> mac_neighbors(neighbors.begin(),
                                            neighbors.end());
  for (const Neighbor& nb : mac_neighbors) {
    std::vector<Neighbor>& rec_adj = adjacency_.MutableAt(nb.node);
    std::erase_if(rec_adj, [mac_node](const Neighbor& r) {
      return r.node == mac_node;
    });
    meta_.MutableAt(nb.node).weighted_degree -= nb.weight;
    total_edge_weight_ -= nb.weight;
    --num_edges_;
  }
  adjacency_.MutableAt(mac_node).clear();
  NodeMeta& meta = meta_.MutableAt(mac_node);
  meta.weighted_degree = 0.0;
  meta.active = false;
  --num_active_macs_;
  ++removal_epoch_;
  return true;
}

NodeType BipartiteGraph::TypeOf(NodeId node) const {
  Require(node < meta_.size(), "BipartiteGraph::TypeOf: bad node id");
  return meta_[node].type;
}

bool BipartiteGraph::IsActive(NodeId node) const {
  Require(node < meta_.size(), "BipartiteGraph::IsActive: bad node id");
  return meta_[node].active;
}

NodeId BipartiteGraph::RecordNode(std::size_t record_index) const {
  Require(record_index < record_nodes_.size(),
          "BipartiteGraph::RecordNode: index out of range");
  return record_nodes_[record_index];
}

std::size_t BipartiteGraph::RecordIndexOf(NodeId node) const {
  Require(node < meta_.size() && meta_[node].type == NodeType::kRecord,
          "BipartiteGraph::RecordIndexOf: not a record node");
  // Record nodes are appended in order, so binary search works.
  std::size_t lo = 0;
  std::size_t hi = record_nodes_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (record_nodes_[mid] < node) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  Require(lo < record_nodes_.size() && record_nodes_[lo] == node,
          "BipartiteGraph::RecordIndexOf: unknown record node");
  return lo;
}

std::span<const Neighbor> BipartiteGraph::NeighborsOf(NodeId node) const {
  Require(node < adjacency_.size(), "BipartiteGraph::NeighborsOf: bad id");
  return adjacency_[node];
}

double BipartiteGraph::WeightedDegree(NodeId node) const {
  Require(node < meta_.size(), "BipartiteGraph::WeightedDegree: bad id");
  return meta_[node].weighted_degree;
}

bool BipartiteGraph::operator==(const BipartiteGraph& other) const {
  if (meta_.size() != other.meta_.size() ||
      record_nodes_.size() != other.record_nodes_.size() ||
      num_edges_ != other.num_edges_ ||
      num_active_macs_ != other.num_active_macs_ ||
      total_edge_weight_ != other.total_edge_weight_ ||
      NumMacEntries() != other.NumMacEntries()) {
    return false;
  }
  if (!(meta_ == other.meta_) || !(adjacency_ == other.adjacency_) ||
      !(record_nodes_ == other.record_nodes_)) {
    return false;
  }
  // The MAC index is base + delta on both sides with possibly different
  // splits; compare the logical mapping.
  const auto covered_by_other = [&other](const MacMap& entries) {
    for (const auto& [mac, node] : entries) {
      const std::optional<NodeId> theirs = other.LookupMac(mac);
      if (!theirs.has_value() || *theirs != node) return false;
    }
    return true;
  };
  if (!covered_by_other(mac_delta_)) return false;
  if (mac_base_ != nullptr && mac_base_ != other.mac_base_ &&
      !covered_by_other(*mac_base_)) {
    return false;
  }
  return true;
}

CowBytes BipartiteGraph::MemoryBytes() const {
  CowBytes bytes = meta_.MemoryBytes();
  bytes += adjacency_.MemoryBytes([](const std::vector<Neighbor>& adj) {
    return adj.capacity() * sizeof(Neighbor);
  });
  bytes += record_nodes_.MemoryBytes();
  // unordered_map heap usage is implementation-defined; approximate one
  // bucket pointer + one node per entry.
  constexpr std::size_t kMapEntryBytes =
      sizeof(std::pair<rf::MacAddress, NodeId>) + 2 * sizeof(void*);
  if (mac_base_ != nullptr) {
    const std::size_t base_bytes = mac_base_->size() * kMapEntryBytes;
    (mac_base_.use_count() > 1 ? bytes.shared_bytes : bytes.owned_bytes) +=
        base_bytes;
  }
  bytes.owned_bytes += mac_delta_.size() * kMapEntryBytes;
  return bytes;
}

namespace {
constexpr char kGraphMagic[4] = {'G', 'B', 'P', 'G'};
// v1: structure only (degrees/totals rebuilt through AddEdge replay).
// v2: v1 + trailing exact-state block, so a load is bit-identical to the
//     saved graph even when MAC removals made the replayed floating-point
//     accumulations diverge in the last ulp.
constexpr std::uint32_t kGraphVersion = 2;
}  // namespace

void BipartiteGraph::Save(std::ostream& out) const {
  WriteHeader(out, kGraphMagic, kGraphVersion);
  WriteU64(out, meta_.size());
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    WriteU8(out, static_cast<std::uint8_t>(meta_[i].type));
    WriteU8(out, meta_[i].active ? 1 : 0);
  }
  WriteU64(out, record_nodes_.size());
  for (std::size_t i = 0; i < record_nodes_.size(); ++i) {
    WriteU32(out, record_nodes_[i]);
  }
  WriteU64(out, NumMacEntries());
  const auto write_entries = [&out](const MacMap& entries) {
    for (const auto& [mac, node] : entries) {
      WriteU64(out, mac.bits());
      WriteU32(out, node);
    }
  };
  if (mac_base_ != nullptr) write_entries(*mac_base_);
  write_entries(mac_delta_);
  // Record-side adjacency only; the MAC side is rebuilt on load.
  for (std::size_t i = 0; i < record_nodes_.size(); ++i) {
    const std::span<const Neighbor> neighbors = adjacency_[record_nodes_[i]];
    WriteU64(out, neighbors.size());
    for (const Neighbor& nb : neighbors) {
      WriteU32(out, nb.node);
      WriteDouble(out, nb.weight);
    }
  }
  // v2 exact-state block: the replay above reconstructs these by summation,
  // which matches only when no removal ever subtracted from the sums.
  WriteU64(out, removal_epoch_);
  WriteU64(out, num_edges_);
  WriteU64(out, num_active_macs_);
  WriteDouble(out, total_edge_weight_);
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    WriteDouble(out, meta_[i].weighted_degree);
  }
}

BipartiteGraph BipartiteGraph::Load(std::istream& in) {
  const std::uint32_t version = ReadHeader(in, kGraphMagic);
  Require(version >= 1 && version <= kGraphVersion,
          "BipartiteGraph::Load: unsupported format version " +
              std::to_string(version));
  BipartiteGraph g;
  const std::uint64_t num_nodes = ReadU64(in);
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    const auto type = static_cast<NodeType>(ReadU8(in));
    const bool active = ReadU8(in) != 0;
    g.meta_.PushBack({type, active, 0.0});
    g.adjacency_.PushBack({});
  }
  const std::uint64_t num_records = ReadU64(in);
  for (std::uint64_t i = 0; i < num_records; ++i) {
    const NodeId node = ReadU32(in);
    Require(node < num_nodes, "BipartiteGraph::Load: bad id");
    g.record_nodes_.PushBack(node);
  }
  const std::uint64_t num_macs = ReadU64(in);
  auto base = std::make_shared<MacMap>();
  g.num_active_macs_ = 0;
  for (std::uint64_t i = 0; i < num_macs; ++i) {
    const rf::MacAddress mac(ReadU64(in));
    const NodeId node = ReadU32(in);
    Require(node < num_nodes, "BipartiteGraph::Load: bad MAC node id");
    base->emplace(mac, node);
    if (g.meta_[node].active) ++g.num_active_macs_;
  }
  if (!base->empty()) g.mac_base_ = std::move(base);
  for (std::uint64_t i = 0; i < num_records; ++i) {
    const NodeId record = g.record_nodes_[i];
    const std::uint64_t degree = ReadU64(in);
    for (std::uint64_t e = 0; e < degree; ++e) {
      const NodeId mac = ReadU32(in);
      const double weight = ReadDouble(in);
      Require(mac < num_nodes && g.meta_[mac].type == NodeType::kMac,
              "BipartiteGraph::Load: bad edge endpoint");
      g.AddEdge(record, mac, weight);
    }
  }
  if (version >= 2) {
    g.removal_epoch_ = ReadU64(in);
    g.num_edges_ = ReadU64(in);
    g.num_active_macs_ = ReadU64(in);
    g.total_edge_weight_ = ReadDouble(in);
    for (std::uint64_t i = 0; i < num_nodes; ++i) {
      g.meta_.MutableAt(i).weighted_degree = ReadDouble(in);
    }
  }
  return g;
}

void BipartiteGraph::SaveDelta(std::ostream& out,
                               const BipartiteGraph& base) const {
  WriteU64(out, removal_epoch_);
  WriteU64(out, num_edges_);
  WriteU64(out, num_active_macs_);
  WriteDouble(out, total_edge_weight_);
  WriteCowVectorSparseDelta(
      out, meta_, base.meta_,
      [](std::ostream& o, const NodeMeta& meta, const NodeMeta*) {
        WriteU8(o, static_cast<std::uint8_t>(meta.type));
        WriteU8(o, meta.active ? 1 : 0);
        WriteDouble(o, meta.weighted_degree);
      });
  // Folds mostly append to neighbor lists (AddEdge), so each changed list
  // is encoded as the longest prefix it shares with the base plus the
  // rewritten suffix: a K-record fold costs O(new edges), not O(history of
  // every MAC the batch happened to observe). Evictions rewrite from the
  // first divergent entry, which stays correct — just less compact.
  WriteCowVectorSparseDelta(
      out, adjacency_, base.adjacency_,
      [](std::ostream& o, const std::vector<Neighbor>& current,
         const std::vector<Neighbor>* base_list) {
        std::size_t prefix = 0;
        if (base_list != nullptr) {
          const std::size_t limit =
              std::min(current.size(), base_list->size());
          while (prefix < limit && current[prefix] == (*base_list)[prefix]) {
            ++prefix;
          }
        }
        WriteU32(o, static_cast<std::uint32_t>(prefix));
        WriteU32(o, static_cast<std::uint32_t>(current.size() - prefix));
        for (std::size_t i = prefix; i < current.size(); ++i) {
          WriteU32(o, current[i].node);
          WriteDouble(o, current[i].weight);
        }
      });
  WriteCowVectorDelta(out, record_nodes_, base.record_nodes_,
                      [](std::ostream& o, NodeId node) { WriteU32(o, node); });
  const auto write_entries = [&out](const MacMap& entries) {
    for (const auto& [mac, node] : entries) {
      WriteU64(out, mac.bits());
      WriteU32(out, node);
    }
  };
  if (mac_base_ != nullptr && mac_base_ == base.mac_base_) {
    // Shared base map: only the owned delta entries travel. The base's own
    // delta entries are a subset of ours (entries are never erased and this
    // graph forked from `base`), so applying ours over the loaded merged
    // map reproduces the full mapping.
    WriteU8(out, 1);
    WriteU64(out, mac_delta_.size());
    write_entries(mac_delta_);
  } else {
    // The index compacted since the base (or the base had no map): write
    // the merged mapping wholesale.
    WriteU8(out, 0);
    WriteU64(out, NumMacEntries());
    if (mac_base_ != nullptr) write_entries(*mac_base_);
    write_entries(mac_delta_);
  }
}

void BipartiteGraph::ApplyDelta(std::istream& in) {
  removal_epoch_ = ReadU64(in);
  num_edges_ = ReadU64(in);
  num_active_macs_ = ReadU64(in);
  total_edge_weight_ = ReadDouble(in);
  ApplyCowVectorSparseDelta(in, meta_, [](std::istream& i, NodeMeta& meta) {
    meta.type = static_cast<NodeType>(ReadU8(i));
    meta.active = ReadU8(i) != 0;
    meta.weighted_degree = ReadDouble(i);
  });
  ApplyCowVectorSparseDelta(
      in, adjacency_, [](std::istream& i, std::vector<Neighbor>& list) {
        const std::uint32_t prefix = ReadU32(i);
        Require(prefix <= list.size(),
                "BipartiteGraph::ApplyDelta: neighbor prefix exceeds base");
        list.resize(prefix);
        const std::uint32_t appended = ReadU32(i);
        list.reserve(prefix + appended);
        for (std::uint32_t e = 0; e < appended; ++e) {
          const NodeId node = ReadU32(i);
          const double weight = ReadDouble(i);
          list.push_back({node, weight});
        }
      });
  ApplyCowVectorDelta(in, record_nodes_,
                      [](std::istream& i) -> NodeId { return ReadU32(i); });
  Require(meta_.size() == adjacency_.size(),
          "BipartiteGraph::ApplyDelta: meta/adjacency size mismatch");
  const std::uint8_t shared_base = ReadU8(in);
  const std::uint64_t entries = ReadU64(in);
  auto merged = shared_base != 0 && mac_base_ != nullptr
                    ? std::make_shared<MacMap>(*mac_base_)
                    : std::make_shared<MacMap>();
  for (std::uint64_t i = 0; i < entries; ++i) {
    const rf::MacAddress mac(ReadU64(in));
    const NodeId node = ReadU32(in);
    Require(node < meta_.size(),
            "BipartiteGraph::ApplyDelta: bad MAC node id");
    (*merged)[mac] = node;
  }
  mac_base_ = std::move(merged);
  mac_delta_.clear();
}

std::vector<Edge> BipartiteGraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (std::size_t i = 0; i < record_nodes_.size(); ++i) {
    const NodeId record = record_nodes_[i];
    for (const Neighbor& nb : adjacency_[record]) {
      edges.push_back({record, nb.node, nb.weight});
    }
  }
  return edges;
}

}  // namespace grafics::graph
