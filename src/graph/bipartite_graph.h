// Weighted bipartite graph G = (M, V, E) of MAC nodes and RF-record nodes.
//
// This is the paper's Sec. IV-A data model: each RF record becomes a node of
// one type, each sensed MAC a node of the other, and an edge of weight
// f(RSS_mv) connects record v to MAC m. The graph is incremental in both
// directions — new records and MACs can be appended (online inference) and
// MACs can be retired (AP removal) without rebuilding.
//
// Storage is persistent/copy-on-write (common/cow.h): per-node metadata and
// adjacency live in chunks shared between copies, and the MAC index is an
// immutable base map plus a small owned delta. Copying a BipartiteGraph is
// therefore O(1)-ish regardless of size — the ingest pipeline forks the
// served model per fold-in — and extending a copy touches only the chunks
// covering the new record's MAC neighborhoods, never the whole graph.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/cow.h"
#include "graph/weight_function.h"
#include "rf/signal_record.h"

namespace grafics::graph {

using NodeId = std::uint32_t;

enum class NodeType : std::uint8_t { kRecord, kMac };

struct Neighbor {
  NodeId node = 0;
  double weight = 0.0;

  bool operator==(const Neighbor&) const = default;
};

/// Undirected weighted edge; `record` is always the record-side endpoint.
struct Edge {
  NodeId record = 0;
  NodeId mac = 0;
  double weight = 0.0;
};

class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Builds a graph over all records of `dataset` with edge weights
  /// weight_fn(RSS).
  static BipartiteGraph FromRecords(
      const std::vector<rf::SignalRecord>& records, const WeightFn& weight_fn);

  /// Adds one record node with edges to its (possibly new) MAC nodes.
  /// Returns the new record node id. Empty records are allowed but produce
  /// an isolated node.
  NodeId AddRecord(const rf::SignalRecord& record, const WeightFn& weight_fn);

  /// Returns the MAC node id, creating the node if absent.
  NodeId GetOrAddMacNode(rf::MacAddress mac);

  /// Node id of the MAC if present.
  std::optional<NodeId> FindMacNode(rf::MacAddress mac) const;

  /// Retires a MAC node: removes all its edges (both directions) and marks
  /// it inactive. Returns false if the MAC is unknown. Models AP removal.
  bool RemoveMacNode(rf::MacAddress mac);

  std::size_t NumNodes() const { return meta_.size(); }
  std::size_t NumRecords() const { return record_nodes_.size(); }
  std::size_t NumMacs() const { return num_active_macs_; }
  std::size_t NumEdges() const { return num_edges_; }

  NodeType TypeOf(NodeId node) const;
  bool IsActive(NodeId node) const;

  /// Record node id for the i-th added record.
  NodeId RecordNode(std::size_t record_index) const;
  /// Inverse of RecordNode. Throws if `node` is not a record node.
  std::size_t RecordIndexOf(NodeId node) const;

  std::span<const Neighbor> NeighborsOf(NodeId node) const;
  double WeightedDegree(NodeId node) const;
  std::size_t Degree(NodeId node) const { return NeighborsOf(node).size(); }

  /// All edges, record side first. O(E).
  std::vector<Edge> Edges() const;
  double TotalEdgeWeight() const { return total_edge_weight_; }

  /// Bumped by every RemoveMacNode. Degrees only ever grow through
  /// AddRecord, so incremental consumers (the negative-sampler extension)
  /// can detect the one operation that shrinks them and rebuild.
  std::uint64_t removal_epoch() const { return removal_epoch_; }

  /// Chunk-granular heap accounting, split into bytes shared with other
  /// snapshots vs owned exclusively by this one.
  CowBytes MemoryBytes() const;

  /// Identity of the adjacency chunk backing `node` (aliasing tests: a fork
  /// shares a node's adjacency storage with its parent iff equal).
  const void* AdjacencyChunkAddress(NodeId node) const {
    return adjacency_.ChunkAddress(node);
  }

  /// Binary (de)serialization; round-trips the full graph state including
  /// retired MAC nodes so node ids stay stable. Save writes format v2,
  /// whose trailing exact-state block (weighted degrees, edge totals,
  /// removal epoch) makes the load bit-identical even after MAC removals;
  /// Load also accepts the v1 files older model artifacts embed.
  void Save(std::ostream& out) const;
  static BipartiteGraph Load(std::istream& in);

  /// Delta against `base` (a snapshot this graph was forked from): only the
  /// chunks this graph owns relative to the base are written — O(owned
  /// chunks), not O(graph). ApplyDelta mutates a graph loaded from the
  /// base's artifact into this graph's exact state.
  void SaveDelta(std::ostream& out, const BipartiteGraph& base) const;
  void ApplyDelta(std::istream& in);

  /// Deep structural equality (chunk sharing is invisible to ==).
  bool operator==(const BipartiteGraph& other) const;

 private:
  struct NodeMeta {
    NodeType type = NodeType::kRecord;
    bool active = false;
    double weighted_degree = 0.0;

    bool operator==(const NodeMeta&) const = default;
  };
  using MacMap = std::unordered_map<rf::MacAddress, NodeId>;

  /// Delta entries beyond this are merged into a fresh shared base map, so
  /// the per-copy cost of the owned delta stays bounded.
  static constexpr std::size_t kMacDeltaCompactThreshold = 1024;

  NodeId NewNode(NodeType type);
  void AddEdge(NodeId record, NodeId mac, double weight);
  /// Delta-then-base lookup, ignoring the active flag.
  std::optional<NodeId> LookupMac(rf::MacAddress mac) const;
  void CompactMacIndexIfNeeded();
  std::size_t NumMacEntries() const {
    return (mac_base_ ? mac_base_->size() : 0) + mac_delta_.size();
  }

  CowVector<NodeMeta, 512> meta_;
  CowVector<std::vector<Neighbor>, 64> adjacency_;
  CowVector<NodeId, 1024> record_nodes_;
  /// MAC -> node index: immutable shared base + small owned delta. Entries
  /// are never erased (retirement flips `active`), so base and delta are
  /// disjoint and ids never change.
  std::shared_ptr<const MacMap> mac_base_;
  MacMap mac_delta_;
  std::size_t num_edges_ = 0;
  std::size_t num_active_macs_ = 0;
  double total_edge_weight_ = 0.0;
  std::uint64_t removal_epoch_ = 0;
};

}  // namespace grafics::graph
