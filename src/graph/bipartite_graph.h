// Weighted bipartite graph G = (M, V, E) of MAC nodes and RF-record nodes.
//
// This is the paper's Sec. IV-A data model: each RF record becomes a node of
// one type, each sensed MAC a node of the other, and an edge of weight
// f(RSS_mv) connects record v to MAC m. The graph is incremental in both
// directions — new records and MACs can be appended (online inference) and
// MACs can be retired (AP removal) without rebuilding.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/weight_function.h"
#include "rf/signal_record.h"

namespace grafics::graph {

using NodeId = std::uint32_t;

enum class NodeType : std::uint8_t { kRecord, kMac };

struct Neighbor {
  NodeId node = 0;
  double weight = 0.0;

  bool operator==(const Neighbor&) const = default;
};

/// Undirected weighted edge; `record` is always the record-side endpoint.
struct Edge {
  NodeId record = 0;
  NodeId mac = 0;
  double weight = 0.0;
};

class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Builds a graph over all records of `dataset` with edge weights
  /// weight_fn(RSS).
  static BipartiteGraph FromRecords(
      const std::vector<rf::SignalRecord>& records, const WeightFn& weight_fn);

  /// Adds one record node with edges to its (possibly new) MAC nodes.
  /// Returns the new record node id. Empty records are allowed but produce
  /// an isolated node.
  NodeId AddRecord(const rf::SignalRecord& record, const WeightFn& weight_fn);

  /// Returns the MAC node id, creating the node if absent.
  NodeId GetOrAddMacNode(rf::MacAddress mac);

  /// Node id of the MAC if present.
  std::optional<NodeId> FindMacNode(rf::MacAddress mac) const;

  /// Retires a MAC node: removes all its edges (both directions) and marks
  /// it inactive. Returns false if the MAC is unknown. Models AP removal.
  bool RemoveMacNode(rf::MacAddress mac);

  std::size_t NumNodes() const { return types_.size(); }
  std::size_t NumRecords() const { return record_nodes_.size(); }
  std::size_t NumMacs() const { return num_active_macs_; }
  std::size_t NumEdges() const { return num_edges_; }

  NodeType TypeOf(NodeId node) const;
  bool IsActive(NodeId node) const;

  /// Record node id for the i-th added record.
  NodeId RecordNode(std::size_t record_index) const;
  /// Inverse of RecordNode. Throws if `node` is not a record node.
  std::size_t RecordIndexOf(NodeId node) const;

  std::span<const Neighbor> NeighborsOf(NodeId node) const;
  double WeightedDegree(NodeId node) const;
  std::size_t Degree(NodeId node) const { return NeighborsOf(node).size(); }

  /// All edges, record side first. O(E).
  std::vector<Edge> Edges() const;
  double TotalEdgeWeight() const { return total_edge_weight_; }

  /// Binary (de)serialization; round-trips the full graph state including
  /// retired MAC nodes so node ids stay stable.
  void Save(std::ostream& out) const;
  static BipartiteGraph Load(std::istream& in);

  bool operator==(const BipartiteGraph&) const = default;

 private:
  NodeId NewNode(NodeType type);
  void AddEdge(NodeId record, NodeId mac, double weight);

  std::vector<NodeType> types_;
  std::vector<bool> active_;
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<double> weighted_degree_;
  std::vector<NodeId> record_nodes_;
  std::unordered_map<rf::MacAddress, NodeId> mac_to_node_;
  std::size_t num_edges_ = 0;
  std::size_t num_active_macs_ = 0;
  double total_edge_weight_ = 0.0;
};

}  // namespace grafics::graph
