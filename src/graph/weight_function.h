// Edge-weight functions mapping RSS (dBm) to a positive graph edge weight.
//
// The paper's Eq. (2) uses f(RSS) = RSS + α with α larger than any |RSS|
// (α = 120 in Sec. VI-D), and compares against the power-domain conversion
// g(RSS) = 10^{RSS/10} (Fig. 16), which compresses the differences between
// RSS values and produces worse embeddings.
#pragma once

#include <functional>

namespace grafics::graph {

/// Maps an RSS value in dBm to a strictly positive edge weight.
using WeightFn = std::function<double(double)>;

/// f(RSS) = RSS + alpha. Throws at call time if the result is not positive.
WeightFn OffsetWeight(double alpha = 120.0);

/// g(RSS) = 10^{RSS/10} (dBm -> milliwatts).
WeightFn PowerWeight();

/// Binary weight: every observed edge weighs 1 (ablation).
WeightFn BinaryWeight();

}  // namespace grafics::graph
