// grafics — command-line interface to the GRAFICS floor-identification
// system, operating on the CSV dataset format of rf::Dataset
// (one record per row: floor-or-empty, then alternating mac,rss pairs).
//
//   grafics train   <dataset.csv> <model.bin> [--labels-per-floor N]
//   grafics predict <model.bin> <scans.csv> [--threads N]
//   grafics remote-predict <host:port> <scans.csv> [--model NAME] [--batch N]
//   grafics remote-submit  <host:port> <records.csv> [--model NAME]
//                          [--batch N]
//   grafics remote-ping    <host:port> [--model NAME]
//   grafics remote-reload  <host:port> [--model NAME] [--generation N]
//   grafics remote-checkpoint <host:port> [--model NAME]
//   grafics remote-compact    <host:port> [--model NAME]
//   grafics remote-artifacts  <host:port> [--model NAME]
//   grafics remote-models  <host:port>
//   grafics remote-stats   <host:port> [--model NAME] [--watch N]
//   grafics remote-metrics <host:port>
//   grafics remote-ingest-stats <host:port> [--model NAME]
//   grafics eval    <dataset.csv> [--labels-per-floor N] [--train-ratio R]
//   grafics synth   <out.csv> [--preset campus|mall|hk-tower] [--seed S]
//   grafics stats   <dataset.csv>
//
// remote-predict queries a running grafics_served daemon — batching records
// into one protocol frame per --batch records — and prints the exact
// same `index,floor` lines as the in-process predict command, so the two
// outputs diff clean on the same model (the CI daemon smoke test relies on
// that, per named model). remote-submit feeds crowdsourced records into the
// daemon's online ingestion pipeline (journaled, folded in the background;
// watch progress with remote-ingest-stats until `pending` reaches 0).
// remote-ping reports the negotiated protocol version; remote-models and
// remote-stats are the admin surface of the daemon's multi-building model
// registry. remote-checkpoint, remote-compact and remote-artifacts drive a
// v6 daemon's persistence store (--store-dir): write a base/delta
// checkpoint, fold the journal into one, and inspect the artifact chain;
// remote-reload --generation N rolls the served model back to a pinned
// store generation. remote-stats --watch N re-queries and re-prints every
// N seconds (snapshots separated by a blank line) until interrupted;
// remote-metrics dumps a v7 daemon's full Prometheus text exposition —
// the same bytes GET /metrics on its --admin-port serves — for hosts the
// scraper cannot reach.
//
// Exit status: 0 on success, 1 on usage error, 2 on runtime failure.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cli_flags.h"
#include "common/error.h"
#include "core/experiment.h"
#include "core/grafics.h"
#include "rf/dataset_stats.h"
#include "serve/client.h"
#include "synth/presets.h"

namespace {

using namespace grafics;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  grafics train   <dataset.csv> <model.bin> "
               "[--labels-per-floor N]\n"
               "  grafics predict <model.bin> <scans.csv> [--threads N]\n"
               "  grafics remote-predict <host:port> <scans.csv> "
               "[--model NAME] [--batch N]\n"
               "  grafics remote-submit  <host:port> <records.csv> "
               "[--model NAME] [--batch N]\n"
               "  grafics remote-ping    <host:port> [--model NAME]\n"
               "  grafics remote-reload  <host:port> [--model NAME] "
               "[--generation N]\n"
               "  grafics remote-checkpoint <host:port> [--model NAME]\n"
               "  grafics remote-compact    <host:port> [--model NAME]\n"
               "  grafics remote-artifacts  <host:port> [--model NAME]\n"
               "  grafics remote-models  <host:port>\n"
               "  grafics remote-stats   <host:port> [--model NAME] "
               "[--watch N]\n"
               "  grafics remote-metrics <host:port>\n"
               "  grafics remote-ingest-stats <host:port> [--model NAME]\n"
               "  grafics eval    <dataset.csv> [--labels-per-floor N] "
               "[--train-ratio R] [--seed S]\n"
               "  grafics synth   <out.csv> [--preset campus|mall|hk-tower] "
               "[--seed S]\n"
               "  grafics stats   <dataset.csv>\n");
  return 1;
}

int CmdTrain(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  rf::Dataset dataset = rf::Dataset::LoadCsv(args[0], "cli");
  const auto labels_per_floor =
      static_cast<std::size_t>(std::stoul(FlagValue(args, "--labels-per-floor",
                                                    "0")));
  if (labels_per_floor > 0) {
    Rng rng(1);
    dataset.KeepLabelsPerFloor(labels_per_floor, rng);
  }
  std::printf("training on %zu records (%zu labeled, %zu MACs)...\n",
              dataset.size(), dataset.LabeledCount(),
              dataset.DistinctMacCount());
  core::Grafics system;
  system.Train(dataset.records());
  system.SaveModel(args[1]);
  std::printf("model written to %s (%zu clusters)\n", args[1].c_str(),
              system.clustering().num_clusters());
  return 0;
}

int CmdPredict(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  const core::Grafics system = core::Grafics::LoadModel(args[0]);
  const rf::Dataset scans = rf::Dataset::LoadCsv(args[1], "scans");
  // Snapshot-isolated batch serving: 0 maps to hardware concurrency; the
  // output is bit-identical for every thread count.
  core::BatchPredictOptions options;
  options.num_threads = static_cast<std::size_t>(
      std::stoul(FlagValue(args, "--threads", "1")));
  const auto predictions = system.PredictBatch(scans.records(), options);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i]) {
      std::printf("%zu,%d\n", i, *predictions[i]);
    } else {
      std::printf("%zu,discarded\n", i);
    }
  }
  return 0;
}

/// Splits "host:port" on the last colon. Throws grafics::Error when either
/// half is missing or the port is not a number in [1, 65535].
std::pair<std::string, std::uint16_t> ParseHostPort(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  Require(colon != std::string::npos && colon > 0 && colon + 1 < text.size(),
          "expected host:port, got '" + text + "'");
  const std::uint64_t port =
      ParseUnsigned(text.substr(colon + 1), 65535, "port in '" + text + "'");
  Require(port >= 1, "port out of range in '" + text + "'");
  return {text.substr(0, colon), static_cast<std::uint16_t>(port)};
}

int CmdRemotePredict(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  const auto [host, port] = ParseHostPort(args[0]);
  const std::string model = FlagValue(args, "--model", "");
  const std::size_t batch = static_cast<std::size_t>(ParseUnsigned(
      FlagValue(args, "--batch", "256"), serve::kMaxBatchRecords, "--batch"));
  Require(batch >= 1, "--batch must be at least 1");
  serve::Client client(host, port);
  const rf::Dataset scans = rf::Dataset::LoadCsv(args[1], "scans");
  if (scans.records().empty()) return 0;
  // Same output contract as CmdPredict: predictions over the wire are
  // bit-identical to in-process Predict on the same model artifact — here
  // one round trip per --batch records instead of one per scan.
  const auto predictions = client.PredictBatch(scans.records(), model, batch);
  for (std::size_t index = 0; index < predictions.size(); ++index) {
    if (predictions[index]) {
      std::printf("%zu,%d\n", index, *predictions[index]);
    } else {
      std::printf("%zu,discarded\n", index);
    }
  }
  return 0;
}

int CmdRemoteSubmit(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  const auto [host, port] = ParseHostPort(args[0]);
  const std::string model = FlagValue(args, "--model", "");
  const std::size_t batch = static_cast<std::size_t>(ParseUnsigned(
      FlagValue(args, "--batch", "256"), serve::kMaxBatchRecords, "--batch"));
  Require(batch >= 1, "--batch must be at least 1");
  serve::Client client(host, port);
  const rf::Dataset records = rf::Dataset::LoadCsv(args[1], "records");
  if (records.records().empty()) return 0;
  const auto results = client.Submit(records.records(), model, batch);
  std::size_t accepted = 0;
  for (std::size_t index = 0; index < results.size(); ++index) {
    if (results[index].status == serve::SubmitStatus::kAccepted) {
      ++accepted;
      std::printf("%zu,accepted\n", index);
    } else {
      std::printf("%zu,rejected,%s\n", index, results[index].error.c_str());
    }
  }
  std::fprintf(stderr, "submitted %zu record(s): %zu accepted, %zu "
               "rejected\n",
               results.size(), accepted, results.size() - accepted);
  // Like remote-predict's diff contract, scripts branch on the exit code:
  // any rejection is visible without parsing stdout.
  return accepted == results.size() ? 0 : 2;
}

int CmdRemoteIngestStats(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const auto [host, port] = ParseHostPort(args[0]);
  const std::string model = FlagValue(args, "--model", "");
  // Same downgrade ladder as remote-stats, shared through the client.
  const auto [stats, spoken] =
      serve::Client::NegotiatedIngestStats(host, port, model);
  if (!stats.enabled) {
    std::fprintf(stderr, "ingest disabled on this daemon\n");
    return 2;
  }
  if (!model.empty() && stats.models.empty()) {
    std::fprintf(stderr, "no such model '%s'\n", model.c_str());
    return 2;
  }
  for (const serve::IngestModelStats& m : stats.models) {
    std::printf(
        "%s,accepted=%llu,rejected=%llu,pending=%llu,folded=%llu,"
        "replayed=%llu,journal_bytes=%llu,publishes=%llu,"
        "last_publish_generation=%llu,fold_min_us=%llu,fold_mean_us=%llu,"
        "fold_max_us=%llu,last_fold_us=%llu",
        m.name.c_str(), static_cast<unsigned long long>(m.accepted),
        static_cast<unsigned long long>(m.rejected),
        static_cast<unsigned long long>(m.pending),
        static_cast<unsigned long long>(m.folded),
        static_cast<unsigned long long>(m.replayed),
        static_cast<unsigned long long>(m.journal_bytes),
        static_cast<unsigned long long>(m.publishes),
        static_cast<unsigned long long>(m.last_publish_generation),
        static_cast<unsigned long long>(m.fold_min_us),
        static_cast<unsigned long long>(m.fold_mean_us),
        static_cast<unsigned long long>(m.fold_max_us),
        static_cast<unsigned long long>(m.last_fold_us));
    if (spoken >= 6) {
      std::printf(",replayed_batches=%llu,journal_dropped_bytes=%llu",
                  static_cast<unsigned long long>(m.replayed_batches),
                  static_cast<unsigned long long>(m.journal_dropped_bytes));
    }
    std::printf("\n");
  }
  return 0;
}

int CmdRemotePing(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const auto [host, port] = ParseHostPort(args[0]);
  serve::Client client(host, port);
  const serve::Pong pong = client.Ping(FlagValue(args, "--model", ""));
  if (!pong.ok) {
    std::fprintf(stderr, "ping failed: %s\n", pong.error.c_str());
    return 2;
  }
  std::printf("protocol v%u, model generation %llu\n", pong.protocol_version,
              static_cast<unsigned long long>(pong.model_generation));
  return 0;
}

int CmdRemoteReload(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const auto [host, port] = ParseHostPort(args[0]);
  const std::string model = FlagValue(args, "--model", "");
  // --generation N pins a store generation: the rollback flow against a
  // daemon running with --store-dir (0 = plain reload from disk).
  const std::uint64_t pinned = ParseUnsigned(
      FlagValue(args, "--generation", "0"), UINT64_MAX, "--generation");
  serve::Client client(host, port);
  const std::uint64_t generation = client.Reload(model, pinned);
  if (pinned != 0) {
    std::printf(
        "daemon rolled back model %s to store generation %llu "
        "(registry generation %llu)\n",
        model.empty() ? "<default>" : model.c_str(),
        static_cast<unsigned long long>(pinned),
        static_cast<unsigned long long>(generation));
  } else {
    std::printf("daemon reloaded model %s (generation %llu)\n",
                model.empty() ? "<default>" : model.c_str(),
                static_cast<unsigned long long>(generation));
  }
  return 0;
}

int CmdRemoteCheckpoint(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const auto [host, port] = ParseHostPort(args[0]);
  serve::Client client(host, port);
  const serve::CheckpointResponse response =
      client.Checkpoint(FlagValue(args, "--model", ""));
  if (!response.ok) {
    std::fprintf(stderr, "checkpoint failed: %s\n", response.message.c_str());
    return 2;
  }
  std::printf("generation=%llu,kind=%s,bytes=%llu\n",
              static_cast<unsigned long long>(response.generation),
              response.delta ? "delta" : "base",
              static_cast<unsigned long long>(response.bytes_written));
  return 0;
}

int CmdRemoteCompact(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const auto [host, port] = ParseHostPort(args[0]);
  serve::Client client(host, port);
  const serve::CompactResponse response =
      client.Compact(FlagValue(args, "--model", ""));
  if (!response.ok) {
    std::fprintf(stderr, "compact failed: %s\n", response.message.c_str());
    return 2;
  }
  std::printf("generation=%llu,journal_bytes_reclaimed=%llu\n",
              static_cast<unsigned long long>(response.generation),
              static_cast<unsigned long long>(
                  response.journal_bytes_reclaimed));
  return 0;
}

int CmdRemoteArtifacts(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const auto [host, port] = ParseHostPort(args[0]);
  serve::Client client(host, port);
  const serve::ListArtifactsResponse response =
      client.ListArtifacts(FlagValue(args, "--model", ""));
  if (!response.enabled) {
    std::fprintf(stderr, "persistence store disabled on this daemon\n");
    return 2;
  }
  for (const serve::ArtifactEntry& artifact : response.artifacts) {
    std::printf("generation=%llu,kind=%s,bytes=%llu,file=%s\n",
                static_cast<unsigned long long>(artifact.generation),
                artifact.delta ? "delta" : "base",
                static_cast<unsigned long long>(artifact.bytes),
                artifact.file.c_str());
  }
  return 0;
}

int CmdRemoteModels(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const auto [host, port] = ParseHostPort(args[0]);
  serve::Client client(host, port);
  const serve::ListModelsResponse models = client.ListModels();
  for (const serve::ModelInfo& info : models.models) {
    std::printf("%s,generation=%llu,reloadable=%d%s\n", info.name.c_str(),
                static_cast<unsigned long long>(info.generation),
                info.reloadable ? 1 : 0,
                info.name == models.default_model ? ",default" : "");
  }
  return 0;
}

/// One remote-stats snapshot: fetch (with version-ladder downgrade) and
/// print. Factored out so --watch re-runs it on a fresh connection each
/// interval — a daemon restart mid-watch reconnects instead of erroring on
/// a dead socket.
int FetchAndPrintRemoteStats(const std::string& host, std::uint16_t port,
                             const std::string& model) {
  // Client::NegotiatedStats walks the version ladder against older daemons;
  // `spoken` tells us which fields the reply actually carried, so the
  // output degrades gracefully instead of printing zero defaults.
  const auto [stats, spoken] = serve::Client::NegotiatedStats(host, port,
                                                              model);
  if (!model.empty() && stats.models.empty()) {
    std::fprintf(stderr, "no such model '%s'\n", model.c_str());
    return 2;
  }
  std::printf("connections_accepted=%llu\n",
              static_cast<unsigned long long>(stats.connections_accepted));
  if (spoken >= 5) {
    const serve::TransportStats& t = stats.transport;
    std::printf(
        "transport,connections_live=%llu,harvested_idle=%llu,frames_in=%llu,"
        "frames_out=%llu,bytes_in=%llu,bytes_out=%llu,rejected_busy=%llu,"
        "event_workers=%llu\n",
        static_cast<unsigned long long>(t.connections_live),
        static_cast<unsigned long long>(t.connections_harvested_idle),
        static_cast<unsigned long long>(t.frames_in),
        static_cast<unsigned long long>(t.frames_out),
        static_cast<unsigned long long>(t.bytes_in),
        static_cast<unsigned long long>(t.bytes_out),
        static_cast<unsigned long long>(t.requests_rejected_busy),
        static_cast<unsigned long long>(t.event_workers));
  }
  if (spoken >= 6) {
    const serve::StoreStats& s = stats.store;
    if (s.enabled) {
      std::printf(
          "store,bases=%llu,deltas=%llu,journal_bytes_reclaimed=%llu\n",
          static_cast<unsigned long long>(s.base_count),
          static_cast<unsigned long long>(s.delta_count),
          static_cast<unsigned long long>(s.journal_bytes_reclaimed));
    } else {
      std::printf("store,disabled\n");
    }
  }
  for (const serve::ModelStats& m : stats.models) {
    std::printf(
        "%s,generation=%llu,requests=%llu,batches=%llu,max_batch=%llu,"
        "queue_depth=%llu",
        m.name.c_str(), static_cast<unsigned long long>(m.generation),
        static_cast<unsigned long long>(m.requests),
        static_cast<unsigned long long>(m.batches),
        static_cast<unsigned long long>(m.max_batch),
        static_cast<unsigned long long>(m.queue_depth));
    if (spoken >= 3) {
      std::printf(
          ",last_publish_source=%s,pending_ingest=%llu",
          m.last_publish_source == serve::PublishSource::kIngest ? "ingest"
                                                                 : "disk",
          static_cast<unsigned long long>(m.pending_ingest));
    }
    if (spoken >= 4) {
      std::printf(",shared_bytes=%llu,owned_bytes=%llu",
                  static_cast<unsigned long long>(m.shared_bytes),
                  static_cast<unsigned long long>(m.owned_bytes));
    }
    std::printf("\n");
  }
  return 0;
}

int CmdRemoteStats(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const auto [host, port] = ParseHostPort(args[0]);
  const std::string model = FlagValue(args, "--model", "");
  // --watch N re-queries every N seconds until interrupted, each snapshot
  // on a fresh connection, separated by one blank line (0 = print once).
  const std::uint64_t watch_seconds = ParseUnsigned(
      FlagValue(args, "--watch", "0"), 86400, "--watch");
  for (;;) {
    const int status = FetchAndPrintRemoteStats(host, port, model);
    if (status != 0 || watch_seconds == 0) return status;
    std::printf("\n");
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(watch_seconds));
  }
}

int CmdRemoteMetrics(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const auto [host, port] = ParseHostPort(args[0]);
  serve::Client client(host, port);
  // The exposition already ends in a newline (or is empty when the daemon
  // runs without telemetry); print it verbatim so the output pipes
  // straight into promtool and friends.
  const std::string text = client.Metrics();
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

int CmdEval(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const rf::Dataset dataset = rf::Dataset::LoadCsv(args[0], "cli");
  core::ExperimentConfig config;
  config.labels_per_floor = static_cast<std::size_t>(
      std::stoul(FlagValue(args, "--labels-per-floor", "4")));
  config.train_ratio = std::stod(FlagValue(args, "--train-ratio", "0.7"));
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(FlagValue(args, "--seed", "42")));
  const auto result =
      core::RunExperiment(core::Algorithm::kGrafics, dataset, config, seed);
  std::printf("micro: P=%.3f R=%.3f F=%.3f\n", result.metrics.micro.precision,
              result.metrics.micro.recall, result.metrics.micro.f_score);
  std::printf("macro: P=%.3f R=%.3f F=%.3f\n", result.metrics.macro.precision,
              result.metrics.macro.recall, result.metrics.macro.f_score);
  std::printf("train %.2fs, inference %.2fs for %zu test records\n",
              result.train_seconds, result.infer_seconds,
              result.metrics.num_samples);
  return 0;
}

int CmdSynth(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const std::string preset = FlagValue(args, "--preset", "campus");
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(FlagValue(args, "--seed", "7")));
  synth::BuildingConfig config;
  if (preset == "campus") {
    config = synth::CampusBuildingConfig(seed);
  } else if (preset == "mall") {
    config = synth::HongKongFleet(seed)[4];
  } else if (preset == "hk-tower") {
    config = synth::HongKongFleet(seed)[0];
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 1;
  }
  auto sim = config.MakeSimulator();
  const rf::Dataset dataset = sim.GenerateDataset();
  dataset.SaveCsv(args[0]);
  std::printf("wrote %zu records (%s, %zu MACs) to %s\n", dataset.size(),
              config.spec.name.c_str(), dataset.DistinctMacCount(),
              args[0].c_str());
  return 0;
}

int CmdStats(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const rf::Dataset dataset = rf::Dataset::LoadCsv(args[0], "cli");
  Rng rng(1);
  const auto stats = rf::ComputeRecordStats(dataset, 100000, rng);
  std::printf("records: %zu  labeled: %zu  distinct MACs: %zu  floors: %zu\n",
              dataset.size(), dataset.LabeledCount(),
              dataset.DistinctMacCount(), dataset.Floors().size());
  std::printf("MACs/record: mean=%.1f min=%.0f max=%.0f\n",
              stats.macs_per_record.mean, stats.macs_per_record.min,
              stats.macs_per_record.max);
  std::printf("records with <= 40 MACs: %.1f%%\n",
              stats.fraction_records_below_40_macs * 100.0);
  std::printf("pairs with overlap < 0.5: %.1f%%\n",
              stats.fraction_pairs_overlap_below_half * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "train") return CmdTrain(args);
    if (command == "predict") return CmdPredict(args);
    if (command == "remote-predict") return CmdRemotePredict(args);
    if (command == "remote-submit") return CmdRemoteSubmit(args);
    if (command == "remote-ingest-stats") return CmdRemoteIngestStats(args);
    if (command == "remote-ping") return CmdRemotePing(args);
    if (command == "remote-reload") return CmdRemoteReload(args);
    if (command == "remote-checkpoint") return CmdRemoteCheckpoint(args);
    if (command == "remote-compact") return CmdRemoteCompact(args);
    if (command == "remote-artifacts") return CmdRemoteArtifacts(args);
    if (command == "remote-models") return CmdRemoteModels(args);
    if (command == "remote-stats") return CmdRemoteStats(args);
    if (command == "remote-metrics") return CmdRemoteMetrics(args);
    if (command == "eval") return CmdEval(args);
    if (command == "synth") return CmdSynth(args);
    if (command == "stats") return CmdStats(args);
    return Usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
