// grafics_served — the GRAFICS network serving daemon.
//
// Loads a SaveModel artifact and answers floor queries over the TCP protocol
// of serve/protocol.h, coalescing concurrent requests into dynamic
// micro-batches served through the snapshot-isolated PredictBatch path.
//
//   grafics_served <model.bin> [--host A] [--port P] [--max-batch N]
//                  [--max-delay-ms M] [--threads T] [--port-file F]
//
//   --host A          bind address            (default 127.0.0.1)
//   --port P          TCP port; 0 = ephemeral (default 4817)
//   --max-batch N     flush a batch at N pending requests (default 64)
//   --max-delay-ms M  flush after the oldest request waited M ms (default 2)
//   --threads T       PredictBatch workers per flush; 0 = all cores
//   --port-file F     write the bound port to F once listening (for
//                     scripts/CI that start on an ephemeral port)
//
// SIGHUP hot-reloads the model artifact from disk: new batches move to the
// fresh snapshot atomically while in-flight batches finish on the old one.
// Clients can trigger the same reload remotely (`grafics remote-reload`).
// SIGINT/SIGTERM drain and exit.
//
// Exit status: 0 on clean shutdown, 1 on usage error, 2 on runtime failure.
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli_flags.h"
#include "common/error.h"
#include "core/grafics.h"
#include "serve/server.h"

namespace {

using namespace grafics;

volatile std::sig_atomic_t g_reload_requested = 0;
volatile std::sig_atomic_t g_stop_requested = 0;

void OnSignal(int signal_number) {
  if (signal_number == SIGHUP) {
    g_reload_requested = 1;
  } else {
    g_stop_requested = 1;
  }
}

void InstallSignalHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGHUP, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

int Usage() {
  std::fprintf(stderr,
               "usage: grafics_served <model.bin> [--host A] [--port P] "
               "[--max-batch N]\n"
               "                      [--max-delay-ms M] [--threads T] "
               "[--port-file F]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') return Usage();
  const std::string model_path = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    serve::ServerConfig config;
    config.host = FlagValue(args, "--host", "127.0.0.1");
    config.port = static_cast<std::uint16_t>(ParseUnsigned(
        FlagValue(args, "--port", std::to_string(serve::kDefaultPort)), 65535,
        "--port"));
    config.batcher.max_batch_size = static_cast<std::size_t>(ParseUnsigned(
        FlagValue(args, "--max-batch", "64"), 1 << 20, "--max-batch"));
    config.batcher.max_delay = std::chrono::milliseconds(ParseUnsigned(
        FlagValue(args, "--max-delay-ms", "2"), 60000, "--max-delay-ms"));
    config.batcher.predict_threads = static_cast<std::size_t>(ParseUnsigned(
        FlagValue(args, "--threads", "1"), 4096, "--threads"));
    const std::string port_file = FlagValue(args, "--port-file", "");

    // Before the (slow) model load: an early SIGHUP must queue a reload,
    // not kill the process with the default action.
    InstallSignalHandlers();
    std::printf("grafics_served: loading %s...\n", model_path.c_str());
    std::fflush(stdout);
    auto model = std::make_shared<const core::Grafics>(
        core::Grafics::LoadModel(model_path));
    serve::Server server(std::move(model), config, model_path);
    server.Start();
    std::printf("grafics_served: serving %s on %s:%u (pid %d)\n",
                model_path.c_str(), config.host.c_str(),
                static_cast<unsigned>(server.port()),
                static_cast<int>(::getpid()));
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::FILE* f = std::fopen(port_file.c_str(), "w");
      Require(f != nullptr, "cannot write port file " + port_file);
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
      std::fclose(f);
    }

    std::uint64_t reloads = 0;
    while (g_stop_requested == 0) {
      if (g_reload_requested != 0) {
        g_reload_requested = 0;
        try {
          server.ReloadFromDisk();
          ++reloads;
          std::printf("grafics_served: reloaded %s (generation %llu)\n",
                      model_path.c_str(),
                      static_cast<unsigned long long>(
                          server.model_generation()));
        } catch (const std::exception& e) {
          // Keep serving the old snapshot; a broken artifact on disk must
          // not take the daemon down.
          std::fprintf(stderr, "grafics_served: reload failed: %s\n",
                       e.what());
        }
        std::fflush(stdout);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    server.Stop();
    const serve::BatcherStats stats = server.batcher_stats();
    std::printf(
        "grafics_served: shut down after %llu connection(s), %llu "
        "request(s) in %llu batch(es) (largest %llu), %llu reload(s)\n",
        static_cast<unsigned long long>(server.connections_accepted()),
        static_cast<unsigned long long>(stats.requests),
        static_cast<unsigned long long>(stats.batches),
        static_cast<unsigned long long>(stats.max_batch),
        static_cast<unsigned long long>(reloads));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "grafics_served: error: %s\n", e.what());
    return 2;
  }
}
