// grafics_served — the GRAFICS network serving daemon.
//
// Loads one or many SaveModel artifacts into a named model registry and
// answers floor queries over the TCP protocol of serve/protocol.h,
// coalescing concurrent requests into per-model dynamic micro-batches
// served through the snapshot-isolated PredictBatch path. One daemon, many
// buildings: clients route by model name, and unnamed (or protocol-v1)
// requests go to the default model.
//
//   grafics_served [<model.bin>] [--model NAME=PATH]... [--default NAME]
//                  [--host A] [--port P] [--max-batch N] [--max-delay-ms M]
//                  [--threads T] [--event-workers W] [--idle-timeout-ms I]
//                  [--max-inflight N] [--max-queue-depth N] [--port-file F]
//                  [--journal-dir D] [--ingest-batch N]
//                  [--ingest-max-delay-ms M] [--ingest-max-pending N]
//                  [--store-dir D] [--compact-every-n-folds N]
//                  [--max-journal-bytes B]
//                  [--admin-port P] [--admin-port-file F]
//                  [--slow-request-us N]
//
//   <model.bin>       artifact loaded as model "default" (optional when at
//                     least one --model is given)
//   --model NAME=PATH load PATH as model NAME; repeatable
//   --default NAME    which model unnamed requests hit (default: the first
//                     loaded model)
//   --host A          bind address            (default 127.0.0.1)
//   --port P          TCP port; 0 = ephemeral (default 4817)
//   --max-batch N     flush a batch at N pending requests (default 64)
//   --max-delay-ms M  flush after the oldest request waited M ms (default 2)
//   --threads T       PredictBatch workers shared by all models; 0 = cores
//   --event-workers W epoll worker threads of the event-driven transport;
//                     each owns a share of the connections (default 2)
//   --idle-timeout-ms I  close connections with no unanswered requests
//                     after I ms without socket activity — reclaims fds
//                     from abandoned peers and slow-loris partial frames;
//                     0 disables (default 60000)
//   --max-inflight N  busy-reject predicts once a connection has N
//                     unanswered pipelined requests; 0 = unlimited
//                     (default 64)
//   --max-queue-depth N  busy-reject predicts when a model's batcher queue
//                     would exceed N pending records; 0 = unbounded
//                     (default 0)
//   --port-file F     write the bound port to F once listening (for
//                     scripts/CI that start on an ephemeral port)
//   --journal-dir D   enable online ingestion: every model gets a durable
//                     record journal in D (created if missing), replayed
//                     into the model before serving starts
//   --ingest-batch N         fold at N pending records (default 64)
//   --ingest-max-delay-ms M  fold after the oldest accepted record waited
//                            M ms (default 200)
//   --ingest-max-pending N   per-model submission buffer bound; beyond it
//                            submits are rejected with a backpressure
//                            error (default 4096)
//   --store-dir D     enable the unified persistence store: model loads are
//                     imported as store generations, checkpoints and journal
//                     compaction become available (protocol v6), and on
//                     restart a model whose store chain has advanced past
//                     its --model artifact is loaded from the store — a
//                     restart never silently discards folded records
//   --compact-every-n-folds N  compact a model's journal into a store
//                     checkpoint after N background folds (0 = only on
//                     explicit remote-compact; requires --store-dir and
//                     --journal-dir)
//   --max-journal-bytes B      compact as soon as a model's journal exceeds
//                     B bytes (0 = no byte bound)
//   --admin-port P    open the HTTP admin listener on P (0 = ephemeral):
//                     GET /metrics serves the Prometheus text exposition,
//                     GET /healthz liveness, GET /readyz readiness (200
//                     once the default model is loaded)
//   --admin-port-file F  write the bound admin port to F once listening
//   --slow-request-us N  log any predict whose total latency exceeds N
//                     microseconds to stderr with a per-stage trace
//                     breakdown (0 disables; independent of --admin-port)
//   --simd NAME       pin the vector-kernel backend (scalar|avx2|neon)
//                     before any model loads. Unlike the GRAFICS_SIMD
//                     environment variable (which degrades to scalar with a
//                     warning), an unavailable backend here is a hard usage
//                     error — an operator pinning a fleet wants to know.
//                     The active backend is exported as the info-gauge
//                     grafics_simd_backend and logged at startup.
//
// SIGHUP hot-reloads every model from its artifact path, one by one: new
// batches move to each fresh snapshot atomically while in-flight batches
// finish on the old one, and other models keep serving throughout. Clients
// can reload one model remotely (`grafics remote-reload --model NAME`).
// SIGINT/SIGTERM drain and exit: the listener stops first, then the ingest
// pipeline folds everything accepted and closes the journals, and only
// then is the registry torn down — accepted records are never lost to a
// TERM.
//
// Exit status: 0 on clean shutdown, 1 on usage error, 2 on runtime failure.
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cli_flags.h"
#include "common/error.h"
#include "common/simd.h"
#include "core/grafics.h"
#include "ingest/ingest_pipeline.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "store/model_store.h"

namespace {

using namespace grafics;

volatile std::sig_atomic_t g_reload_requested = 0;
volatile std::sig_atomic_t g_stop_requested = 0;

void OnSignal(int signal_number) {
  if (signal_number == SIGHUP) {
    g_reload_requested = 1;
  } else {
    g_stop_requested = 1;
  }
}

void InstallSignalHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGHUP, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  // Every socket write already passes MSG_NOSIGNAL, but belt and braces:
  // with thousands of clients some will vanish mid-response, and a stray
  // SIGPIPE from any future write path must never kill the daemon.
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = SIG_IGN;
  sigemptyset(&action.sa_mask);
  sigaction(SIGPIPE, &action, nullptr);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: grafics_served [<model.bin>] [--model NAME=PATH]... "
      "[--default NAME]\n"
      "                      [--host A] [--port P] [--max-batch N]\n"
      "                      [--max-delay-ms M] [--threads T] "
      "[--event-workers W]\n"
      "                      [--idle-timeout-ms I] [--max-inflight N]\n"
      "                      [--max-queue-depth N] [--port-file F]\n"
      "                      [--journal-dir D] [--ingest-batch N]\n"
      "                      [--ingest-max-delay-ms M] "
      "[--ingest-max-pending N]\n"
      "                      [--store-dir D] [--compact-every-n-folds N]\n"
      "                      [--max-journal-bytes B] [--admin-port P]\n"
      "                      [--admin-port-file F] [--slow-request-us N]\n"
      "                      [--simd scalar|avx2|neon]\n");
  return 1;
}

/// Splits "NAME=PATH" on the first '='; both halves must be non-empty.
std::pair<std::string, std::string> ParseModelFlag(const std::string& text) {
  const std::size_t equals = text.find('=');
  Require(equals != std::string::npos && equals > 0 && equals + 1 < text.size(),
          "--model expects NAME=PATH, got '" + text + "'");
  return {text.substr(0, equals), text.substr(equals + 1)};
}

/// Startup load with a persistence store attached. A model whose store
/// chain has advanced past its --model artifact — delta checkpoints or
/// compactions were committed after the import — is loaded from the store's
/// latest generation: re-importing PATH would silently discard every record
/// folded since. The artifact path wins only while it is still the chain's
/// tip (first start, restart without intervening checkpoints, or an
/// operator pointing --model at a freshly retrained file).
void LoadStartupModel(serve::ModelRegistry& registry, const std::string& name,
                      const std::string& path) {
  const std::shared_ptr<store::ModelStore> attached = registry.store();
  if (attached != nullptr && attached->LatestGeneration(name) > 0) {
    const std::vector<store::ArtifactInfo> chain = attached->List(name);
    const store::ArtifactInfo& latest = chain.back();
    if (!latest.external) {
      std::printf(
          "grafics_served: loading %s from store generation %llu "
          "(checkpoints supersede artifact %s)\n",
          name.c_str(), static_cast<unsigned long long>(latest.generation),
          path.c_str());
      std::fflush(stdout);
      registry.LoadFromStore(name);
      return;
    }
  }
  registry.LoadFromDisk(name, path);
}

/// SIGHUP: reload every reloadable model from its artifact path. A broken
/// artifact on disk must not take the daemon (or the other models) down.
std::uint64_t ReloadAll(serve::ModelRegistry& registry) {
  std::uint64_t reloaded = 0;
  for (const serve::ModelInfo& info : registry.List()) {
    if (!info.reloadable) continue;
    try {
      const std::uint64_t generation = registry.ReloadFromDisk(info.name);
      ++reloaded;
      std::printf("grafics_served: reloaded model %s (generation %llu)\n",
                  info.name.c_str(),
                  static_cast<unsigned long long>(generation));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "grafics_served: reload of %s failed: %s\n",
                   info.name.c_str(), e.what());
    }
  }
  std::fflush(stdout);
  return reloaded;
}

}  // namespace

int main(int argc, char** argv) {
  std::string positional_model;
  int first_flag = 1;
  if (argc >= 2 && argv[1][0] != '-') {
    positional_model = argv[1];
    first_flag = 2;
  }
  const std::vector<std::string> args(argv + first_flag, argv + argc);
  try {
    serve::ServerConfig config;
    config.host = FlagValue(args, "--host", "127.0.0.1");
    config.port = static_cast<std::uint16_t>(ParseUnsigned(
        FlagValue(args, "--port", std::to_string(serve::kDefaultPort)), 65535,
        "--port"));
    config.event_workers = static_cast<std::size_t>(ParseUnsigned(
        FlagValue(args, "--event-workers", "2"), 256, "--event-workers"));
    Require(config.event_workers >= 1, "--event-workers must be >= 1");
    config.idle_timeout = std::chrono::milliseconds(
        ParseUnsigned(FlagValue(args, "--idle-timeout-ms", "60000"), 86400000,
                      "--idle-timeout-ms"));
    config.max_inflight_per_connection = static_cast<std::size_t>(
        ParseUnsigned(FlagValue(args, "--max-inflight", "64"), 1 << 20,
                      "--max-inflight"));
    config.max_queue_depth = static_cast<std::size_t>(ParseUnsigned(
        FlagValue(args, "--max-queue-depth", "0"), 1 << 24,
        "--max-queue-depth"));
    serve::BatcherConfig batcher;
    batcher.max_batch_size = static_cast<std::size_t>(ParseUnsigned(
        FlagValue(args, "--max-batch", "64"), 1 << 20, "--max-batch"));
    batcher.max_delay = std::chrono::milliseconds(ParseUnsigned(
        FlagValue(args, "--max-delay-ms", "2"), 60000, "--max-delay-ms"));
    batcher.predict_threads = static_cast<std::size_t>(ParseUnsigned(
        FlagValue(args, "--threads", "1"), 4096, "--threads"));
    const std::string port_file = FlagValue(args, "--port-file", "");
    ingest::IngestConfig ingest_config;
    ingest_config.journal_dir = FlagValue(args, "--journal-dir", "");
    ingest_config.fold_batch_size = static_cast<std::size_t>(ParseUnsigned(
        FlagValue(args, "--ingest-batch", "64"), 1 << 20, "--ingest-batch"));
    ingest_config.max_delay = std::chrono::milliseconds(
        ParseUnsigned(FlagValue(args, "--ingest-max-delay-ms", "200"), 600000,
                      "--ingest-max-delay-ms"));
    ingest_config.max_pending = static_cast<std::size_t>(
        ParseUnsigned(FlagValue(args, "--ingest-max-pending", "4096"),
                      1 << 24, "--ingest-max-pending"));
    const std::string store_dir = FlagValue(args, "--store-dir", "");
    ingest_config.compact_every_n_folds = static_cast<std::size_t>(
        ParseUnsigned(FlagValue(args, "--compact-every-n-folds", "0"),
                      1 << 24, "--compact-every-n-folds"));
    ingest_config.max_journal_bytes = ParseUnsigned(
        FlagValue(args, "--max-journal-bytes", "0"), UINT64_MAX,
        "--max-journal-bytes");
    Require((ingest_config.compact_every_n_folds == 0 &&
             ingest_config.max_journal_bytes == 0) ||
                (!store_dir.empty() && !ingest_config.journal_dir.empty()),
            "--compact-every-n-folds / --max-journal-bytes require both "
            "--store-dir and --journal-dir");
    config.slow_request_us = ParseUnsigned(
        FlagValue(args, "--slow-request-us", "0"), UINT64_MAX,
        "--slow-request-us");
    const std::string admin_port_flag = FlagValue(args, "--admin-port", "");
    const std::string admin_port_file =
        FlagValue(args, "--admin-port-file", "");
    obs::AdminServerConfig admin_config;
    admin_config.host = config.host;
    if (!admin_port_flag.empty()) {
      admin_config.port = static_cast<std::uint16_t>(
          ParseUnsigned(admin_port_flag, 65535, "--admin-port"));
    }
    const std::vector<std::string> model_flags = FlagValues(args, "--model");
    if (positional_model.empty() && model_flags.empty()) return Usage();

    // Pin the vector-kernel backend before anything numeric runs (model
    // load replays journals through the trainer). --simd is a hard error on
    // an unavailable backend, unlike the GRAFICS_SIMD env fallback.
    const std::string simd_flag = FlagValue(args, "--simd", "");
    if (!simd_flag.empty()) {
      Require(simd::PinBackend(simd::ParseBackendName(simd_flag.c_str())),
              "--simd " + simd_flag + ": backend unavailable on this "
              "build/CPU");
    }
    const simd::Backend simd_backend = simd::ActiveBackend();
    std::printf("grafics_served: simd backend = %s\n",
                simd::BackendName(simd_backend));
    std::fflush(stdout);

    // Before the (slow) model loads: an early SIGHUP must queue a reload,
    // not kill the process with the default action.
    InstallSignalHandlers();
    // Telemetry is always collected (the wire-level metrics dump needs it
    // even without --admin-port); the registry must attach before models
    // load so per-model latency histograms resolve at Load time.
    auto obs_registry = std::make_shared<obs::Registry>();
    // Info gauge: constant 1, the backend name rides in the label so a
    // mixed fleet shows up as distinct series on one dashboard.
    obs_registry
        ->GetGauge("grafics_simd_backend",
                   "Active vector-kernel backend (info gauge; the backend "
                   "label carries scalar|avx2|neon)",
                   {{"backend", simd::BackendName(simd_backend)}})
        ->Set(1);
    auto registry = std::make_shared<serve::ModelRegistry>(batcher);
    registry->AttachObs(obs_registry);
    ingest_config.obs = obs_registry;
    std::shared_ptr<store::ModelStore> model_store;
    if (!store_dir.empty()) {
      model_store = std::make_shared<store::ModelStore>(store_dir);
      model_store->AttachObs(obs_registry);
      registry->AttachStore(model_store);
      ingest_config.model_store = model_store;
    }
    if (!positional_model.empty()) {
      std::printf("grafics_served: loading default = %s...\n",
                  positional_model.c_str());
      std::fflush(stdout);
      LoadStartupModel(*registry, "default", positional_model);
    }
    for (const std::string& flag : model_flags) {
      const auto [name, path] = ParseModelFlag(flag);
      // A duplicate name (repeated --model, or colliding with the
      // positional artifact's "default") would silently hot-swap the
      // earlier artifact — almost certainly an operator typo.
      Require(!registry->Has(name), "duplicate model name '" + name + "'");
      std::printf("grafics_served: loading %s = %s...\n", name.c_str(),
                  path.c_str());
      std::fflush(stdout);
      LoadStartupModel(*registry, name, path);
    }
    const std::string default_name = FlagValue(args, "--default", "");
    if (!default_name.empty()) registry->SetDefaultModel(default_name);

    // Online ingestion: one journal per model under --journal-dir, replayed
    // into the served snapshot BEFORE the listener opens, so the first
    // prediction already reflects every record accepted before a restart.
    std::shared_ptr<ingest::IngestPipeline> pipeline;
    if (!ingest_config.journal_dir.empty()) {
      ::mkdir(ingest_config.journal_dir.c_str(), 0755);  // EEXIST is fine
      pipeline =
          std::make_shared<ingest::IngestPipeline>(registry, ingest_config);
      for (const serve::ModelInfo& info : registry->List()) {
        pipeline->Attach(info.name);
      }
      for (const serve::IngestModelStats& stats : pipeline->Stats()) {
        if (stats.replayed == 0) continue;
        std::printf(
            "grafics_served: replayed %llu journaled record(s) into %s "
            "(generation %llu)\n",
            static_cast<unsigned long long>(stats.replayed),
            stats.name.c_str(),
            static_cast<unsigned long long>(registry->generation(stats.name)));
      }
    }

    serve::Server server(registry, config);
    if (pipeline != nullptr) server.AttachIngest(pipeline);
    if (model_store != nullptr) server.AttachStore(model_store);
    server.AttachObs(obs_registry);
    server.Start();
    std::printf(
        "grafics_served: serving %zu model(s) (default %s) on %s:%u "
        "(pid %d)\n",
        registry->size(), registry->default_model().c_str(),
        config.host.c_str(), static_cast<unsigned>(server.port()),
        static_cast<int>(::getpid()));
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::FILE* f = std::fopen(port_file.c_str(), "w");
      Require(f != nullptr, "cannot write port file " + port_file);
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
      std::fclose(f);
    }

    // The admin surface opens after the serving listener: a scraper that
    // can reach /readyz can also already reach the predict port.
    std::unique_ptr<obs::AdminServer> admin;
    if (!admin_port_flag.empty()) {
      admin = std::make_unique<obs::AdminServer>(
          admin_config,
          [obs_registry] { return obs_registry->RenderPrometheus(); },
          [registry] {
            // Ready once the default model is loaded (generation advances
            // from 0 at first load); AdminServer maps a throw to 503.
            return registry->generation(registry->default_model()) > 0;
          });
      admin->Start();
      std::printf("grafics_served: admin endpoints on %s:%u "
                  "(/metrics /healthz /readyz)\n",
                  admin_config.host.c_str(),
                  static_cast<unsigned>(admin->port()));
      std::fflush(stdout);
      if (!admin_port_file.empty()) {
        std::FILE* f = std::fopen(admin_port_file.c_str(), "w");
        Require(f != nullptr,
                "cannot write admin port file " + admin_port_file);
        std::fprintf(f, "%u\n", static_cast<unsigned>(admin->port()));
        std::fclose(f);
      }
    }

    std::uint64_t reloads = 0;
    while (g_stop_requested == 0) {
      if (g_reload_requested != 0) {
        g_reload_requested = 0;
        reloads += ReloadAll(*registry);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // Shutdown ordering matters: stop the transport first (no new submits
    // or predicts), then the ingest pipeline — which folds every accepted
    // record into a final publish and syncs + closes the journals — and
    // only then the registry the pipeline publishes into. Stopping the
    // registry first would make the pipeline's final publishes fail and
    // lose accepted records from the served model (they would survive only
    // in the journal). The admin listener goes down first of all: its
    // scrape hooks read every other layer, so nothing may still be
    // rendering /metrics while those layers tear down.
    if (admin != nullptr) admin->Stop();
    server.Stop();
    if (pipeline != nullptr) pipeline->Stop();
    registry->Stop();
    std::printf("grafics_served: shut down after %llu connection(s), "
                "%llu reload(s)\n",
                static_cast<unsigned long long>(server.connections_accepted()),
                static_cast<unsigned long long>(reloads));
    const serve::TransportStats transport = server.transport_stats();
    std::printf("  transport: %llu frame(s) in, %llu out; %llu byte(s) in, "
                "%llu out; %llu idle harvest(s); %llu busy rejection(s)\n",
                static_cast<unsigned long long>(transport.frames_in),
                static_cast<unsigned long long>(transport.frames_out),
                static_cast<unsigned long long>(transport.bytes_in),
                static_cast<unsigned long long>(transport.bytes_out),
                static_cast<unsigned long long>(
                    transport.connections_harvested_idle),
                static_cast<unsigned long long>(
                    transport.requests_rejected_busy));
    for (const serve::ModelStats& stats : registry->Stats()) {
      std::printf("  model %-24s gen %llu: %llu request(s) in %llu "
                  "batch(es), largest %llu\n",
                  stats.name.c_str(),
                  static_cast<unsigned long long>(stats.generation),
                  static_cast<unsigned long long>(stats.requests),
                  static_cast<unsigned long long>(stats.batches),
                  static_cast<unsigned long long>(stats.max_batch));
    }
    if (pipeline != nullptr) {
      for (const serve::IngestModelStats& stats : pipeline->Stats()) {
        std::printf("  ingest %-23s %llu accepted, %llu folded in %llu "
                    "publish(es), %llu journal byte(s)\n",
                    stats.name.c_str(),
                    static_cast<unsigned long long>(stats.accepted),
                    static_cast<unsigned long long>(stats.folded),
                    static_cast<unsigned long long>(stats.publishes),
                    static_cast<unsigned long long>(stats.journal_bytes));
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "grafics_served: error: %s\n", e.what());
    return 2;
  }
}
