// The GRAFICS system: the paper's end-to-end pipeline.
//
// Offline training (Sec. IV): bipartite graph -> E-LINE embeddings ->
// proximity-based hierarchical clustering -> nearest-centroid classifier.
// Online inference (Sec. V): extend the graph with the new record, refine
// only its embeddings (base model frozen), classify against centroids.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/centroid_classifier.h"
#include "cluster/knn_classifier.h"
#include "cluster/proximity_clusterer.h"
#include "common/alias_sampler.h"
#include "common/cow.h"
#include "embed/negative_sampler.h"
#include "embed/trainer.h"
#include "graph/bipartite_graph.h"
#include "graph/weight_function.h"
#include "rf/dataset.h"

namespace grafics {
class ThreadPool;
}

namespace grafics::core {

class InferenceContext;

/// How a new embedding is mapped to a floor at inference time.
enum class InferenceHead {
  kCentroid,  // nearest cluster centroid — the paper's rule (Sec. V-B)
  kKnn,       // weighted k-NN over virtually-labeled training embeddings
};

struct GraficsConfig {
  /// Edge-weight offset alpha of Eq. (2); the paper uses 120.
  double weight_offset = 120.0;
  /// Replaces the offset weight entirely when set (Fig. 16 ablation).
  graph::WeightFn custom_weight;
  embed::TrainerConfig trainer;
  cluster::ClustererConfig clusterer;
  /// SGD steps per new node during online inference (Sec. V-A).
  std::size_t online_refine_iterations = 600;
  InferenceHead head = InferenceHead::kCentroid;
  cluster::KnnConfig knn;  // used when head == kKnn

  graph::WeightFn MakeWeightFn() const {
    return custom_weight ? custom_weight : graph::OffsetWeight(weight_offset);
  }
};

/// Options for Grafics::PredictBatch.
struct BatchPredictOptions {
  /// Worker threads to fan queries over (one InferenceContext per worker).
  /// 0 maps to hardware_concurrency. Results are bit-identical for every
  /// thread count because queries are snapshot-isolated.
  std::size_t num_threads = 1;
  /// Folds the accepted records (those that produced a prediction) back
  /// into the trained model after the batch, with Update semantics: graph
  /// extended, new embeddings refined against the frozen base, clusters and
  /// centroids untouched. Requires a non-const Grafics.
  bool keep = false;
  /// Pre-built pool to fan the batch over instead of constructing one per
  /// call (the serving hot path flushes many micro-batches per second).
  /// Overrides num_threads with pool->num_threads() when set; the pool must
  /// outlive the call.
  ThreadPool* pool = nullptr;
};

class Grafics {
 public:
  explicit Grafics(GraficsConfig config = {});

  /// Offline training on crowdsourced records; the floor labels present on
  /// records are the (few) labeled samples. Requires >= 1 labeled record.
  void Train(const std::vector<rf::SignalRecord>& records);

  bool is_trained() const { return classifier_ != nullptr; }

  /// Online inference: extends a snapshot-isolated overlay of the graph
  /// with the record, learns its embedding with the base model frozen, and
  /// returns the floor of the nearest cluster centroid. Returns nullopt
  /// when the record shares no MAC with the graph (the paper discards such
  /// samples as outside the building). Side-effect-free: the trained model
  /// is left untouched. Callers serving many queries should reuse an
  /// InferenceContext (MakeContext) to amortize scratch allocations.
  std::optional<rf::FloorId> Predict(const rf::SignalRecord& record) const;

  /// Batch inference over snapshot-isolated contexts, optionally fanned out
  /// over a thread pool (options.num_threads, one context per worker).
  /// Predictions are bit-identical for every thread count. The const
  /// overload leaves the model untouched and rejects options.keep.
  std::vector<std::optional<rf::FloorId>> PredictBatch(
      const std::vector<rf::SignalRecord>& records,
      const BatchPredictOptions& options = {}) const;

  /// As above; additionally folds accepted records back into the model when
  /// options.keep is set (preserving Update semantics).
  std::vector<std::optional<rf::FloorId>> PredictBatch(
      const std::vector<rf::SignalRecord>& records,
      const BatchPredictOptions& options = {});

  /// Creates a reusable snapshot-isolated serving session over this model.
  /// The model must outlive the context and not be mutated (Train/Update)
  /// while the context is in use.
  InferenceContext MakeContext() const;

  /// Incorporates a batch of additional crowdsourced records WITHOUT a full
  /// retrain: the graph is extended, only the new nodes' embeddings are
  /// learned (base model frozen), and the clusters/centroids are untouched.
  /// Floor labels on the records are ignored — relabeling requires Train.
  /// Returns the number of records added. This implements the paper's
  /// "easily extendable for new RF records" claim at batch granularity.
  std::size_t Update(const std::vector<rf::SignalRecord>& records);

  /// O(1) structural fork of the whole system. The trained components —
  /// clustering, classifiers, negative sampler — are immutable and shared
  /// by pointer; the graph and embedding tables are chunked copy-on-write
  /// (common/cow.h), so the fork shares every chunk with the source until
  /// one of them writes it. Update on the fork therefore never disturbs
  /// readers of the source, predictions from the fork are bit-identical to
  /// the source's, and publish cost is proportional to the fold-in delta,
  /// not the model. This is the copy-on-write primitive of the online
  /// ingestion pipeline. Works on trained and untrained systems.
  Grafics Clone() const;

  /// Ego embedding of training record i (diagnostics, Fig. 6/8 exports).
  std::span<const double> TrainingEmbedding(std::size_t record_index) const;
  /// Ego embeddings of all training records as rows.
  Matrix TrainingEmbeddings() const;

  const graph::BipartiteGraph& graph() const { return graph_; }
  /// Trained embedding tables (one ego/context row pair per graph node).
  const embed::EmbeddingStore& embedding_store() const;
  const cluster::ClusteringResult& clustering() const;
  const cluster::CentroidClassifier& classifier() const;
  /// The frozen-base negative-sampling distribution (tests, diagnostics).
  const embed::NegativeSamplerSet& negative_sampler() const;
  const GraficsConfig& config() const { return config_; }

  /// Heap bytes of the trained state, split into bytes shared with other
  /// snapshots (forks, the serving registry) vs owned exclusively. Chunk
  /// granular; surfaced through serve::ModelStats so the copy-on-write
  /// sharing is observable over the wire.
  CowBytes MemoryBytes() const;

  /// Persists the trained model (graph, embeddings, clustering, centroids,
  /// config) to `path`. Requires a trained system and a serializable weight
  /// function (custom_weight lambdas cannot be saved — throws if one is
  /// set). Writes artifact format v2, whose exact graph state and exact
  /// negative-sampler tables make the load bit-identical to the live model
  /// — including future Update draw sequences.
  void SaveModel(const std::string& path) const;
  /// Restores a model saved by SaveModel; ready for Predict immediately.
  /// Accepts v1 artifacts (sampler rebuilt from degrees) and v2 (exact).
  static Grafics LoadModel(const std::string& path);

  /// Stream variants of SaveModel/LoadModel (store::ModelStore writes
  /// artifacts through temp files and composes them with delta sections).
  void SaveModel(std::ostream& out) const;
  static Grafics LoadModel(std::istream& in);

  /// True when `base` is a snapshot this model was forked from with only
  /// Update folds in between — the precondition for SaveDelta. Train (or a
  /// different model entirely) replaces the immutable components and makes
  /// a delta impossible; callers fall back to a full base artifact.
  bool DeltaCompatible(const Grafics& base) const;

  /// Writes a delta checkpoint against `base`: only the copy-on-write
  /// chunks this model owns relative to the base (plus appended sampler
  /// groups) are serialized — O(folded delta), not O(model). Requires
  /// DeltaCompatible(base).
  void SaveDelta(std::ostream& out, const Grafics& base) const;
  /// Mutates a model loaded from the base's artifact into the exact state
  /// SaveDelta captured. Chunks absent from the delta remain the loaded
  /// base's storage — the on-disk mirror of Clone's structural sharing.
  void ApplyDelta(std::istream& in);

 private:
  // InferenceContext is the serving-path view over the trained members; it
  // only ever reads them.
  friend class InferenceContext;

  /// (Re)builds the frozen-base negative sampler used by online refinement.
  void RebuildNegativeSampler();
  /// Appends `record` to the graph + store and refines the new nodes.
  /// Returns the new record node; appends every node whose degree changed
  /// (the new nodes plus the record's existing MAC neighbors) to `touched`.
  graph::NodeId ExtendWith(const rf::SignalRecord& record,
                           std::vector<graph::NodeId>* touched);

  GraficsConfig config_;
  graph::WeightFn weight_fn_;
  // Chunked copy-on-write containers: copying them shares storage with the
  // copy (Clone), mutating copies only the touched chunks (Update).
  graph::BipartiteGraph graph_;
  std::size_t num_training_records_ = 0;
  std::optional<embed::EmbeddingStore> store_;
  // Immutable trained components, shared between forks by pointer. Train
  // (and LoadModel) replace them wholesale; Update never touches them
  // except the negative sampler, which it replaces with an O(delta)
  // extension sharing the previous groups.
  std::shared_ptr<const cluster::ClusteringResult> clustering_;
  std::shared_ptr<const cluster::CentroidClassifier> classifier_;
  std::shared_ptr<const cluster::KnnClassifier> knn_classifier_;
  // Negative sampler over the frozen base model, shared by all predictions.
  std::shared_ptr<const embed::NegativeSamplerSet> negative_sampler_;
};

}  // namespace grafics::core
