#include "core/experiment.h"

#include <chrono>

#include "common/error.h"
#include "common/stats.h"

namespace grafics::core {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Ground-truth floors of the test half (all test records keep labels).
std::vector<rf::FloorId> TestTruth(const rf::Dataset& test) {
  std::vector<rf::FloorId> truth;
  truth.reserve(test.size());
  for (const rf::SignalRecord& r : test.records()) {
    Require(r.is_labeled(), "TestTruth: test record lost its label");
    truth.push_back(*r.floor());
  }
  return truth;
}

/// Embedding + Prox evaluation path shared by MDS/autoencoder/matrix
/// baselines: cluster the train embeddings under the labeled-sample
/// constraint, classify test embeddings by nearest centroid.
ExperimentResult EvaluateEmbeddingWithProx(
    const Matrix& train_embeddings,
    const std::vector<std::optional<rf::FloorId>>& train_labels,
    const Matrix& test_embeddings, const std::vector<rf::FloorId>& truth,
    const ExperimentConfig& config, double train_seconds_so_far,
    Clock::time_point infer_start_parent) {
  (void)infer_start_parent;
  ExperimentResult result;
  const auto cluster_start = Clock::now();
  const cluster::ClusteringResult clustering = cluster::ClusterEmbeddings(
      train_embeddings, train_labels, config.grafics.clusterer);
  const cluster::CentroidClassifier classifier(train_embeddings, clustering);
  result.train_seconds = train_seconds_so_far + SecondsSince(cluster_start);

  const auto infer_start = Clock::now();
  std::vector<std::optional<rf::FloorId>> predicted(test_embeddings.rows());
  for (std::size_t r = 0; r < test_embeddings.rows(); ++r) {
    predicted[r] = classifier.Predict(test_embeddings.Row(r));
  }
  result.infer_seconds = SecondsSince(infer_start);
  result.metrics = ComputeMetrics(truth, predicted);
  return result;
}

ExperimentResult RunGraficsVariant(embed::Objective objective,
                                   const rf::Dataset& train,
                                   const rf::Dataset& test,
                                   const std::vector<rf::FloorId>& truth,
                                   const ExperimentConfig& config) {
  GraficsConfig grafics_config = config.grafics;
  grafics_config.trainer.objective = objective;
  Grafics system(grafics_config);

  ExperimentResult result;
  const auto train_start = Clock::now();
  system.Train(train.records());
  result.train_seconds = SecondsSince(train_start);

  const auto infer_start = Clock::now();
  const std::vector<std::optional<rf::FloorId>> predicted =
      system.PredictBatch(test.records());
  result.infer_seconds = SecondsSince(infer_start);
  result.metrics = ComputeMetrics(truth, predicted);
  return result;
}

}  // namespace

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kGrafics: return "GRAFICS";
    case Algorithm::kGraficsLine: return "GRAFICS+LINE";
    case Algorithm::kGraficsLineBoth: return "GRAFICS+LINE(1st+2nd)";
    case Algorithm::kScalableDnn: return "Scalable-DNN";
    case Algorithm::kSae: return "SAE";
    case Algorithm::kMdsProx: return "MDS+Prox";
    case Algorithm::kAutoencoderProx: return "Autoencoder+Prox";
    case Algorithm::kMatrixProx: return "Matrix+Prox";
  }
  return "unknown";
}

ExperimentResult RunExperiment(Algorithm algorithm, const rf::Dataset& dataset,
                               const ExperimentConfig& config,
                               std::uint64_t seed) {
  // --- split and strip labels (identical for every algorithm) -------------
  Rng split_rng(seed);
  auto [train, test] = dataset.TrainTestSplit(config.train_ratio, split_rng);
  train.KeepLabelsPerFloor(config.labels_per_floor, split_rng);
  const std::vector<rf::FloorId> truth = TestTruth(test);
  std::vector<std::optional<rf::FloorId>> train_labels(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    train_labels[i] = train.record(i).floor();
  }

  // Per-repetition seeds for the stochastic trainers.
  ExperimentConfig cfg = config;
  cfg.grafics.trainer.seed = seed ^ 0x11111111ULL;
  cfg.mds.seed = seed ^ 0x22222222ULL;
  cfg.autoencoder.seed = seed ^ 0x33333333ULL;
  cfg.sae.seed = seed ^ 0x44444444ULL;
  cfg.scalable_dnn.seed = seed ^ 0x55555555ULL;

  switch (algorithm) {
    case Algorithm::kGrafics:
      return RunGraficsVariant(embed::Objective::kELine, train, test, truth,
                               cfg);
    case Algorithm::kGraficsLine:
      return RunGraficsVariant(embed::Objective::kLineSecondOrder, train,
                               test, truth, cfg);
    case Algorithm::kGraficsLineBoth:
      return RunGraficsVariant(embed::Objective::kLineBothOrders, train, test,
                               truth, cfg);
    default:
      break;
  }

  // --- matrix-representation based algorithms -----------------------------
  const auto train_start = Clock::now();
  const baselines::MatrixRepresentation repr(train.records());
  const Matrix train_raw = repr.ToMatrix(train.records());
  const Matrix test_raw = repr.ToMatrix(test.records());
  const Matrix train_norm = baselines::MatrixRepresentation::Normalize(train_raw);
  const Matrix test_norm = baselines::MatrixRepresentation::Normalize(test_raw);

  switch (algorithm) {
    case Algorithm::kScalableDnn: {
      baselines::ScalableDnn model(train_norm, train_labels, cfg.scalable_dnn);
      ExperimentResult result;
      result.train_seconds = SecondsSince(train_start);
      const auto infer_start = Clock::now();
      const std::vector<rf::FloorId> predicted = model.PredictFloors(test_norm);
      result.infer_seconds = SecondsSince(infer_start);
      result.metrics = ComputeMetrics(truth, predicted);
      return result;
    }
    case Algorithm::kSae: {
      baselines::SaeClassifier model(train_norm, train_labels, cfg.sae);
      ExperimentResult result;
      result.train_seconds = SecondsSince(train_start);
      const auto infer_start = Clock::now();
      const std::vector<rf::FloorId> predicted = model.PredictFloors(test_norm);
      result.infer_seconds = SecondsSince(infer_start);
      result.metrics = ComputeMetrics(truth, predicted);
      return result;
    }
    case Algorithm::kMdsProx: {
      cfg.mds.dim = cfg.grafics.trainer.dim;  // same embedding budget
      const baselines::MdsEmbedder mds(train_raw, cfg.mds);
      const Matrix train_emb = mds.Embed(train_raw);
      const Matrix test_emb = mds.Embed(test_raw);
      return EvaluateEmbeddingWithProx(train_emb, train_labels, test_emb,
                                       truth, cfg, SecondsSince(train_start),
                                       Clock::now());
    }
    case Algorithm::kAutoencoderProx: {
      cfg.autoencoder.dim = cfg.grafics.trainer.dim;
      baselines::AutoencoderEmbedder autoencoder(train_norm, cfg.autoencoder);
      const Matrix train_emb = autoencoder.Embed(train_norm);
      const Matrix test_emb = autoencoder.Embed(test_norm);
      return EvaluateEmbeddingWithProx(train_emb, train_labels, test_emb,
                                       truth, cfg, SecondsSince(train_start),
                                       Clock::now());
    }
    case Algorithm::kMatrixProx:
      return EvaluateEmbeddingWithProx(train_norm, train_labels, test_norm,
                                       truth, cfg, SecondsSince(train_start),
                                       Clock::now());
    default:
      throw Error("RunExperiment: unhandled algorithm");
  }
}

MetricsSummary SummarizeMetrics(
    const std::vector<ClassificationMetrics>& runs) {
  Require(!runs.empty(), "SummarizeMetrics: no runs");
  std::vector<double> micro_f, macro_f;
  MetricsSummary s;
  s.repetitions = runs.size();
  for (const ClassificationMetrics& m : runs) {
    micro_f.push_back(m.micro.f_score);
    macro_f.push_back(m.macro.f_score);
    s.micro_p_mean += m.micro.precision;
    s.micro_r_mean += m.micro.recall;
    s.macro_p_mean += m.macro.precision;
    s.macro_r_mean += m.macro.recall;
  }
  const auto n = static_cast<double>(runs.size());
  s.micro_p_mean /= n;
  s.micro_r_mean /= n;
  s.macro_p_mean /= n;
  s.macro_r_mean /= n;
  const Summary micro = Summarize(micro_f);
  const Summary macro = Summarize(macro_f);
  s.micro_f_mean = micro.mean;
  s.micro_f_stddev = micro.stddev;
  s.macro_f_mean = macro.mean;
  s.macro_f_stddev = macro.stddev;
  return s;
}

MetricsSummary RunRepeated(Algorithm algorithm, const rf::Dataset& dataset,
                           const ExperimentConfig& config, std::uint64_t seed,
                           std::size_t repetitions) {
  std::vector<ClassificationMetrics> runs;
  runs.reserve(repetitions);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    runs.push_back(
        RunExperiment(algorithm, dataset, config, seed + rep * 7919).metrics);
  }
  return SummarizeMetrics(runs);
}

}  // namespace grafics::core
