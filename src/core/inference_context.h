// Snapshot-isolated serving session over a trained Grafics model.
//
// Online inference (paper Sec. V) extends the bipartite graph with the query
// record, refines only the new embeddings against the frozen base model, and
// classifies against the trained centroids. An InferenceContext performs all
// three steps against an immutable view of the trained model: the graph and
// embedding extensions live in context-local overlays that are reset —
// allocations kept — between queries. Consequences:
//
//  * Predict is side-effect-free: the trained graph, embedding store,
//    negative sampler, and centroids are never touched, so the model does
//    not grow per query and predictions are order-independent;
//  * many contexts can serve concurrently against one model (they share
//    only read-only state) — Grafics::PredictBatch fans out one context per
//    worker thread;
//  * a single context is cheap to reuse across sequential queries (no
//    per-query allocation beyond the first).
//
// The model must stay alive and un-mutated (no Train/Update) while the
// context is in use; contexts are invalidated by either.
#pragma once

#include <optional>
#include <span>

#include "embed/embedding_overlay.h"
#include "graph/graph_overlay.h"
#include "rf/signal_record.h"

namespace grafics::core {

class Grafics;

class InferenceContext {
 public:
  /// Snapshots `model` (by reference — see lifetime note above). Requires a
  /// trained model.
  explicit InferenceContext(const Grafics& model);

  /// Identifies the floor of `record` without mutating the model. Returns
  /// nullopt when the record is empty or shares no MAC with the trained
  /// graph (the paper discards such samples as outside the building).
  std::optional<rf::FloorId> Predict(const rf::SignalRecord& record);

  /// Ego embedding of the last accepted query (diagnostics). Valid until
  /// the next Predict call on this context.
  std::span<const double> QueryEmbedding() const;

  const graph::GraphOverlay& graph_overlay() const { return graph_; }

 private:
  const Grafics* model_;
  graph::GraphOverlay graph_;
  embed::EmbeddingOverlay embeddings_;
  std::vector<graph::NodeId> scratch_nodes_;
  std::optional<graph::NodeId> query_node_;
};

}  // namespace grafics::core
