#include "core/inference_context.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "core/grafics.h"
#include "embed/trainer.h"

namespace grafics::core {

namespace {
const Grafics& CheckTrained(const Grafics& model) {
  Require(model.is_trained(), "InferenceContext: model not trained");
  return model;
}
}  // namespace

InferenceContext::InferenceContext(const Grafics& model)
    : model_(&CheckTrained(model)),
      graph_(model.graph_),
      embeddings_(*model.store_) {}

std::optional<rf::FloorId> InferenceContext::Predict(
    const rf::SignalRecord& record) {
  const Grafics& model = *model_;
  graph_.Reset();
  embeddings_.Reset();
  query_node_.reset();

  // Discard records that share no MAC with the trained graph: the paper
  // treats them as collected outside the building (Sec. V-A footnote).
  const bool any_known = std::any_of(
      record.observations().begin(), record.observations().end(),
      [&](const rf::Observation& o) {
        return graph_.base().FindMacNode(o.mac).has_value();
      });
  if (!any_known || record.empty()) return std::nullopt;

  // Extend the overlay with the query (plus any unseen MACs) and refine
  // only the scratch embeddings against the frozen base model (Sec. V-A).
  const graph::NodeId new_node = graph_.AddRecord(record, model.weight_fn_);
  // Seeded from the base node count so the scratch initialization — and
  // therefore the prediction — depends only on (model, query), never on how
  // many queries this or any other context served before.
  Rng grow_rng(model.config_.trainer.seed ^
               (0x9E3779B9ULL + graph_.BaseNodes()));
  embeddings_.Grow(graph_.NumScratchNodes(), grow_rng);
  scratch_nodes_.resize(graph_.NumScratchNodes());
  std::iota(scratch_nodes_.begin(), scratch_nodes_.end(),
            static_cast<graph::NodeId>(graph_.BaseNodes()));
  embed::RefineNewNodes(graph_, scratch_nodes_, embeddings_,
                        model.config_.trainer,
                        model.config_.online_refine_iterations,
                        *model.negative_sampler_);
  query_node_ = new_node;

  const std::span<const double> embedding =
      std::as_const(embeddings_).Ego(new_node);
  switch (model.config_.head) {
    case InferenceHead::kKnn:
      return model.knn_classifier_->Predict(embedding);
    case InferenceHead::kCentroid:
      break;
  }
  // Nearest centroid in the ego-embedding space (Sec. V-B).
  return model.classifier_->Predict(embedding);
}

std::span<const double> InferenceContext::QueryEmbedding() const {
  Require(query_node_.has_value(),
          "InferenceContext::QueryEmbedding: no accepted query");
  return std::as_const(embeddings_).Ego(*query_node_);
}

}  // namespace grafics::core
