// Experiment harness: runs one algorithm on one building's dataset under the
// paper's evaluation protocol (Sec. VI-A) and reports micro/macro P-R-F.
//
// Protocol per repetition:
//   1. split the building's records 70/30 (train_ratio configurable),
//   2. keep `labels_per_floor` labels in the training half, strip the rest,
//   3. train the algorithm on the (mostly unlabeled) training half,
//   4. predict the floor of every test record and score against truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/autoencoder.h"
#include "baselines/matrix_representation.h"
#include "baselines/mds.h"
#include "baselines/sae.h"
#include "baselines/scalable_dnn.h"
#include "core/grafics.h"
#include "core/metrics.h"
#include "rf/dataset.h"

namespace grafics::core {

enum class Algorithm {
  kGrafics,           // bipartite graph + E-LINE + Prox (the paper's system)
  kGraficsLine,       // ablation: LINE 2nd-order instead of E-LINE (Fig. 13)
  kGraficsLineBoth,   // ablation: LINE 1st+2nd order
  kScalableDnn,       // supervised baseline [30]
  kSae,               // supervised baseline [15]
  kMdsProx,           // MDS embeddings + Prox clustering
  kAutoencoderProx,   // Conv1D autoencoder embeddings + Prox clustering
  kMatrixProx,        // raw -120-imputed matrix rows + Prox (Fig. 14)
};

std::string AlgorithmName(Algorithm algorithm);

struct ExperimentConfig {
  double train_ratio = 0.7;
  std::size_t labels_per_floor = 4;
  GraficsConfig grafics;
  baselines::MdsConfig mds;
  baselines::AutoencoderConfig autoencoder;
  baselines::SaeConfig sae;
  baselines::ScalableDnnConfig scalable_dnn;
};

struct ExperimentResult {
  ClassificationMetrics metrics;
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
};

/// Runs one repetition of `algorithm` on `dataset` with split/label seeds
/// derived from `seed`.
ExperimentResult RunExperiment(Algorithm algorithm, const rf::Dataset& dataset,
                               const ExperimentConfig& config,
                               std::uint64_t seed);

/// Aggregate of repeated metrics: mean and sample stddev of the key scores.
struct MetricsSummary {
  double micro_f_mean = 0.0;
  double micro_f_stddev = 0.0;
  double macro_f_mean = 0.0;
  double macro_f_stddev = 0.0;
  double micro_p_mean = 0.0;
  double micro_r_mean = 0.0;
  double macro_p_mean = 0.0;
  double macro_r_mean = 0.0;
  std::size_t repetitions = 0;
};

MetricsSummary SummarizeMetrics(const std::vector<ClassificationMetrics>& runs);

/// Runs `repetitions` seeded repetitions and summarizes.
MetricsSummary RunRepeated(Algorithm algorithm, const rf::Dataset& dataset,
                           const ExperimentConfig& config, std::uint64_t seed,
                           std::size_t repetitions);

}  // namespace grafics::core
