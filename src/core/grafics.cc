#include "core/grafics.h"

#include <algorithm>
#include <fstream>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/inference_context.h"

namespace grafics::core {

Grafics::Grafics(GraficsConfig config)
    : config_(std::move(config)), weight_fn_(config_.MakeWeightFn()) {}

void Grafics::Train(const std::vector<rf::SignalRecord>& records) {
  Require(!records.empty(), "Grafics::Train: no records");
  const std::size_t labeled =
      static_cast<std::size_t>(std::count_if(
          records.begin(), records.end(),
          [](const rf::SignalRecord& r) { return r.is_labeled(); }));
  Require(labeled >= 1, "Grafics::Train: need at least one labeled record");

  // (i) bipartite graph construction (Sec. IV-A).
  graph_ = graph::BipartiteGraph::FromRecords(records, weight_fn_);
  num_training_records_ = records.size();

  // (ii) E-LINE node embeddings (Sec. IV-B).
  store_ = embed::TrainEmbeddings(graph_, config_.trainer);

  // (iii) proximity-based hierarchical clustering (Sec. IV-C).
  Matrix points = TrainingEmbeddings();
  std::vector<std::optional<rf::FloorId>> labels(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    labels[i] = records[i].floor();
  }
  clustering_ = std::make_shared<const cluster::ClusteringResult>(
      cluster::ClusterEmbeddings(points, labels, config_.clusterer));
  classifier_ =
      std::make_shared<const cluster::CentroidClassifier>(points, *clustering_);
  knn_classifier_ = std::make_shared<const cluster::KnnClassifier>(
      points, *clustering_, config_.knn);
  RebuildNegativeSampler();
}

void Grafics::RebuildNegativeSampler() {
  negative_sampler_ = std::make_shared<const embed::NegativeSamplerSet>(
      embed::NegativeSamplerSet::Build(graph_));
}

Matrix Grafics::TrainingEmbeddings() const {
  Require(store_.has_value(), "Grafics: not trained");
  Matrix points(num_training_records_, config_.trainer.dim);
  for (std::size_t i = 0; i < num_training_records_; ++i) {
    const auto ego = store_->Ego(graph_.RecordNode(i));
    std::copy(ego.begin(), ego.end(), points.Row(i).begin());
  }
  return points;
}

std::span<const double> Grafics::TrainingEmbedding(
    std::size_t record_index) const {
  Require(store_.has_value(), "Grafics: not trained");
  return store_->Ego(graph_.RecordNode(record_index));
}

graph::NodeId Grafics::ExtendWith(const rf::SignalRecord& record,
                                  std::vector<graph::NodeId>* touched) {
  const std::size_t nodes_before = graph_.NumNodes();
  const graph::NodeId new_node = graph_.AddRecord(record, weight_fn_);
  const std::size_t new_count = graph_.NumNodes() - nodes_before;

  // Grow the store and refine only the new rows (Sec. V-A). Negatives come
  // from the cached frozen-base sampler, so no O(|V|) rebuild per record.
  Rng grow_rng(config_.trainer.seed ^ (0x9E3779B9ULL + graph_.NumNodes()));
  store_->Grow(new_count, grow_rng);
  std::vector<graph::NodeId> new_nodes;
  new_nodes.reserve(new_count);
  for (std::size_t k = 0; k < new_count; ++k) {
    new_nodes.push_back(static_cast<graph::NodeId>(nodes_before + k));
  }
  embed::RefineNewNodes(graph_, new_nodes, *store_, config_.trainer,
                        config_.online_refine_iterations,
                        *negative_sampler_);
  if (touched != nullptr) {
    // Degree changed for every new node and for the record's existing MAC
    // neighbors — exactly the record node's adjacency plus the new nodes.
    touched->insert(touched->end(), new_nodes.begin(), new_nodes.end());
    for (const graph::Neighbor& nb : graph_.NeighborsOf(new_node)) {
      touched->push_back(nb.node);
    }
  }
  return new_node;
}

std::optional<rf::FloorId> Grafics::Predict(
    const rf::SignalRecord& record) const {
  Require(is_trained(), "Grafics::Predict: call Train first");
  InferenceContext context(*this);
  return context.Predict(record);
}

InferenceContext Grafics::MakeContext() const {
  return InferenceContext(*this);
}

std::size_t Grafics::Update(const std::vector<rf::SignalRecord>& records) {
  Require(is_trained(), "Grafics::Update: call Train first");
  std::size_t added = 0;
  std::vector<graph::NodeId> touched;
  for (const rf::SignalRecord& record : records) {
    if (record.empty()) continue;
    ExtendWith(record, &touched);
    ++added;
  }
  if (touched.empty()) return added;
  // The new nodes (and the MAC nodes that gained edges) must be drawable as
  // negatives by future refinements. Instead of the historical O(|V|)
  // sampler rebuild, append an O(delta) correction group covering exactly
  // the nodes whose degree changed — the distribution stays exact.
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  negative_sampler_ = std::make_shared<const embed::NegativeSamplerSet>(
      negative_sampler_->Extended(graph_, touched));
  return added;
}

std::vector<std::optional<rf::FloorId>> Grafics::PredictBatch(
    const std::vector<rf::SignalRecord>& records,
    const BatchPredictOptions& options) const {
  Require(!options.keep,
          "Grafics::PredictBatch: keep=true requires a mutable Grafics");
  Require(is_trained(), "Grafics::PredictBatch: call Train first");
  std::vector<std::optional<rf::FloorId>> predictions(records.size());
  const std::size_t num_threads =
      options.pool != nullptr ? options.pool->num_threads()
      : options.num_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : options.num_threads;
  if (num_threads == 1 || records.size() <= 1) {
    InferenceContext context(*this);
    for (std::size_t i = 0; i < records.size(); ++i) {
      predictions[i] = context.Predict(records[i]);
    }
    return predictions;
  }
  // One snapshot-isolated context per worker: workers share only read-only
  // model state, so chunks run without locks and the result is bit-identical
  // to the serial path.
  const auto run_chunks = [&](ThreadPool& pool) {
    pool.ParallelFor(0, records.size(),
                     [&](std::size_t begin, std::size_t end) {
                       InferenceContext context(*this);
                       for (std::size_t i = begin; i < end; ++i) {
                         predictions[i] = context.Predict(records[i]);
                       }
                     });
  };
  if (options.pool != nullptr) {
    run_chunks(*options.pool);
  } else {
    ThreadPool pool(num_threads);
    run_chunks(pool);
  }
  return predictions;
}

Grafics Grafics::Clone() const {
  // Memberwise copy IS the fork: the trained components are immutable and
  // shared by pointer, and the graph/embedding containers are chunked
  // copy-on-write, so this is O(#components) pointer copies — independent
  // of model size — and the first write to any shared chunk copies only
  // that chunk. Nothing either side can write is visible to the other.
  return *this;
}

CowBytes Grafics::MemoryBytes() const {
  CowBytes bytes = graph_.MemoryBytes();
  if (store_.has_value()) bytes += store_->MemoryBytes();
  if (negative_sampler_ != nullptr) {
    CowBytes sampler = negative_sampler_->MemoryBytes();
    if (negative_sampler_.use_count() > 1) {
      // The whole set is shared through the outer pointer, so everything it
      // holds is reachable from another snapshot even where the internal
      // group/chunk use counts are 1.
      sampler.shared_bytes += sampler.owned_bytes;
      sampler.owned_bytes = 0;
    }
    bytes += sampler;
  }
  // Pointer-shared immutable components: shared when any other snapshot
  // still references them.
  const auto component = [&bytes](const auto& ptr, std::size_t b) {
    if (ptr == nullptr) return;
    (ptr.use_count() > 1 ? bytes.shared_bytes : bytes.owned_bytes) += b;
  };
  if (clustering_ != nullptr) {
    component(clustering_,
              clustering_->cluster_of_point.capacity() * sizeof(std::size_t) +
                  clustering_->cluster_label.capacity() *
                      sizeof(std::optional<rf::FloorId>) +
                  clustering_->merge_history.capacity() *
                      sizeof(std::pair<std::size_t, std::size_t>));
  }
  if (classifier_ != nullptr) {
    component(classifier_, classifier_->ApproxHeapBytes());
  }
  if (knn_classifier_ != nullptr) {
    component(knn_classifier_, knn_classifier_->ApproxHeapBytes());
  }
  return bytes;
}

std::vector<std::optional<rf::FloorId>> Grafics::PredictBatch(
    const std::vector<rf::SignalRecord>& records,
    const BatchPredictOptions& options) {
  BatchPredictOptions snapshot_options = options;
  snapshot_options.keep = false;
  std::vector<std::optional<rf::FloorId>> predictions =
      std::as_const(*this).PredictBatch(records, snapshot_options);
  if (options.keep) {
    // Fold the accepted records back into the model with Update semantics:
    // graph extended, new embeddings refined against the frozen base,
    // clusters and centroids untouched.
    std::vector<rf::SignalRecord> accepted;
    accepted.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (predictions[i].has_value()) accepted.push_back(records[i]);
    }
    Update(accepted);
  }
  return predictions;
}

namespace {
constexpr char kModelMagic[4] = {'G', 'R', 'F', 'X'};
// v1: sampler rebuilt from degrees on load (exact distribution, different
//     draw sequence). v2: exact negative-sampler tables appended, so a
//     loaded model is bit-identical to the live one, folds included.
constexpr std::uint32_t kModelVersion = 2;
constexpr char kDeltaMagic[4] = {'G', 'R', 'F', 'D'};
constexpr std::uint32_t kDeltaVersion = 1;
}  // namespace

void Grafics::SaveModel(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  Require(out.good(), "Grafics::SaveModel: cannot open " + path);
  SaveModel(out);
  Require(out.good(), "Grafics::SaveModel: write failed");
}

void Grafics::SaveModel(std::ostream& out) const {
  Require(is_trained(), "Grafics::SaveModel: model not trained");
  Require(!config_.custom_weight,
          "Grafics::SaveModel: custom weight functions are not serializable");

  WriteHeader(out, kModelMagic, kModelVersion);
  // Config (the fields that matter at inference time).
  WriteDouble(out, config_.weight_offset);
  WriteU64(out, config_.trainer.dim);
  WriteU8(out, static_cast<std::uint8_t>(config_.trainer.objective));
  WriteU64(out, config_.trainer.negative_samples);
  WriteDouble(out, config_.trainer.initial_learning_rate);
  WriteDouble(out, config_.trainer.final_learning_rate_fraction);
  WriteU64(out, config_.trainer.seed);
  WriteU64(out, config_.online_refine_iterations);
  WriteU64(out, num_training_records_);

  graph_.Save(out);
  store_->Save(out);
  classifier_->Save(out);

  // Clustering diagnostics (cluster per training record, labels, merges).
  WriteU64(out, clustering_->cluster_of_point.size());
  for (const std::size_t c : clustering_->cluster_of_point) WriteU64(out, c);
  WriteU64(out, clustering_->cluster_label.size());
  for (const auto& label : clustering_->cluster_label) {
    WriteOptionalI32(out, label);
  }
  WriteU64(out, clustering_->merge_history.size());
  for (const auto& [a, b] : clustering_->merge_history) {
    WriteU64(out, a);
    WriteU64(out, b);
  }
  // v2: the exact sampler state. A v1-style rebuild from degrees produces
  // the same distribution but a different draw sequence, so models folded
  // after load would diverge bit-wise from the live daemon.
  negative_sampler_->Save(out);
  Require(out.good(), "Grafics::SaveModel: write failed");
}

Grafics Grafics::LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  Require(in.good(), "Grafics::LoadModel: cannot open " + path);
  return LoadModel(in);
}

Grafics Grafics::LoadModel(std::istream& in) {
  const std::uint32_t version = ReadHeader(in, kModelMagic);
  Require(version >= 1 && version <= kModelVersion,
          "Grafics::LoadModel: unsupported artifact version " +
              std::to_string(version));

  GraficsConfig config;
  config.weight_offset = ReadDouble(in);
  config.trainer.dim = ReadU64(in);
  config.trainer.objective = static_cast<embed::Objective>(ReadU8(in));
  config.trainer.negative_samples = ReadU64(in);
  config.trainer.initial_learning_rate = ReadDouble(in);
  config.trainer.final_learning_rate_fraction = ReadDouble(in);
  config.trainer.seed = ReadU64(in);
  config.online_refine_iterations = ReadU64(in);

  Grafics system(config);
  system.num_training_records_ = ReadU64(in);
  system.graph_ = graph::BipartiteGraph::Load(in);
  system.store_ = embed::EmbeddingStore::Load(in);
  system.classifier_ = std::make_shared<const cluster::CentroidClassifier>(
      cluster::CentroidClassifier::Load(in));
  Require(system.store_->num_nodes() == system.graph_.NumNodes(),
          "Grafics::LoadModel: store/graph size mismatch");
  Require(system.store_->dim() == config.trainer.dim,
          "Grafics::LoadModel: embedding dimension mismatch");

  cluster::ClusteringResult clustering;
  const std::uint64_t points = ReadU64(in);
  clustering.cluster_of_point.resize(points);
  for (std::size_t i = 0; i < points; ++i) {
    clustering.cluster_of_point[i] = ReadU64(in);
  }
  const std::uint64_t clusters = ReadU64(in);
  clustering.cluster_label.resize(clusters);
  for (std::size_t i = 0; i < clusters; ++i) {
    clustering.cluster_label[i] = ReadOptionalI32(in);
  }
  const std::uint64_t merges = ReadU64(in);
  clustering.merge_history.resize(merges);
  for (std::size_t i = 0; i < merges; ++i) {
    clustering.merge_history[i].first = ReadU64(in);
    clustering.merge_history[i].second = ReadU64(in);
  }
  system.clustering_ =
      std::make_shared<const cluster::ClusteringResult>(std::move(clustering));
  system.knn_classifier_ = std::make_shared<const cluster::KnnClassifier>(
      system.TrainingEmbeddings(), *system.clustering_, config.knn);
  if (version >= 2) {
    system.negative_sampler_ =
        std::make_shared<const embed::NegativeSamplerSet>(
            embed::NegativeSamplerSet::Load(in));
  } else {
    system.RebuildNegativeSampler();
  }
  return system;
}

bool Grafics::DeltaCompatible(const Grafics& base) const {
  return is_trained() && base.is_trained() && !config_.custom_weight &&
         clustering_ == base.clustering_ && classifier_ == base.classifier_ &&
         knn_classifier_ == base.knn_classifier_ &&
         graph_.NumNodes() >= base.graph_.NumNodes() &&
         num_training_records_ == base.num_training_records_;
}

void Grafics::SaveDelta(std::ostream& out, const Grafics& base) const {
  Require(DeltaCompatible(base),
          "Grafics::SaveDelta: model is not a fold-descendant of the base");
  WriteHeader(out, kDeltaMagic, kDeltaVersion);
  WriteU64(out, num_training_records_);
  graph_.SaveDelta(out, base.graph_);
  store_->SaveDelta(out, *base.store_);
  // The sampler pointer survives a fold only when Update touched nothing;
  // otherwise write its group-prefix delta.
  if (negative_sampler_ == base.negative_sampler_) {
    WriteU8(out, 0);
  } else {
    WriteU8(out, 1);
    negative_sampler_->SaveDelta(out, *base.negative_sampler_);
  }
  Require(out.good(), "Grafics::SaveDelta: write failed");
}

void Grafics::ApplyDelta(std::istream& in) {
  Require(is_trained(), "Grafics::ApplyDelta: load the base artifact first");
  CheckHeader(in, kDeltaMagic, kDeltaVersion);
  const std::uint64_t training_records = ReadU64(in);
  Require(training_records == num_training_records_,
          "Grafics::ApplyDelta: delta belongs to a different base");
  graph_.ApplyDelta(in);
  store_->ApplyDelta(in);
  if (ReadU8(in) != 0) {
    embed::NegativeSamplerSet next = *negative_sampler_;
    next.ApplyDelta(in);
    negative_sampler_ =
        std::make_shared<const embed::NegativeSamplerSet>(std::move(next));
  }
  Require(store_->num_nodes() == graph_.NumNodes(),
          "Grafics::ApplyDelta: store/graph size mismatch");
}

const embed::EmbeddingStore& Grafics::embedding_store() const {
  Require(store_.has_value(), "Grafics: not trained");
  return *store_;
}

const cluster::ClusteringResult& Grafics::clustering() const {
  Require(clustering_ != nullptr, "Grafics: not trained");
  return *clustering_;
}

const embed::NegativeSamplerSet& Grafics::negative_sampler() const {
  Require(negative_sampler_ != nullptr, "Grafics: not trained");
  return *negative_sampler_;
}

const cluster::CentroidClassifier& Grafics::classifier() const {
  Require(classifier_ != nullptr, "Grafics: not trained");
  return *classifier_;
}

}  // namespace grafics::core
