#include "core/metrics.h"

#include <array>

#include "common/error.h"

namespace grafics::core {

namespace {
PrfScores MakePrf(double precision, double recall) {
  PrfScores s;
  s.precision = precision;
  s.recall = recall;
  s.f_score = (precision + recall) > 0.0
                  ? 2.0 * precision * recall / (precision + recall)
                  : 0.0;
  return s;
}
}  // namespace

ClassificationMetrics ComputeMetrics(
    const std::vector<rf::FloorId>& truth,
    const std::vector<std::optional<rf::FloorId>>& predicted) {
  Require(truth.size() == predicted.size(),
          "ComputeMetrics: truth/predicted size mismatch");
  Require(!truth.empty(), "ComputeMetrics: empty input");

  ClassificationMetrics m;
  m.num_samples = truth.size();
  auto& counts = m.per_floor_counts;  // floor -> {TP, FP, FN}
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    counts.try_emplace(truth[i], std::array<std::size_t, 3>{0, 0, 0});
    if (predicted[i].has_value()) {
      counts.try_emplace(*predicted[i], std::array<std::size_t, 3>{0, 0, 0});
    }
    if (predicted[i] && *predicted[i] == truth[i]) {
      ++counts[truth[i]][0];  // TP
      ++correct;
    } else {
      ++counts[truth[i]][2];  // FN for the true floor
      if (predicted[i]) ++counts[*predicted[i]][1];  // FP for the predicted
    }
  }
  m.accuracy = static_cast<double>(correct) / static_cast<double>(truth.size());

  std::size_t tp_sum = 0;
  std::size_t fp_sum = 0;
  std::size_t fn_sum = 0;
  double precision_sum = 0.0;
  double recall_sum = 0.0;
  for (const auto& [floor, c] : counts) {
    const auto [tp, fp, fn] = c;
    tp_sum += tp;
    fp_sum += fp;
    fn_sum += fn;
    precision_sum += (tp + fp) > 0
                         ? static_cast<double>(tp) /
                               static_cast<double>(tp + fp)
                         : 0.0;
    recall_sum +=
        (tp + fn) > 0
            ? static_cast<double>(tp) / static_cast<double>(tp + fn)
            : 0.0;
  }
  const auto n = static_cast<double>(counts.size());
  const double micro_p =
      (tp_sum + fp_sum) > 0
          ? static_cast<double>(tp_sum) / static_cast<double>(tp_sum + fp_sum)
          : 0.0;
  const double micro_r =
      (tp_sum + fn_sum) > 0
          ? static_cast<double>(tp_sum) / static_cast<double>(tp_sum + fn_sum)
          : 0.0;
  m.micro = MakePrf(micro_p, micro_r);
  m.macro = MakePrf(precision_sum / n, recall_sum / n);
  return m;
}

ClassificationMetrics ComputeMetrics(
    const std::vector<rf::FloorId>& truth,
    const std::vector<rf::FloorId>& predicted) {
  std::vector<std::optional<rf::FloorId>> opt(predicted.begin(),
                                              predicted.end());
  return ComputeMetrics(truth, opt);
}

}  // namespace grafics::core
