// Micro- and macro-averaged precision / recall / F-score
// (exactly the definitions of the paper's Sec. VI-A).
#pragma once

#include <array>
#include <map>
#include <optional>
#include <vector>

#include "rf/signal_record.h"

namespace grafics::core {

struct PrfScores {
  double precision = 0.0;
  double recall = 0.0;
  double f_score = 0.0;
};

struct ClassificationMetrics {
  PrfScores micro;
  PrfScores macro;
  double accuracy = 0.0;
  std::size_t num_samples = 0;
  /// Per-floor (TP, FP, FN) counts for diagnostics.
  std::map<rf::FloorId, std::array<std::size_t, 3>> per_floor_counts;
};

/// Scores predictions against ground truth. `predicted[i]` may be nullopt
/// (e.g. a record with only unseen MACs was discarded); such samples count
/// as false negatives of their true floor but never as false positives.
/// The floor universe is the union of truth and prediction labels.
ClassificationMetrics ComputeMetrics(
    const std::vector<rf::FloorId>& truth,
    const std::vector<std::optional<rf::FloorId>>& predicted);

/// Convenience overload for all-present predictions.
ClassificationMetrics ComputeMetrics(const std::vector<rf::FloorId>& truth,
                                     const std::vector<rf::FloorId>& predicted);

}  // namespace grafics::core
