// Proximity-based hierarchical clustering (paper Sec. IV-C).
//
// Agglomerative average-linkage clustering over embeddings with one
// constraint: a cluster may contain AT MOST ONE floor-labeled sample, so two
// clusters that both hold a labeled sample never merge. Merging continues
// until no allowed merge remains; with L labeled samples that leaves exactly
// L clusters, each named by its single labeled member.
//
// The inter-cluster distance is the paper's Eq. (11): the mean pairwise
// Euclidean distance, maintained exactly through the Lance–Williams
// average-linkage recurrence.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "rf/signal_record.h"

namespace grafics::cluster {

struct ClusteringResult {
  /// Final cluster index (0..num_clusters-1) of every input point.
  std::vector<std::size_t> cluster_of_point;
  /// Floor label of each final cluster (nullopt only if the cluster never
  /// absorbed a labeled point, which happens only when L == 0).
  std::vector<std::optional<rf::FloorId>> cluster_label;
  /// Point-index pairs in merge order; entry k merged the components
  /// containing the two points at step k. Enables Fig.-8-style replay.
  std::vector<std::pair<std::size_t, std::size_t>> merge_history;

  std::size_t num_clusters() const { return cluster_label.size(); }

  /// Component index of every point after applying only the first
  /// `merge_count` merges (0 <= merge_count <= merge_history.size()).
  /// Component ids are compacted to 0..k-1.
  std::vector<std::size_t> AssignmentsAfter(std::size_t merge_count) const;

  std::size_t num_points() const { return cluster_of_point.size(); }
};

struct ClustererConfig {
  /// Safety valve: clustering is O(n^2) memory; refuse above this size.
  std::size_t max_points = 20000;
};

/// Runs the constrained agglomeration. `points` holds one embedding per row;
/// `labels[i]` is the floor label of row i or nullopt when unlabeled.
ClusteringResult ClusterEmbeddings(
    const Matrix& points, const std::vector<std::optional<rf::FloorId>>& labels,
    const ClustererConfig& config = {});

}  // namespace grafics::cluster
