#include "cluster/knn_classifier.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.h"
#include "common/simd.h"

namespace grafics::cluster {

KnnClassifier::KnnClassifier(Matrix references,
                             std::vector<rf::FloorId> labels, KnnConfig config)
    : references_(std::move(references)),
      labels_(std::move(labels)),
      config_(config) {
  Require(references_.rows() == labels_.size(),
          "KnnClassifier: reference/label count mismatch");
  Require(!labels_.empty(), "KnnClassifier: need >= 1 reference");
  Require(config_.k >= 1, "KnnClassifier: k must be >= 1");
}

KnnClassifier::KnnClassifier(const Matrix& points,
                             const ClusteringResult& clustering,
                             KnnConfig config)
    : config_(config) {
  Require(points.rows() == clustering.cluster_of_point.size(),
          "KnnClassifier: points/clustering size mismatch");
  Require(config_.k >= 1, "KnnClassifier: k must be >= 1");
  // Keep only points whose cluster carries a floor label.
  std::vector<std::size_t> keep;
  for (std::size_t p = 0; p < points.rows(); ++p) {
    if (clustering.cluster_label[clustering.cluster_of_point[p]]) {
      keep.push_back(p);
    }
  }
  Require(!keep.empty(), "KnnClassifier: no labeled clusters");
  references_ = Matrix(keep.size(), points.cols());
  labels_.resize(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    std::copy(points.Row(keep[i]).begin(), points.Row(keep[i]).end(),
              references_.Row(i).begin());
    labels_[i] =
        *clustering.cluster_label[clustering.cluster_of_point[keep[i]]];
  }
}

std::vector<std::pair<std::size_t, double>> KnnClassifier::Neighbors(
    std::span<const double> embedding) const {
  Require(embedding.size() == references_.cols(),
          "KnnClassifier: dimension mismatch");
  // Batched scan over the packed reference matrix, then sqrt per row.
  std::vector<double> sq_dists(references_.rows());
  simd::SquaredL2DistanceMany(embedding.data(), references_.data(),
                              references_.rows(), references_.cols(),
                              sq_dists.data());
  std::vector<std::pair<std::size_t, double>> all(references_.rows());
  for (std::size_t i = 0; i < references_.rows(); ++i) {
    all[i] = {i, std::sqrt(sq_dists[i])};
  }
  const std::size_t k = std::min(config_.k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const auto& a, const auto& b) {
                      return a.second < b.second;
                    });
  all.resize(k);
  return all;
}

rf::FloorId KnnClassifier::Predict(std::span<const double> embedding) const {
  const auto neighbors = Neighbors(embedding);
  std::unordered_map<rf::FloorId, double> votes;
  for (const auto& [index, distance] : neighbors) {
    votes[labels_[index]] +=
        1.0 / std::pow(distance + config_.epsilon, config_.distance_power);
  }
  rf::FloorId best = labels_[neighbors.front().first];
  double best_votes = -1.0;
  for (const auto& [floor, weight] : votes) {
    if (weight > best_votes) {
      best_votes = weight;
      best = floor;
    }
  }
  return best;
}

}  // namespace grafics::cluster
