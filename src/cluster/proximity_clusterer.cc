#include "cluster/proximity_clusterer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/simd.h"

namespace grafics::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Flat upper-triangular-ish full distance matrix (we keep both halves for
/// cache-friendly row scans).
class DistanceTable {
 public:
  explicit DistanceTable(std::size_t n) : n_(n), d_(n * n, 0.0) {}
  double Get(std::size_t i, std::size_t j) const { return d_[i * n_ + j]; }
  void Set(std::size_t i, std::size_t j, double v) {
    d_[i * n_ + j] = v;
    d_[j * n_ + i] = v;
  }

 private:
  std::size_t n_;
  std::vector<double> d_;
};

struct Cluster {
  bool active = false;
  bool labeled = false;
  rf::FloorId label = 0;
  std::size_t size = 0;
  std::size_t representative = 0;  // any point index inside the cluster
};

}  // namespace

std::vector<std::size_t> ClusteringResult::AssignmentsAfter(
    std::size_t merge_count) const {
  Require(merge_count <= merge_history.size(),
          "AssignmentsAfter: merge_count out of range");
  const std::size_t n = cluster_of_point.size();
  // Union-find replay of the first merge_count merges.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t k = 0; k < merge_count; ++k) {
    const auto [a, b] = merge_history[k];
    parent[find(a)] = find(b);
  }
  std::vector<std::size_t> compact(n);
  std::unordered_map<std::size_t, std::size_t> ids;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    const auto [it, inserted] = ids.try_emplace(root, ids.size());
    compact[i] = it->second;
  }
  return compact;
}

ClusteringResult ClusterEmbeddings(
    const Matrix& points, const std::vector<std::optional<rf::FloorId>>& labels,
    const ClustererConfig& config) {
  const std::size_t n = points.rows();
  Require(labels.size() == n,
          "ClusterEmbeddings: points/labels size mismatch");
  Require(n >= 1, "ClusterEmbeddings: need at least one point");
  Require(n <= config.max_points,
          "ClusterEmbeddings: too many points for O(n^2) clustering; "
          "raise ClustererConfig::max_points deliberately if intended");

  // --- initialize singleton clusters and the distance table --------------
  // Dominant cost of clustering: n^2/2 distance evaluations. Each row i is
  // one batched kernel scan against the contiguous block of rows i+1..n-1.
  DistanceTable dist(n);
  std::vector<double> row_dists(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t tail = n - i - 1;
    simd::SquaredL2DistanceMany(points.data() + i * points.cols(),
                                points.data() + (i + 1) * points.cols(), tail,
                                points.cols(), row_dists.data());
    for (std::size_t j = 0; j < tail; ++j) {
      dist.Set(i, i + 1 + j, std::sqrt(row_dists[j]));
    }
  }
  std::vector<Cluster> clusters(n);
  for (std::size_t i = 0; i < n; ++i) {
    clusters[i] = {.active = true,
                   .labeled = labels[i].has_value(),
                   .label = labels[i].value_or(0),
                   .size = 1,
                   .representative = i};
  }

  const auto allowed = [&](std::size_t a, std::size_t b) {
    return !(clusters[a].labeled && clusters[b].labeled);
  };

  // Nearest-allowed-neighbor cache per cluster, with lazy revalidation.
  std::vector<std::size_t> nn_index(n, 0);
  std::vector<double> nn_dist(n, kInf);
  const auto recompute_nn = [&](std::size_t i) {
    nn_dist[i] = kInf;
    nn_index[i] = i;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || !clusters[j].active || !allowed(i, j)) continue;
      const double d = dist.Get(i, j);
      if (d < nn_dist[i]) {
        nn_dist[i] = d;
        nn_index[i] = j;
      }
    }
  };
  for (std::size_t i = 0; i < n; ++i) recompute_nn(i);

  ClusteringResult result;
  result.cluster_of_point.resize(n);
  result.merge_history.reserve(n - 1);

  std::size_t active_count = n;
  for (;;) {
    // --- find the globally closest allowed pair, revalidating stale
    //     cache entries on the fly ---------------------------------------
    std::size_t best = n;
    double best_dist = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (!clusters[i].active || nn_dist[i] == kInf) continue;
      // Revalidate: partner may have been merged away or become labeled.
      const std::size_t j = nn_index[i];
      if (!clusters[j].active || !allowed(i, j)) {
        recompute_nn(i);
        if (nn_dist[i] == kInf) continue;
      }
      if (nn_dist[i] < best_dist) {
        best_dist = nn_dist[i];
        best = i;
      }
    }
    if (best == n) break;  // no allowed merge remains
    const std::size_t i = best;
    const std::size_t j = nn_index[i];

    // --- merge j into i ---------------------------------------------------
    result.merge_history.emplace_back(clusters[i].representative,
                                      clusters[j].representative);
    const auto ni = static_cast<double>(clusters[i].size);
    const auto nj = static_cast<double>(clusters[j].size);
    for (std::size_t k = 0; k < n; ++k) {
      if (!clusters[k].active || k == i || k == j) continue;
      // Lance–Williams average-linkage update: exact for Eq. (11).
      dist.Set(k, i,
               (ni * dist.Get(k, i) + nj * dist.Get(k, j)) / (ni + nj));
    }
    clusters[i].size += clusters[j].size;
    clusters[i].labeled = clusters[i].labeled || clusters[j].labeled;
    if (clusters[j].labeled) clusters[i].label = clusters[j].label;
    clusters[j].active = false;
    --active_count;

    // --- refresh nearest-neighbor caches ----------------------------------
    recompute_nn(i);
    for (std::size_t k = 0; k < n; ++k) {
      if (!clusters[k].active || k == i) continue;
      if (nn_index[k] == j || nn_index[k] == i) {
        recompute_nn(k);
      } else if (allowed(k, i) && dist.Get(k, i) < nn_dist[k]) {
        nn_dist[k] = dist.Get(k, i);
        nn_index[k] = i;
      }
    }
    if (active_count == 1) break;
  }

  // --- finalize: assign compact ids via merge replay ----------------------
  const std::vector<std::size_t> assignment =
      result.AssignmentsAfter(result.merge_history.size());
  std::size_t num_clusters = 0;
  for (std::size_t id : assignment) num_clusters = std::max(num_clusters, id + 1);
  result.cluster_of_point = assignment;
  result.cluster_label.assign(num_clusters, std::nullopt);
  for (std::size_t p = 0; p < n; ++p) {
    if (labels[p]) {
      Require(!result.cluster_label[assignment[p]].has_value() ||
                  *result.cluster_label[assignment[p]] == *labels[p],
              "ClusterEmbeddings: invariant violated — two labeled samples "
              "in one cluster");
      result.cluster_label[assignment[p]] = labels[p];
    }
  }
  return result;
}

}  // namespace grafics::cluster
