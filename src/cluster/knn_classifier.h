// Weighted k-nearest-neighbor floor classifier over labeled embeddings.
//
// An alternative inference head to the paper's nearest-centroid rule
// (Sec. V-B), in the spirit of the weighted k-NN step of ViFi [29]. Votes
// are weighted by inverse distance; ties break toward the nearer neighbor.
// Used by the ablation bench to quantify how much the centroid rule itself
// contributes versus the embedding quality.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "cluster/proximity_clusterer.h"
#include "common/matrix.h"
#include "rf/signal_record.h"

namespace grafics::cluster {

struct KnnConfig {
  std::size_t k = 5;
  /// Inverse-distance weighting exponent: weight = 1 / (d + eps)^p.
  double distance_power = 1.0;
  double epsilon = 1e-9;
};

class KnnClassifier {
 public:
  /// Builds from reference embeddings with per-row floor labels.
  KnnClassifier(Matrix references, std::vector<rf::FloorId> labels,
                KnnConfig config = {});

  /// Builds from a clustering result: every point inherits its cluster's
  /// floor label (the "virtual labels" of the paper's Sec. III-B), giving a
  /// dense reference set instead of one centroid per cluster.
  KnnClassifier(const Matrix& points, const ClusteringResult& clustering,
                KnnConfig config = {});

  std::size_t num_references() const { return references_.rows(); }
  const KnnConfig& config() const { return config_; }

  rf::FloorId Predict(std::span<const double> embedding) const;

  /// Approximate heap bytes (snapshot shared/owned accounting).
  std::size_t ApproxHeapBytes() const {
    return references_.size() * sizeof(double) +
           labels_.capacity() * sizeof(rf::FloorId);
  }

  /// The k nearest reference indices and distances (diagnostics).
  std::vector<std::pair<std::size_t, double>> Neighbors(
      std::span<const double> embedding) const;

 private:
  Matrix references_;
  std::vector<rf::FloorId> labels_;
  KnnConfig config_;
};

}  // namespace grafics::cluster
