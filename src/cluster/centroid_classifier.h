// Nearest-centroid floor classifier over clustered embeddings
// (paper Sec. V-B): the predicted floor of a new embedding is the label of
// the cluster whose centroid is closest in Euclidean distance.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "cluster/proximity_clusterer.h"
#include "common/matrix.h"
#include "rf/signal_record.h"

namespace grafics::cluster {

class CentroidClassifier {
 public:
  /// Builds centroids from the training embeddings and their final cluster
  /// assignment. Clusters without a floor label (possible only when no
  /// labeled sample existed) are skipped; at least one labeled cluster is
  /// required.
  CentroidClassifier(const Matrix& points, const ClusteringResult& clustering);

  /// Builds directly from explicit (centroid, label) pairs (for tests).
  CentroidClassifier(Matrix centroids, std::vector<rf::FloorId> labels);

  std::size_t num_centroids() const { return centroids_.rows(); }
  std::span<const double> centroid(std::size_t i) const {
    return centroids_.Row(i);
  }
  rf::FloorId label(std::size_t i) const { return labels_[i]; }

  /// Predicted floor of `embedding` (label of nearest centroid).
  rf::FloorId Predict(std::span<const double> embedding) const;

  /// Index of nearest centroid plus its distance (for diagnostics).
  std::pair<std::size_t, double> Nearest(
      std::span<const double> embedding) const;

  /// Approximate heap bytes (snapshot shared/owned accounting).
  std::size_t ApproxHeapBytes() const {
    return centroids_.size() * sizeof(double) +
           labels_.capacity() * sizeof(rf::FloorId);
  }

  /// Binary (de)serialization.
  void Save(std::ostream& out) const;
  static CentroidClassifier Load(std::istream& in);

  bool operator==(const CentroidClassifier&) const = default;

 private:
  CentroidClassifier() = default;  // for Load

  Matrix centroids_;
  std::vector<rf::FloorId> labels_;
};

}  // namespace grafics::cluster
