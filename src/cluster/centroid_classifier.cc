#include "cluster/centroid_classifier.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.h"
#include "common/serialize.h"
#include "common/simd.h"

namespace grafics::cluster {

CentroidClassifier::CentroidClassifier(const Matrix& points,
                                       const ClusteringResult& clustering) {
  Require(points.rows() == clustering.cluster_of_point.size(),
          "CentroidClassifier: points/clustering size mismatch");
  const std::size_t total_clusters = clustering.num_clusters();

  // Accumulate sums per labeled cluster.
  std::vector<std::size_t> labeled_cluster_ids;
  for (std::size_t c = 0; c < total_clusters; ++c) {
    if (clustering.cluster_label[c].has_value()) {
      labeled_cluster_ids.push_back(c);
    }
  }
  Require(!labeled_cluster_ids.empty(),
          "CentroidClassifier: no labeled clusters to classify against");

  std::vector<std::size_t> dense_id(total_clusters, total_clusters);
  for (std::size_t k = 0; k < labeled_cluster_ids.size(); ++k) {
    dense_id[labeled_cluster_ids[k]] = k;
  }

  centroids_ = Matrix(labeled_cluster_ids.size(), points.cols());
  labels_.resize(labeled_cluster_ids.size());
  std::vector<std::size_t> counts(labeled_cluster_ids.size(), 0);
  for (std::size_t k = 0; k < labeled_cluster_ids.size(); ++k) {
    labels_[k] = *clustering.cluster_label[labeled_cluster_ids[k]];
  }
  for (std::size_t p = 0; p < points.rows(); ++p) {
    const std::size_t c = clustering.cluster_of_point[p];
    const std::size_t k = dense_id[c];
    if (k == total_clusters) continue;  // unlabeled cluster: skip
    Axpy(1.0, points.Row(p), centroids_.Row(k));
    ++counts[k];
  }
  for (std::size_t k = 0; k < counts.size(); ++k) {
    Require(counts[k] > 0, "CentroidClassifier: empty labeled cluster");
    Scale(centroids_.Row(k), 1.0 / static_cast<double>(counts[k]));
  }
}

CentroidClassifier::CentroidClassifier(Matrix centroids,
                                       std::vector<rf::FloorId> labels)
    : centroids_(std::move(centroids)), labels_(std::move(labels)) {
  Require(centroids_.rows() == labels_.size(),
          "CentroidClassifier: centroid/label count mismatch");
  Require(!labels_.empty(), "CentroidClassifier: need >= 1 centroid");
}

namespace {
constexpr char kClassifierMagic[4] = {'G', 'C', 'T', 'R'};
constexpr std::uint32_t kClassifierVersion = 1;
}  // namespace

void CentroidClassifier::Save(std::ostream& out) const {
  WriteHeader(out, kClassifierMagic, kClassifierVersion);
  WriteMatrix(out, centroids_);
  WriteU64(out, labels_.size());
  for (const rf::FloorId label : labels_) WriteI32(out, label);
}

CentroidClassifier CentroidClassifier::Load(std::istream& in) {
  CheckHeader(in, kClassifierMagic, kClassifierVersion);
  CentroidClassifier classifier;
  classifier.centroids_ = ReadMatrix(in);
  const std::uint64_t count = ReadU64(in);
  Require(count == classifier.centroids_.rows(),
          "CentroidClassifier::Load: centroid/label count mismatch");
  classifier.labels_.resize(count);
  for (std::size_t i = 0; i < count; ++i) classifier.labels_[i] = ReadI32(in);
  Require(!classifier.labels_.empty(),
          "CentroidClassifier::Load: empty classifier");
  return classifier;
}

std::pair<std::size_t, double> CentroidClassifier::Nearest(
    std::span<const double> embedding) const {
  Require(embedding.size() == centroids_.cols(),
          "CentroidClassifier::Nearest: dimension mismatch");
  // One batched scan over the packed centroid matrix, then an in-order
  // strict-< argmin — same winner on ties (lowest index) as the old
  // per-row loop.
  std::vector<double> dists(centroids_.rows());
  simd::SquaredL2DistanceMany(embedding.data(), centroids_.data(),
                              centroids_.rows(), centroids_.cols(),
                              dists.data());
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < dists.size(); ++k) {
    if (dists[k] < best_dist) {
      best_dist = dists[k];
      best = k;
    }
  }
  return {best, std::sqrt(best_dist)};
}

rf::FloorId CentroidClassifier::Predict(
    std::span<const double> embedding) const {
  return labels_[Nearest(embedding).first];
}

}  // namespace grafics::cluster
