#include "embed/negative_sampler.h"

#include <cmath>

#include "common/error.h"

namespace grafics::embed {

double NegativeSamplerSet::NodeWeight(const graph::BipartiteGraph& graph,
                                      graph::NodeId node) {
  if (!graph.IsActive(node) || graph.Degree(node) == 0) return 0.0;
  return std::pow(static_cast<double>(graph.Degree(node)), 0.75);
}

NegativeSamplerSet NegativeSamplerSet::Build(
    const graph::BipartiteGraph& graph) {
  NegativeSamplerSet set;
  std::vector<double> weights;
  std::vector<graph::NodeId> nodes;
  double total = 0.0;
  for (graph::NodeId node = 0; node < graph.NumNodes(); ++node) {
    const double weight = NodeWeight(graph, node);
    set.included_weight_.PushBack(weight);
    if (weight <= 0.0) continue;
    nodes.push_back(node);
    weights.push_back(weight);
    total += weight;
  }
  Require(!weights.empty(), "BuildNegativeSampler: no active nodes");
  auto group = std::make_shared<const Group>(
      Group{AliasSampler(weights), std::move(nodes), total});
  set.groups_.push_back(std::move(group));
  set.removal_epoch_ = graph.removal_epoch();
  return set;
}

NegativeSamplerSet NegativeSamplerSet::Extended(
    const graph::BipartiteGraph& graph,
    std::span<const graph::NodeId> touched) const {
  if (groups_.empty() || removal_epoch_ != graph.removal_epoch() ||
      groups_.size() >= kMaxGroups) {
    return Build(graph);
  }
  NegativeSamplerSet next = *this;  // shares every group + weight chunks
  while (next.included_weight_.size() < graph.NumNodes()) {
    next.included_weight_.PushBack(0.0);
  }
  std::vector<double> corrections;
  std::vector<graph::NodeId> nodes;
  double total = 0.0;
  for (const graph::NodeId node : touched) {
    const double target = NodeWeight(graph, node);
    const double already = next.included_weight_[node];
    if (target < already) return Build(graph);  // degree shrank: exact reset
    const double correction = target - already;
    if (correction <= 0.0) continue;
    nodes.push_back(node);
    corrections.push_back(correction);
    total += correction;
    next.included_weight_.MutableAt(node) = target;
  }
  if (nodes.empty()) return next;
  auto group = std::make_shared<const Group>(
      Group{AliasSampler(corrections), std::move(nodes), total});
  next.groups_.push_back(std::move(group));
  next.RebuildGroupPicker();
  return next;
}

void NegativeSamplerSet::RebuildGroupPicker() {
  std::vector<double> totals;
  totals.reserve(groups_.size());
  for (const std::shared_ptr<const Group>& group : groups_) {
    totals.push_back(group->total_weight);
  }
  group_picker_ = AliasSampler(totals);
}

graph::NodeId NegativeSamplerSet::SampleNode(Rng& rng) const {
  Require(!groups_.empty(), "NegativeSamplerSet::SampleNode: empty set");
  // Single group: one alias draw, bit-identical to the historical flat
  // table. Multiple groups: one extra draw picks the group first.
  const Group& group = groups_.size() == 1
                           ? *groups_.front()
                           : *groups_[group_picker_.Sample(rng)];
  return group.node_of_index[group.alias.Sample(rng)];
}

std::size_t NegativeSamplerSet::num_entries() const {
  std::size_t entries = 0;
  for (const std::shared_ptr<const Group>& group : groups_) {
    entries += group->node_of_index.size();
  }
  return entries;
}

double NegativeSamplerSet::ProbabilityOf(graph::NodeId node) const {
  double total = 0.0;
  for (const std::shared_ptr<const Group>& group : groups_) {
    total += group->total_weight;
  }
  if (total <= 0.0) return 0.0;
  double mass = 0.0;
  for (const std::shared_ptr<const Group>& group : groups_) {
    for (std::size_t i = 0; i < group->node_of_index.size(); ++i) {
      if (group->node_of_index[i] != node) continue;
      mass += group->total_weight * group->alias.ProbabilityOf(i);
    }
  }
  return mass / total;
}

CowBytes NegativeSamplerSet::MemoryBytes() const {
  CowBytes bytes = included_weight_.MemoryBytes();
  for (const std::shared_ptr<const Group>& group : groups_) {
    // Alias table: probability + alias + normalized arrays.
    const std::size_t b =
        group->node_of_index.capacity() * sizeof(graph::NodeId) +
        group->alias.size() * (2 * sizeof(double) + sizeof(std::size_t));
    (group.use_count() > 1 ? bytes.shared_bytes : bytes.owned_bytes) += b;
  }
  return bytes;
}

}  // namespace grafics::embed
