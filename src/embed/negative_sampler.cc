#include "embed/negative_sampler.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/cow_serialize.h"
#include "common/error.h"
#include "common/serialize.h"

namespace grafics::embed {

double NegativeSamplerSet::NodeWeight(const graph::BipartiteGraph& graph,
                                      graph::NodeId node) {
  if (!graph.IsActive(node) || graph.Degree(node) == 0) return 0.0;
  return std::pow(static_cast<double>(graph.Degree(node)), 0.75);
}

NegativeSamplerSet NegativeSamplerSet::Build(
    const graph::BipartiteGraph& graph) {
  NegativeSamplerSet set;
  std::vector<double> weights;
  std::vector<graph::NodeId> nodes;
  double total = 0.0;
  for (graph::NodeId node = 0; node < graph.NumNodes(); ++node) {
    const double weight = NodeWeight(graph, node);
    set.included_weight_.PushBack(weight);
    if (weight <= 0.0) continue;
    nodes.push_back(node);
    weights.push_back(weight);
    total += weight;
  }
  Require(!weights.empty(), "BuildNegativeSampler: no active nodes");
  auto group = std::make_shared<const Group>(
      Group{AliasSampler(weights), std::move(nodes), total});
  set.groups_.push_back(std::move(group));
  set.removal_epoch_ = graph.removal_epoch();
  return set;
}

NegativeSamplerSet NegativeSamplerSet::Extended(
    const graph::BipartiteGraph& graph,
    std::span<const graph::NodeId> touched) const {
  if (groups_.empty() || removal_epoch_ != graph.removal_epoch() ||
      groups_.size() >= kMaxGroups) {
    return Build(graph);
  }
  NegativeSamplerSet next = *this;  // shares every group + weight chunks
  while (next.included_weight_.size() < graph.NumNodes()) {
    next.included_weight_.PushBack(0.0);
  }
  std::vector<double> corrections;
  std::vector<graph::NodeId> nodes;
  double total = 0.0;
  for (const graph::NodeId node : touched) {
    const double target = NodeWeight(graph, node);
    const double already = next.included_weight_[node];
    if (target < already) return Build(graph);  // degree shrank: exact reset
    const double correction = target - already;
    if (correction <= 0.0) continue;
    nodes.push_back(node);
    corrections.push_back(correction);
    total += correction;
    next.included_weight_.MutableAt(node) = target;
  }
  if (nodes.empty()) return next;
  auto group = std::make_shared<const Group>(
      Group{AliasSampler(corrections), std::move(nodes), total});
  next.groups_.push_back(std::move(group));
  next.RebuildGroupPicker();
  return next;
}

void NegativeSamplerSet::RebuildGroupPicker() {
  std::vector<double> totals;
  totals.reserve(groups_.size());
  for (const std::shared_ptr<const Group>& group : groups_) {
    totals.push_back(group->total_weight);
  }
  group_picker_ = AliasSampler(totals);
}

graph::NodeId NegativeSamplerSet::SampleNode(Rng& rng) const {
  Require(!groups_.empty(), "NegativeSamplerSet::SampleNode: empty set");
  // Single group: one alias draw, bit-identical to the historical flat
  // table. Multiple groups: one extra draw picks the group first.
  const Group& group = groups_.size() == 1
                           ? *groups_.front()
                           : *groups_[group_picker_.Sample(rng)];
  return group.node_of_index[group.alias.Sample(rng)];
}

std::size_t NegativeSamplerSet::num_entries() const {
  std::size_t entries = 0;
  for (const std::shared_ptr<const Group>& group : groups_) {
    entries += group->node_of_index.size();
  }
  return entries;
}

double NegativeSamplerSet::ProbabilityOf(graph::NodeId node) const {
  double total = 0.0;
  for (const std::shared_ptr<const Group>& group : groups_) {
    total += group->total_weight;
  }
  if (total <= 0.0) return 0.0;
  double mass = 0.0;
  for (const std::shared_ptr<const Group>& group : groups_) {
    for (std::size_t i = 0; i < group->node_of_index.size(); ++i) {
      if (group->node_of_index[i] != node) continue;
      mass += group->total_weight * group->alias.ProbabilityOf(i);
    }
  }
  return mass / total;
}

namespace {

constexpr char kSamplerMagic[4] = {'G', 'N', 'S', 'S'};
constexpr std::uint32_t kSamplerVersion = 1;

}  // namespace

void NegativeSamplerSet::Save(std::ostream& out) const {
  WriteHeader(out, kSamplerMagic, kSamplerVersion);
  WriteU64(out, removal_epoch_);
  WriteU32(out, static_cast<std::uint32_t>(groups_.size()));
  for (const std::shared_ptr<const Group>& group : groups_) {
    group->alias.Save(out);
    WriteU64(out, group->node_of_index.size());
    for (const graph::NodeId node : group->node_of_index) WriteU32(out, node);
    WriteDouble(out, group->total_weight);
  }
  WriteU64(out, included_weight_.size());
  for (std::size_t i = 0; i < included_weight_.size(); ++i) {
    WriteDouble(out, included_weight_[i]);
  }
}

NegativeSamplerSet NegativeSamplerSet::Load(std::istream& in) {
  CheckHeader(in, kSamplerMagic, kSamplerVersion);
  NegativeSamplerSet set;
  set.removal_epoch_ = ReadU64(in);
  const std::uint32_t num_groups = ReadU32(in);
  Require(num_groups <= kMaxGroups,
          "NegativeSamplerSet::Load: too many groups");
  for (std::uint32_t g = 0; g < num_groups; ++g) {
    Group group;
    group.alias = AliasSampler::Load(in);
    const std::uint64_t nodes = ReadU64(in);
    Require(nodes == group.alias.size(),
            "NegativeSamplerSet::Load: group size mismatch");
    group.node_of_index.resize(nodes);
    for (graph::NodeId& node : group.node_of_index) node = ReadU32(in);
    group.total_weight = ReadDouble(in);
    set.groups_.push_back(std::make_shared<const Group>(std::move(group)));
  }
  const std::uint64_t weights = ReadU64(in);
  for (std::uint64_t i = 0; i < weights; ++i) {
    set.included_weight_.PushBack(ReadDouble(in));
  }
  if (set.groups_.size() > 1) set.RebuildGroupPicker();
  return set;
}

void NegativeSamplerSet::SaveDelta(std::ostream& out,
                                   const NegativeSamplerSet& base) const {
  WriteU64(out, removal_epoch_);
  // Extended() only ever appends groups, so the groups shared with the base
  // form a prefix; a compaction rebuild shares none (prefix 0, full write).
  std::size_t prefix = 0;
  while (prefix < groups_.size() && prefix < base.groups_.size() &&
         groups_[prefix] == base.groups_[prefix]) {
    ++prefix;
  }
  WriteU32(out, static_cast<std::uint32_t>(groups_.size()));
  WriteU32(out, static_cast<std::uint32_t>(prefix));
  for (std::size_t g = prefix; g < groups_.size(); ++g) {
    const Group& group = *groups_[g];
    group.alias.Save(out);
    WriteU64(out, group.node_of_index.size());
    for (const graph::NodeId node : group.node_of_index) WriteU32(out, node);
    WriteDouble(out, group.total_weight);
  }
  WriteCowVectorDelta(out, included_weight_, base.included_weight_,
                      [](std::ostream& o, double w) { WriteDouble(o, w); });
}

void NegativeSamplerSet::ApplyDelta(std::istream& in) {
  removal_epoch_ = ReadU64(in);
  const std::uint32_t total_groups = ReadU32(in);
  const std::uint32_t prefix = ReadU32(in);
  Require(total_groups <= kMaxGroups && prefix <= total_groups &&
              prefix <= groups_.size(),
          "NegativeSamplerSet::ApplyDelta: group prefix mismatch");
  groups_.resize(prefix);
  for (std::uint32_t g = prefix; g < total_groups; ++g) {
    Group group;
    group.alias = AliasSampler::Load(in);
    const std::uint64_t nodes = ReadU64(in);
    Require(nodes == group.alias.size(),
            "NegativeSamplerSet::ApplyDelta: group size mismatch");
    group.node_of_index.resize(nodes);
    for (graph::NodeId& node : group.node_of_index) node = ReadU32(in);
    group.total_weight = ReadDouble(in);
    groups_.push_back(std::make_shared<const Group>(std::move(group)));
  }
  ApplyCowVectorDelta(in, included_weight_,
                      [](std::istream& i) { return ReadDouble(i); });
  if (groups_.size() > 1) {
    RebuildGroupPicker();
  } else {
    group_picker_ = AliasSampler();
  }
}

CowBytes NegativeSamplerSet::MemoryBytes() const {
  CowBytes bytes = included_weight_.MemoryBytes();
  for (const std::shared_ptr<const Group>& group : groups_) {
    // Alias table: probability + alias + normalized arrays.
    const std::size_t b =
        group->node_of_index.capacity() * sizeof(graph::NodeId) +
        group->alias.size() * (2 * sizeof(double) + sizeof(std::size_t));
    (group.use_count() > 1 ? bytes.shared_bytes : bytes.owned_bytes) += b;
  }
  return bytes;
}

}  // namespace grafics::embed
