#include "embed/random_walk.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/alias_sampler.h"
#include "common/error.h"
#include "common/matrix.h"
#include "embed/trainer.h"

namespace grafics::embed {

namespace {

/// Per-node alias tables for weighted neighbor transitions.
std::vector<AliasSampler> BuildTransitionTables(
    const graph::BipartiteGraph& graph) {
  std::vector<AliasSampler> tables(graph.NumNodes());
  for (graph::NodeId node = 0; node < graph.NumNodes(); ++node) {
    const auto neighbors = graph.NeighborsOf(node);
    if (neighbors.empty()) continue;
    std::vector<double> weights;
    weights.reserve(neighbors.size());
    for (const auto& nb : neighbors) weights.push_back(nb.weight);
    tables[node] = AliasSampler(weights);
  }
  return tables;
}

}  // namespace

EmbeddingStore TrainRandomWalkEmbeddings(const graph::BipartiteGraph& graph,
                                         const RandomWalkConfig& config) {
  Require(graph.NumNodes() > 0, "TrainRandomWalkEmbeddings: empty graph");
  Require(config.dim > 0 && config.walk_length >= 2 && config.window >= 1,
          "TrainRandomWalkEmbeddings: bad config");

  Rng rng(config.seed);
  EmbeddingStore store(graph.NumNodes(), config.dim, rng);

  const std::vector<AliasSampler> transitions = BuildTransitionTables(graph);
  std::vector<graph::NodeId> node_of_index;
  const AliasSampler negative_sampler =
      BuildNegativeSampler(graph, &node_of_index);

  // Start nodes: every active node with at least one edge, repeated
  // walks_per_node times in shuffled order per epoch (DeepWalk's schedule).
  std::vector<graph::NodeId> starts;
  for (graph::NodeId node = 0; node < graph.NumNodes(); ++node) {
    if (graph.IsActive(node) && graph.Degree(node) > 0) {
      starts.push_back(node);
    }
  }
  Require(!starts.empty(), "TrainRandomWalkEmbeddings: no connected nodes");

  const std::size_t total_walks = starts.size() * config.walks_per_node;
  std::size_t walk_counter = 0;
  std::vector<graph::NodeId> walk(config.walk_length);
  std::vector<double> grad(config.dim, 0.0);

  for (std::size_t epoch = 0; epoch < config.walks_per_node; ++epoch) {
    rng.Shuffle(starts);
    for (const graph::NodeId start : starts) {
      // Linearly decayed learning rate over the whole schedule.
      const double progress = static_cast<double>(walk_counter++) /
                              static_cast<double>(total_walks);
      const double lr =
          std::max(config.initial_learning_rate *
                       config.final_learning_rate_fraction,
                   config.initial_learning_rate * (1.0 - progress));

      // --- generate one truncated weighted random walk -------------------
      walk.clear();
      graph::NodeId current = start;
      walk.push_back(current);
      while (walk.size() < config.walk_length) {
        const auto neighbors = graph.NeighborsOf(current);
        if (neighbors.empty()) break;
        current = neighbors[transitions[current].Sample(rng)].node;
        walk.push_back(current);
      }

      // --- skip-gram with negative sampling over the walk ----------------
      for (std::size_t center = 0; center < walk.size(); ++center) {
        const std::size_t lo =
            center >= config.window ? center - config.window : 0;
        const std::size_t hi =
            std::min(walk.size() - 1, center + config.window);
        const std::span<double> center_ego = store.Ego(walk[center]);
        for (std::size_t pos = lo; pos <= hi; ++pos) {
          if (pos == center) continue;
          const graph::NodeId target = walk[pos];
          // Positive pair.
          {
            const std::span<double> out = store.Context(target);
            const double g = (1.0 - Sigmoid(Dot(out, center_ego))) * lr;
            Axpy(g, out, grad);
            Axpy(g, center_ego, out);
          }
          // Negatives.
          for (std::size_t k = 0; k < config.negative_samples; ++k) {
            const graph::NodeId z =
                node_of_index[negative_sampler.Sample(rng)];
            if (z == target) continue;
            const std::span<double> out = store.Context(z);
            const double g = -Sigmoid(Dot(out, center_ego)) * lr;
            Axpy(g, out, grad);
            Axpy(g, center_ego, out);
          }
          Axpy(1.0, grad, center_ego);
          std::fill(grad.begin(), grad.end(), 0.0);
        }
      }
    }
  }
  return store;
}

}  // namespace grafics::embed
