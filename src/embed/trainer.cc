#include "embed/trainer.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/error.h"
#include "common/matrix.h"
#include "common/simd.h"

namespace grafics::embed {

namespace {

/// One negative-sampling SGD step for a (source, target) pair against a
/// target table (ego or context), addressed through `target_row` so the
/// chunked EmbeddingStore needs no dense-matrix view. Updates the
/// target-table rows in place, accumulates the source gradient into
/// `grad_src`.
template <typename MutableRowFn>
void SampledStep(std::span<const double> src, std::span<double> grad_src,
                 MutableRowFn&& target_row, graph::NodeId target,
                 const AliasSampler& negative_sampler,
                 std::span<const graph::NodeId> node_of_index,
                 std::size_t negatives, double lr, bool update_targets,
                 Rng& rng) {
  // Hottest loop in the trainer: go straight to the simd kernels — every row
  // here is `dim` long by EmbeddingStore construction, so the span-level
  // dimension re-checks in the matrix.cc wrappers would be pure overhead.
  const std::size_t dim = src.size();
  // Positive sample: label 1.
  {
    const std::span<double> tgt = target_row(target);
    const double g =
        (1.0 - Sigmoid(simd::Dot(tgt.data(), src.data(), dim))) * lr;
    simd::Axpy(g, tgt.data(), grad_src.data(), dim);
    if (update_targets) simd::Axpy(g, src.data(), tgt.data(), dim);
  }
  // K negative samples: label 0.
  for (std::size_t k = 0; k < negatives; ++k) {
    const graph::NodeId z = node_of_index[negative_sampler.Sample(rng)];
    if (z == target) continue;
    const std::span<double> neg = target_row(z);
    const double g = -Sigmoid(simd::Dot(neg.data(), src.data(), dim)) * lr;
    simd::Axpy(g, neg.data(), grad_src.data(), dim);
    if (update_targets) simd::Axpy(g, src.data(), neg.data(), dim);
  }
}

/// Applies `grad` to `dst` with per-coordinate dropout.
void ApplyGradient(std::span<double> dst, std::span<double> grad,
                   double dropout, Rng& rng) {
  if (dropout <= 0.0) {
    // Fast path (the whole online-refinement loop runs with dropout=0):
    // `1.0 * g == g` exactly, so one axpy is bit-identical to the per-
    // coordinate loop below, and the short-circuit above means the RNG
    // stream is untouched either way.
    simd::Axpy(1.0, grad.data(), dst.data(), dst.size());
  } else {
    for (std::size_t c = 0; c < dst.size(); ++c) {
      if (rng.NextDouble() < dropout) continue;
      dst[c] += grad[c];
    }
  }
  std::fill(grad.begin(), grad.end(), 0.0);
}

struct EdgeTables {
  std::vector<graph::Edge> edges;
  AliasSampler edge_sampler;
  AliasSampler negative_sampler;
  std::vector<graph::NodeId> node_of_index;
};

EdgeTables BuildTables(const graph::BipartiteGraph& graph) {
  EdgeTables t;
  t.edges = graph.Edges();
  Require(!t.edges.empty(), "TrainEmbeddings: graph has no edges");
  std::vector<double> weights;
  weights.reserve(t.edges.size());
  for (const graph::Edge& e : t.edges) weights.push_back(e.weight);
  t.edge_sampler = AliasSampler(weights);
  t.negative_sampler = BuildNegativeSampler(graph, &t.node_of_index);
  return t;
}

/// The per-sample update dispatch shared by offline training and tests.
/// (i, j) is a directed edge draw; mutates `store` rows for i, j and
/// sampled negatives.
void TrainStep(const EdgeTables& tables, const TrainerConfig& config,
               EmbeddingStore& store, graph::NodeId i, graph::NodeId j,
               double lr, std::span<double> grad, Rng& rng) {
  const auto ego = [&store](graph::NodeId n) { return store.Ego(n); };
  const auto context = [&store](graph::NodeId n) { return store.Context(n); };
  switch (config.objective) {
    case Objective::kLineFirstOrder:
      SampledStep(store.Ego(i), grad, ego, j, tables.negative_sampler,
                  tables.node_of_index, config.negative_samples, lr,
                  /*update_targets=*/true, rng);
      ApplyGradient(store.Ego(i), grad, config.dropout, rng);
      break;
    case Objective::kLineSecondOrder:
      SampledStep(store.Ego(i), grad, context, j, tables.negative_sampler,
                  tables.node_of_index, config.negative_samples, lr,
                  /*update_targets=*/true, rng);
      ApplyGradient(store.Ego(i), grad, config.dropout, rng);
      break;
    case Objective::kLineBothOrders:
      SampledStep(store.Ego(i), grad, ego, j, tables.negative_sampler,
                  tables.node_of_index, config.negative_samples, lr,
                  /*update_targets=*/true, rng);
      ApplyGradient(store.Ego(i), grad, config.dropout, rng);
      SampledStep(store.Ego(i), grad, context, j, tables.negative_sampler,
                  tables.node_of_index, config.negative_samples, lr,
                  /*update_targets=*/true, rng);
      ApplyGradient(store.Ego(i), grad, config.dropout, rng);
      break;
    case Objective::kELine:
      // Second-order term: context of j given ego of i (Eq. 5).
      SampledStep(store.Ego(i), grad, context, j, tables.negative_sampler,
                  tables.node_of_index, config.negative_samples, lr,
                  /*update_targets=*/true, rng);
      ApplyGradient(store.Ego(i), grad, config.dropout, rng);
      // Mirrored term: ego of j given context of i (Eq. 8). This is what
      // propagates similarity beyond one-hop neighborhoods.
      SampledStep(store.Context(i), grad, ego, j, tables.negative_sampler,
                  tables.node_of_index, config.negative_samples, lr,
                  /*update_targets=*/true, rng);
      ApplyGradient(store.Context(i), grad, config.dropout, rng);
      break;
  }
}

}  // namespace

AliasSampler BuildNegativeSampler(const graph::BipartiteGraph& graph,
                                  std::vector<graph::NodeId>* node_of_index) {
  Require(node_of_index != nullptr,
          "BuildNegativeSampler: node_of_index must not be null");
  node_of_index->clear();
  std::vector<double> weights;
  for (graph::NodeId node = 0; node < graph.NumNodes(); ++node) {
    if (!graph.IsActive(node) || graph.Degree(node) == 0) continue;
    node_of_index->push_back(node);
    weights.push_back(
        std::pow(static_cast<double>(graph.Degree(node)), 0.75));
  }
  Require(!weights.empty(), "BuildNegativeSampler: no active nodes");
  return AliasSampler(weights);
}

EmbeddingStore TrainEmbeddings(const graph::BipartiteGraph& graph,
                               const TrainerConfig& config) {
  Require(config.dim > 0, "TrainEmbeddings: dim must be positive");
  Require(config.num_threads >= 1, "TrainEmbeddings: need >= 1 thread");

  EdgeTables tables = BuildTables(graph);
  Rng init_rng(config.seed);
  EmbeddingStore store(graph.NumNodes(), config.dim, init_rng);

  const std::size_t total_samples =
      config.samples_per_edge * graph.NumEdges();
  const double lr0 = config.initial_learning_rate;
  const double lr_min = lr0 * config.final_learning_rate_fraction;

  auto worker = [&](std::size_t worker_index, std::size_t samples) {
    Rng rng(config.seed ^ (0xABCD0000ULL + worker_index));
    std::vector<double> grad(config.dim, 0.0);
    for (std::size_t s = 0; s < samples; ++s) {
      // Linear learning-rate decay over this worker's share; workers run in
      // lockstep statistically so the global schedule is preserved.
      const double progress =
          static_cast<double>(s) / static_cast<double>(samples);
      const double lr = std::max(lr_min, lr0 * (1.0 - progress));
      const graph::Edge& e = tables.edges[tables.edge_sampler.Sample(rng)];
      // Undirected edge: pick a direction uniformly.
      graph::NodeId i = e.record;
      graph::NodeId j = e.mac;
      if (rng.Bernoulli(0.5)) std::swap(i, j);
      TrainStep(tables, config, store, i, j, lr, grad, rng);
    }
  };

  if (config.num_threads == 1) {
    worker(0, total_samples);
  } else {
    // Hogwild-style lock-free parallel SGD: sparse updates rarely collide.
    std::vector<std::thread> threads;
    threads.reserve(config.num_threads);
    const std::size_t share = total_samples / config.num_threads;
    for (std::size_t t = 0; t < config.num_threads; ++t) {
      threads.emplace_back(worker, t, share);
    }
    for (std::thread& t : threads) t.join();
  }
  return store;
}

void RefineNewNodes(const graph::BipartiteGraph& graph,
                    std::span<const graph::NodeId> new_nodes,
                    EmbeddingStore& store, const TrainerConfig& config,
                    std::size_t iterations) {
  const NegativeSamplerSet negatives = NegativeSamplerSet::Build(graph);
  RefineNewNodes(graph, new_nodes, store, config, iterations, negatives);
}

namespace {

/// One frozen-base negative-sampling SGD step: like SampledStep with
/// update_targets=false, but target rows are fetched through `target_row`
/// so the same code serves the shared EmbeddingStore (batch Update) and the
/// per-context EmbeddingOverlay (snapshot-isolated serving). The arithmetic
/// and RNG sequence match SampledStep exactly.
template <typename TargetRowFn>
void FrozenSampledStep(std::span<const double> src, std::span<double> grad,
                       TargetRowFn&& target_row, graph::NodeId target,
                       const NegativeSamplerSet& negative_sampler,
                       std::size_t negatives, double lr, Rng& rng) {
  const std::size_t dim = src.size();
  // Positive sample: label 1.
  {
    const std::span<const double> tgt = target_row(target);
    const double g =
        (1.0 - Sigmoid(simd::Dot(tgt.data(), src.data(), dim))) * lr;
    simd::Axpy(g, tgt.data(), grad.data(), dim);
  }
  // K negative samples: label 0.
  for (std::size_t k = 0; k < negatives; ++k) {
    const graph::NodeId z = negative_sampler.SampleNode(rng);
    if (z == target) continue;
    const std::span<const double> neg = target_row(z);
    const double g = -Sigmoid(simd::Dot(neg.data(), src.data(), dim)) * lr;
    simd::Axpy(g, neg.data(), grad.data(), dim);
  }
}

/// Shared implementation of both RefineNewNodes overloads. `Graph` is
/// BipartiteGraph or GraphOverlay; `Store` is EmbeddingStore or
/// EmbeddingOverlay. Only `new_nodes` rows of `store` are written.
template <typename Graph, typename Store>
void RefineNewNodesImpl(const Graph& graph,
                        std::span<const graph::NodeId> new_nodes,
                        Store& store, const TrainerConfig& config,
                        std::size_t iterations,
                        const NegativeSamplerSet& negatives) {
  Require(store.num_nodes() == graph.NumNodes(),
          "RefineNewNodes: store/graph size mismatch (call Grow first)");
  const Store& reads = store;  // const reads may touch any (frozen) row
  const auto ego_row = [&reads](graph::NodeId n) { return reads.Ego(n); };
  const auto context_row = [&reads](graph::NodeId n) {
    return reads.Context(n);
  };
  Rng rng(config.seed ^ 0x5EEDFACEULL);
  std::vector<double> grad(config.dim, 0.0);

  for (const graph::NodeId node : new_nodes) {
    const std::span<const graph::Neighbor> neighbors =
        graph.NeighborsOf(node);
    if (neighbors.empty()) continue;  // isolated: keep random init

    // Warm start: weighted average of neighbor embeddings places the node
    // inside its local neighborhood before SGD refinement.
    const std::span<double> node_ego = store.Ego(node);
    const std::span<double> node_context = store.Context(node);
    std::fill(node_ego.begin(), node_ego.end(), 0.0);
    std::fill(node_context.begin(), node_context.end(), 0.0);
    double weight_sum = 0.0;
    for (const graph::Neighbor& nb : neighbors) {
      Axpy(nb.weight, reads.Ego(nb.node), node_ego);
      Axpy(nb.weight, reads.Context(nb.node), node_context);
      weight_sum += nb.weight;
    }
    Scale(node_ego, 1.0 / weight_sum);
    Scale(node_context, 1.0 / weight_sum);

    // Alias table over this node's incident edges.
    std::vector<double> weights;
    weights.reserve(neighbors.size());
    for (const graph::Neighbor& nb : neighbors) weights.push_back(nb.weight);
    const AliasSampler local_edges(weights);

    const double lr0 = config.initial_learning_rate;
    for (std::size_t s = 0; s < iterations; ++s) {
      const double lr = std::max(
          lr0 * config.final_learning_rate_fraction,
          lr0 * (1.0 - static_cast<double>(s) /
                           static_cast<double>(iterations)));
      const graph::Neighbor& nb = neighbors[local_edges.Sample(rng)];
      // Only the new node's rows move: the frozen step never writes target
      // rows, matching Sec. V-A's frozen base model.
      FrozenSampledStep(reads.Ego(node), grad, context_row, nb.node,
                        negatives, config.negative_samples, lr, rng);
      ApplyGradient(store.Ego(node), grad, /*dropout=*/0.0, rng);
      if (config.objective == Objective::kELine) {
        FrozenSampledStep(reads.Context(node), grad, ego_row, nb.node,
                          negatives, config.negative_samples, lr, rng);
        ApplyGradient(store.Context(node), grad, /*dropout=*/0.0, rng);
      }
    }
  }
}

}  // namespace

void RefineNewNodes(const graph::BipartiteGraph& graph,
                    std::span<const graph::NodeId> new_nodes,
                    EmbeddingStore& store, const TrainerConfig& config,
                    std::size_t iterations,
                    const NegativeSamplerSet& negatives) {
  RefineNewNodesImpl(graph, new_nodes, store, config, iterations, negatives);
}

void RefineNewNodes(const graph::GraphOverlay& graph,
                    std::span<const graph::NodeId> new_nodes,
                    EmbeddingOverlay& store, const TrainerConfig& config,
                    std::size_t iterations,
                    const NegativeSamplerSet& negatives) {
  RefineNewNodesImpl(graph, new_nodes, store, config, iterations, negatives);
}

}  // namespace grafics::embed
