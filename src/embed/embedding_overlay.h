// Copy-on-write extension of a frozen EmbeddingStore.
//
// The online-refinement path (paper Sec. V-A) optimizes only the rows of
// freshly added nodes while every base embedding stays frozen. Growing the
// shared EmbeddingStore per query both mutates the trained model and copies
// the full tables (EmbeddingStore::Grow reallocates). EmbeddingOverlay keeps
// the base store immutable and stores scratch rows (node ids >=
// base.num_nodes()) in small flat buffers that are reset — capacity kept —
// between queries.
//
// The base store must outlive the overlay and must not grow while the
// overlay is alive.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "embed/embedding_store.h"
#include "graph/bipartite_graph.h"

namespace grafics::embed {

class EmbeddingOverlay {
 public:
  explicit EmbeddingOverlay(const EmbeddingStore& base);

  std::size_t dim() const { return dim_; }
  std::size_t base_rows() const { return base_rows_; }
  std::size_t scratch_rows() const { return scratch_rows_; }
  std::size_t num_nodes() const { return base_rows_ + scratch_rows_; }

  /// Appends `count` scratch rows initialized exactly like
  /// EmbeddingStore::Grow (ego uniform in [-0.5, 0.5]/dim, context zero).
  void Grow(std::size_t count, Rng& rng);

  /// Read access to any node: base rows come from the frozen store,
  /// scratch rows from the overlay.
  std::span<const double> Ego(graph::NodeId node) const;
  std::span<const double> Context(graph::NodeId node) const;

  /// Write access is restricted to scratch rows — the base model is frozen.
  std::span<double> Ego(graph::NodeId node);
  std::span<double> Context(graph::NodeId node);

  /// Drops all scratch rows, keeping buffer capacity for reuse.
  void Reset() { scratch_rows_ = 0; }

 private:
  std::span<double> ScratchRow(std::vector<double>& table,
                               graph::NodeId node, const char* what);

  const EmbeddingStore* base_;
  std::size_t base_rows_;
  std::size_t dim_;
  std::size_t scratch_rows_ = 0;
  std::vector<double> scratch_ego_;
  std::vector<double> scratch_context_;
};

}  // namespace grafics::embed
