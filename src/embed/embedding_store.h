// Storage for the two per-node embedding tables LINE/E-LINE learn.
//
// Every node i has an 'ego' embedding u_i (the representation used
// downstream) and a 'context' embedding u'_i (encoding its neighborhood).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>

#include "common/matrix.h"
#include "common/rng.h"
#include "graph/bipartite_graph.h"

namespace grafics::embed {

class EmbeddingStore {
 public:
  EmbeddingStore() = default;

  /// Allocates tables for `num_nodes` nodes of dimension `dim`.
  /// Ego embeddings are initialized uniform in [-0.5, 0.5]/dim (the LINE
  /// reference initialization); context embeddings start at zero.
  EmbeddingStore(std::size_t num_nodes, std::size_t dim, Rng& rng);

  std::size_t num_nodes() const { return ego_.rows(); }
  std::size_t dim() const { return ego_.cols(); }

  std::span<double> Ego(graph::NodeId node) { return ego_.Row(node); }
  std::span<const double> Ego(graph::NodeId node) const {
    return ego_.Row(node);
  }
  std::span<double> Context(graph::NodeId node) { return context_.Row(node); }
  std::span<const double> Context(graph::NodeId node) const {
    return context_.Row(node);
  }

  /// Appends `count` freshly-initialized nodes (online inference grows the
  /// graph). Existing rows are preserved.
  void Grow(std::size_t count, Rng& rng);

  const Matrix& ego_matrix() const { return ego_; }
  const Matrix& context_matrix() const { return context_; }
  Matrix& mutable_ego_matrix() { return ego_; }
  Matrix& mutable_context_matrix() { return context_; }

  /// Binary (de)serialization of both tables.
  void Save(std::ostream& out) const;
  static EmbeddingStore Load(std::istream& in);

  bool operator==(const EmbeddingStore&) const = default;

 private:
  void InitRow(std::size_t row, Rng& rng);

  Matrix ego_;
  Matrix context_;
};

}  // namespace grafics::embed
