// Storage for the two per-node embedding tables LINE/E-LINE learn.
//
// Every node i has an 'ego' embedding u_i (the representation used
// downstream) and a 'context' embedding u'_i (encoding its neighborhood).
//
// Rows live in copy-on-write chunks (common/cow.h): copying a store shares
// every chunk with the copy, Grow appends rows without touching existing
// chunks, and writing a row copies only that row's chunk. This is what makes
// an ingest fold-in O(new rows) instead of O(tables) — the base model's rows
// are frozen during online refinement (Sec. V-A), so a fork never copies
// them at all.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>

#include "common/cow.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "graph/bipartite_graph.h"

namespace grafics::embed {

class EmbeddingStore {
 public:
  EmbeddingStore() = default;

  /// Allocates tables for `num_nodes` nodes of dimension `dim`.
  /// Ego embeddings are initialized uniform in [-0.5, 0.5]/dim (the LINE
  /// reference initialization); context embeddings start at zero.
  EmbeddingStore(std::size_t num_nodes, std::size_t dim, Rng& rng);

  std::size_t num_nodes() const { return ego_.rows(); }
  std::size_t dim() const { return ego_.cols(); }

  /// Mutable row access copies the row's chunk when it is shared with
  /// another snapshot (training and refinement own their chunks, so the
  /// hot path never copies).
  std::span<double> Ego(graph::NodeId node) { return ego_.MutableRow(node); }
  std::span<const double> Ego(graph::NodeId node) const {
    return ego_.Row(node);
  }
  std::span<double> Context(graph::NodeId node) {
    return context_.MutableRow(node);
  }
  std::span<const double> Context(graph::NodeId node) const {
    return context_.Row(node);
  }

  /// Appends `count` freshly-initialized nodes (online inference grows the
  /// graph). Existing rows are preserved — and, since the tables are
  /// chunked, shared untouched with any fork of this store.
  void Grow(std::size_t count, Rng& rng);

  /// Dense materializations of the tables (diagnostics, tests). O(size).
  Matrix ego_matrix() const { return ego_.ToMatrix(); }
  Matrix context_matrix() const { return context_.ToMatrix(); }

  /// Chunk-granular heap accounting, split shared vs owned.
  CowBytes MemoryBytes() const;

  /// Binary (de)serialization of both tables.
  void Save(std::ostream& out) const;
  static EmbeddingStore Load(std::istream& in);

  /// Delta against `base` (a store this one was forked from): only the row
  /// chunks this store owns relative to the base are written — O(owned
  /// chunks), not O(tables). ApplyDelta mutates a store loaded from the
  /// base's artifact into this store's exact state.
  void SaveDelta(std::ostream& out, const EmbeddingStore& base) const;
  void ApplyDelta(std::istream& in);

  /// Deep value equality (chunk sharing is invisible to ==).
  bool operator==(const EmbeddingStore& other) const {
    return ego_ == other.ego_ && context_ == other.context_;
  }

 private:
  void InitRow(std::size_t row, Rng& rng);

  CowMatrix ego_;
  CowMatrix context_;
};

}  // namespace grafics::embed
