// DeepWalk-style random-walk embedding over the bipartite graph.
//
// An ablation embedder: truncated weighted random walks generate node
// sequences, and a skip-gram objective with negative sampling learns ego
// embeddings from window co-occurrences. Compared against E-LINE by the
// ablation bench — the paper argues (Sec. IV-B) that explicit multi-hop
// context modeling suits the record/MAC bipartite structure; DeepWalk is
// the classic implicit-multi-hop alternative.
#pragma once

#include <cstdint>

#include "embed/embedding_store.h"
#include "graph/bipartite_graph.h"

namespace grafics::embed {

struct RandomWalkConfig {
  std::size_t dim = 8;
  std::size_t walks_per_node = 10;
  std::size_t walk_length = 20;
  std::size_t window = 4;           // skip-gram context window
  std::size_t negative_samples = 5;
  double initial_learning_rate = 0.01;
  double final_learning_rate_fraction = 1e-4;
  std::uint64_t seed = 1;
};

/// Trains embeddings for every node of `graph` via random walks +
/// skip-gram. The returned store uses the ego table for node
/// representations; the context table holds the skip-gram output vectors.
EmbeddingStore TrainRandomWalkEmbeddings(const graph::BipartiteGraph& graph,
                                         const RandomWalkConfig& config);

}  // namespace grafics::embed
