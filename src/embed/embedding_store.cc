#include "embed/embedding_store.h"

#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/serialize.h"

namespace grafics::embed {

EmbeddingStore::EmbeddingStore(std::size_t num_nodes, std::size_t dim,
                               Rng& rng)
    : ego_(num_nodes, dim), context_(num_nodes, dim) {
  Require(dim > 0, "EmbeddingStore: dim must be positive");
  for (std::size_t row = 0; row < num_nodes; ++row) InitRow(row, rng);
}

void EmbeddingStore::InitRow(std::size_t row, Rng& rng) {
  const double scale = 0.5 / static_cast<double>(dim());
  for (std::size_t c = 0; c < dim(); ++c) {
    ego_(row, c) = rng.Uniform(-scale, scale);
    context_(row, c) = 0.0;
  }
}

namespace {
constexpr char kStoreMagic[4] = {'G', 'E', 'M', 'B'};
constexpr std::uint32_t kStoreVersion = 1;
}  // namespace

void EmbeddingStore::Save(std::ostream& out) const {
  WriteHeader(out, kStoreMagic, kStoreVersion);
  WriteMatrix(out, ego_);
  WriteMatrix(out, context_);
}

EmbeddingStore EmbeddingStore::Load(std::istream& in) {
  CheckHeader(in, kStoreMagic, kStoreVersion);
  EmbeddingStore store;
  store.ego_ = ReadMatrix(in);
  store.context_ = ReadMatrix(in);
  Require(store.ego_.rows() == store.context_.rows() &&
              store.ego_.cols() == store.context_.cols(),
          "EmbeddingStore::Load: table shape mismatch");
  return store;
}

void EmbeddingStore::Grow(std::size_t count, Rng& rng) {
  const std::size_t old_rows = ego_.rows();
  Matrix new_ego(old_rows + count, dim());
  Matrix new_context(old_rows + count, dim());
  for (std::size_t r = 0; r < old_rows; ++r) {
    for (std::size_t c = 0; c < dim(); ++c) {
      new_ego(r, c) = ego_(r, c);
      new_context(r, c) = context_(r, c);
    }
  }
  ego_ = std::move(new_ego);
  context_ = std::move(new_context);
  for (std::size_t r = old_rows; r < ego_.rows(); ++r) InitRow(r, rng);
}

}  // namespace grafics::embed
