#include "embed/embedding_store.h"

#include <istream>
#include <ostream>

#include "common/cow_serialize.h"
#include "common/error.h"
#include "common/serialize.h"

namespace grafics::embed {

EmbeddingStore::EmbeddingStore(std::size_t num_nodes, std::size_t dim,
                               Rng& rng)
    : ego_(dim), context_(dim) {
  Require(dim > 0, "EmbeddingStore: dim must be positive");
  if (num_nodes > 0) {
    ego_.AppendRows(num_nodes);
    context_.AppendRows(num_nodes);
  }
  for (std::size_t row = 0; row < num_nodes; ++row) InitRow(row, rng);
}

void EmbeddingStore::InitRow(std::size_t row, Rng& rng) {
  const double scale = 0.5 / static_cast<double>(dim());
  const std::span<double> ego = ego_.MutableRow(row);
  const std::span<double> context = context_.MutableRow(row);
  for (std::size_t c = 0; c < dim(); ++c) {
    ego[c] = rng.Uniform(-scale, scale);
    context[c] = 0.0;
  }
}

namespace {
constexpr char kStoreMagic[4] = {'G', 'E', 'M', 'B'};
constexpr std::uint32_t kStoreVersion = 1;
}  // namespace

void EmbeddingStore::Save(std::ostream& out) const {
  WriteHeader(out, kStoreMagic, kStoreVersion);
  WriteMatrix(out, ego_.ToMatrix());
  WriteMatrix(out, context_.ToMatrix());
}

EmbeddingStore EmbeddingStore::Load(std::istream& in) {
  CheckHeader(in, kStoreMagic, kStoreVersion);
  EmbeddingStore store;
  const Matrix ego = ReadMatrix(in);
  const Matrix context = ReadMatrix(in);
  Require(ego.rows() == context.rows() && ego.cols() == context.cols(),
          "EmbeddingStore::Load: table shape mismatch");
  store.ego_ = CowMatrix::FromMatrix(ego);
  store.context_ = CowMatrix::FromMatrix(context);
  return store;
}

void EmbeddingStore::SaveDelta(std::ostream& out,
                               const EmbeddingStore& base) const {
  WriteCowMatrixDelta(out, ego_, base.ego_);
  WriteCowMatrixDelta(out, context_, base.context_);
}

void EmbeddingStore::ApplyDelta(std::istream& in) {
  ApplyCowMatrixDelta(in, ego_);
  ApplyCowMatrixDelta(in, context_);
  Require(ego_.rows() == context_.rows(),
          "EmbeddingStore::ApplyDelta: table shape mismatch");
}

void EmbeddingStore::Grow(std::size_t count, Rng& rng) {
  const std::size_t old_rows = ego_.rows();
  ego_.AppendRows(count);
  context_.AppendRows(count);
  for (std::size_t r = old_rows; r < ego_.rows(); ++r) InitRow(r, rng);
}

CowBytes EmbeddingStore::MemoryBytes() const {
  CowBytes bytes = ego_.MemoryBytes();
  bytes += context_.MemoryBytes();
  return bytes;
}

}  // namespace grafics::embed
