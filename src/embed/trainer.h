// LINE and E-LINE embedding training over the bipartite graph.
//
// Implements the paper's Sec. IV-B:
//  * LINE second-order proximity (Eq. 5), first-order, and joint variants
//    for the ablation of Fig. 13;
//  * E-LINE (Eq. 9), optimized through the negative-sampling surrogate of
//    Eq. 10: each sampled edge (i, j) pulls together sigma(u'_j · u_i) AND
//    the mirrored sigma(u_j · u'_i), with K degree^{3/4}-distributed
//    negative nodes pushed away in both tables;
//  * edge-sampling SGD in LINE style — edges are drawn with probability
//    proportional to weight c_ij, so the weight never multiplies gradients;
//  * online refinement (Sec. V-A): a freshly added node's embeddings are
//    optimized while every pre-existing embedding stays frozen.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/alias_sampler.h"
#include "embed/embedding_overlay.h"
#include "embed/embedding_store.h"
#include "embed/negative_sampler.h"
#include "graph/bipartite_graph.h"
#include "graph/graph_overlay.h"

namespace grafics::embed {

enum class Objective {
  kLineFirstOrder,   // sigma(u_j · u_i): ego-ego, undirected
  kLineSecondOrder,  // sigma(u'_j · u_i): the LINE variant the paper uses
  kLineBothOrders,   // joint first + second (ablation)
  kELine,            // second-order + mirrored term (the paper's algorithm)
};

struct TrainerConfig {
  std::size_t dim = 8;                   // paper baseline: 8
  Objective objective = Objective::kELine;
  std::size_t negative_samples = 5;      // K in Eq. 10
  /// Linearly decayed, LINE-style. 0.01 keeps the embedding smooth enough
  /// for few-label clustering; larger rates over-fragment the space.
  double initial_learning_rate = 0.01;
  double final_learning_rate_fraction = 1e-4;
  /// Gradient-component dropout probability (paper trains E-LINE with
  /// dropout 0.1): each embedding coordinate is excluded from a given SGD
  /// step with this probability, a cheap regularizer against the high
  /// variance of few-label regimes.
  double dropout = 0.1;
  /// Total SGD samples = samples_per_edge * |E|.
  std::size_t samples_per_edge = 150;
  /// Hogwild-style parallelism. 1 (default) is bit-for-bit deterministic.
  std::size_t num_threads = 1;
  std::uint64_t seed = 1;
};

/// Trains embeddings for every node of `graph`. The returned store has one
/// (ego, context) pair per node id.
EmbeddingStore TrainEmbeddings(const graph::BipartiteGraph& graph,
                               const TrainerConfig& config);

/// Online-inference refinement: optimizes only the embeddings of
/// `new_nodes`, holding everything else fixed. New nodes are warm-started
/// from the weighted average of their neighbors' embeddings, then refined
/// with `iterations` SGD steps each. `store` must already contain rows for
/// the new nodes (EmbeddingStore::Grow).
void RefineNewNodes(const graph::BipartiteGraph& graph,
                    std::span<const graph::NodeId> new_nodes,
                    EmbeddingStore& store, const TrainerConfig& config,
                    std::size_t iterations = 200);

/// As above, but reuses a precomputed negative-sampler set. The hot path
/// for per-record online inference: building the degree^{3/4} table is
/// O(|V|+|M|), so callers serving many predictions build it once over the
/// frozen base model and pass it in (and the ingest path extends it in
/// O(delta) per fold — see embed/negative_sampler.h).
void RefineNewNodes(const graph::BipartiteGraph& graph,
                    std::span<const graph::NodeId> new_nodes,
                    EmbeddingStore& store, const TrainerConfig& config,
                    std::size_t iterations,
                    const NegativeSamplerSet& negatives);

/// Snapshot-isolated variant: refines scratch nodes of a GraphOverlay into
/// an EmbeddingOverlay, leaving the underlying trained graph and store
/// untouched. This is the serving path — one (overlay, overlay) pair per
/// InferenceContext, so concurrent contexts never share mutable state. The
/// negative sampler must be built over the frozen base graph (scratch nodes
/// are never drawn as negatives).
void RefineNewNodes(const graph::GraphOverlay& graph,
                    std::span<const graph::NodeId> new_nodes,
                    EmbeddingOverlay& store, const TrainerConfig& config,
                    std::size_t iterations,
                    const NegativeSamplerSet& negatives);

/// Negative-sampling distribution of the paper: Pr(z) proportional to
/// deg(z)^{3/4} over active nodes. Exposed for tests and the online path.
AliasSampler BuildNegativeSampler(const graph::BipartiteGraph& graph,
                                  std::vector<graph::NodeId>* node_of_index);

}  // namespace grafics::embed
