// Incrementally extendable negative-sampling distribution.
//
// The paper's negative sampler draws node z with probability proportional to
// deg(z)^{3/4} over active nodes (Sec. IV-B). The original implementation
// rebuilt one flat alias table over every node after each Update fold-in —
// O(|V|) per batch, which dominates an O(delta) copy-on-write fold. This set
// keeps the distribution EXACT while amortizing the rebuild:
//
//  * the table is a collection of immutable groups, each an alias table over
//    (node, weight-contribution) entries, shared between snapshots through
//    shared_ptr;
//  * extending after a fold appends ONE new group holding the new nodes'
//    weights plus positive corrections (deg_new^{3/4} - deg_old^{3/4}) for
//    existing nodes whose degree grew — O(delta) work, every prior group
//    shared untouched;
//  * a draw picks a group proportionally to its total weight, then an entry
//    within the group, so P(z) = sum of z's contributions / total — exactly
//    deg(z)^{3/4}-proportional at the current degrees;
//  * after kMaxGroups extensions (or any degree shrink, detected through
//    BipartiteGraph::removal_epoch) the set compacts back to one group,
//    bounding both draw overhead and memory — classic amortized doubling.
//
// With a single group the draw consumes exactly the RNG stream of the
// historical flat table, so models that never folded produce bit-identical
// predictions to the pre-chunking implementation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "common/alias_sampler.h"
#include "common/cow.h"
#include "common/rng.h"
#include "graph/bipartite_graph.h"

namespace grafics::embed {

class NegativeSamplerSet {
 public:
  /// Groups beyond this trigger a compacting full rebuild on Extended.
  static constexpr std::size_t kMaxGroups = 64;

  NegativeSamplerSet() = default;

  /// Full build: one group over every active node with degree > 0, same
  /// distribution (and RNG consumption) as the historical flat table.
  /// Throws grafics::Error when the graph has no such node.
  static NegativeSamplerSet Build(const graph::BipartiteGraph& graph);

  /// O(delta) extension after `touched` nodes (new nodes + nodes that
  /// gained edges) changed degree: returns a set sharing every existing
  /// group, plus at most one new group of corrections. Falls back to a full
  /// Build when the set is empty, degrees shrank (MAC retirement), or the
  /// group budget is exhausted. Deterministic: the result depends only on
  /// this set, the graph, and `touched`.
  NegativeSamplerSet Extended(const graph::BipartiteGraph& graph,
                              std::span<const graph::NodeId> touched) const;

  /// Draws a node id with probability proportional to deg^{3/4}.
  graph::NodeId SampleNode(Rng& rng) const;

  bool empty() const { return groups_.empty(); }
  std::size_t num_groups() const { return groups_.size(); }
  /// Total table entries across all groups (>= distinct nodes).
  std::size_t num_entries() const;

  /// Exact normalized probability of drawing `node` — O(entries), tests
  /// assert it matches a fresh Build after incremental extensions.
  double ProbabilityOf(graph::NodeId node) const;

  /// Chunk/group-granular heap accounting, split shared vs owned.
  CowBytes MemoryBytes() const;

  /// Exact serialization: every group's alias internals round-trip verbatim,
  /// so a loaded set consumes the same RNG stream as the live one — a
  /// rebuild from degrees would share the distribution but not the draws.
  void Save(std::ostream& out) const;
  static NegativeSamplerSet Load(std::istream& in);

  /// Delta against `base`: groups shared by pointer are written as a prefix
  /// count, only appended groups and owned included-weight chunks serialize
  /// — O(delta), not O(nodes). ApplyDelta mutates a set loaded from the
  /// base's artifact into this set's exact state.
  void SaveDelta(std::ostream& out, const NegativeSamplerSet& base) const;
  void ApplyDelta(std::istream& in);

 private:
  struct Group {
    AliasSampler alias;
    std::vector<graph::NodeId> node_of_index;
    double total_weight = 0.0;
  };

  static double NodeWeight(const graph::BipartiteGraph& graph,
                           graph::NodeId node);
  void RebuildGroupPicker();

  std::vector<std::shared_ptr<const Group>> groups_;
  /// Over group total weights; only consulted when there are >= 2 groups.
  AliasSampler group_picker_;
  /// Per node: the deg^{3/4} weight already accounted for across groups.
  CowVector<double, 1024> included_weight_;
  /// BipartiteGraph::removal_epoch at build time; a mismatch means degrees
  /// may have shrunk and corrections alone cannot express that.
  std::uint64_t removal_epoch_ = 0;
};

}  // namespace grafics::embed
