#include "embed/embedding_overlay.h"

#include <algorithm>

#include "common/error.h"

namespace grafics::embed {

EmbeddingOverlay::EmbeddingOverlay(const EmbeddingStore& base)
    : base_(&base), base_rows_(base.num_nodes()), dim_(base.dim()) {
  Require(dim_ > 0, "EmbeddingOverlay: base store is empty");
}

void EmbeddingOverlay::Grow(std::size_t count, Rng& rng) {
  const std::size_t first = scratch_rows_;
  scratch_rows_ += count;
  if (scratch_ego_.size() < scratch_rows_ * dim_) {
    scratch_ego_.resize(scratch_rows_ * dim_);
    scratch_context_.resize(scratch_rows_ * dim_);
  }
  const double scale = 0.5 / static_cast<double>(dim_);
  for (std::size_t r = first; r < scratch_rows_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      scratch_ego_[r * dim_ + c] = rng.Uniform(-scale, scale);
      scratch_context_[r * dim_ + c] = 0.0;
    }
  }
}

std::span<const double> EmbeddingOverlay::Ego(graph::NodeId node) const {
  if (node < base_rows_) return base_->Ego(node);
  Require(node - base_rows_ < scratch_rows_,
          "EmbeddingOverlay::Ego: bad node id");
  return {scratch_ego_.data() + (node - base_rows_) * dim_, dim_};
}

std::span<const double> EmbeddingOverlay::Context(graph::NodeId node) const {
  if (node < base_rows_) return base_->Context(node);
  Require(node - base_rows_ < scratch_rows_,
          "EmbeddingOverlay::Context: bad node id");
  return {scratch_context_.data() + (node - base_rows_) * dim_, dim_};
}

std::span<double> EmbeddingOverlay::ScratchRow(std::vector<double>& table,
                                               graph::NodeId node,
                                               const char* what) {
  // Message built only on the throw path: this accessor sits in the
  // per-query SGD refinement loop.
  if (node < base_rows_ || node - base_rows_ >= scratch_rows_) {
    throw Error(std::string(what) + ": base rows are frozen");
  }
  return {table.data() + (node - base_rows_) * dim_, dim_};
}

std::span<double> EmbeddingOverlay::Ego(graph::NodeId node) {
  return ScratchRow(scratch_ego_, node, "EmbeddingOverlay::Ego");
}

std::span<double> EmbeddingOverlay::Context(graph::NodeId node) {
  return ScratchRow(scratch_context_, node, "EmbeddingOverlay::Context");
}

}  // namespace grafics::embed
