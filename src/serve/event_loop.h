// Nonblocking epoll transport for the serving daemon.
//
// A fixed pool of worker threads, each with its own epoll instance; every
// accepted connection is handed to exactly one worker and never migrates,
// so all per-connection state (read reassembly buffer, reply slots, write
// buffer) is touched by a single thread and needs no locks. Level-triggered
// readiness drives incremental frame reassembly on the way in and buffered
// flushing on the way out — no thread ever blocks on a socket or a future,
// which is what lets a handful of workers hold 10k+ connections where the
// old thread-per-connection transport capped out at thread-stack memory.
//
// Pipelining: a client may send many frames without waiting. Each complete
// frame opens a reply *slot* in arrival order and is handed to the frame
// handler together with a Completion; the handler (or anything it forwards
// the Completion to — a batcher callback, an ops-pool task) later fills the
// slot with encoded reply bytes from any thread. The worker flushes only
// the ready prefix of the slot queue, so responses always leave in request
// order no matter how out-of-order the completions arrive.
//
// Cross-thread completion delivery goes through a per-worker mailbox
// (mutex + deque + eventfd). The mailbox outlives the worker via
// shared_ptr and is marked closed after the worker exits, so a completion
// that fires during shutdown (e.g. from a batcher drain) is a silent no-op
// instead of a use-after-free.
//
// Idle harvesting: connections with no unanswered requests that have been
// quiet past the configured timeout are closed by a periodic sweep — this
// reclaims fds from abandoned peers and slow-loris partial frames alike.
//
// The event loop is transport-only: it never looks inside a payload. The
// owner (serve::Server) supplies the frame handler and an encoder for the
// best-effort error frame sent when a peer declares an oversized length.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"

namespace grafics::serve {

/// One step of cutting a connection's unparsed input into frames.
struct ExtractResult {
  enum class Status {
    kNeedMore,  ///< no complete frame yet; wait for more bytes
    kFrame,     ///< `payload` is one frame; drop `consumed` input bytes
    kError,     ///< framing violation; reply with `error` and hang up
  };
  Status status = Status::kNeedMore;
  std::size_t consumed = 0;
  std::string payload;
  std::string error;
};

/// How raw socket bytes become handler-visible frames. Called on the
/// worker thread with the connection's unparsed input; invoked repeatedly
/// until it reports kNeedMore (or kError). The default is the GRAFICS
/// 4-byte length-prefix framing; the obs admin listener substitutes an
/// HTTP/1.0 request extractor to reuse this loop unchanged.
using FrameExtractor = std::function<ExtractResult(const std::string& in)>;

struct EventLoopConfig {
  /// Epoll worker threads; each owns a share of the connections.
  std::size_t workers = 2;
  /// Harvest connections with no unanswered requests after this long
  /// without socket activity; zero disables harvesting.
  std::chrono::milliseconds idle_timeout{0};
  /// Frames declaring a payload longer than this get the framing-error
  /// reply and a hang-up before any allocation happens (length-prefix
  /// framing only; a custom extractor enforces its own bounds).
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Framing override; nullptr selects the length-prefix default.
  FrameExtractor extractor;
};

/// Aggregate transport counters across all workers (see TransportStats for
/// the wire-level meaning of each field).
struct EventLoopStats {
  std::uint64_t connections_live = 0;
  std::uint64_t connections_harvested_idle = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Reply bytes buffered across all connections, waiting for sockets to
  /// accept them — the backpressure signal for slow readers.
  std::uint64_t write_buffer_bytes = 0;
  /// Idle-harvest sweep visibility (process-local, not on the wire): total
  /// sweeps run, how long the most recent sweep took, and how many
  /// connections it closed — a harvest storm shows up as a closed-count
  /// spike with a rising sweep duration.
  std::uint64_t harvest_sweeps = 0;
  std::uint64_t harvest_last_sweep_us = 0;
  std::uint64_t harvest_last_sweep_closed = 0;
};

class EventLoop {
 public:
  /// Fills one reply slot, from any thread, at most once. Copyable so it
  /// can ride through std::function into batcher callbacks; extra copies
  /// just address the same slot, and duplicate Sends are dropped. Safe to
  /// call after the connection died or the loop stopped (silent no-op).
  class Completion {
   public:
    Completion() = default;

    /// `frame` is a fully encoded wire frame (length prefix included) or
    /// empty for "no reply". close_after flushes this slot, drops any
    /// later pipelined slots, and hangs up — the error-path behavior.
    void Send(std::string frame, bool close_after = false) const;

   private:
    friend class EventLoop;
    struct Mailbox;
    Completion(std::shared_ptr<Mailbox> mailbox, std::uint64_t conn,
               std::uint64_t slot)
        : mailbox_(std::move(mailbox)), conn_(conn), slot_(slot) {}

    std::shared_ptr<Mailbox> mailbox_;
    std::uint64_t conn_ = 0;
    std::uint64_t slot_ = 0;
  };

  /// Called on a worker thread for every complete frame payload (without
  /// the length prefix). `inflight` counts this connection's unanswered
  /// requests including this one — the admission-control input. The
  /// handler must arrange for `done.Send` to be called exactly once; it
  /// must not block (hand blocking work to a pool and complete from
  /// there).
  using FrameHandler = std::function<void(
      std::string payload, std::size_t inflight, Completion done)>;
  /// Encodes the best-effort error frame for a framing violation that is
  /// detected before a payload exists (oversized declared length). May
  /// return an empty string to hang up without a reply.
  using FramingErrorEncoder =
      std::function<std::string(const std::string& what)>;

  EventLoop(EventLoopConfig config, FrameHandler on_frame,
            FramingErrorEncoder on_framing_error);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the workers. Throws grafics::Error when epoll/eventfd setup
  /// fails.
  void Start();
  /// Closes every connection and joins the workers; in-flight Completions
  /// become no-ops. Idempotent; also run by the destructor.
  void Stop();

  /// Takes ownership of a connected socket and assigns it to a worker
  /// (round-robin). The fd is made nonblocking here. Closes the fd
  /// immediately when the loop is stopped.
  void Adopt(int fd);

  EventLoopStats stats() const;

 private:
  /// One pipelined reply in arrival order. Opened unfilled when the frame
  /// is parsed; filled by a mailbox parcel; flushed only as part of the
  /// ready prefix of the queue.
  struct Slot {
    bool ready = false;
    bool close_after = false;
    std::string bytes;
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::string in;   // unparsed bytes, at most one partial frame + chunk
    std::string out;  // encoded replies the socket has not accepted yet
    std::deque<Slot> slots;
    std::uint64_t base_slot = 0;  // absolute index of slots.front()
    std::size_t open_slots = 0;   // unfilled slots (admission input)
    std::uint32_t armed = 0;      // epoll interest currently registered
    std::chrono::steady_clock::time_point last_activity;
    bool peer_eof = false;      // recv saw EOF; serve what's queued, then go
    bool stop_reading = false;  // framing violation; flush the error, close
    bool closing = false;       // a close_after slot was flushed
  };

  struct Parcel {
    std::uint64_t conn = 0;
    std::uint64_t slot = 0;
    std::string bytes;
    bool close_after = false;
  };

  struct Worker {
    int epoll_fd = -1;
    std::shared_ptr<Completion::Mailbox> mailbox;
    std::thread thread;
    std::unordered_map<std::uint64_t, Conn> conns;  // worker thread only
    std::chrono::steady_clock::time_point last_sweep;
  };

  void RunWorker(Worker& worker);
  void AddConn(Worker& worker, int fd);
  void CloseConn(Worker& worker, std::uint64_t id);
  /// Reads until EAGAIN, parses complete frames, flushes. Returns false
  /// when the connection was closed.
  bool ReadConn(Worker& worker, Conn& conn, std::string& scratch);
  void ParseFrames(Worker& worker, Conn& conn);
  /// Promotes ready head slots into the write buffer and writes as much as
  /// the socket takes; closes when done after EOF/close_after. Returns
  /// false when the connection was closed.
  bool FlushConn(Worker& worker, Conn& conn);
  void UpdateInterest(Worker& worker, Conn& conn);
  void DrainMailbox(Worker& worker);
  void HarvestIdle(Worker& worker);

  const EventLoopConfig config_;
  const FrameHandler on_frame_;
  const FramingErrorEncoder on_framing_error_;
  const FrameExtractor extractor_;  // config override or built-in default

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> next_worker_{0};
  std::atomic<std::uint64_t> next_conn_id_{1};  // 0 is the eventfd token
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> connections_live_{0};
  std::atomic<std::uint64_t> harvested_idle_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> write_buffer_bytes_{0};
  std::atomic<std::uint64_t> harvest_sweeps_{0};
  std::atomic<std::uint64_t> harvest_last_sweep_us_{0};
  std::atomic<std::uint64_t> harvest_last_sweep_closed_{0};
};

}  // namespace grafics::serve
