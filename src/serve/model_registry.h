// Named model registry: the serving side of "one daemon, many buildings".
//
// Maps model names to hot-swappable std::shared_ptr<const Grafics> snapshots
// with a per-model generation counter, a per-model MicroBatcher (so one
// building's traffic coalesces into its own micro-batches and a reload never
// stalls another building's queue), and per-model serving stats. All
// batchers share one ThreadPool, so inference parallelism is bounded per
// process regardless of how many buildings are loaded.
//
// The registry owns the models; serve::Server is a thin transport that
// decodes frames and routes them here by name (empty name = the default
// model, which is how v1 clients keep working). Load/ReloadFromDisk swap a
// model's snapshot atomically: in-flight batches finish on the snapshot they
// started with, later batches pick up the new one. Unload drains the model's
// queue (futures still resolve) and removes it.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotated_sync.h"
#include "common/thread_pool.h"
#include "core/grafics.h"
#include "obs/metrics.h"
#include "rf/signal_record.h"
#include "serve/batcher.h"
#include "serve/protocol.h"

namespace grafics::store {
class ModelStore;
}

namespace grafics::serve {

class ModelRegistry {
 public:
  /// `batcher` configures every per-model MicroBatcher; its predict_threads
  /// sizes the one shared ThreadPool (0 = hardware_concurrency, 1 = serial
  /// dispatch on each model's flusher thread).
  explicit ModelRegistry(BatcherConfig batcher = {});
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Installs `model` (trained) under `name`, creating the model on first
  /// load and hot-swapping the snapshot (generation + 1) on later loads.
  /// `model_path`, when non-empty, enables ReloadFromDisk for this name.
  /// The first loaded model becomes the default. Names are non-empty, at
  /// most kMaxModelNameBytes, and free of whitespace and '='. `source`
  /// records who published the snapshot (Stats reports it): kDisk for
  /// operator loads and reloads, kIngest for the ingest pipeline's
  /// background fold-in publishes.
  void Load(const std::string& name,
            std::shared_ptr<const core::Grafics> model,
            std::string model_path = {},
            PublishSource source = PublishSource::kDisk);
  /// Loads `name` from an artifact file. Without an attached store this is
  /// Grafics::LoadModel(model_path) + Load(name, ..., model_path); with one
  /// (AttachStore) the artifact is imported into the store by reference and
  /// opened through it, so the import becomes a store generation and later
  /// delta checkpoints chain onto it. Kept as the single file-path entry
  /// point for the daemon and tests.
  void LoadFromDisk(const std::string& name, const std::string& model_path);
  /// Drains the model's pending requests (their futures still resolve), then
  /// removes it. The default model cannot be unloaded.
  void Unload(const std::string& name);
  /// Re-loads `name` (empty = default) and swaps it in, returning the new
  /// generation. Without an attached store this reads the recorded artifact
  /// path. With one: a model with a recorded path re-imports that file (the
  /// operator-retrain flow — deliberately superseding any fold generations
  /// committed after the previous import); a model without one re-opens the
  /// store's latest generation. The old snapshot keeps serving if the load
  /// throws; other models are untouched either way.
  std::uint64_t ReloadFromDisk(const std::string& name);

  /// Attaches the unified persistence store; LoadFromDisk/ReloadFromDisk
  /// route through it from then on, and LoadFromStore/ReloadFromStore
  /// address its generations directly.
  void AttachStore(std::shared_ptr<store::ModelStore> store);
  std::shared_ptr<store::ModelStore> store() const;

  /// Attaches the telemetry registry. Per-model gauges and counters
  /// (generation, snapshot bytes, batcher totals, queue depth, flush
  /// reasons) are synced by a collection hook at every scrape; the batcher
  /// latency/size histograms are resolved per model at Load time, so attach
  /// before loading models — models loaded earlier keep serving but record
  /// no distributions. Detached automatically (quiescently) on destruction.
  void AttachObs(std::shared_ptr<obs::Registry> obs);

  /// Load(name, store->Open(name, generation)): installs a store generation
  /// (0 = latest). Requires an attached store holding `name`.
  void LoadFromStore(const std::string& name, std::uint64_t generation = 0);
  /// Re-opens `name` (empty = default) from the attached store at
  /// `generation` (0 = latest, non-zero = rollback pin) and swaps it in,
  /// returning the new registry generation.
  std::uint64_t ReloadFromStore(const std::string& name,
                                std::uint64_t generation = 0);

  /// Enqueues one record on the named model's batcher (empty = default).
  /// Throws grafics::Error for unknown names and after Stop(); the caller
  /// turns that into a per-record error status, not a dropped connection.
  std::future<std::optional<rf::FloorId>> Submit(const std::string& name,
                                                 rf::SignalRecord record);
  /// Submit for a whole request batch: resolves the name through the
  /// registry lock once, then enqueues every record on that model's
  /// batcher — the hot path for v2 batched predicts.
  std::vector<std::future<std::optional<rf::FloorId>>> SubmitBatch(
      const std::string& name, std::vector<rf::SignalRecord> records);
  /// Admission-controlled completion-callback SubmitBatch for the event
  /// loop: enqueues every record or none. Returns false without invoking
  /// anything when `max_queue_depth` > 0 and the model's queue would exceed
  /// it; the transport turns that into a structured busy error. On success
  /// `done(i, outcome)` runs once per record from the model's flusher
  /// thread. Throws for unknown names and after Stop(), like Submit.
  bool TrySubmitBatchAsync(const std::string& name,
                           std::vector<rf::SignalRecord> records,
                           MicroBatcher::BatchCallback done,
                           std::size_t max_queue_depth);

  /// Name/generation/reloadable for every model, sorted by name.
  std::vector<ModelInfo> List() const;
  /// Per-model serving counters, sorted by name. A non-empty `name_filter`
  /// touches only that model's entry (empty result for unknown names).
  std::vector<ModelStats> Stats(const std::string& name_filter = {}) const;
  std::size_t size() const;
  bool Has(const std::string& name) const;
  /// Current snapshot of `name` (empty = default); holders keep it alive
  /// across hot swaps.
  std::shared_ptr<const core::Grafics> Snapshot(
      const std::string& name = {}) const;
  /// Monotonic per-model counter starting at 1, bumped by every swap.
  std::uint64_t generation(const std::string& name = {}) const;

  std::string default_model() const;
  void SetDefaultModel(const std::string& name);

  /// Installs (or clears, with nullptr) the callback Stats uses to fill each
  /// model's pending_ingest field. The ingest pipeline registers itself here
  /// and MUST clear the probe before it is destroyed — clearing blocks until
  /// in-flight probe calls return (they run under the probe's own mutex, not
  /// the registry's), so after SetIngestDepthProbe(nullptr) the callback is
  /// guaranteed quiescent. The probe receives the model name and must not
  /// call back into the registry.
  void SetIngestDepthProbe(
      std::function<std::uint64_t(const std::string&)> probe);

  /// Drains every model's batcher and rejects further Submits/Loads.
  /// Idempotent; also run by the destructor. Stats stay readable.
  void Stop();

 private:
  struct Entry {
    mutable Mutex mutex;
    std::shared_ptr<const core::Grafics> model GRAFICS_GUARDED_BY(mutex);
    std::uint64_t generation GRAFICS_GUARDED_BY(mutex) = 1;
    std::string path GRAFICS_GUARDED_BY(mutex);
    PublishSource last_source GRAFICS_GUARDED_BY(mutex) =
        PublishSource::kDisk;
    // Unguarded by design: set once before the entry is published into
    // entries_ and immutable from then on. Last member: its destructor joins
    // the flusher thread before the rest of the entry goes away, so the
    // snapshot callback's raw Entry* is safe.
    std::unique_ptr<MicroBatcher> batcher;
  };

  /// Resolves empty → default and looks the entry up. Callers hold the
  /// returned shared_ptr, so a concurrent Unload cannot free it mid-use.
  std::shared_ptr<Entry> Find(const std::string& name) const
      GRAFICS_EXCLUDES(mutex_);

  /// Collection-hook body: walks every entry and syncs the per-model
  /// gauges/counters into the attached obs registry.
  void SyncObs() const GRAFICS_EXCLUDES(mutex_);
  std::shared_ptr<obs::Registry> observed() const
      GRAFICS_EXCLUDES(obs_mutex_);

  const BatcherConfig batcher_config_;
  std::unique_ptr<ThreadPool> pool_;  // null when predict_threads == 1

  mutable Mutex store_mutex_;  // probes never touch it
  std::shared_ptr<store::ModelStore> store_ GRAFICS_GUARDED_BY(store_mutex_);

  mutable Mutex obs_mutex_;  // guards attachment, not instrument updates
  std::shared_ptr<obs::Registry> obs_ GRAFICS_GUARDED_BY(obs_mutex_);
  obs::ScopedHook obs_hook_;  // detach-before-death safety for SyncObs

  mutable Mutex mutex_;
  std::map<std::string, std::shared_ptr<Entry>> entries_
      GRAFICS_GUARDED_BY(mutex_);
  std::string default_name_ GRAFICS_GUARDED_BY(mutex_);
  bool stopped_ GRAFICS_GUARDED_BY(mutex_) = false;

  mutable Mutex probe_mutex_;  // separate: probes run outside mutex_
  std::function<std::uint64_t(const std::string&)> ingest_depth_probe_
      GRAFICS_GUARDED_BY(probe_mutex_);
};

}  // namespace grafics::serve
