#include "serve/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/serialize.h"

namespace grafics::serve {

namespace {

enum class MessageType : std::uint8_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kPing = 3,
  kPong = 4,
  kReloadRequest = 5,
  kReloadResponse = 6,
};

MessageType TypeOf(const Message& message) {
  struct Visitor {
    MessageType operator()(const PredictRequest&) const {
      return MessageType::kPredictRequest;
    }
    MessageType operator()(const PredictResponse&) const {
      return MessageType::kPredictResponse;
    }
    MessageType operator()(const Ping&) const { return MessageType::kPing; }
    MessageType operator()(const Pong&) const { return MessageType::kPong; }
    MessageType operator()(const ReloadRequest&) const {
      return MessageType::kReloadRequest;
    }
    MessageType operator()(const ReloadResponse&) const {
      return MessageType::kReloadResponse;
    }
  };
  return std::visit(Visitor{}, message);
}

void WriteBody(std::ostream& out, const Message& message) {
  struct Visitor {
    std::ostream& out;
    void operator()(const PredictRequest& m) const {
      WriteSignalRecord(out, m.record);
    }
    void operator()(const PredictResponse& m) const {
      WriteU8(out, static_cast<std::uint8_t>(m.status));
      WriteI32(out, m.floor);
      WriteString(out, m.error);
    }
    void operator()(const Ping&) const {}
    void operator()(const Pong& m) const { WriteU64(out, m.model_generation); }
    void operator()(const ReloadRequest&) const {}
    void operator()(const ReloadResponse& m) const {
      WriteU8(out, m.ok ? 1 : 0);
      WriteU64(out, m.model_generation);
      WriteString(out, m.message);
    }
  };
  std::visit(Visitor{out}, message);
}

Message ReadBody(std::istream& in, MessageType type) {
  switch (type) {
    case MessageType::kPredictRequest:
      return PredictRequest{ReadSignalRecord(in)};
    case MessageType::kPredictResponse: {
      PredictResponse m;
      const std::uint8_t status = ReadU8(in);
      Require(status <= static_cast<std::uint8_t>(PredictStatus::kError),
              "protocol: bad predict status");
      m.status = static_cast<PredictStatus>(status);
      m.floor = ReadI32(in);
      m.error = ReadString(in);
      return m;
    }
    case MessageType::kPing:
      return Ping{};
    case MessageType::kPong:
      return Pong{ReadU64(in)};
    case MessageType::kReloadRequest:
      return ReloadRequest{};
    case MessageType::kReloadResponse: {
      ReloadResponse m;
      m.ok = ReadU8(in) != 0;
      m.model_generation = ReadU64(in);
      m.message = ReadString(in);
      return m;
    }
  }
  throw Error("protocol: unknown message type " +
              std::to_string(static_cast<unsigned>(type)));
}

/// recv() until exactly `size` bytes arrive. Returns false when the peer
/// closed before the first byte; throws on mid-buffer EOF or socket errors.
bool ReceiveExactly(int fd, char* data, std::size_t size) {
  std::size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n == 0) {
      if (received == 0) return false;
      throw Error("protocol: truncated frame (peer closed mid-frame)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("protocol: read failed: ") +
                  std::strerror(errno));
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

void SendAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("protocol: write failed: ") +
                  std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

void WriteSignalRecord(std::ostream& out, const rf::SignalRecord& record) {
  WriteU64(out, record.size());
  for (const rf::Observation& o : record.observations()) {
    WriteU64(out, o.mac.bits());
    WriteDouble(out, o.rssi_dbm);
  }
  WriteOptionalI32(out, record.floor());
}

rf::SignalRecord ReadSignalRecord(std::istream& in) {
  const std::uint64_t count = ReadU64(in);
  Require(count <= kMaxObservations,
          "protocol: unreasonable observation count");
  std::vector<rf::Observation> observations;
  observations.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    // MacAddress validates the 48-bit range and the SignalRecord constructor
    // rejects duplicate MACs, so malformed bodies throw instead of building
    // an inconsistent record.
    const rf::MacAddress mac(ReadU64(in));
    observations.push_back({mac, ReadDouble(in)});
  }
  const std::optional<std::int32_t> floor = ReadOptionalI32(in);
  return rf::SignalRecord(std::move(observations), floor);
}

std::string EncodePayload(const Message& message) {
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, kProtocolVersion);
  WriteU8(out, static_cast<std::uint8_t>(TypeOf(message)));
  WriteBody(out, message);
  return std::move(out).str();
}

Message DecodePayload(const std::string& payload) {
  std::istringstream in(payload);
  CheckHeader(in, kFrameMagic, kProtocolVersion);
  const auto type = static_cast<MessageType>(ReadU8(in));
  Message message = ReadBody(in, type);
  Require(in.peek() == std::istream::traits_type::eof(),
          "protocol: trailing bytes after message");
  return message;
}

std::string EncodeFrame(const Message& message) {
  const std::string payload = EncodePayload(message);
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame(sizeof(length) + payload.size(), '\0');
  std::memcpy(frame.data(), &length, sizeof(length));
  std::memcpy(frame.data() + sizeof(length), payload.data(), payload.size());
  return frame;
}

void SendFrame(int fd, const Message& message) {
  const std::string frame = EncodeFrame(message);
  SendAll(fd, frame.data(), frame.size());
}

std::optional<std::string> ReceiveFramePayload(int fd,
                                               std::size_t max_bytes) {
  std::uint32_t length = 0;  // little-endian on the wire == host order
  if (!ReceiveExactly(fd, reinterpret_cast<char*>(&length), sizeof(length))) {
    return std::nullopt;
  }
  Require(length <= max_bytes, "protocol: oversized frame");
  std::string payload(length, '\0');
  if (!ReceiveExactly(fd, payload.data(), payload.size())) {
    throw Error("protocol: truncated frame (peer closed mid-frame)");
  }
  return payload;
}

std::optional<Message> ReceiveFrame(int fd, std::size_t max_bytes) {
  const std::optional<std::string> payload =
      ReceiveFramePayload(fd, max_bytes);
  if (!payload.has_value()) return std::nullopt;
  return DecodePayload(*payload);
}

}  // namespace grafics::serve
