#include "serve/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/serialize.h"

namespace grafics::serve {

namespace {

enum class MessageType : std::uint8_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kPing = 3,
  kPong = 4,
  kReloadRequest = 5,
  kReloadResponse = 6,
  // v2-only admin messages; a v1 frame carrying these type codes is
  // malformed, exactly as it was for the v1 decoder.
  kListModelsRequest = 7,
  kListModelsResponse = 8,
  kStatsRequest = 9,
  kStatsResponse = 10,
  // v3-only ingest messages; malformed inside v1 and v2 frames.
  kSubmitRecordsRequest = 11,
  kSubmitRecordsResponse = 12,
  kIngestStatsRequest = 13,
  kIngestStatsResponse = 14,
  // v6-only persistence messages; malformed inside v1..v5 frames.
  kCheckpointRequest = 15,
  kCheckpointResponse = 16,
  kCompactRequest = 17,
  kCompactResponse = 18,
  kListArtifactsRequest = 19,
  kListArtifactsResponse = 20,
  // v7-only telemetry messages; malformed inside v1..v6 frames.
  kMetricsRequest = 21,
  kMetricsResponse = 22,
};

MessageType TypeOf(const Message& message) {
  struct Visitor {
    MessageType operator()(const PredictRequest&) const {
      return MessageType::kPredictRequest;
    }
    MessageType operator()(const PredictResponse&) const {
      return MessageType::kPredictResponse;
    }
    MessageType operator()(const Ping&) const { return MessageType::kPing; }
    MessageType operator()(const Pong&) const { return MessageType::kPong; }
    MessageType operator()(const ReloadRequest&) const {
      return MessageType::kReloadRequest;
    }
    MessageType operator()(const ReloadResponse&) const {
      return MessageType::kReloadResponse;
    }
    MessageType operator()(const ListModelsRequest&) const {
      return MessageType::kListModelsRequest;
    }
    MessageType operator()(const ListModelsResponse&) const {
      return MessageType::kListModelsResponse;
    }
    MessageType operator()(const StatsRequest&) const {
      return MessageType::kStatsRequest;
    }
    MessageType operator()(const StatsResponse&) const {
      return MessageType::kStatsResponse;
    }
    MessageType operator()(const SubmitRecordsRequest&) const {
      return MessageType::kSubmitRecordsRequest;
    }
    MessageType operator()(const SubmitRecordsResponse&) const {
      return MessageType::kSubmitRecordsResponse;
    }
    MessageType operator()(const IngestStatsRequest&) const {
      return MessageType::kIngestStatsRequest;
    }
    MessageType operator()(const IngestStatsResponse&) const {
      return MessageType::kIngestStatsResponse;
    }
    MessageType operator()(const CheckpointRequest&) const {
      return MessageType::kCheckpointRequest;
    }
    MessageType operator()(const CheckpointResponse&) const {
      return MessageType::kCheckpointResponse;
    }
    MessageType operator()(const CompactRequest&) const {
      return MessageType::kCompactRequest;
    }
    MessageType operator()(const CompactResponse&) const {
      return MessageType::kCompactResponse;
    }
    MessageType operator()(const ListArtifactsRequest&) const {
      return MessageType::kListArtifactsRequest;
    }
    MessageType operator()(const ListArtifactsResponse&) const {
      return MessageType::kListArtifactsResponse;
    }
    MessageType operator()(const MetricsRequest&) const {
      return MessageType::kMetricsRequest;
    }
    MessageType operator()(const MetricsResponse&) const {
      return MessageType::kMetricsResponse;
    }
  };
  return std::visit(Visitor{}, message);
}

void WriteModelName(std::ostream& out, const std::string& name) {
  Require(name.size() <= kMaxModelNameBytes, "protocol: model name too long");
  WriteString(out, name);
}

/// Bounded by hand instead of serialize.h's ReadString so a hostile length
/// field is an Error before any allocation, per the framing contract.
std::string ReadBoundedString(std::istream& in, std::size_t max_bytes,
                              const char* what) {
  const std::uint64_t size = ReadU64(in);
  Require(size <= max_bytes, std::string("protocol: bad length for ") + what);
  std::string value(size, '\0');
  in.read(value.data(), static_cast<std::streamsize>(size));
  Require(in.good() || size == 0,
          std::string("protocol: truncated ") + what);
  return value;
}

std::string ReadModelName(std::istream& in) {
  return ReadBoundedString(in, kMaxModelNameBytes, "model name");
}

/// Free-form message fields (errors, reload messages): bounded by the frame
/// cap, which every enclosing payload already respects.
std::string ReadMessageString(std::istream& in) {
  return ReadBoundedString(in, kMaxFrameBytes, "string field");
}

/// Shared by the encode visitor and the decode switch: the admin messages
/// (ListModels/Stats) exist only from protocol v2 on.
void RequireAdminV2(std::uint32_t version) {
  Require(version >= 2, "protocol: admin messages require protocol v2");
}

/// The ingest surface (SubmitRecords/IngestStats) exists only from v3 on.
void RequireIngestV3(std::uint32_t version) {
  Require(version >= 3, "protocol: ingest messages require protocol v3");
}

/// The persistence surface (Checkpoint/Compact/ListArtifacts) exists only
/// from v6 on.
void RequireStoreV6(std::uint32_t version) {
  Require(version >= 6, "protocol: store messages require protocol v6");
}

/// The telemetry surface (metrics dump) exists only from v7 on.
void RequireMetricsV7(std::uint32_t version) {
  Require(version >= 7, "protocol: metrics messages require protocol v7");
}

void RequireV1Expressible(const std::string& model, std::size_t records,
                          const char* what) {
  Require(model.empty(),
          std::string("protocol: v1 cannot carry a model name in ") + what);
  Require(records == 1,
          std::string("protocol: v1 carries exactly one record per ") + what);
}

void WriteBody(std::ostream& out, const Message& message,
               std::uint32_t version) {
  struct Visitor {
    std::ostream& out;
    std::uint32_t version;
    void operator()(const PredictRequest& m) const {
      if (version == 1) {
        RequireV1Expressible(m.model, m.records.size(), "PredictRequest");
        WriteSignalRecord(out, m.records.front());
        return;
      }
      WriteModelName(out, m.model);
      Require(!m.records.empty(), "protocol: empty predict batch");
      Require(m.records.size() <= kMaxBatchRecords,
              "protocol: oversized predict batch");
      WriteU32(out, static_cast<std::uint32_t>(m.records.size()));
      for (const rf::SignalRecord& record : m.records) {
        WriteSignalRecord(out, record);
      }
    }
    void operator()(const PredictResponse& m) const {
      Require(!m.results.empty(), "protocol: empty predict response");
      if (version == 1) {
        Require(m.results.size() == 1,
                "protocol: v1 carries exactly one result per PredictResponse");
      } else {
        Require(m.results.size() <= kMaxBatchRecords,
                "protocol: oversized predict response");
        WriteU32(out, static_cast<std::uint32_t>(m.results.size()));
      }
      for (const PredictResult& result : m.results) {
        WriteU8(out, static_cast<std::uint8_t>(result.status));
        WriteI32(out, result.floor);
        WriteString(out, result.error);
      }
    }
    void operator()(const Ping& m) const {
      if (version == 1) {
        Require(m.model.empty(),
                "protocol: v1 cannot carry a model name in Ping");
        return;
      }
      WriteModelName(out, m.model);
    }
    void operator()(const Pong& m) const {
      if (version == 1) {
        // The version field is implicit in the frame header; ok/error do not
        // exist in v1, where a ping can only succeed.
        Require(m.ok, "protocol: v1 cannot carry a ping failure");
        Require(m.error.empty(), "protocol: v1 cannot carry a ping error");
        WriteU64(out, m.model_generation);
        return;
      }
      WriteU32(out, m.protocol_version);
      WriteU8(out, m.ok ? 1 : 0);
      WriteU64(out, m.model_generation);
      WriteString(out, m.error);
    }
    void operator()(const ReloadRequest& m) const {
      if (version < 6) {
        // Older dialects cannot ask for a generation pin; failing loudly
        // beats silently reloading the latest artifact instead.
        Require(m.generation == 0,
                "protocol: generation-pinned reload requires protocol v6");
      }
      if (version == 1) {
        Require(m.model.empty(),
                "protocol: v1 cannot carry a model name in ReloadRequest");
        return;
      }
      WriteModelName(out, m.model);
      if (version >= 6) WriteU64(out, m.generation);
    }
    void operator()(const ReloadResponse& m) const {
      WriteU8(out, m.ok ? 1 : 0);
      WriteU64(out, m.model_generation);
      WriteString(out, m.message);
    }
    void operator()(const ListModelsRequest&) const {
      RequireAdminV2(version);
    }
    void operator()(const ListModelsResponse& m) const {
      RequireAdminV2(version);
      WriteModelName(out, m.default_model);
      Require(m.models.size() <= kMaxModels, "protocol: too many models");
      WriteU32(out, static_cast<std::uint32_t>(m.models.size()));
      for (const ModelInfo& info : m.models) {
        WriteModelName(out, info.name);
        WriteU64(out, info.generation);
        WriteU8(out, info.reloadable ? 1 : 0);
      }
    }
    void operator()(const StatsRequest& m) const {
      RequireAdminV2(version);
      WriteModelName(out, m.model);
    }
    void operator()(const StatsResponse& m) const {
      RequireAdminV2(version);
      WriteU64(out, m.connections_accepted);
      Require(m.models.size() <= kMaxModels, "protocol: too many models");
      WriteU32(out, static_cast<std::uint32_t>(m.models.size()));
      for (const ModelStats& stats : m.models) {
        WriteModelName(out, stats.name);
        WriteU64(out, stats.generation);
        WriteU64(out, stats.requests);
        WriteU64(out, stats.batches);
        WriteU64(out, stats.max_batch);
        WriteU64(out, stats.queue_depth);
        // The ingest fields exist on the wire only from v3 on and the
        // snapshot-accounting fields only from v4 on, so older peers keep
        // receiving their exact historical byte layouts.
        if (version >= 3) {
          WriteU8(out, static_cast<std::uint8_t>(stats.last_publish_source));
          WriteU64(out, stats.pending_ingest);
        }
        if (version >= 4) {
          WriteU64(out, stats.shared_bytes);
          WriteU64(out, stats.owned_bytes);
        }
      }
      // The transport block exists on the wire only from v5 on, after the
      // per-model array, so the v2/v3/v4 byte layouts stay frozen.
      if (version >= 5) {
        WriteU64(out, m.transport.connections_live);
        WriteU64(out, m.transport.connections_harvested_idle);
        WriteU64(out, m.transport.frames_in);
        WriteU64(out, m.transport.frames_out);
        WriteU64(out, m.transport.bytes_in);
        WriteU64(out, m.transport.bytes_out);
        WriteU64(out, m.transport.requests_rejected_busy);
        WriteU64(out, m.transport.event_workers);
      }
      // The store block exists on the wire only from v6 on, after the
      // transport block, so the v5 byte layout stays frozen.
      if (version >= 6) {
        WriteU8(out, m.store.enabled ? 1 : 0);
        WriteU64(out, m.store.base_count);
        WriteU64(out, m.store.delta_count);
        WriteU64(out, m.store.journal_bytes_reclaimed);
      }
    }
    void operator()(const SubmitRecordsRequest& m) const {
      RequireIngestV3(version);
      WriteModelName(out, m.model);
      Require(!m.records.empty(), "protocol: empty submit batch");
      Require(m.records.size() <= kMaxBatchRecords,
              "protocol: oversized submit batch");
      WriteU32(out, static_cast<std::uint32_t>(m.records.size()));
      for (const rf::SignalRecord& record : m.records) {
        WriteSignalRecord(out, record);
      }
    }
    void operator()(const SubmitRecordsResponse& m) const {
      RequireIngestV3(version);
      Require(!m.results.empty(), "protocol: empty submit response");
      Require(m.results.size() <= kMaxBatchRecords,
              "protocol: oversized submit response");
      WriteU32(out, static_cast<std::uint32_t>(m.results.size()));
      for (const SubmitResult& result : m.results) {
        WriteU8(out, static_cast<std::uint8_t>(result.status));
        WriteString(out, result.error);
      }
    }
    void operator()(const IngestStatsRequest& m) const {
      RequireIngestV3(version);
      WriteModelName(out, m.model);
    }
    void operator()(const IngestStatsResponse& m) const {
      RequireIngestV3(version);
      WriteU8(out, m.enabled ? 1 : 0);
      Require(m.models.size() <= kMaxModels, "protocol: too many models");
      WriteU32(out, static_cast<std::uint32_t>(m.models.size()));
      for (const IngestModelStats& stats : m.models) {
        WriteModelName(out, stats.name);
        WriteU64(out, stats.accepted);
        WriteU64(out, stats.rejected);
        WriteU64(out, stats.pending);
        WriteU64(out, stats.folded);
        WriteU64(out, stats.replayed);
        WriteU64(out, stats.journal_bytes);
        WriteU64(out, stats.publishes);
        WriteU64(out, stats.last_publish_generation);
        // Fold latency exists on the wire only from v4 on; a v3 peer keeps
        // receiving the exact v3 byte layout.
        if (version >= 4) {
          WriteU64(out, stats.fold_min_us);
          WriteU64(out, stats.fold_mean_us);
          WriteU64(out, stats.fold_max_us);
          WriteU64(out, stats.last_fold_us);
        }
        // Journal replay observability exists only from v6 on.
        if (version >= 6) {
          WriteU64(out, stats.journal_dropped_bytes);
          WriteU64(out, stats.replayed_batches);
        }
      }
    }
    void operator()(const CheckpointRequest& m) const {
      RequireStoreV6(version);
      WriteModelName(out, m.model);
    }
    void operator()(const CheckpointResponse& m) const {
      RequireStoreV6(version);
      WriteU8(out, m.ok ? 1 : 0);
      WriteU64(out, m.generation);
      WriteU8(out, m.delta ? 1 : 0);
      WriteU64(out, m.bytes_written);
      WriteString(out, m.message);
    }
    void operator()(const CompactRequest& m) const {
      RequireStoreV6(version);
      WriteModelName(out, m.model);
    }
    void operator()(const CompactResponse& m) const {
      RequireStoreV6(version);
      WriteU8(out, m.ok ? 1 : 0);
      WriteU64(out, m.generation);
      WriteU64(out, m.journal_bytes_reclaimed);
      WriteString(out, m.message);
    }
    void operator()(const ListArtifactsRequest& m) const {
      RequireStoreV6(version);
      WriteModelName(out, m.model);
    }
    void operator()(const ListArtifactsResponse& m) const {
      RequireStoreV6(version);
      WriteU8(out, m.enabled ? 1 : 0);
      Require(m.artifacts.size() <= kMaxArtifacts,
              "protocol: too many artifacts");
      WriteU32(out, static_cast<std::uint32_t>(m.artifacts.size()));
      for (const ArtifactEntry& entry : m.artifacts) {
        WriteU64(out, entry.generation);
        WriteU8(out, entry.delta ? 1 : 0);
        Require(entry.file.size() <= kMaxArtifactFileBytes,
                "protocol: artifact file name too long");
        WriteString(out, entry.file);
        WriteU64(out, entry.bytes);
      }
    }
    void operator()(const MetricsRequest&) const {
      RequireMetricsV7(version);
    }
    void operator()(const MetricsResponse& m) const {
      RequireMetricsV7(version);
      // Leave headroom for the frame header + type byte so the whole
      // encoded payload stays under kMaxFrameBytes.
      Require(m.text.size() <= kMaxFrameBytes - 64,
              "protocol: oversized metrics dump");
      WriteString(out, m.text);
    }
  };
  std::visit(Visitor{out, version}, message);
}

Message ReadBody(std::istream& in, MessageType type, std::uint32_t version) {
  switch (type) {
    case MessageType::kPredictRequest: {
      PredictRequest m;
      if (version == 1) {
        m.records.push_back(ReadSignalRecord(in));
        return m;
      }
      m.model = ReadModelName(in);
      const std::uint32_t count = ReadU32(in);
      Require(count >= 1, "protocol: empty predict batch");
      Require(count <= kMaxBatchRecords, "protocol: oversized predict batch");
      m.records.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        m.records.push_back(ReadSignalRecord(in));
      }
      return m;
    }
    case MessageType::kPredictResponse: {
      PredictResponse m;
      std::uint32_t count = 1;
      if (version >= 2) {
        count = ReadU32(in);
        Require(count >= 1, "protocol: empty predict response");
        Require(count <= kMaxBatchRecords,
                "protocol: oversized predict response");
      }
      m.results.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        PredictResult result;
        const std::uint8_t status = ReadU8(in);
        Require(status <= static_cast<std::uint8_t>(PredictStatus::kError),
                "protocol: bad predict status");
        result.status = static_cast<PredictStatus>(status);
        result.floor = ReadI32(in);
        result.error = ReadMessageString(in);
        m.results.push_back(std::move(result));
      }
      return m;
    }
    case MessageType::kPing: {
      Ping m;
      if (version >= 2) m.model = ReadModelName(in);
      return m;
    }
    case MessageType::kPong: {
      Pong m;
      if (version == 1) {
        m.protocol_version = 1;
        m.model_generation = ReadU64(in);
        return m;
      }
      m.protocol_version = ReadU32(in);
      m.ok = ReadU8(in) != 0;
      m.model_generation = ReadU64(in);
      m.error = ReadMessageString(in);
      return m;
    }
    case MessageType::kReloadRequest: {
      ReloadRequest m;
      if (version >= 2) m.model = ReadModelName(in);
      if (version >= 6) m.generation = ReadU64(in);
      return m;
    }
    case MessageType::kReloadResponse: {
      ReloadResponse m;
      m.ok = ReadU8(in) != 0;
      m.model_generation = ReadU64(in);
      m.message = ReadMessageString(in);
      return m;
    }
    case MessageType::kListModelsRequest:
      RequireAdminV2(version);
      return ListModelsRequest{};
    case MessageType::kListModelsResponse: {
      RequireAdminV2(version);
      ListModelsResponse m;
      m.default_model = ReadModelName(in);
      const std::uint32_t count = ReadU32(in);
      Require(count <= kMaxModels, "protocol: too many models");
      m.models.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        ModelInfo info;
        info.name = ReadModelName(in);
        info.generation = ReadU64(in);
        info.reloadable = ReadU8(in) != 0;
        m.models.push_back(std::move(info));
      }
      return m;
    }
    case MessageType::kStatsRequest: {
      RequireAdminV2(version);
      StatsRequest m;
      m.model = ReadModelName(in);
      return m;
    }
    case MessageType::kStatsResponse: {
      RequireAdminV2(version);
      StatsResponse m;
      m.connections_accepted = ReadU64(in);
      const std::uint32_t count = ReadU32(in);
      Require(count <= kMaxModels, "protocol: too many models");
      m.models.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        ModelStats stats;
        stats.name = ReadModelName(in);
        stats.generation = ReadU64(in);
        stats.requests = ReadU64(in);
        stats.batches = ReadU64(in);
        stats.max_batch = ReadU64(in);
        stats.queue_depth = ReadU64(in);
        if (version >= 3) {
          const std::uint8_t source = ReadU8(in);
          Require(source <= static_cast<std::uint8_t>(PublishSource::kIngest),
                  "protocol: bad publish source");
          stats.last_publish_source = static_cast<PublishSource>(source);
          stats.pending_ingest = ReadU64(in);
        }
        if (version >= 4) {
          stats.shared_bytes = ReadU64(in);
          stats.owned_bytes = ReadU64(in);
        }
        m.models.push_back(std::move(stats));
      }
      if (version >= 5) {
        m.transport.connections_live = ReadU64(in);
        m.transport.connections_harvested_idle = ReadU64(in);
        m.transport.frames_in = ReadU64(in);
        m.transport.frames_out = ReadU64(in);
        m.transport.bytes_in = ReadU64(in);
        m.transport.bytes_out = ReadU64(in);
        m.transport.requests_rejected_busy = ReadU64(in);
        m.transport.event_workers = ReadU64(in);
      }
      if (version >= 6) {
        m.store.enabled = ReadU8(in) != 0;
        m.store.base_count = ReadU64(in);
        m.store.delta_count = ReadU64(in);
        m.store.journal_bytes_reclaimed = ReadU64(in);
      }
      return m;
    }
    case MessageType::kSubmitRecordsRequest: {
      RequireIngestV3(version);
      SubmitRecordsRequest m;
      m.model = ReadModelName(in);
      const std::uint32_t count = ReadU32(in);
      Require(count >= 1, "protocol: empty submit batch");
      Require(count <= kMaxBatchRecords, "protocol: oversized submit batch");
      m.records.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        m.records.push_back(ReadSignalRecord(in));
      }
      return m;
    }
    case MessageType::kSubmitRecordsResponse: {
      RequireIngestV3(version);
      SubmitRecordsResponse m;
      const std::uint32_t count = ReadU32(in);
      Require(count >= 1, "protocol: empty submit response");
      Require(count <= kMaxBatchRecords,
              "protocol: oversized submit response");
      m.results.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        SubmitResult result;
        const std::uint8_t status = ReadU8(in);
        Require(status <= static_cast<std::uint8_t>(SubmitStatus::kRejected),
                "protocol: bad submit status");
        result.status = static_cast<SubmitStatus>(status);
        result.error = ReadMessageString(in);
        m.results.push_back(std::move(result));
      }
      return m;
    }
    case MessageType::kIngestStatsRequest: {
      RequireIngestV3(version);
      IngestStatsRequest m;
      m.model = ReadModelName(in);
      return m;
    }
    case MessageType::kIngestStatsResponse: {
      RequireIngestV3(version);
      IngestStatsResponse m;
      m.enabled = ReadU8(in) != 0;
      const std::uint32_t count = ReadU32(in);
      Require(count <= kMaxModels, "protocol: too many models");
      m.models.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        IngestModelStats stats;
        stats.name = ReadModelName(in);
        stats.accepted = ReadU64(in);
        stats.rejected = ReadU64(in);
        stats.pending = ReadU64(in);
        stats.folded = ReadU64(in);
        stats.replayed = ReadU64(in);
        stats.journal_bytes = ReadU64(in);
        stats.publishes = ReadU64(in);
        stats.last_publish_generation = ReadU64(in);
        if (version >= 4) {
          stats.fold_min_us = ReadU64(in);
          stats.fold_mean_us = ReadU64(in);
          stats.fold_max_us = ReadU64(in);
          stats.last_fold_us = ReadU64(in);
        }
        if (version >= 6) {
          stats.journal_dropped_bytes = ReadU64(in);
          stats.replayed_batches = ReadU64(in);
        }
        m.models.push_back(std::move(stats));
      }
      return m;
    }
    case MessageType::kCheckpointRequest: {
      RequireStoreV6(version);
      CheckpointRequest m;
      m.model = ReadModelName(in);
      return m;
    }
    case MessageType::kCheckpointResponse: {
      RequireStoreV6(version);
      CheckpointResponse m;
      m.ok = ReadU8(in) != 0;
      m.generation = ReadU64(in);
      m.delta = ReadU8(in) != 0;
      m.bytes_written = ReadU64(in);
      m.message = ReadMessageString(in);
      return m;
    }
    case MessageType::kCompactRequest: {
      RequireStoreV6(version);
      CompactRequest m;
      m.model = ReadModelName(in);
      return m;
    }
    case MessageType::kCompactResponse: {
      RequireStoreV6(version);
      CompactResponse m;
      m.ok = ReadU8(in) != 0;
      m.generation = ReadU64(in);
      m.journal_bytes_reclaimed = ReadU64(in);
      m.message = ReadMessageString(in);
      return m;
    }
    case MessageType::kListArtifactsRequest: {
      RequireStoreV6(version);
      ListArtifactsRequest m;
      m.model = ReadModelName(in);
      return m;
    }
    case MessageType::kListArtifactsResponse: {
      RequireStoreV6(version);
      ListArtifactsResponse m;
      m.enabled = ReadU8(in) != 0;
      const std::uint32_t count = ReadU32(in);
      Require(count <= kMaxArtifacts, "protocol: too many artifacts");
      m.artifacts.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        ArtifactEntry entry;
        entry.generation = ReadU64(in);
        entry.delta = ReadU8(in) != 0;
        entry.file =
            ReadBoundedString(in, kMaxArtifactFileBytes, "artifact file");
        entry.bytes = ReadU64(in);
        m.artifacts.push_back(std::move(entry));
      }
      return m;
    }
    case MessageType::kMetricsRequest:
      RequireMetricsV7(version);
      return MetricsRequest{};
    case MessageType::kMetricsResponse: {
      RequireMetricsV7(version);
      MetricsResponse m;
      m.text = ReadMessageString(in);
      return m;
    }
  }
  throw Error("protocol: unknown message type " +
              std::to_string(static_cast<unsigned>(type)));
}

/// recv() until exactly `size` bytes arrive. Returns false when the peer
/// closed before the first byte; throws on mid-buffer EOF or socket errors.
bool ReceiveExactly(int fd, char* data, std::size_t size) {
  std::size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n == 0) {
      if (received == 0) return false;
      throw Error("protocol: truncated frame (peer closed mid-frame)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("protocol: read failed: ") +
                  std::strerror(errno));
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

void SendAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("protocol: write failed: ") +
                  std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

void WriteSignalRecord(std::ostream& out, const rf::SignalRecord& record) {
  WriteU64(out, record.size());
  for (const rf::Observation& o : record.observations()) {
    WriteU64(out, o.mac.bits());
    WriteDouble(out, o.rssi_dbm);
  }
  WriteOptionalI32(out, record.floor());
}

std::size_t SignalRecordWireBytes(const rf::SignalRecord& record) {
  // u64 count, (u64 MAC, f64 RSS) per observation, u8+i32 constant-width
  // optional floor — mirror WriteSignalRecord above, field for field.
  return 8 + record.size() * 16 + 5;
}

rf::SignalRecord ReadSignalRecord(std::istream& in) {
  const std::uint64_t count = ReadU64(in);
  Require(count <= kMaxObservations,
          "protocol: unreasonable observation count");
  std::vector<rf::Observation> observations;
  observations.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    // MacAddress validates the 48-bit range and the SignalRecord constructor
    // rejects duplicate MACs, so malformed bodies throw instead of building
    // an inconsistent record.
    const rf::MacAddress mac(ReadU64(in));
    observations.push_back({mac, ReadDouble(in)});
  }
  const std::optional<std::int32_t> floor = ReadOptionalI32(in);
  return rf::SignalRecord(std::move(observations), floor);
}

std::string EncodePayload(const Message& message, std::uint32_t version) {
  Require(version >= kMinProtocolVersion && version <= kProtocolVersion,
          "protocol: cannot encode version " + std::to_string(version));
  std::ostringstream out;
  WriteHeader(out, kFrameMagic, version);
  WriteU8(out, static_cast<std::uint8_t>(TypeOf(message)));
  WriteBody(out, message, version);
  return std::move(out).str();
}

Message DecodePayload(const std::string& payload,
                      std::uint32_t* negotiated_version) {
  std::istringstream in(payload);
  const std::uint32_t version = ReadHeader(in, kFrameMagic);
  Require(version >= kMinProtocolVersion && version <= kProtocolVersion,
          "protocol: unsupported version " + std::to_string(version));
  // Report the version as soon as the header validates, so a server can
  // answer even a malformed body in the client's dialect.
  if (negotiated_version != nullptr) *negotiated_version = version;
  const auto type = static_cast<MessageType>(ReadU8(in));
  Message message = ReadBody(in, type, version);
  Require(in.peek() == std::istream::traits_type::eof(),
          "protocol: trailing bytes after message");
  return message;
}

std::string EncodeFrame(const Message& message, std::uint32_t version) {
  const std::string payload = EncodePayload(message, version);
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame(sizeof(length) + payload.size(), '\0');
  std::memcpy(frame.data(), &length, sizeof(length));
  std::memcpy(frame.data() + sizeof(length), payload.data(), payload.size());
  return frame;
}

void SendFrame(int fd, const Message& message, std::uint32_t version) {
  const std::string frame = EncodeFrame(message, version);
  SendAll(fd, frame.data(), frame.size());
}

std::optional<std::string> ReceiveFramePayload(int fd,
                                               std::size_t max_bytes) {
  std::uint32_t length = 0;  // little-endian on the wire == host order
  if (!ReceiveExactly(fd, reinterpret_cast<char*>(&length), sizeof(length))) {
    return std::nullopt;
  }
  Require(length <= max_bytes, "protocol: oversized frame");
  std::string payload(length, '\0');
  if (!ReceiveExactly(fd, payload.data(), payload.size())) {
    throw Error("protocol: truncated frame (peer closed mid-frame)");
  }
  return payload;
}

std::optional<Message> ReceiveFrame(int fd, std::size_t max_bytes) {
  const std::optional<std::string> payload =
      ReceiveFramePayload(fd, max_bytes);
  if (!payload.has_value()) return std::nullopt;
  return DecodePayload(*payload);
}

}  // namespace grafics::serve
