// TCP front-end of the GRAFICS serving engine: a thin transport that parses
// frames and routes them to a ModelRegistry by model name.
//
// One accept-loop thread hands each connection to the nonblocking epoll
// EventLoop (a fixed pool of worker threads; see event_loop.h). Workers
// never block: predicts are submitted to the registry's per-model
// MicroBatchers through completion callbacks, blocking admin work (reload
// disk loads, ingest journal fsyncs) runs on a small ops pool, and the
// cheap admin queries are answered inline. A client may pipeline many
// requests on one connection; replies always come back in request order.
//
// Admission control keeps an overloaded daemon answering instead of
// queueing without bound: predicts beyond max_inflight_per_connection
// unanswered requests on one socket, or beyond max_queue_depth pending
// records on one model, are refused with a structured per-record
// "busy: ..." error — never a dropped connection.
//
// Version negotiation is per frame: the server decodes protocol v1 through
// v6 requests and answers each in the dialect it arrived in, so v1 clients
// keep talking to the registry's default model while newer clients name
// models, batch records, query admin state, submit records for ingestion,
// and drive the persistence store on the same port.
//
// The ingest surface (SubmitRecords/IngestStats) is optional: attach an
// ingest::IngestPipeline before Start to enable it; without one, submits
// are answered with per-record "ingest disabled" rejections.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/event_loop.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"

namespace grafics::ingest {
class IngestPipeline;
}

namespace grafics::store {
class ModelStore;
}

namespace grafics::serve {

struct ServerConfig {
  /// Address to bind; loopback by default — expose deliberately.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read it back from
  /// port() after Start, e.g. for tests and CI).
  std::uint16_t port = 0;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Epoll worker threads of the event loop; each owns a share of the
  /// connections.
  std::size_t event_workers = 2;
  /// Harvest connections with no unanswered requests after this long
  /// without socket activity (slow-loris partial frames included); zero
  /// disables harvesting.
  std::chrono::milliseconds idle_timeout{0};
  /// Busy-reject a predict once its connection has this many unanswered
  /// requests (including itself); zero = unlimited pipelining.
  std::size_t max_inflight_per_connection = 64;
  /// Busy-reject a predict when its model's batcher queue would exceed
  /// this many pending records; zero = unbounded.
  std::size_t max_queue_depth = 0;
  /// Threads for blocking admin work (reload disk loads, ingest journal
  /// fsyncs) so event workers never stall on them.
  std::size_t ops_threads = 2;
  /// When non-zero, predicts whose end-to-end time exceeds this many
  /// microseconds log a per-stage trace breakdown to stderr (see
  /// docs/observability.md for the line format). Zero disables tracing.
  std::uint64_t slow_request_us = 0;
};

class Server {
 public:
  /// Serves every model in `registry`, which must already hold at least one
  /// (the default) and stays owned by the caller: load/unload/reload models
  /// on it at any time while the server runs.
  explicit Server(std::shared_ptr<ModelRegistry> registry,
                  ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enables the v3 ingest surface: SubmitRecords routes to `ingest` and
  /// IngestStats reports its counters. Call before Start; the pipeline is
  /// shared with the caller, who owns its shutdown ordering (stop the
  /// server, then the pipeline, then the registry).
  void AttachIngest(std::shared_ptr<ingest::IngestPipeline> ingest);

  /// Enables the v6 persistence surface: Checkpoint/ListArtifacts route to
  /// `store`, Compact additionally needs an attached ingest pipeline, Stats
  /// reports store counters, and Reload honors generation pins. Call before
  /// Start; the store is shared with the registry and the caller.
  void AttachStore(std::shared_ptr<store::ModelStore> store);

  /// Enables the telemetry surface: the v7 Metrics request answers with the
  /// registry's Prometheus render, transport counters are synced into it by
  /// a collection hook at every scrape, and frame decode times feed a
  /// histogram. Call before Start; without one, Metrics replies carry an
  /// empty dump and nothing is recorded.
  void AttachObs(std::shared_ptr<obs::Registry> obs);

  /// Binds, listens, and spawns the accept loop + event workers. Throws
  /// grafics::Error when the address is unusable.
  void Start();
  /// Stops accepting and disconnects clients; in-flight batcher
  /// completions become no-ops. The registry (and its batchers) is the
  /// caller's to stop. Idempotent.
  void Stop();

  /// Bound port (resolves port 0 after Start).
  std::uint16_t port() const { return port_; }

  ModelRegistry& registry() { return *registry_; }
  const ModelRegistry& registry() const { return *registry_; }

  std::uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }

  /// The transport counters the v5 Stats reply carries; readable while the
  /// server runs and after Stop (final values).
  TransportStats transport_stats() const;

 private:
  void AcceptLoop();

  /// EventLoop frame handler: decode, dispatch, arrange for exactly one
  /// Completion. Runs on an event worker; must not block.
  void HandleFrame(std::string payload, std::size_t inflight,
                   EventLoop::Completion done);
  void HandlePredictAsync(PredictRequest request, std::uint32_t version,
                          std::size_t inflight, EventLoop::Completion done);

  Pong HandlePing(const Ping& ping, std::uint32_t version);
  ReloadResponse HandleReload(const ReloadRequest& request);
  ListModelsResponse HandleListModels() const;
  StatsResponse HandleStats(const StatsRequest& request) const;
  SubmitRecordsResponse HandleSubmit(SubmitRecordsRequest request);
  IngestStatsResponse HandleIngestStats(
      const IngestStatsRequest& request) const;
  CheckpointResponse HandleCheckpoint(const CheckpointRequest& request);
  CompactResponse HandleCompact(const CompactRequest& request);
  ListArtifactsResponse HandleListArtifacts(
      const ListArtifactsRequest& request) const;

  /// Collection-hook body: syncs transport counters into the obs registry.
  void SyncObs();

  const ServerConfig config_;
  const std::shared_ptr<ModelRegistry> registry_;
  std::shared_ptr<ingest::IngestPipeline> ingest_;
  std::shared_ptr<store::ModelStore> store_;
  // Set before Start (AttachObs), const afterwards: handlers read them
  // race-free without a lock. The hook is detached in the destructor,
  // before loop_ dies.
  std::shared_ptr<obs::Registry> obs_;
  obs::Histogram* frame_decode_us_ = nullptr;
  obs::Counter* slow_requests_ = nullptr;
  obs::ScopedHook obs_hook_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};

  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ThreadPool> ops_pool_;
  std::thread accept_thread_;
};

}  // namespace grafics::serve
