// TCP front-end of the GRAFICS serving engine.
//
// One accept-loop thread hands each connection to a lightweight handler
// thread that only parses frames and blocks on batcher futures — all
// inference happens in the MicroBatcher's PredictBatch dispatch, so adding
// connections adds no inference threads. The served model is an atomically
// swappable std::shared_ptr<const Grafics> snapshot: SetModel (and
// ReloadFromDisk, reachable via SIGHUP in the daemon or a kReloadRequest
// frame) installs a new model for future batches while in-flight batches
// finish on the snapshot they started with.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/grafics.h"
#include "serve/batcher.h"
#include "serve/protocol.h"

namespace grafics::serve {

struct ServerConfig {
  /// Address to bind; loopback by default — expose deliberately.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read it back from
  /// port() after Start, e.g. for tests and CI).
  std::uint16_t port = 0;
  BatcherConfig batcher;
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

class Server {
 public:
  /// Serves `model` (trained). `model_path`, when non-empty, enables
  /// ReloadFromDisk / kReloadRequest hot-reload from that artifact.
  explicit Server(std::shared_ptr<const core::Grafics> model,
                  ServerConfig config = {}, std::string model_path = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept loop. Throws grafics::Error when
  /// the address is unusable.
  void Start();
  /// Stops accepting, disconnects clients, drains the batcher. Idempotent.
  void Stop();

  /// Bound port (resolves port 0 after Start).
  std::uint16_t port() const { return port_; }

  /// Current model snapshot; holders keep it alive across hot reloads.
  std::shared_ptr<const core::Grafics> model_snapshot() const;
  /// Monotonic counter starting at 1, bumped by every SetModel.
  std::uint64_t model_generation() const;
  /// Atomically installs a new snapshot for future batches.
  void SetModel(std::shared_ptr<const core::Grafics> model);
  /// Loads model_path and installs it; the old model keeps serving if the
  /// load throws. Requires a model_path.
  void ReloadFromDisk();

  BatcherStats batcher_stats() const { return batcher_->stats(); }
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection& connection);
  /// Joins, closes, and erases finished connection handlers. Called on
  /// every accept and by each handler as it finishes (handlers never join
  /// themselves), so at most one finished handler lingers while idle.
  void ReapFinished();

  const ServerConfig config_;
  const std::string model_path_;

  mutable std::mutex model_mutex_;
  std::shared_ptr<const core::Grafics> model_;
  std::uint64_t generation_ = 1;

  std::unique_ptr<MicroBatcher> batcher_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> connections_accepted_{0};

  std::mutex connections_mutex_;
  std::list<Connection> connections_;
  std::thread accept_thread_;
};

}  // namespace grafics::serve
