// TCP front-end of the GRAFICS serving engine: a thin transport that parses
// frames and routes them to a ModelRegistry by model name.
//
// One accept-loop thread hands each connection to a lightweight handler
// thread that only decodes frames and blocks on batcher futures — all
// inference happens in the registry's per-model MicroBatchers, so adding
// connections adds no inference threads, and model ownership (snapshots,
// generations, hot reload) lives entirely in the registry.
//
// Version negotiation is per frame: the server decodes protocol v1, v2,
// and v3 requests and answers each in the dialect it arrived in, so v1
// clients keep talking to the registry's default model while newer clients
// name models, batch records, query admin state, and submit records for
// ingestion on the same port.
//
// The ingest surface (SubmitRecords/IngestStats) is optional: attach an
// ingest::IngestPipeline before Start to enable it; without one, submits
// are answered with per-record "ingest disabled" rejections.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/model_registry.h"
#include "serve/protocol.h"

namespace grafics::ingest {
class IngestPipeline;
}

namespace grafics::serve {

struct ServerConfig {
  /// Address to bind; loopback by default — expose deliberately.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read it back from
  /// port() after Start, e.g. for tests and CI).
  std::uint16_t port = 0;
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

class Server {
 public:
  /// Serves every model in `registry`, which must already hold at least one
  /// (the default) and stays owned by the caller: load/unload/reload models
  /// on it at any time while the server runs.
  explicit Server(std::shared_ptr<ModelRegistry> registry,
                  ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enables the v3 ingest surface: SubmitRecords routes to `ingest` and
  /// IngestStats reports its counters. Call before Start; the pipeline is
  /// shared with the caller, who owns its shutdown ordering (stop the
  /// server, then the pipeline, then the registry).
  void AttachIngest(std::shared_ptr<ingest::IngestPipeline> ingest);

  /// Binds, listens, and spawns the accept loop. Throws grafics::Error when
  /// the address is unusable.
  void Start();
  /// Stops accepting and disconnects clients. The registry (and its
  /// batchers) is the caller's to stop. Idempotent.
  void Stop();

  /// Bound port (resolves port 0 after Start).
  std::uint16_t port() const { return port_; }

  ModelRegistry& registry() { return *registry_; }
  const ModelRegistry& registry() const { return *registry_; }

  std::uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection& connection);
  /// Joins, closes, and erases finished connection handlers. Called on
  /// every accept and by each handler as it finishes (handlers never join
  /// themselves), so at most one finished handler lingers while idle.
  void ReapFinished();

  PredictResponse HandlePredict(PredictRequest request);
  Pong HandlePing(const Ping& ping, std::uint32_t version);
  ReloadResponse HandleReload(const ReloadRequest& request);
  ListModelsResponse HandleListModels() const;
  StatsResponse HandleStats(const StatsRequest& request) const;
  SubmitRecordsResponse HandleSubmit(SubmitRecordsRequest request);
  IngestStatsResponse HandleIngestStats(
      const IngestStatsRequest& request) const;

  const ServerConfig config_;
  const std::shared_ptr<ModelRegistry> registry_;
  std::shared_ptr<ingest::IngestPipeline> ingest_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> connections_accepted_{0};

  std::mutex connections_mutex_;
  std::list<Connection> connections_;
  std::thread accept_thread_;
};

}  // namespace grafics::serve
