#include "serve/model_registry.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "store/model_store.h"

namespace grafics::serve {

namespace {

void ValidateName(const std::string& name) {
  Require(!name.empty(), "ModelRegistry: model name must not be empty");
  Require(name.size() <= kMaxModelNameBytes,
          "ModelRegistry: model name too long: " + name);
  for (const char c : name) {
    // Unsigned compare: bytes >= 0x80 (UTF-8 continuations etc.) are fine;
    // only ASCII whitespace/control (including DEL) and the daemon's
    // NAME=PATH separator are rejected.
    const auto byte = static_cast<unsigned char>(c);
    Require(byte > ' ' && byte != 0x7F && byte != '=',
            "ModelRegistry: model name has whitespace, control bytes, or "
            "'=': " + name);
  }
}

}  // namespace

ModelRegistry::ModelRegistry(BatcherConfig batcher)
    : batcher_config_(batcher) {
  if (batcher_config_.predict_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(batcher_config_.predict_threads);
  }
}

ModelRegistry::~ModelRegistry() {
  // Quiesce the scrape hook before anything it walks (entries_, batchers)
  // starts dying; member destruction order alone does not guarantee that.
  obs_hook_.Detach();
  Stop();
}

void ModelRegistry::Load(const std::string& name,
                         std::shared_ptr<const core::Grafics> model,
                         std::string model_path, PublishSource source) {
  ValidateName(name);
  Require(model != nullptr && model->is_trained(),
          "ModelRegistry::Load: requires a trained model for '" + name + "'");
  const MutexLock lock(&mutex_);
  Require(!stopped_, "ModelRegistry::Load after Stop");
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    // Hot swap: keep the batcher (and its queue) running across the switch;
    // in-flight batches finish on the snapshot they started with.
    Entry& entry = *it->second;
    const MutexLock entry_lock(&entry.mutex);
    entry.model = std::move(model);
    ++entry.generation;
    entry.last_source = source;
    if (!model_path.empty()) entry.path = std::move(model_path);
    return;
  }
  // The wire caps ListModels/Stats replies at kMaxModels; enforcing it here
  // keeps the admin surface encodable for every registry this API can build.
  Require(entries_.size() < kMaxModels,
          "ModelRegistry::Load: registry full (kMaxModels)");
  auto entry = std::make_shared<Entry>();
  {
    // Entry not yet published, but the batcher's flusher thread starts below
    // and its snapshot callback reads these fields under the entry mutex —
    // initialize under it too so the happens-before edge is the lock, not
    // the entries_ insertion.
    const MutexLock entry_lock(&entry->mutex);
    entry->model = std::move(model);
    entry->path = std::move(model_path);
    entry->last_source = source;
  }
  // First load of this name: resolve the per-model telemetry handles into
  // the batcher's config before construction, so the flusher thread reads
  // them const and race-free for the batcher's whole life.
  BatcherConfig batcher_config = batcher_config_;
  if (const std::shared_ptr<obs::Registry> obs = observed()) {
    const obs::Labels labels = {{"model", name}};
    batcher_config.obs.batch_size = obs->GetHistogram(
        "grafics_batcher_batch_size",
        "Records per dispatched micro-batch.",
        obs::PowerOfTwoBuckets(
            std::max<std::uint64_t>(batcher_config_.max_batch_size, 1)),
        labels);
    batcher_config.obs.queue_wait_us = obs->GetHistogram(
        "grafics_batcher_queue_wait_us",
        "Microseconds a record waited queued before its batch dispatched.",
        obs::DefaultLatencyBucketsUs(), labels);
    batcher_config.obs.predict_us = obs->GetHistogram(
        "grafics_batcher_predict_us",
        "Microseconds the batch's PredictBatch call took.",
        obs::DefaultLatencyBucketsUs(), labels);
  }
  // Raw pointer is safe: the batcher is the entry's last member, so its
  // destructor joins the flusher thread before the rest of the entry dies.
  Entry* raw = entry.get();
  entry->batcher = std::make_unique<MicroBatcher>(
      batcher_config,
      [raw] {
        const MutexLock snapshot_lock(&raw->mutex);
        return raw->model;
      },
      pool_.get());
  entries_.emplace(name, std::move(entry));
  if (default_name_.empty()) default_name_ = name;
}

void ModelRegistry::LoadFromDisk(const std::string& name,
                                 const std::string& model_path) {
  // Before the (expensive) artifact load: a bad name must fail fast, not
  // after seconds of deserialization.
  ValidateName(name);
  Require(!model_path.empty(),
          "ModelRegistry::LoadFromDisk: empty path for '" + name + "'");
  if (const std::shared_ptr<store::ModelStore> attached = store()) {
    // Through the store: the file becomes a (by-reference) base generation
    // and the opened snapshot anchors the model's delta-checkpoint chain.
    attached->ImportBase(name, model_path);
    Load(name, attached->Open(name), model_path);
    return;
  }
  auto model = std::make_shared<const core::Grafics>(
      core::Grafics::LoadModel(model_path));
  Load(name, std::move(model), model_path);
}

void ModelRegistry::Unload(const std::string& name) {
  std::shared_ptr<Entry> victim;
  {
    const MutexLock lock(&mutex_);
    // Empty resolves to the default like everywhere else — which then hits
    // the protection below with the accurate diagnostic.
    const std::string& resolved = name.empty() ? default_name_ : name;
    const auto it = entries_.find(resolved);
    Require(it != entries_.end(),
            "ModelRegistry::Unload: unknown model '" + resolved + "'");
    Require(resolved != default_name_,
            "ModelRegistry::Unload: cannot unload the default model '" +
                resolved + "'");
    victim = std::move(it->second);
    entries_.erase(it);
  }
  // Outside the registry lock: draining blocks on in-flight inference, and
  // the flusher's snapshot callback only takes the entry's own mutex.
  victim->batcher->Stop();
}

std::uint64_t ModelRegistry::ReloadFromDisk(const std::string& name) {
  {
    const MutexLock lock(&mutex_);
    Require(!stopped_, "ModelRegistry::ReloadFromDisk after Stop");
  }
  const std::shared_ptr<Entry> entry = Find(name);
  std::string path;
  {
    const MutexLock entry_lock(&entry->mutex);
    path = entry->path;
  }
  if (const std::shared_ptr<store::ModelStore> attached = store()) {
    const std::string resolved = name.empty() ? default_model() : name;
    if (!path.empty()) {
      // Operator file reload: re-import the recorded artifact. When fold
      // checkpoints were committed after the previous import this appends a
      // fresh import generation — an explicit decision to serve the file's
      // content again (the superseded generations stay openable).
      attached->ImportBase(resolved, path);
    }
    return ReloadFromStore(name);
  }
  Require(!path.empty(),
          "ModelRegistry::ReloadFromDisk: no model path configured for '" +
              (name.empty() ? default_model() : name) + "'");
  // Load outside every lock: clients keep being served from the old
  // snapshot for the whole (expensive) load, on this model and all others.
  auto fresh = std::make_shared<const core::Grafics>(
      core::Grafics::LoadModel(path));
  const MutexLock entry_lock(&entry->mutex);
  entry->model = std::move(fresh);
  entry->last_source = PublishSource::kDisk;
  return ++entry->generation;
}

void ModelRegistry::AttachStore(std::shared_ptr<store::ModelStore> store) {
  const MutexLock lock(&store_mutex_);
  store_ = std::move(store);
}

std::shared_ptr<store::ModelStore> ModelRegistry::store() const {
  const MutexLock lock(&store_mutex_);
  return store_;
}

void ModelRegistry::AttachObs(std::shared_ptr<obs::Registry> obs) {
  Require(obs != nullptr, "ModelRegistry::AttachObs: null obs registry");
  {
    const MutexLock lock(&obs_mutex_);
    Require(obs_ == nullptr, "ModelRegistry::AttachObs: already attached");
    obs_ = obs;
  }
  obs_hook_.Attach(std::move(obs), [this] { SyncObs(); });
}

std::shared_ptr<obs::Registry> ModelRegistry::observed() const {
  const MutexLock lock(&obs_mutex_);
  return obs_;
}

void ModelRegistry::SyncObs() const {
  const std::shared_ptr<obs::Registry> obs = observed();
  if (obs == nullptr) return;
  // Same locking shape as Stats(): snapshot the entries under the registry
  // lock, gather per-model values unlocked — a scrape must not stall name
  // resolution for predict traffic.
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> entries;
  {
    const MutexLock lock(&mutex_);
    entries.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      entries.emplace_back(name, entry);
    }
  }
  for (const auto& [name, entry] : entries) {
    const obs::Labels labels = {{"model", name}};
    std::uint64_t generation = 0;
    std::shared_ptr<const core::Grafics> snapshot;
    {
      const MutexLock entry_lock(&entry->mutex);
      generation = entry->generation;
      snapshot = entry->model;
    }
    const CowBytes memory = snapshot->MemoryBytes();
    const BatcherStats batcher = entry->batcher->stats();
    obs->GetGauge("grafics_model_generation",
                  "Monotonic per-model publish generation.", labels)
        ->Set(static_cast<std::int64_t>(generation));
    obs->GetGauge("grafics_model_snapshot_shared_bytes",
                  "Bytes of the serving snapshot shared with older "
                  "generations (copy-on-write).",
                  labels)
        ->Set(static_cast<std::int64_t>(memory.shared_bytes));
    obs->GetGauge("grafics_model_snapshot_owned_bytes",
                  "Bytes of the serving snapshot owned by this generation "
                  "alone.",
                  labels)
        ->Set(static_cast<std::int64_t>(memory.owned_bytes));
    obs->GetCounter("grafics_batcher_requests_total",
                    "Records enqueued on the model's micro-batcher.", labels)
        ->SyncTo(batcher.requests);
    obs->GetCounter("grafics_batcher_batches_total",
                    "Micro-batches dispatched through PredictBatch.", labels)
        ->SyncTo(batcher.batches);
    obs->GetGauge("grafics_batcher_queue_depth",
                  "Records enqueued but not yet dispatched.", labels)
        ->Set(static_cast<std::int64_t>(batcher.queue_depth));
    const char* const kFlushHelp =
        "Batch flushes by trigger: queue reached max_batch_size, the "
        "oldest record's max_delay expired, or Stop() drained the queue.";
    obs::Labels reason = labels;
    reason.emplace_back("reason", "max_batch");
    obs->GetCounter("grafics_batcher_flushes_total", kFlushHelp, reason)
        ->SyncTo(batcher.flushes_max_batch);
    reason.back().second = "max_delay";
    obs->GetCounter("grafics_batcher_flushes_total", kFlushHelp, reason)
        ->SyncTo(batcher.flushes_max_delay);
    reason.back().second = "shutdown";
    obs->GetCounter("grafics_batcher_flushes_total", kFlushHelp, reason)
        ->SyncTo(batcher.flushes_shutdown);
  }
}

void ModelRegistry::LoadFromStore(const std::string& name,
                                  std::uint64_t generation) {
  ValidateName(name);
  const std::shared_ptr<store::ModelStore> attached = store();
  Require(attached != nullptr, "ModelRegistry::LoadFromStore: no store "
                               "attached (daemon runs without --store-dir)");
  Load(name, attached->Open(name, generation));
}

std::uint64_t ModelRegistry::ReloadFromStore(const std::string& name,
                                             std::uint64_t generation) {
  {
    const MutexLock lock(&mutex_);
    Require(!stopped_, "ModelRegistry::ReloadFromStore after Stop");
  }
  const std::shared_ptr<store::ModelStore> attached = store();
  Require(attached != nullptr, "ModelRegistry::ReloadFromStore: no store "
                               "attached (daemon runs without --store-dir)");
  const std::shared_ptr<Entry> entry = Find(name);
  const std::string resolved = name.empty() ? default_model() : name;
  // Open outside every lock, like the file path above.
  std::shared_ptr<const core::Grafics> fresh =
      attached->Open(resolved, generation);
  const MutexLock entry_lock(&entry->mutex);
  entry->model = std::move(fresh);
  entry->last_source = PublishSource::kDisk;
  return ++entry->generation;
}

std::future<std::optional<rf::FloorId>> ModelRegistry::Submit(
    const std::string& name, rf::SignalRecord record) {
  return Find(name)->batcher->Submit(std::move(record));
}

std::vector<std::future<std::optional<rf::FloorId>>>
ModelRegistry::SubmitBatch(const std::string& name,
                           std::vector<rf::SignalRecord> records) {
  const std::shared_ptr<Entry> entry = Find(name);
  std::vector<std::future<std::optional<rf::FloorId>>> futures;
  futures.reserve(records.size());
  for (rf::SignalRecord& record : records) {
    futures.push_back(entry->batcher->Submit(std::move(record)));
  }
  return futures;
}

bool ModelRegistry::TrySubmitBatchAsync(const std::string& name,
                                        std::vector<rf::SignalRecord> records,
                                        MicroBatcher::BatchCallback done,
                                        std::size_t max_queue_depth) {
  return Find(name)->batcher->TrySubmitBatchAsync(
      std::move(records), std::move(done), max_queue_depth);
}

std::vector<ModelInfo> ModelRegistry::List() const {
  const MutexLock lock(&mutex_);
  std::vector<ModelInfo> models;
  models.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    const MutexLock entry_lock(&entry->mutex);
    models.push_back({name, entry->generation, !entry->path.empty()});
  }
  return models;
}

std::vector<ModelStats> ModelRegistry::Stats(
    const std::string& name_filter) const {
  // Snapshot the entries under the registry lock, then gather the per-model
  // counters unlocked (like Stop does): an admin stats sweep must not stall
  // name resolution for predict traffic while it visits every batcher.
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> entries;
  {
    const MutexLock lock(&mutex_);
    entries.reserve(name_filter.empty() ? entries_.size() : 1);
    for (const auto& [name, entry] : entries_) {
      if (!name_filter.empty() && name != name_filter) continue;
      entries.emplace_back(name, entry);
    }
  }
  std::vector<ModelStats> models;
  models.reserve(entries.size());
  for (const auto& [name, entry] : entries) {
    ModelStats stats;
    stats.name = name;
    std::shared_ptr<const core::Grafics> snapshot;
    {
      const MutexLock entry_lock(&entry->mutex);
      stats.generation = entry->generation;
      stats.last_publish_source = entry->last_source;
      snapshot = entry->model;
    }
    // Chunk-granular sweep outside the entry lock: predict traffic keeps
    // resolving while the accounting walks the snapshot's chunk tables.
    const CowBytes memory = snapshot->MemoryBytes();
    stats.shared_bytes = memory.shared_bytes;
    stats.owned_bytes = memory.owned_bytes;
    const BatcherStats batcher = entry->batcher->stats();
    stats.requests = batcher.requests;
    stats.batches = batcher.batches;
    stats.max_batch = batcher.max_batch;
    stats.queue_depth = batcher.queue_depth;
    {
      // Invoked under probe_mutex_ (but outside every registry/entry
      // lock), so SetIngestDepthProbe(nullptr) is a true quiesce point:
      // once it returns, no in-flight Stats can still be inside the
      // pipeline's callback. The probe itself only touches pipeline state.
      const MutexLock probe_lock(&probe_mutex_);
      if (ingest_depth_probe_) {
        stats.pending_ingest = ingest_depth_probe_(name);
      }
    }
    models.push_back(std::move(stats));
  }
  return models;
}

std::size_t ModelRegistry::size() const {
  const MutexLock lock(&mutex_);
  return entries_.size();
}

bool ModelRegistry::Has(const std::string& name) const {
  const MutexLock lock(&mutex_);
  return entries_.count(name) != 0;
}

std::shared_ptr<const core::Grafics> ModelRegistry::Snapshot(
    const std::string& name) const {
  const std::shared_ptr<Entry> entry = Find(name);
  const MutexLock entry_lock(&entry->mutex);
  return entry->model;
}

std::uint64_t ModelRegistry::generation(const std::string& name) const {
  const std::shared_ptr<Entry> entry = Find(name);
  const MutexLock entry_lock(&entry->mutex);
  return entry->generation;
}

std::string ModelRegistry::default_model() const {
  const MutexLock lock(&mutex_);
  return default_name_;
}

void ModelRegistry::SetDefaultModel(const std::string& name) {
  const MutexLock lock(&mutex_);
  Require(entries_.count(name) != 0,
          "ModelRegistry::SetDefaultModel: unknown model '" + name + "'");
  default_name_ = name;
}

void ModelRegistry::SetIngestDepthProbe(
    std::function<std::uint64_t(const std::string&)> probe) {
  const MutexLock lock(&probe_mutex_);
  ingest_depth_probe_ = std::move(probe);
}

void ModelRegistry::Stop() {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    const MutexLock lock(&mutex_);
    stopped_ = true;
    entries.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) entries.push_back(entry);
  }
  for (const std::shared_ptr<Entry>& entry : entries) {
    entry->batcher->Stop();
  }
}

std::shared_ptr<ModelRegistry::Entry> ModelRegistry::Find(
    const std::string& name) const {
  const MutexLock lock(&mutex_);
  const std::string& resolved = name.empty() ? default_name_ : name;
  const auto it = entries_.find(resolved);
  Require(it != entries_.end(), "unknown model '" + resolved + "'");
  return it->second;
}

}  // namespace grafics::serve
