#include "serve/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/error.h"

namespace grafics::serve {

Client::Client(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* addresses = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &addresses);
  Require(rc == 0, "Client: cannot resolve " + host + ": " +
                       std::string(::gai_strerror(rc)));
  std::string reason = "no addresses";
  for (const addrinfo* ai = addresses; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      fd_ = fd;
      break;
    }
    reason = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(addresses);
  Require(fd_ >= 0, "Client: cannot connect to " + host + ":" +
                        std::to_string(port) + ": " + reason);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Message Client::RoundTrip(const Message& request) {
  Require(connected(), "Client: not connected");
  SendFrame(fd_, request);
  std::optional<Message> reply = ReceiveFrame(fd_);
  Require(reply.has_value(), "Client: daemon closed the connection");
  return std::move(*reply);
}

std::optional<rf::FloorId> Client::Predict(const rf::SignalRecord& record) {
  const Message reply = RoundTrip(PredictRequest{record});
  const auto* response = std::get_if<PredictResponse>(&reply);
  Require(response != nullptr, "Client: unexpected reply to predict");
  switch (response->status) {
    case PredictStatus::kOk:
      return response->floor;
    case PredictStatus::kDiscarded:
      return std::nullopt;
    case PredictStatus::kError:
      throw Error("Client: daemon error: " + response->error);
  }
  throw Error("Client: bad predict status");
}

std::uint64_t Client::Ping() {
  const Message reply = RoundTrip(serve::Ping{});
  const auto* pong = std::get_if<Pong>(&reply);
  Require(pong != nullptr, "Client: unexpected reply to ping");
  return pong->model_generation;
}

std::uint64_t Client::Reload() {
  const Message reply = RoundTrip(ReloadRequest{});
  const auto* response = std::get_if<ReloadResponse>(&reply);
  Require(response != nullptr, "Client: unexpected reply to reload");
  Require(response->ok, "Client: reload failed: " + response->message);
  return response->model_generation;
}

}  // namespace grafics::serve
