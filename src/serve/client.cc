#include "serve/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.h"

namespace grafics::serve {

Client::Client(const std::string& host, std::uint16_t port,
               ClientConfig config)
    : config_(config) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* addresses = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &addresses);
  Require(rc == 0, "Client: cannot resolve " + host + ": " +
                       std::string(::gai_strerror(rc)));
  std::string reason = "no addresses";
  for (const addrinfo* ai = addresses; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      fd_ = fd;
      break;
    }
    reason = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(addresses);
  Require(fd_ >= 0, "Client: cannot connect to " + host + ":" +
                        std::to_string(port) + ": " + reason);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : config_(other.config_), fd_(other.fd_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    config_ = other.config_;
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Message Client::RoundTrip(const Message& request, std::uint32_t version) {
  Require(connected(), "Client: not connected");
  SendFrame(fd_, request, version);
  std::optional<Message> reply = ReceiveFrame(fd_, config_.max_frame_bytes);
  Require(reply.has_value(), "Client: daemon closed the connection");
  return std::move(*reply);
}

namespace {

/// Headroom for the frame header, type byte, model name, and record count.
constexpr std::size_t kFrameOverheadBudget = 256;

/// Where the chunk starting at `begin` ends, shared by PredictBatch and
/// Submit: a chunk closes at `max_records_per_frame` records (clamped to
/// [1, kMaxBatchRecords]) or as soon as the next record would push the
/// encoded frame over the daemon's kMaxFrameBytes cap, whichever comes
/// first — dense scans split by size, not just by count. A single record
/// beyond the cap still ships alone: the daemon rejects it either way, and
/// hiding it here would silently drop the query.
std::size_t ChunkEnd(const std::vector<rf::SignalRecord>& records,
                     std::size_t begin, std::size_t max_records_per_frame) {
  const std::size_t max_records =
      std::clamp<std::size_t>(max_records_per_frame, 1, kMaxBatchRecords);
  const std::size_t byte_budget = kMaxFrameBytes - kFrameOverheadBudget;
  std::size_t end = begin;
  std::size_t bytes = 0;
  while (end < records.size() && end - begin < max_records) {
    const std::size_t next = SignalRecordWireBytes(records[end]);
    if (end > begin && bytes + next > byte_budget) break;
    bytes += next;
    ++end;
  }
  return end;
}

}  // namespace

std::optional<rf::FloorId> Client::Predict(const rf::SignalRecord& record,
                                           const std::string& model) {
  return PredictBatch({record}, model).front();
}

std::vector<std::optional<rf::FloorId>> Client::PredictBatch(
    const std::vector<rf::SignalRecord>& records, const std::string& model,
    std::size_t max_records_per_frame) {
  Require(!records.empty(), "Client: empty predict batch");
  std::vector<std::optional<rf::FloorId>> predictions;
  predictions.reserve(records.size());
  // One frame (one round trip) per ChunkEnd chunk.
  std::size_t begin = 0;
  while (begin < records.size()) {
    const std::size_t end = ChunkEnd(records, begin, max_records_per_frame);
    PredictRequest request;
    request.model = model;
    request.records.assign(records.begin() + static_cast<long>(begin),
                           records.begin() + static_cast<long>(end));
    const Message reply = RoundTrip(request);
    const auto* response = std::get_if<PredictResponse>(&reply);
    Require(response != nullptr, "Client: unexpected reply to predict");
    // A lone error result for a multi-record chunk is the daemon's
    // best-effort frame-level failure report — surface its message instead
    // of a confusing count mismatch.
    if (response->results.size() == 1 &&
        response->results.front().status == PredictStatus::kError) {
      throw Error("Client: daemon error: " +
                  response->results.front().error);
    }
    Require(response->results.size() == end - begin,
            "Client: daemon answered a different number of records");
    for (const PredictResult& result : response->results) {
      switch (result.status) {
        case PredictStatus::kOk:
          predictions.emplace_back(result.floor);
          break;
        case PredictStatus::kDiscarded:
          predictions.emplace_back(std::nullopt);
          break;
        case PredictStatus::kError:
          throw Error("Client: daemon error: " + result.error);
      }
    }
    begin = end;
  }
  return predictions;
}

Pong Client::Ping(const std::string& model) {
  const Message reply = RoundTrip(serve::Ping{model});
  const auto* pong = std::get_if<Pong>(&reply);
  Require(pong != nullptr, "Client: unexpected reply to ping");
  return *pong;
}

std::uint64_t Client::Reload(const std::string& model,
                             std::uint64_t generation) {
  ReloadRequest request;
  request.model = model;
  request.generation = generation;
  const Message reply = RoundTrip(request);
  const auto* response = std::get_if<ReloadResponse>(&reply);
  Require(response != nullptr, "Client: unexpected reply to reload");
  Require(response->ok, "Client: reload failed: " + response->message);
  return response->model_generation;
}

ListModelsResponse Client::ListModels() {
  const Message reply = RoundTrip(ListModelsRequest{});
  const auto* response = std::get_if<ListModelsResponse>(&reply);
  Require(response != nullptr, "Client: unexpected reply to list-models");
  return *response;
}

StatsResponse Client::Stats(const std::string& model,
                            std::uint32_t version) {
  const Message reply = RoundTrip(StatsRequest{model}, version);
  const auto* response = std::get_if<StatsResponse>(&reply);
  Require(response != nullptr, "Client: unexpected reply to stats");
  return *response;
}

std::vector<SubmitResult> Client::Submit(
    const std::vector<rf::SignalRecord>& records, const std::string& model,
    std::size_t max_records_per_frame) {
  Require(!records.empty(), "Client: empty submit batch");
  std::vector<SubmitResult> results;
  results.reserve(records.size());
  // Same chunking rule as PredictBatch: one frame per ChunkEnd chunk.
  std::size_t begin = 0;
  while (begin < records.size()) {
    const std::size_t end = ChunkEnd(records, begin, max_records_per_frame);
    SubmitRecordsRequest request;
    request.model = model;
    request.records.assign(records.begin() + static_cast<long>(begin),
                           records.begin() + static_cast<long>(end));
    const Message reply = RoundTrip(request);
    const auto* response = std::get_if<SubmitRecordsResponse>(&reply);
    Require(response != nullptr, "Client: unexpected reply to submit");
    // A lone rejection for a multi-record chunk is the daemon's frame-level
    // failure report; surface its message instead of a count mismatch.
    if (response->results.size() == 1 && end - begin > 1 &&
        response->results.front().status == SubmitStatus::kRejected) {
      throw Error("Client: daemon error: " +
                  response->results.front().error);
    }
    Require(response->results.size() == end - begin,
            "Client: daemon answered a different number of records");
    results.insert(results.end(), response->results.begin(),
                   response->results.end());
    begin = end;
  }
  return results;
}

IngestStatsResponse Client::IngestStats(const std::string& model,
                                        std::uint32_t version) {
  const Message reply = RoundTrip(IngestStatsRequest{model}, version);
  const auto* response = std::get_if<IngestStatsResponse>(&reply);
  Require(response != nullptr, "Client: unexpected reply to ingest-stats");
  return *response;
}

CheckpointResponse Client::Checkpoint(const std::string& model) {
  const Message reply = RoundTrip(CheckpointRequest{model});
  const auto* response = std::get_if<CheckpointResponse>(&reply);
  Require(response != nullptr, "Client: unexpected reply to checkpoint");
  return *response;
}

CompactResponse Client::Compact(const std::string& model) {
  const Message reply = RoundTrip(CompactRequest{model});
  const auto* response = std::get_if<CompactResponse>(&reply);
  Require(response != nullptr, "Client: unexpected reply to compact");
  return *response;
}

ListArtifactsResponse Client::ListArtifacts(const std::string& model) {
  const Message reply = RoundTrip(ListArtifactsRequest{model});
  const auto* response = std::get_if<ListArtifactsResponse>(&reply);
  Require(response != nullptr, "Client: unexpected reply to list-artifacts");
  return *response;
}

std::string Client::Metrics() {
  const Message reply = RoundTrip(MetricsRequest{});
  const auto* response = std::get_if<MetricsResponse>(&reply);
  Require(response != nullptr, "Client: unexpected reply to metrics");
  return response->text;
}

namespace {

/// The one version-ladder walk every negotiated admin query shares: speak
/// the newest dialect on a fresh connection and retry one version down each
/// time the daemon rejects the frame. An older daemon rejects an unknown
/// version by dropping the connection without a reply, which surfaces as
/// the "closed the connection" transport error; anything else (daemon down,
/// socket errors, structured failures) propagates untouched so it is
/// reported as what it is, not masked as a version mismatch.
template <typename Attempt>
auto WalkVersionLadder(std::uint32_t floor_version, Attempt attempt)
    -> decltype(attempt(kProtocolVersion)) {
  for (std::uint32_t spoken = kProtocolVersion;; --spoken) {
    try {
      return attempt(spoken);
    } catch (const Error& e) {
      const bool version_rejection =
          std::string(e.what()).find("closed the connection") !=
          std::string::npos;
      if (spoken <= floor_version || !version_rejection) throw;
    }
  }
}

}  // namespace

Client::NegotiatedStatsResult Client::NegotiatedStats(const std::string& host,
                                                      std::uint16_t port,
                                                      const std::string& model,
                                                      ClientConfig config) {
  return WalkVersionLadder(2, [&](std::uint32_t spoken) {
    Client client(host, port, config);
    return NegotiatedStatsResult{client.Stats(model, spoken), spoken};
  });
}

Client::NegotiatedIngestStatsResult Client::NegotiatedIngestStats(
    const std::string& host, std::uint16_t port, const std::string& model,
    ClientConfig config) {
  // The ingest surface exists from v3 on, so the ladder stops there.
  return WalkVersionLadder(3, [&](std::uint32_t spoken) {
    Client client(host, port, config);
    return NegotiatedIngestStatsResult{client.IngestStats(model, spoken),
                                       spoken};
  });
}

}  // namespace grafics::serve
