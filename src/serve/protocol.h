// Wire protocol of the GRAFICS serving daemon.
//
// Every message travels as one length-prefixed frame on a TCP stream:
//
//   u32 payload_length            (little-endian, excludes the prefix itself)
//   payload:
//     "GSRV" magic + u32 version  (common/serialize.h WriteHeader)
//     u8 message type
//     type-specific body          (common/serialize.h primitives)
//
// Malformed input — bad magic, unsupported version, unknown type, truncated
// or oversized frames, trailing bytes — is rejected by throwing
// grafics::Error, never by crashing; servers drop the connection, clients
// surface the error. docs/protocol.md specifies the format field by field.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <variant>

#include "rf/signal_record.h"

namespace grafics::serve {

inline constexpr char kFrameMagic[4] = {'G', 'S', 'R', 'V'};
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Upper bound on a frame payload; declared lengths beyond this are rejected
/// before any allocation happens.
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;
/// Upper bound on observations per record (a dense scan sees ~1e3 APs).
inline constexpr std::size_t kMaxObservations = 1 << 16;
/// Default daemon port when none is given on the command line.
inline constexpr std::uint16_t kDefaultPort = 4817;

/// Floor query: one crowdsourced scan to classify.
struct PredictRequest {
  rf::SignalRecord record;

  bool operator==(const PredictRequest&) const = default;
};

enum class PredictStatus : std::uint8_t {
  kOk = 0,         // floor carries the prediction
  kDiscarded = 1,  // no MAC overlap with the model (outside the building)
  kError = 2,      // error carries the server-side message
};

struct PredictResponse {
  PredictStatus status = PredictStatus::kError;
  rf::FloorId floor = 0;
  std::string error;

  bool operator==(const PredictResponse&) const = default;
};

/// Health check; the reply carries the model generation so clients can
/// observe hot reloads.
struct Ping {
  bool operator==(const Ping&) const = default;
};

struct Pong {
  std::uint64_t model_generation = 0;

  bool operator==(const Pong&) const = default;
};

/// Admin-triggered model hot-reload from the daemon's model path (the
/// network sibling of SIGHUP). In-flight batches finish on the old snapshot.
struct ReloadRequest {
  bool operator==(const ReloadRequest&) const = default;
};

struct ReloadResponse {
  bool ok = false;
  std::uint64_t model_generation = 0;
  std::string message;

  bool operator==(const ReloadResponse&) const = default;
};

using Message = std::variant<PredictRequest, PredictResponse, Ping, Pong,
                             ReloadRequest, ReloadResponse>;

/// Wire encoding of one record: u64 observation count, then (u64 MAC bits,
/// f64 RSS dBm) per observation, then the optional floor label. Reading
/// validates MAC range, observation count, and MAC uniqueness.
void WriteSignalRecord(std::ostream& out, const rf::SignalRecord& record);
rf::SignalRecord ReadSignalRecord(std::istream& in);

/// Frame payload (header + type + body), without the u32 length prefix.
std::string EncodePayload(const Message& message);
/// Inverse of EncodePayload. Throws grafics::Error on malformed input,
/// including trailing bytes after a well-formed message.
Message DecodePayload(const std::string& payload);
/// Full frame: u32 length prefix followed by the payload.
std::string EncodeFrame(const Message& message);

/// Writes one frame to a connected socket. Throws grafics::Error when the
/// peer is gone (writes never raise SIGPIPE).
void SendFrame(int fd, const Message& message);
/// Reads one frame payload from a connected socket. Returns nullopt when the
/// peer closed cleanly before the first byte of a frame; throws
/// grafics::Error on truncated frames or declared lengths above max_bytes.
std::optional<std::string> ReceiveFramePayload(
    int fd, std::size_t max_bytes = kMaxFrameBytes);
/// ReceiveFramePayload + DecodePayload.
std::optional<Message> ReceiveFrame(int fd,
                                    std::size_t max_bytes = kMaxFrameBytes);

}  // namespace grafics::serve
