// Wire protocol of the GRAFICS serving daemon (version 7).
//
// Every message travels as one length-prefixed frame on a TCP stream:
//
//   u32 payload_length            (little-endian, excludes the prefix itself)
//   payload:
//     "GSRV" magic + u32 version  (common/serialize.h WriteHeader)
//     u8 message type
//     type-specific body          (common/serialize.h primitives)
//
// Version 2 adds multi-building serving on one daemon: requests carry an
// optional model name (empty = the daemon's default model), PredictRequest
// carries a whole vector of records answered with per-record statuses in one
// round trip, and admin messages enumerate models and their serving stats.
//
// Version 3 adds the online ingestion surface: SubmitRecords carries a batch
// of crowdsourced records to be journaled and folded into the named model in
// the background (per-record accept/reject statuses), IngestStats reports
// the per-model ingest counters, and ModelStats grows ingest provenance
// (publish source, pending ingest depth).
//
// Version 4 makes the copy-on-write snapshot model observable: ModelStats
// grows the bytes shared with other snapshots vs owned exclusively (see
// docs/architecture.md), and IngestModelStats grows per-fold latency
// (min/mean/max plus the most recent fold, microseconds).
//
// Version 5 makes the event-driven transport observable: StatsResponse
// grows a server-level TransportStats block (live connections, idle
// harvests, frames and bytes in/out, busy rejections, event workers) fed by
// the epoll event loop that replaced the thread-per-connection transport.
// The request/response bytes themselves are unchanged — pipelining many
// requests on one connection was always legal framing; the v5 server just
// answers them without blocking a thread per socket.
//
// Version 6 adds the persistence surface of store::ModelStore: Checkpoint
// writes the served snapshot as a store generation (a delta of the owned
// copy-on-write chunks when possible), Compact folds the journal prefix
// into a fresh generation and truncates the journal, ListArtifacts
// enumerates a model's base/delta chain, ReloadRequest grows a generation
// pin (0 = current behavior, N = rollback to store generation N),
// StatsResponse grows a store block (base/delta counts, journal bytes
// reclaimed by compaction), and IngestModelStats grows journal replay
// observability (torn-tail bytes dropped at open, batches replayed).
//
// Version 7 adds the telemetry surface: MetricsRequest asks the daemon for
// a full metrics dump and MetricsResponse carries the obs::Registry render
// in Prometheus text exposition format — the same bytes `GET /metrics` on
// the admin port serves, for clients that already speak the binary
// protocol and do not want a second connection. No existing message
// changes shape.
//
// Versions 1-6 remain decodable byte-for-byte — a v1 request is a
// one-record batch routed to the default model, v2..v6 frames simply omit
// the later versions' fields — and every reply is encoded in the version
// its request arrived in, so deployed clients keep working against a v7
// daemon.
//
// Malformed input — bad magic, unsupported version, unknown type, truncated
// or oversized frames, out-of-range names or batch sizes, trailing bytes —
// is rejected by throwing grafics::Error, never by crashing; servers drop
// the connection, clients surface the error. docs/protocol.md specifies the
// format field by field, including the migration notes between versions.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "rf/signal_record.h"

namespace grafics::serve {

inline constexpr char kFrameMagic[4] = {'G', 'S', 'R', 'V'};
/// Highest protocol version this build speaks (and the encoding default).
inline constexpr std::uint32_t kProtocolVersion = 7;
/// Oldest protocol version still decoded; v1 requests route to the default
/// model and get v1-encoded replies.
inline constexpr std::uint32_t kMinProtocolVersion = 1;
/// Upper bound on a frame payload; declared lengths beyond this are rejected
/// before any allocation happens.
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;
/// Upper bound on observations per record (a dense scan sees ~1e3 APs).
inline constexpr std::size_t kMaxObservations = 1 << 16;
/// Upper bound on a model name on the wire and in the registry.
inline constexpr std::size_t kMaxModelNameBytes = 128;
/// Upper bound on records per PredictRequest (and results per response);
/// clients split bigger workloads across frames.
inline constexpr std::size_t kMaxBatchRecords = 1024;
/// Upper bound on models per ListModels/Stats response.
inline constexpr std::size_t kMaxModels = 4096;
/// Upper bound on artifacts per ListArtifacts response (v6).
inline constexpr std::size_t kMaxArtifacts = 65536;
/// Upper bound on an artifact file name/path on the wire (v6).
inline constexpr std::size_t kMaxArtifactFileBytes = 4096;
/// Default daemon port when none is given on the command line.
inline constexpr std::uint16_t kDefaultPort = 4817;

/// Floor query: a batch of crowdsourced scans to classify against one named
/// model (empty = the daemon's default). v1 frames carry exactly one record
/// and no name.
struct PredictRequest {
  std::string model;
  std::vector<rf::SignalRecord> records;

  bool operator==(const PredictRequest&) const = default;
};

enum class PredictStatus : std::uint8_t {
  kOk = 0,         // floor carries the prediction
  kDiscarded = 1,  // no MAC overlap with the model (outside the building)
  kError = 2,      // error carries the server-side message
};

/// One record's answer; errors (unknown model, untrained snapshot) are
/// per-record statuses, never dropped connections.
struct PredictResult {
  PredictStatus status = PredictStatus::kError;
  rf::FloorId floor = 0;
  std::string error;

  bool operator==(const PredictResult&) const = default;
};

/// One result per requested record, in request order.
struct PredictResponse {
  std::vector<PredictResult> results;

  bool operator==(const PredictResponse&) const = default;
};

/// Health check for one named model (empty = default); the reply carries the
/// negotiated protocol version and the model generation so clients can tell
/// a v1 daemon from a v2 one and observe hot reloads.
struct Ping {
  std::string model;

  bool operator==(const Ping&) const = default;
};

struct Pong {
  /// Protocol version the server negotiated for this connection's replies.
  /// Decoded v1 pongs report 1 (the field is implicit in the frame header).
  std::uint32_t protocol_version = kProtocolVersion;
  /// False when the pinged model name is unknown; error says so.
  bool ok = true;
  std::uint64_t model_generation = 0;
  std::string error;

  bool operator==(const Pong&) const = default;
};

/// Admin-triggered hot-reload of one named model (empty = default) from its
/// on-disk artifact (the network sibling of SIGHUP). In-flight batches
/// finish on the old snapshot; other models are untouched.
struct ReloadRequest {
  std::string model;
  /// v6 only: 0 reloads from the recorded artifact (or the store's latest
  /// generation when the daemon runs with --store-dir); a non-zero value
  /// pins the reload to that store generation — the rollback primitive.
  /// Encoding a non-zero pin at v1..v5 throws (those dialects cannot ask
  /// for it).
  std::uint64_t generation = 0;

  bool operator==(const ReloadRequest&) const = default;
};

struct ReloadResponse {
  bool ok = false;
  std::uint64_t model_generation = 0;
  std::string message;

  bool operator==(const ReloadResponse&) const = default;
};

/// v2-only admin: enumerate the registry.
struct ModelInfo {
  std::string name;
  std::uint64_t generation = 0;
  /// True when the model has an on-disk artifact for ReloadRequest/SIGHUP.
  bool reloadable = false;

  bool operator==(const ModelInfo&) const = default;
};

struct ListModelsRequest {
  bool operator==(const ListModelsRequest&) const = default;
};

struct ListModelsResponse {
  std::string default_model;
  std::vector<ModelInfo> models;

  bool operator==(const ListModelsResponse&) const = default;
};

/// How a model's current snapshot got published (ModelStats, since v3).
enum class PublishSource : std::uint8_t {
  kDisk = 0,    // Load/LoadFromDisk/ReloadFromDisk (artifact or in-process)
  kIngest = 1,  // background fold-in publish by the ingest pipeline
};

/// v2-only admin: per-model serving counters (empty model = all models).
/// Fields after queue_depth exist on the wire only from v3 on, and the
/// snapshot-accounting fields only from v4 on; older encodings omit them
/// (and decoded older frames report their defaults).
struct ModelStats {
  std::string name;
  std::uint64_t generation = 0;
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  /// Records enqueued but not yet dispatched at the time of the request.
  std::uint64_t queue_depth = 0;
  /// What published the snapshot now serving (disk load vs ingest fold-in).
  PublishSource last_publish_source = PublishSource::kDisk;
  /// Submitted records accepted but not yet folded into the model.
  std::uint64_t pending_ingest = 0;
  /// v4 only: copy-on-write accounting of the serving snapshot's heap —
  /// bytes whose chunks are shared with other snapshots (forks being
  /// folded, in-flight readers of an old generation) vs bytes owned
  /// exclusively. A publish that doubled resident memory would show up
  /// here as owned ~= model size on both generations; structural sharing
  /// shows up as shared.
  std::uint64_t shared_bytes = 0;
  std::uint64_t owned_bytes = 0;

  bool operator==(const ModelStats&) const = default;
};

struct StatsRequest {
  std::string model;

  bool operator==(const StatsRequest&) const = default;
};

/// v5-only: server-level counters of the event-driven transport, one block
/// per StatsResponse (they are per-daemon, not per-model). All counters are
/// cumulative since the daemon started except connections_live and
/// event_workers, which are instantaneous.
struct TransportStats {
  /// Connections currently registered with the event loop.
  std::uint64_t connections_live = 0;
  /// Idle connections closed by the harvester (no in-flight requests, no
  /// unflushed output, quiet past the idle timeout — including slow-loris
  /// partial frames).
  std::uint64_t connections_harvested_idle = 0;
  /// Well-formed frames decoded from / encoded to the wire.
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  /// Raw TCP payload bytes moved, including frame length prefixes.
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Requests refused by admission control (per-connection in-flight cap or
  /// per-model queue-depth bound) with a structured busy error.
  std::uint64_t requests_rejected_busy = 0;
  /// Epoll worker threads serving connections.
  std::uint64_t event_workers = 0;

  bool operator==(const TransportStats&) const = default;
};

/// v6-only: daemon-level persistence counters, one block per StatsResponse.
struct StoreStats {
  /// False when the daemon runs without --store-dir; the counts are then 0.
  bool enabled = false;
  /// Full-snapshot and delta-checkpoint artifacts across every model chain.
  std::uint64_t base_count = 0;
  std::uint64_t delta_count = 0;
  /// Journal bytes reclaimed by compaction since the daemon started.
  std::uint64_t journal_bytes_reclaimed = 0;

  bool operator==(const StoreStats&) const = default;
};

struct StatsResponse {
  std::uint64_t connections_accepted = 0;
  std::vector<ModelStats> models;
  /// v5 only; decoded older frames report all-zero defaults.
  TransportStats transport;
  /// v6 only; decoded older frames report a disabled store.
  StoreStats store;

  bool operator==(const StatsResponse&) const = default;
};

/// v3-only: submit a batch of crowdsourced records for background fold-in to
/// the named model (empty = default). Records may carry floor labels; the
/// labels ride along into the journal but Update ignores them (relabeling
/// requires retraining). Batch size is bounded exactly like PredictRequest.
struct SubmitRecordsRequest {
  std::string model;
  std::vector<rf::SignalRecord> records;

  bool operator==(const SubmitRecordsRequest&) const = default;
};

enum class SubmitStatus : std::uint8_t {
  kAccepted = 0,  // journaled durably; will be folded in the background
  kRejected = 1,  // error says why (empty record, backpressure, bad model)
};

/// One submitted record's fate; rejection is a per-record status, never a
/// dropped connection.
struct SubmitResult {
  SubmitStatus status = SubmitStatus::kRejected;
  std::string error;

  bool operator==(const SubmitResult&) const = default;
};

/// One result per submitted record, in request order.
struct SubmitRecordsResponse {
  std::vector<SubmitResult> results;

  bool operator==(const SubmitRecordsResponse&) const = default;
};

/// v3-only admin: per-model ingest pipeline counters.
struct IngestModelStats {
  std::string name;
  /// Records accepted (journaled + queued) since the daemon started.
  std::uint64_t accepted = 0;
  /// Records rejected at submission (validation or backpressure).
  std::uint64_t rejected = 0;
  /// Accepted records not yet folded into the served model.
  std::uint64_t pending = 0;
  /// Records folded into published snapshots since the daemon started.
  std::uint64_t folded = 0;
  /// Records replayed from the journal at startup.
  std::uint64_t replayed = 0;
  /// Current journal size in bytes (0 when journaling is disabled).
  std::uint64_t journal_bytes = 0;
  /// Snapshot publishes performed by the pipeline (including the replay).
  std::uint64_t publishes = 0;
  /// Registry generation of the pipeline's most recent publish (0 = none).
  std::uint64_t last_publish_generation = 0;
  /// v4 only: per-fold latency (fork + Update + publish), microseconds,
  /// over every fold since the daemon started; all zero before the first
  /// fold.
  std::uint64_t fold_min_us = 0;
  std::uint64_t fold_mean_us = 0;
  std::uint64_t fold_max_us = 0;
  /// v4 only: latency of the most recent fold.
  std::uint64_t last_fold_us = 0;
  /// v6 only: torn-tail bytes the journal open scan discarded at startup
  /// (0 = the journal was clean).
  std::uint64_t journal_dropped_bytes = 0;
  /// v6 only: committed fold batches re-applied from the journal at startup
  /// (after a compaction, the replay is the pending suffix only — this is
  /// what "restart without full-journal replay" looks like in numbers).
  std::uint64_t replayed_batches = 0;

  bool operator==(const IngestModelStats&) const = default;
};

struct IngestStatsRequest {
  std::string model;

  bool operator==(const IngestStatsRequest&) const = default;
};

struct IngestStatsResponse {
  /// False when the daemon runs without an ingest pipeline; models is empty.
  bool enabled = false;
  std::vector<IngestModelStats> models;

  bool operator==(const IngestStatsResponse&) const = default;
};

/// v6-only admin: persist the named model's served snapshot (empty =
/// default) as the next store generation — a delta checkpoint of the owned
/// copy-on-write chunks when the snapshot descends from the previous
/// generation, a full base otherwise.
struct CheckpointRequest {
  std::string model;

  bool operator==(const CheckpointRequest&) const = default;
};

struct CheckpointResponse {
  bool ok = false;
  /// Store generation written (0 on failure).
  std::uint64_t generation = 0;
  /// True when the artifact is a delta checkpoint, false for a full base.
  bool delta = false;
  std::uint64_t bytes_written = 0;
  std::string message;

  bool operator==(const CheckpointResponse&) const = default;
};

/// v6-only admin: fold the named model's journal prefix into a fresh store
/// generation, publish it, and truncate the journal to the still-pending
/// suffix. Requires a daemon running with both --store-dir and journaling.
struct CompactRequest {
  std::string model;

  bool operator==(const CompactRequest&) const = default;
};

struct CompactResponse {
  bool ok = false;
  /// Store generation the compaction committed (0 on failure).
  std::uint64_t generation = 0;
  /// Journal bytes the truncation reclaimed.
  std::uint64_t journal_bytes_reclaimed = 0;
  std::string message;

  bool operator==(const CompactResponse&) const = default;
};

/// One artifact of a model's store chain (ListArtifactsResponse).
struct ArtifactEntry {
  std::uint64_t generation = 0;
  bool delta = false;
  std::string file;
  std::uint64_t bytes = 0;

  bool operator==(const ArtifactEntry&) const = default;
};

/// v6-only admin: enumerate the named model's artifact chain (empty =
/// default), oldest generation first.
struct ListArtifactsRequest {
  std::string model;

  bool operator==(const ListArtifactsRequest&) const = default;
};

struct ListArtifactsResponse {
  /// False when the daemon runs without --store-dir; artifacts is empty.
  bool enabled = false;
  std::vector<ArtifactEntry> artifacts;

  bool operator==(const ListArtifactsResponse&) const = default;
};

/// v7-only admin: dump the daemon's whole telemetry registry. The response
/// body is the Prometheus text exposition render — identical to what the
/// HTTP admin port's GET /metrics serves — so binary-protocol clients
/// (grafics remote-metrics) need no second connection or HTTP stack.
struct MetricsRequest {
  bool operator==(const MetricsRequest&) const = default;
};

struct MetricsResponse {
  /// Prometheus text exposition format, bounded by kMaxFrameBytes like any
  /// other frame.
  std::string text;

  bool operator==(const MetricsResponse&) const = default;
};

using Message =
    std::variant<PredictRequest, PredictResponse, Ping, Pong, ReloadRequest,
                 ReloadResponse, ListModelsRequest, ListModelsResponse,
                 StatsRequest, StatsResponse, SubmitRecordsRequest,
                 SubmitRecordsResponse, IngestStatsRequest,
                 IngestStatsResponse, CheckpointRequest, CheckpointResponse,
                 CompactRequest, CompactResponse, ListArtifactsRequest,
                 ListArtifactsResponse, MetricsRequest, MetricsResponse>;

/// Wire encoding of one record: u64 observation count, then (u64 MAC bits,
/// f64 RSS dBm) per observation, then the optional floor label. Reading
/// validates MAC range, observation count, and MAC uniqueness.
void WriteSignalRecord(std::ostream& out, const rf::SignalRecord& record);
rf::SignalRecord ReadSignalRecord(std::istream& in);
/// Exact encoded size of WriteSignalRecord's output, kept next to the
/// encoder so they cannot drift apart; clients use it to split batches
/// under kMaxFrameBytes.
std::size_t SignalRecordWireBytes(const rf::SignalRecord& record);

/// Frame payload (header + type + body), without the u32 length prefix,
/// encoded at `version`. Encoding at v1 throws grafics::Error for content
/// v1 cannot express: a non-empty model name, a batch of != 1 record, or a
/// v2-only message type.
std::string EncodePayload(const Message& message,
                          std::uint32_t version = kProtocolVersion);
/// Inverse of EncodePayload for any supported version. Throws grafics::Error
/// on malformed input, including trailing bytes after a well-formed message.
/// When `negotiated_version` is non-null it receives the frame's version as
/// soon as the header validates (so error handlers can reply in kind); v1
/// bodies decode to the v2 structs (one-record batch, empty model name).
Message DecodePayload(const std::string& payload,
                      std::uint32_t* negotiated_version = nullptr);
/// Full frame: u32 length prefix followed by the payload.
std::string EncodeFrame(const Message& message,
                        std::uint32_t version = kProtocolVersion);

/// Writes one frame to a connected socket. Throws grafics::Error when the
/// peer is gone (writes never raise SIGPIPE).
void SendFrame(int fd, const Message& message,
               std::uint32_t version = kProtocolVersion);
/// Reads one frame payload from a connected socket. Returns nullopt when the
/// peer closed cleanly before the first byte of a frame; throws
/// grafics::Error on truncated frames or declared lengths above max_bytes.
std::optional<std::string> ReceiveFramePayload(
    int fd, std::size_t max_bytes = kMaxFrameBytes);
/// ReceiveFramePayload + DecodePayload.
std::optional<Message> ReceiveFrame(int fd,
                                    std::size_t max_bytes = kMaxFrameBytes);

}  // namespace grafics::serve
