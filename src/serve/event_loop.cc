#include "serve/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/annotated_sync.h"
#include "common/error.h"

namespace grafics::serve {

namespace {

/// One recv() chunk; also bounds how much unparsed input a connection can
/// stage beyond a single maximal frame.
constexpr std::size_t kReadChunk = 64 * 1024;

/// epoll_event.data.u64 value reserved for the worker's wakeup eventfd.
constexpr std::uint64_t kWakeToken = 0;

std::uint32_t ReadLengthPrefix(const std::string& in) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

/// The built-in GRAFICS framing: 4-byte little-endian length prefix, with
/// the oversized-length rejection happening before any payload allocation.
ExtractResult LengthPrefixExtract(const std::string& in,
                                  std::size_t max_frame_bytes) {
  ExtractResult result;
  if (in.size() < 4) return result;
  const std::uint32_t declared = ReadLengthPrefix(in);
  if (declared > max_frame_bytes) {
    result.status = ExtractResult::Status::kError;
    result.error = "Server: frame declares " + std::to_string(declared) +
                   " bytes, above the " + std::to_string(max_frame_bytes) +
                   " byte limit";
    return result;
  }
  if (in.size() < 4u + declared) return result;
  result.status = ExtractResult::Status::kFrame;
  result.consumed = 4u + declared;
  result.payload = in.substr(4, declared);
  return result;
}

}  // namespace

/// Cross-thread completion channel into one worker. Lives behind a
/// shared_ptr held by the worker and by every outstanding Completion, so a
/// completion firing after Stop() finds `closed` instead of freed memory.
struct EventLoop::Completion::Mailbox {
  Mutex mutex;
  bool closed GRAFICS_GUARDED_BY(mutex) = false;
  // Deliberately unguarded: set once in Start() before the worker thread
  // exists, read lock-free by the worker's drain loop, and closed in Stop()
  // only after the join — the thread lifecycle is the happens-before edge.
  // Senders do take the mutex around their write() so the fd stays valid
  // (Stop closes it under the same mutex after flipping `closed`).
  int event_fd = -1;
  std::deque<Parcel> parcels GRAFICS_GUARDED_BY(mutex);
  // Freshly accepted fds for this worker.
  std::vector<int> adopted GRAFICS_GUARDED_BY(mutex);
};

void EventLoop::Completion::Send(std::string frame, bool close_after) const {
  if (mailbox_ == nullptr) return;
  const MutexLock lock(&mailbox_->mutex);
  if (mailbox_->closed) return;
  mailbox_->parcels.push_back({conn_, slot_, std::move(frame), close_after});
  // Writing the eventfd under the mutex keeps the fd valid: Stop() closes
  // it only after taking the same mutex and setting `closed`.
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(mailbox_->event_fd, &one, sizeof(one));
}

EventLoop::EventLoop(EventLoopConfig config, FrameHandler on_frame,
                     FramingErrorEncoder on_framing_error)
    : config_(config),
      on_frame_(std::move(on_frame)),
      on_framing_error_(std::move(on_framing_error)),
      extractor_(config_.extractor != nullptr
                     ? config_.extractor
                     : FrameExtractor([max = config_.max_frame_bytes](
                                          const std::string& in) {
                         return LengthPrefixExtract(in, max);
                       })) {
  Require(config_.workers >= 1, "EventLoop: workers >= 1");
  Require(on_frame_ != nullptr, "EventLoop: frame handler required");
}

EventLoop::~EventLoop() { Stop(); }

void EventLoop::Start() {
  Require(!started_.exchange(true), "EventLoop::Start: already started");
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    Require(worker->epoll_fd >= 0, "EventLoop: epoll_create1 failed");
    worker->mailbox = std::make_shared<Completion::Mailbox>();
    worker->mailbox->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    Require(worker->mailbox->event_fd >= 0, "EventLoop: eventfd failed");
    epoll_event wake{};
    wake.events = EPOLLIN;
    wake.data.u64 = kWakeToken;
    Require(::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD,
                        worker->mailbox->event_fd, &wake) == 0,
            "EventLoop: cannot register wakeup eventfd");
    worker->last_sweep = std::chrono::steady_clock::now();
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* raw = worker.get();
    worker->thread = std::thread([this, raw] { RunWorker(*raw); });
  }
}

void EventLoop::Stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  for (auto& worker : workers_) {
    // Not Completion::Send — that path refuses once `closed` flips, and
    // here we must wake even a worker whose mailbox is already empty.
    const MutexLock lock(&worker->mailbox->mutex);
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(worker->mailbox->event_fd, &one, sizeof(one));
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    {
      // After the join nothing reads the mailbox again; close it under its
      // mutex so a straggler Completion (batcher drain, ops pool) sees
      // `closed` before the eventfd number can be recycled.
      const MutexLock lock(&worker->mailbox->mutex);
      worker->mailbox->closed = true;
      ::close(worker->mailbox->event_fd);
      worker->mailbox->event_fd = -1;
      // Adoptions that slipped in after the worker drained its last batch
      // would otherwise leak their fds.
      for (const int fd : worker->mailbox->adopted) ::close(fd);
      worker->mailbox->adopted.clear();
    }
    ::close(worker->epoll_fd);
    worker->epoll_fd = -1;
  }
}

void EventLoop::Adopt(int fd) {
  const std::size_t index =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  const auto& mailbox = workers_[index]->mailbox;
  {
    const MutexLock lock(&mailbox->mutex);
    if (!mailbox->closed) {
      mailbox->adopted.push_back(fd);
      const std::uint64_t one = 1;
      [[maybe_unused]] const ssize_t n =
          ::write(mailbox->event_fd, &one, sizeof(one));
      return;
    }
  }
  ::close(fd);  // raced with Stop; the peer just sees a hang-up
}

EventLoopStats EventLoop::stats() const {
  EventLoopStats stats;
  stats.connections_live = connections_live_.load(std::memory_order_relaxed);
  stats.connections_harvested_idle =
      harvested_idle_.load(std::memory_order_relaxed);
  stats.frames_in = frames_in_.load(std::memory_order_relaxed);
  stats.frames_out = frames_out_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  stats.write_buffer_bytes =
      write_buffer_bytes_.load(std::memory_order_relaxed);
  stats.harvest_sweeps = harvest_sweeps_.load(std::memory_order_relaxed);
  stats.harvest_last_sweep_us =
      harvest_last_sweep_us_.load(std::memory_order_relaxed);
  stats.harvest_last_sweep_closed =
      harvest_last_sweep_closed_.load(std::memory_order_relaxed);
  return stats;
}

void EventLoop::RunWorker(Worker& worker) {
  std::vector<epoll_event> events(64);
  std::string scratch(kReadChunk, '\0');
  // Sweep at a fraction of the timeout (≤500ms) so a harvest is never late
  // by more than one sweep; without a timeout the eventfd is the only wake.
  const int wait_ms =
      config_.idle_timeout.count() > 0
          ? static_cast<int>(std::clamp<std::int64_t>(
                config_.idle_timeout.count() / 4, 10, 500))
          : -1;
  for (;;) {
    const int ready = ::epoll_wait(worker.epoll_fd, events.data(),
                                   static_cast<int>(events.size()), wait_ms);
    if (ready < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(ready, 0); ++i) {
      const epoll_event& event = events[static_cast<std::size_t>(i)];
      if (event.data.u64 == kWakeToken) {
        std::uint64_t drained = 0;
        while (::read(worker.mailbox->event_fd, &drained, sizeof(drained)) >
               0) {
        }
        continue;
      }
      // The map lookup also drops events for connections closed earlier in
      // this same batch.
      const auto it = worker.conns.find(event.data.u64);
      if (it == worker.conns.end()) continue;
      Conn& conn = it->second;
      if ((event.events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        if (!ReadConn(worker, conn, scratch)) continue;
      }
      if ((event.events & EPOLLOUT) != 0) {
        if (!FlushConn(worker, conn)) continue;
      }
      UpdateInterest(worker, conn);
    }
    DrainMailbox(worker);
    if (stopping_.load(std::memory_order_acquire)) break;
    HarvestIdle(worker);
  }
  for (auto& [id, conn] : worker.conns) {
    ::close(conn.fd);
    connections_live_.fetch_sub(1, std::memory_order_relaxed);
    write_buffer_bytes_.fetch_sub(conn.out.size(), std::memory_order_relaxed);
  }
  worker.conns.clear();
}

void EventLoop::AddConn(Worker& worker, int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ::close(fd);
    return;
  }
  const std::uint64_t id =
      next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = id;
  if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
    ::close(fd);
    return;
  }
  Conn conn;
  conn.fd = fd;
  conn.id = id;
  conn.armed = EPOLLIN;
  conn.last_activity = std::chrono::steady_clock::now();
  worker.conns.emplace(id, std::move(conn));
  connections_live_.fetch_add(1, std::memory_order_relaxed);
}

void EventLoop::CloseConn(Worker& worker, std::uint64_t id) {
  const auto it = worker.conns.find(id);
  if (it == worker.conns.end()) return;
  ::close(it->second.fd);  // also removes the fd from the epoll set
  write_buffer_bytes_.fetch_sub(it->second.out.size(),
                                std::memory_order_relaxed);
  worker.conns.erase(it);
  connections_live_.fetch_sub(1, std::memory_order_relaxed);
}

bool EventLoop::ReadConn(Worker& worker, Conn& conn, std::string& scratch) {
  while (!conn.stop_reading && !conn.peer_eof) {
    const ssize_t n =
        ::recv(conn.fd, scratch.data(), scratch.size(), MSG_DONTWAIT);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      conn.in.append(scratch.data(), static_cast<std::size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      ParseFrames(worker, conn);
      continue;
    }
    if (n == 0) {
      // Graceful EOF: answer what was pipelined, then FlushConn closes.
      conn.peer_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    // ECONNRESET and friends: the peer is gone; in-flight completions for
    // this connection are dropped on delivery.
    CloseConn(worker, conn.id);
    return false;
  }
  return FlushConn(worker, conn);
}

void EventLoop::ParseFrames(Worker& worker, Conn& conn) {
  while (!conn.stop_reading && !conn.in.empty()) {
    ExtractResult extracted = extractor_(conn.in);
    if (extracted.status == ExtractResult::Status::kNeedMore) return;
    if (extracted.status == ExtractResult::Status::kError) {
      // Framing violation (hostile length, oversized HTTP header): reject
      // before allocating. The error reply takes a slot like any other
      // response so it still flushes after every earlier pipelined reply;
      // later input is discarded.
      Slot slot;
      slot.ready = true;
      slot.close_after = true;
      if (on_framing_error_ != nullptr) {
        slot.bytes = on_framing_error_(extracted.error);
      }
      conn.slots.push_back(std::move(slot));
      conn.stop_reading = true;
      conn.in.clear();
      return;
    }
    if (extracted.consumed == 0) return;  // defective extractor; don't spin
    conn.in.erase(0, extracted.consumed);
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t slot_index = conn.base_slot + conn.slots.size();
    conn.slots.emplace_back();
    ++conn.open_slots;
    on_frame_(std::move(extracted.payload), conn.open_slots,
              Completion(worker.mailbox, conn.id, slot_index));
  }
}

bool EventLoop::FlushConn(Worker& worker, Conn& conn) {
  // Promote the ready prefix of the slot queue: this is what keeps replies
  // in request order however completions interleave.
  while (!conn.slots.empty() && conn.slots.front().ready) {
    Slot& slot = conn.slots.front();
    if (!slot.bytes.empty()) {
      conn.out.append(slot.bytes);
      frames_out_.fetch_add(1, std::memory_order_relaxed);
      write_buffer_bytes_.fetch_add(slot.bytes.size(),
                                    std::memory_order_relaxed);
    }
    const bool close_after = slot.close_after;
    conn.slots.pop_front();
    ++conn.base_slot;
    if (close_after) {
      // Error reply semantics: hang up after this frame. Later pipelined
      // slots are dropped; their completions miss the bounds check on
      // delivery and vanish.
      conn.closing = true;
      conn.open_slots = 0;
      conn.slots.clear();
      break;
    }
  }
  std::size_t written = 0;
  while (written < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + written,
                             conn.out.size() - written,
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET on a partial write: clean teardown, not a crash —
    // a vanished client is routine at this scale.
    CloseConn(worker, conn.id);
    return false;
  }
  conn.out.erase(0, written);
  write_buffer_bytes_.fetch_sub(written, std::memory_order_relaxed);
  if (conn.out.empty() &&
      (conn.closing || (conn.peer_eof && conn.slots.empty()))) {
    CloseConn(worker, conn.id);
    return false;
  }
  return true;
}

void EventLoop::UpdateInterest(Worker& worker, Conn& conn) {
  std::uint32_t want = 0;
  // EOF and framing-error states must drop EPOLLIN: with level triggering
  // a readable-at-EOF socket would otherwise spin the worker.
  if (!conn.stop_reading && !conn.peer_eof) want |= EPOLLIN;
  if (!conn.out.empty()) want |= EPOLLOUT;
  if (want == conn.armed) return;
  epoll_event event{};
  event.events = want;
  event.data.u64 = conn.id;
  if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &event) == 0) {
    conn.armed = want;
  }
}

void EventLoop::DrainMailbox(Worker& worker) {
  std::vector<int> adopted;
  std::deque<Parcel> parcels;
  {
    const MutexLock lock(&worker.mailbox->mutex);
    adopted.swap(worker.mailbox->adopted);
    parcels.swap(worker.mailbox->parcels);
  }
  for (const int fd : adopted) {
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    AddConn(worker, fd);
  }
  for (Parcel& parcel : parcels) {
    const auto it = worker.conns.find(parcel.conn);
    if (it == worker.conns.end()) continue;  // connection already gone
    Conn& conn = it->second;
    // Bounds check against the live slot window: stale parcels (slots
    // dropped by a close_after, duplicate Sends) fall outside it.
    if (parcel.slot < conn.base_slot ||
        parcel.slot - conn.base_slot >= conn.slots.size()) {
      continue;
    }
    Slot& slot = conn.slots[static_cast<std::size_t>(parcel.slot -
                                                     conn.base_slot)];
    if (slot.ready) continue;  // duplicate completion
    slot.ready = true;
    slot.bytes = std::move(parcel.bytes);
    slot.close_after = parcel.close_after;
    --conn.open_slots;
    if (FlushConn(worker, conn)) UpdateInterest(worker, conn);
  }
}

void EventLoop::HarvestIdle(Worker& worker) {
  if (config_.idle_timeout.count() <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  if (now - worker.last_sweep < config_.idle_timeout / 4) return;
  worker.last_sweep = now;
  std::uint64_t closed = 0;
  for (auto it = worker.conns.begin(); it != worker.conns.end();) {
    Conn& conn = it->second;
    // Never harvest a connection with unanswered requests — a slow model
    // is not an idle peer. Quiet partial frames (slow loris) and stuck
    // writers both have open_slots == 0 and no socket activity.
    if (conn.open_slots == 0 &&
        now - conn.last_activity > config_.idle_timeout) {
      ::close(conn.fd);
      write_buffer_bytes_.fetch_sub(conn.out.size(),
                                    std::memory_order_relaxed);
      it = worker.conns.erase(it);
      connections_live_.fetch_sub(1, std::memory_order_relaxed);
      harvested_idle_.fetch_add(1, std::memory_order_relaxed);
      ++closed;
    } else {
      ++it;
    }
  }
  // Last-sweep visibility (the lifetime harvested count hides storms):
  // sweep duration plus how many connections this particular sweep closed.
  // Workers overwrite each other's "last" values; any recent sweep is an
  // equally good storm signal.
  const auto swept_us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - now);
  harvest_sweeps_.fetch_add(1, std::memory_order_relaxed);
  harvest_last_sweep_us_.store(static_cast<std::uint64_t>(swept_us.count()),
                               std::memory_order_relaxed);
  harvest_last_sweep_closed_.store(closed, std::memory_order_relaxed);
}

}  // namespace grafics::serve
