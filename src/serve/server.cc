#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.h"
#include "ingest/ingest_pipeline.h"

namespace grafics::serve {

namespace {

void SetNoDelay(int fd) {
  // Micro-batching already trades latency deliberately; don't let Nagle add
  // an uncontrolled 40ms on top of the configured max_delay.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Server::Server(std::shared_ptr<ModelRegistry> registry, ServerConfig config)
    : config_(std::move(config)), registry_(std::move(registry)) {
  Require(registry_ != nullptr && registry_->size() > 0,
          "Server: requires a registry with at least one model");
}

Server::~Server() { Stop(); }

void Server::AttachIngest(std::shared_ptr<ingest::IngestPipeline> ingest) {
  Require(!started_, "Server::AttachIngest: attach before Start");
  ingest_ = std::move(ingest);
}

void Server::Start() {
  Require(!started_, "Server::Start: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  Require(listen_fd_ >= 0, "Server: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  Require(::inet_pton(AF_INET, config_.host.c_str(), &address.sin_addr) == 1,
          "Server: bad host address " + config_.host);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("Server: cannot listen on " + config_.host + ":" +
                std::to_string(config_.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size);
  port_ = ntohs(bound.sin_port);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Server::Stop() {
  if (!started_ || stopping_.exchange(true)) return;
  // Wake the accept loop, then disconnect clients. Handler threads blocked
  // on registry futures finish normally — the registry keeps running; it is
  // stopped by its owner, not the transport.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Splice the list out under the lock but join outside it: handlers call
  // ReapFinished (which takes connections_mutex_) on their way out, so
  // joining them while holding the mutex would deadlock. Splicing keeps the
  // nodes alive for handlers still touching their own Connection.
  std::list<Connection> remaining;
  {
    const std::scoped_lock lock(connections_mutex_);
    for (Connection& connection : connections_) {
      ::shutdown(connection.fd, SHUT_RDWR);
    }
    remaining.splice(remaining.begin(), connections_);
  }
  for (Connection& connection : remaining) {
    if (connection.thread.joinable()) connection.thread.join();
    ::close(connection.fd);
  }
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_) return;  // listen socket shut down by Stop
      // A daemon must outlive transient accept failures: aborted backlog
      // entries and fd exhaustion are recoverable, so reap (frees fds of
      // finished connections), back off briefly, and keep accepting.
      if (errno == EINTR || errno == ECONNABORTED || errno == EMFILE ||
          errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        ReapFinished();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // unrecoverable (EBADF, EINVAL, ...)
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    SetNoDelay(fd);
    ++connections_accepted_;
    ReapFinished();
    const std::scoped_lock lock(connections_mutex_);
    connections_.emplace_back();
    Connection& connection = connections_.back();
    connection.fd = fd;
    connection.thread =
        std::thread([this, &connection] { ServeConnection(connection); });
  }
}

void Server::ReapFinished() {
  const std::scoped_lock lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done.load()) {
      if (it->thread.joinable()) it->thread.join();
      ::close(it->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

PredictResponse Server::HandlePredict(PredictRequest request) {
  PredictResponse response;
  response.results.resize(request.records.size());
  std::vector<std::future<std::optional<rf::FloorId>>> futures;
  try {
    // Submit the whole client batch before waiting on anything, so it lands
    // in as few micro-batch flushes as the batcher config allows — the one
    // round trip per batch the v2 protocol is for.
    futures = registry_->SubmitBatch(request.model,
                                     std::move(request.records));
  } catch (const std::exception& e) {
    // Unknown model name (or a stopped registry): a structured per-record
    // error status, never a dropped connection.
    for (PredictResult& result : response.results) {
      result.status = PredictStatus::kError;
      result.error = e.what();
    }
    return response;
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    PredictResult& result = response.results[i];
    try {
      const std::optional<rf::FloorId> floor = futures[i].get();
      result.status =
          floor.has_value() ? PredictStatus::kOk : PredictStatus::kDiscarded;
      result.floor = floor.value_or(0);
    } catch (const std::exception& e) {
      result.status = PredictStatus::kError;
      result.error = e.what();
    }
  }
  return response;
}

Pong Server::HandlePing(const Ping& ping, std::uint32_t version) {
  Pong pong;
  pong.protocol_version = version;
  try {
    pong.model_generation = registry_->generation(ping.model);
  } catch (const std::exception& e) {
    pong.ok = false;
    pong.error = e.what();
  }
  return pong;
}

ReloadResponse Server::HandleReload(const ReloadRequest& request) {
  ReloadResponse response;
  try {
    response.model_generation = registry_->ReloadFromDisk(request.model);
    response.ok = true;
    response.message = "model reloaded";
  } catch (const std::exception& e) {
    response.ok = false;
    response.message = e.what();
    // Best effort: report the surviving generation for known models.
    try {
      response.model_generation = registry_->generation(request.model);
    } catch (...) {
    }
  }
  return response;
}

ListModelsResponse Server::HandleListModels() const {
  ListModelsResponse response;
  response.default_model = registry_->default_model();
  response.models = registry_->List();
  return response;
}

StatsResponse Server::HandleStats(const StatsRequest& request) const {
  StatsResponse response;
  response.connections_accepted = connections_accepted_.load();
  response.models = registry_->Stats(request.model);
  return response;
}

SubmitRecordsResponse Server::HandleSubmit(SubmitRecordsRequest request) {
  SubmitRecordsResponse response;
  if (ingest_ == nullptr) {
    response.results.resize(request.records.size());
    for (SubmitResult& result : response.results) {
      result.error = "ingest disabled on this daemon (no --journal-dir / "
                     "pipeline attached)";
    }
    return response;
  }
  std::vector<ingest::SubmitResult> results;
  try {
    results = ingest_->Submit(request.model, std::move(request.records));
  } catch (const std::exception& e) {
    // Defensive: Submit reports per-record problems in its results; an
    // exception here is transport-worthy but still answered structurally.
    response.results.resize(1);
    response.results.front().error = e.what();
    return response;
  }
  response.results.reserve(results.size());
  for (ingest::SubmitResult& result : results) {
    response.results.push_back(
        {result.accepted ? SubmitStatus::kAccepted : SubmitStatus::kRejected,
         std::move(result.error)});
  }
  return response;
}

IngestStatsResponse Server::HandleIngestStats(
    const IngestStatsRequest& request) const {
  IngestStatsResponse response;
  if (ingest_ == nullptr) return response;  // enabled = false
  response.enabled = true;
  response.models = ingest_->Stats(request.model);
  return response;
}

void Server::ServeConnection(Connection& connection) {
  const int fd = connection.fd;
  // The dialect of the last well-formed frame header, used to encode both
  // replies and the best-effort error frame below: a peer that has only
  // ever sent v1 gets its error as v1.
  std::uint32_t version = kMinProtocolVersion;
  try {
    for (;;) {
      const std::optional<std::string> payload =
          ReceiveFramePayload(fd, config_.max_frame_bytes);
      if (!payload.has_value()) break;  // peer closed cleanly
      Message request = DecodePayload(*payload, &version);
      if (auto* predict = std::get_if<PredictRequest>(&request)) {
        SendFrame(fd, HandlePredict(std::move(*predict)), version);
      } else if (const auto* ping = std::get_if<Ping>(&request)) {
        SendFrame(fd, HandlePing(*ping, version), version);
      } else if (const auto* reload = std::get_if<ReloadRequest>(&request)) {
        SendFrame(fd, HandleReload(*reload), version);
      } else if (std::holds_alternative<ListModelsRequest>(request)) {
        SendFrame(fd, HandleListModels(), version);
      } else if (const auto* stats = std::get_if<StatsRequest>(&request)) {
        SendFrame(fd, HandleStats(*stats), version);
      } else if (auto* submit = std::get_if<SubmitRecordsRequest>(&request)) {
        SendFrame(fd, HandleSubmit(std::move(*submit)), version);
      } else if (const auto* ingest_stats =
                     std::get_if<IngestStatsRequest>(&request)) {
        SendFrame(fd, HandleIngestStats(*ingest_stats), version);
      } else {
        throw Error("Server: unexpected message type from client");
      }
    }
  } catch (const std::exception& e) {
    // Malformed frame or dead peer: best-effort error reply, then hang up.
    // The daemon itself stays up — protocol errors are per-connection.
    try {
      PredictResponse response;
      response.results.resize(1);
      response.results.front().status = PredictStatus::kError;
      response.results.front().error = e.what();
      SendFrame(fd, response, version);
    } catch (...) {
    }
  }
  // Release the TCP side now; the fd itself is closed after join (by
  // ReapFinished or Stop) so the descriptor number cannot be recycled while
  // Stop still holds a reference to it.
  ::shutdown(fd, SHUT_RDWR);
  // Reap earlier finishers before announcing our own exit (never
  // self-joining), so an idle daemon holds at most one finished handler
  // instead of a whole burst's worth of fds and threads.
  ReapFinished();
  connection.done.store(true);
}

}  // namespace grafics::serve
