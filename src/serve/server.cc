#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/error.h"

namespace grafics::serve {

namespace {

void SetNoDelay(int fd) {
  // Micro-batching already trades latency deliberately; don't let Nagle add
  // an uncontrolled 40ms on top of the configured max_delay.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Server::Server(std::shared_ptr<const core::Grafics> model,
               ServerConfig config, std::string model_path)
    : config_(std::move(config)), model_path_(std::move(model_path)) {
  Require(model != nullptr && model->is_trained(),
          "Server: requires a trained model");
  model_ = std::move(model);
  batcher_ = std::make_unique<MicroBatcher>(
      config_.batcher, [this] { return model_snapshot(); });
}

Server::~Server() { Stop(); }

void Server::Start() {
  Require(!started_, "Server::Start: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  Require(listen_fd_ >= 0, "Server: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  Require(::inet_pton(AF_INET, config_.host.c_str(), &address.sin_addr) == 1,
          "Server: bad host address " + config_.host);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("Server: cannot listen on " + config_.host + ":" +
                std::to_string(config_.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size);
  port_ = ntohs(bound.sin_port);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Server::Stop() {
  if (!started_ || stopping_.exchange(true)) return;
  // Wake the accept loop, then disconnect clients. Handler threads blocked
  // on batcher futures finish normally — the batcher is still running — and
  // only then is it drained.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Splice the list out under the lock but join outside it: handlers call
  // ReapFinished (which takes connections_mutex_) on their way out, so
  // joining them while holding the mutex would deadlock. Splicing keeps the
  // nodes alive for handlers still touching their own Connection.
  std::list<Connection> remaining;
  {
    const std::scoped_lock lock(connections_mutex_);
    for (Connection& connection : connections_) {
      ::shutdown(connection.fd, SHUT_RDWR);
    }
    remaining.splice(remaining.begin(), connections_);
  }
  for (Connection& connection : remaining) {
    if (connection.thread.joinable()) connection.thread.join();
    ::close(connection.fd);
  }
  batcher_->Stop();
}

std::shared_ptr<const core::Grafics> Server::model_snapshot() const {
  const std::scoped_lock lock(model_mutex_);
  return model_;
}

std::uint64_t Server::model_generation() const {
  const std::scoped_lock lock(model_mutex_);
  return generation_;
}

void Server::SetModel(std::shared_ptr<const core::Grafics> model) {
  Require(model != nullptr && model->is_trained(),
          "Server::SetModel: requires a trained model");
  const std::scoped_lock lock(model_mutex_);
  model_ = std::move(model);
  ++generation_;
}

void Server::ReloadFromDisk() {
  Require(!model_path_.empty(),
          "Server::ReloadFromDisk: no model path configured");
  // Load outside the model lock: clients keep being served from the old
  // snapshot for the whole (expensive) load.
  auto fresh = std::make_shared<const core::Grafics>(
      core::Grafics::LoadModel(model_path_));
  SetModel(std::move(fresh));
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_) return;  // listen socket shut down by Stop
      // A daemon must outlive transient accept failures: aborted backlog
      // entries and fd exhaustion are recoverable, so reap (frees fds of
      // finished connections), back off briefly, and keep accepting.
      if (errno == EINTR || errno == ECONNABORTED || errno == EMFILE ||
          errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        ReapFinished();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // unrecoverable (EBADF, EINVAL, ...)
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    SetNoDelay(fd);
    ++connections_accepted_;
    ReapFinished();
    const std::scoped_lock lock(connections_mutex_);
    connections_.emplace_back();
    Connection& connection = connections_.back();
    connection.fd = fd;
    connection.thread =
        std::thread([this, &connection] { ServeConnection(connection); });
  }
}

void Server::ReapFinished() {
  const std::scoped_lock lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done.load()) {
      if (it->thread.joinable()) it->thread.join();
      ::close(it->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::ServeConnection(Connection& connection) {
  const int fd = connection.fd;
  try {
    for (;;) {
      const std::optional<std::string> payload =
          ReceiveFramePayload(fd, config_.max_frame_bytes);
      if (!payload.has_value()) break;  // peer closed cleanly
      Message request = DecodePayload(*payload);
      if (auto* predict = std::get_if<PredictRequest>(&request)) {
        std::future<std::optional<rf::FloorId>> future =
            batcher_->Submit(std::move(predict->record));
        PredictResponse response;
        try {
          const std::optional<rf::FloorId> floor = future.get();
          response.status = floor.has_value() ? PredictStatus::kOk
                                              : PredictStatus::kDiscarded;
          response.floor = floor.value_or(0);
        } catch (const std::exception& e) {
          response.status = PredictStatus::kError;
          response.error = e.what();
        }
        SendFrame(fd, response);
      } else if (std::holds_alternative<Ping>(request)) {
        SendFrame(fd, Pong{model_generation()});
      } else if (std::holds_alternative<ReloadRequest>(request)) {
        ReloadResponse response;
        try {
          ReloadFromDisk();
          response.ok = true;
          response.message = "model reloaded";
        } catch (const std::exception& e) {
          response.ok = false;
          response.message = e.what();
        }
        response.model_generation = model_generation();
        SendFrame(fd, response);
      } else {
        throw Error("Server: unexpected message type from client");
      }
    }
  } catch (const std::exception& e) {
    // Malformed frame or dead peer: best-effort error reply, then hang up.
    // The daemon itself stays up — protocol errors are per-connection.
    try {
      PredictResponse response;
      response.status = PredictStatus::kError;
      response.error = e.what();
      SendFrame(fd, response);
    } catch (...) {
    }
  }
  // Release the TCP side now; the fd itself is closed after join (by
  // ReapFinished or Stop) so the descriptor number cannot be recycled while
  // Stop still holds a reference to it.
  ::shutdown(fd, SHUT_RDWR);
  // Reap earlier finishers before announcing our own exit (never
  // self-joining), so an idle daemon holds at most one finished handler
  // instead of a whole burst's worth of fds and threads.
  ReapFinished();
  connection.done.store(true);
}

}  // namespace grafics::serve
