#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include <cstdio>

#include "common/error.h"
#include "ingest/ingest_pipeline.h"
#include "obs/trace.h"
#include "store/model_store.h"

namespace grafics::serve {

namespace {

void SetNoDelay(int fd) {
  // Micro-batching already trades latency deliberately; don't let Nagle add
  // an uncontrolled 40ms on top of the configured max_delay.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Structured per-record failure: every result carries the same error, so
/// a v1 peer (exactly one record) and a v2+ batch both decode it.
PredictResponse ErrorResponse(std::size_t records, const std::string& what) {
  PredictResponse response;
  response.results.resize(std::max<std::size_t>(records, 1));
  for (PredictResult& result : response.results) {
    result.status = PredictStatus::kError;
    result.error = what;
  }
  return response;
}

}  // namespace

Server::Server(std::shared_ptr<ModelRegistry> registry, ServerConfig config)
    : config_(std::move(config)), registry_(std::move(registry)) {
  Require(registry_ != nullptr && registry_->size() > 0,
          "Server: requires a registry with at least one model");
  Require(config_.event_workers >= 1, "Server: event_workers >= 1");
  Require(config_.ops_threads >= 1, "Server: ops_threads >= 1");
}

Server::~Server() {
  // Quiesce the scrape hook before the transport it reads starts dying.
  obs_hook_.Detach();
  Stop();
}

void Server::AttachIngest(std::shared_ptr<ingest::IngestPipeline> ingest) {
  Require(!started_, "Server::AttachIngest: attach before Start");
  ingest_ = std::move(ingest);
}

void Server::AttachStore(std::shared_ptr<store::ModelStore> store) {
  Require(!started_, "Server::AttachStore: attach before Start");
  store_ = std::move(store);
}

void Server::AttachObs(std::shared_ptr<obs::Registry> obs) {
  Require(!started_, "Server::AttachObs: attach before Start");
  Require(obs != nullptr, "Server::AttachObs: null obs registry");
  Require(obs_ == nullptr, "Server::AttachObs: already attached");
  obs_ = std::move(obs);
  frame_decode_us_ = obs_->GetHistogram(
      "grafics_transport_frame_decode_us",
      "Microseconds spent decoding one request frame.",
      obs::DefaultLatencyBucketsUs());
  slow_requests_ = obs_->GetCounter(
      "grafics_server_slow_requests_total",
      "Predicts whose end-to-end time exceeded slow_request_us.");
  obs_hook_.Attach(obs_, [this] { SyncObs(); });
}

void Server::SyncObs() {
  const TransportStats transport = transport_stats();
  obs_->GetCounter("grafics_transport_accepts_total",
                   "Connections accepted since start.")
      ->SyncTo(connections_accepted_.load());
  obs_->GetCounter("grafics_transport_busy_rejections_total",
                   "Predicts refused by admission control "
                   "(per-connection in-flight or model queue-depth caps).")
      ->SyncTo(transport.requests_rejected_busy);
  obs_->GetGauge("grafics_transport_connections_live",
                 "Connections currently owned by the event loop.")
      ->Set(static_cast<std::int64_t>(transport.connections_live));
  obs_->GetCounter("grafics_transport_connections_harvested_total",
                   "Idle connections closed by the harvest sweep.")
      ->SyncTo(transport.connections_harvested_idle);
  obs_->GetCounter("grafics_transport_frames_in_total",
                   "Complete request frames parsed.")
      ->SyncTo(transport.frames_in);
  obs_->GetCounter("grafics_transport_frames_out_total",
                   "Reply frames fully written.")
      ->SyncTo(transport.frames_out);
  obs_->GetCounter("grafics_transport_bytes_in_total",
                   "Bytes read off client sockets.")
      ->SyncTo(transport.bytes_in);
  obs_->GetCounter("grafics_transport_bytes_out_total",
                   "Bytes written to client sockets.")
      ->SyncTo(transport.bytes_out);
  if (loop_ != nullptr) {
    // Process-local loop counters that are not on the wire.
    const EventLoopStats loop = loop_->stats();
    obs_->GetGauge("grafics_transport_write_buffer_bytes",
                   "Reply bytes buffered waiting for socket writability.")
        ->Set(static_cast<std::int64_t>(loop.write_buffer_bytes));
    obs_->GetCounter("grafics_transport_harvest_sweeps_total",
                     "Idle-harvest sweeps run across all workers.")
        ->SyncTo(loop.harvest_sweeps);
    obs_->GetGauge("grafics_transport_harvest_last_sweep_us",
                   "Duration of the most recent idle-harvest sweep.")
        ->Set(static_cast<std::int64_t>(loop.harvest_last_sweep_us));
    obs_->GetGauge("grafics_transport_harvest_last_sweep_closed",
                   "Connections closed by the most recent harvest sweep.")
        ->Set(static_cast<std::int64_t>(loop.harvest_last_sweep_closed));
  }
}

void Server::Start() {
  Require(!started_, "Server::Start: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  Require(listen_fd_ >= 0, "Server: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  Require(::inet_pton(AF_INET, config_.host.c_str(), &address.sin_addr) == 1,
          "Server: bad host address " + config_.host);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 1024) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("Server: cannot listen on " + config_.host + ":" +
                std::to_string(config_.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size);
  port_ = ntohs(bound.sin_port);

  EventLoopConfig loop_config;
  loop_config.workers = config_.event_workers;
  loop_config.idle_timeout = config_.idle_timeout;
  loop_config.max_frame_bytes = config_.max_frame_bytes;
  loop_ = std::make_unique<EventLoop>(
      loop_config,
      [this](std::string payload, std::size_t inflight,
             EventLoop::Completion done) {
        HandleFrame(std::move(payload), inflight, std::move(done));
      },
      [](const std::string& what) {
        // Hostile declared length: no payload exists, so no version was
        // negotiated — answer in the oldest dialect every peer decodes.
        return EncodeFrame(ErrorResponse(1, what), kMinProtocolVersion);
      });
  loop_->Start();
  ops_pool_ = std::make_unique<ThreadPool>(config_.ops_threads);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Server::Stop() {
  if (!started_ || stopping_.exchange(true)) return;
  // Wake the accept loop first so no new connections reach the event loop,
  // then stop the loop (disconnecting clients; late batcher completions
  // become no-ops), then drain the ops pool. The registry keeps running; it
  // is stopped by its owner, not the transport.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  loop_->Stop();
  ops_pool_.reset();
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_) return;  // listen socket shut down by Stop
      // A daemon must outlive transient accept failures: aborted backlog
      // entries and fd exhaustion are recoverable, so back off briefly and
      // keep accepting (the idle harvester frees fds in the background).
      if (errno == EINTR || errno == ECONNABORTED || errno == EMFILE ||
          errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // unrecoverable (EBADF, EINVAL, ...)
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    SetNoDelay(fd);
    ++connections_accepted_;
    loop_->Adopt(fd);
  }
}

void Server::HandleFrame(std::string payload, std::size_t inflight,
                         EventLoop::Completion done) {
  // The dialect of this frame's header, used to encode both the reply and
  // the best-effort error frame below: a peer speaking v1 gets v1 back.
  std::uint32_t version = kMinProtocolVersion;
  try {
    const auto decode_start = std::chrono::steady_clock::now();
    Message request = DecodePayload(payload, &version);
    if (frame_decode_us_ != nullptr) {
      frame_decode_us_->Observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - decode_start)
              .count()));
    }
    if (auto* predict = std::get_if<PredictRequest>(&request)) {
      HandlePredictAsync(std::move(*predict), version, inflight,
                         std::move(done));
    } else if (const auto* ping = std::get_if<Ping>(&request)) {
      done.Send(EncodeFrame(HandlePing(*ping, version), version));
    } else if (const auto* reload = std::get_if<ReloadRequest>(&request)) {
      // Reload deserializes a model artifact from disk — seconds, not
      // microseconds. Off the event worker; the slot keeps its place in
      // the connection's reply order while the load runs.
      ops_pool_->Submit([this, request = *reload, version, done] {
        done.Send(EncodeFrame(HandleReload(request), version));
      });
    } else if (std::holds_alternative<ListModelsRequest>(request)) {
      done.Send(EncodeFrame(HandleListModels(), version));
    } else if (const auto* stats = std::get_if<StatsRequest>(&request)) {
      done.Send(EncodeFrame(HandleStats(*stats), version));
    } else if (auto* submit = std::get_if<SubmitRecordsRequest>(&request)) {
      // Journal appends fdatasync; same treatment as reload.
      ops_pool_->Submit(
          [this, request = std::move(*submit), version, done]() mutable {
            done.Send(EncodeFrame(HandleSubmit(std::move(request)), version));
          });
    } else if (const auto* ingest_stats =
                   std::get_if<IngestStatsRequest>(&request)) {
      done.Send(EncodeFrame(HandleIngestStats(*ingest_stats), version));
    } else if (const auto* checkpoint =
                   std::get_if<CheckpointRequest>(&request)) {
      // Checkpoints serialize a model snapshot and fsync it — same blocking
      // profile as a reload, so same treatment.
      ops_pool_->Submit([this, request = *checkpoint, version, done] {
        done.Send(EncodeFrame(HandleCheckpoint(request), version));
      });
    } else if (const auto* compact = std::get_if<CompactRequest>(&request)) {
      // Compaction blocks until the ingest worker has staged + committed.
      ops_pool_->Submit([this, request = *compact, version, done] {
        done.Send(EncodeFrame(HandleCompact(request), version));
      });
    } else if (const auto* artifacts =
                   std::get_if<ListArtifactsRequest>(&request)) {
      done.Send(EncodeFrame(HandleListArtifacts(*artifacts), version));
    } else if (std::holds_alternative<MetricsRequest>(request)) {
      // Inline like Stats: the render walks per-model counters and chunk
      // tables, the same cost profile as HandleStats — no fsyncs, no disk.
      MetricsResponse metrics;
      if (obs_ != nullptr) metrics.text = obs_->RenderPrometheus();
      done.Send(EncodeFrame(metrics, version));
    } else {
      throw Error("Server: unexpected message type from client");
    }
  } catch (const std::exception& e) {
    // Malformed frame: best-effort error reply, then hang up. The daemon
    // itself stays up — protocol errors are per-connection.
    std::string frame;
    try {
      frame = EncodeFrame(ErrorResponse(1, e.what()), version);
    } catch (...) {
      // Even the error reply failed to encode (e.g. a v1 peer and a
      // message with no v1 shape): send nothing, just close.
    }
    done.Send(std::move(frame), /*close_after=*/true);
  }
}

void Server::HandlePredictAsync(PredictRequest request, std::uint32_t version,
                                std::size_t inflight,
                                EventLoop::Completion done) {
  const std::size_t count = request.records.size();
  if (count == 0) {
    done.Send(EncodeFrame(PredictResponse{}, version));
    return;
  }
  if (config_.max_inflight_per_connection > 0 &&
      inflight > config_.max_inflight_per_connection) {
    ++busy_rejections_;
    done.Send(EncodeFrame(
        ErrorResponse(count,
                      "busy: connection has " + std::to_string(inflight) +
                          " requests in flight (max " +
                          std::to_string(config_.max_inflight_per_connection) +
                          ")"),
        version));
    return;
  }
  // Shared across the per-record completions; the last one to finish
  // encodes and sends the response. The callbacks run on the model's
  // flusher thread, so they only fill slots — no blocking, no encoding
  // until the batch is complete.
  struct PendingPredict {
    PredictResponse response;
    std::atomic<std::size_t> remaining{0};
    std::uint32_t version = kProtocolVersion;
    EventLoop::Completion done;
    // Slow-request tracing, null/zero when disabled. Completions may
    // outlive the Server (the registry's flusher threads are stopped by
    // its owner, later), so everything the logging path touches is held
    // here — the obs shared_ptr pins the counter — not read off `this`.
    std::shared_ptr<obs::Trace> trace;
    std::string model;
    std::uint64_t slow_threshold_us = 0;
    obs::Counter* slow_counter = nullptr;
    std::shared_ptr<obs::Registry> obs;
  };
  auto pending = std::make_shared<PendingPredict>();
  pending->response.results.resize(count);
  pending->remaining.store(count, std::memory_order_relaxed);
  pending->version = version;
  pending->done = done;
  if (config_.slow_request_us > 0) {
    pending->trace = std::make_shared<obs::Trace>();
    pending->trace->Stamp("frame_decoded");
    pending->model = request.model;
    pending->slow_threshold_us = config_.slow_request_us;
    pending->slow_counter = slow_requests_;
    pending->obs = obs_;
  }
  try {
    // The flusher's completions happen-after this stamp via the batcher
    // mutex, so the trace is never touched from two threads at once.
    if (pending->trace != nullptr) pending->trace->Stamp("enqueued");
    const bool admitted = registry_->TrySubmitBatchAsync(
        request.model, std::move(request.records),
        [pending, count](std::size_t index, PredictOutcome outcome) {
          PredictResult& result = pending->response.results[index];
          const std::uint64_t queue_wait_us = outcome.queue_wait_us;
          const std::uint64_t predict_us = outcome.predict_us;
          if (!outcome.error.empty()) {
            result.status = PredictStatus::kError;
            result.error = std::move(outcome.error);
          } else if (outcome.floor.has_value()) {
            result.status = PredictStatus::kOk;
            result.floor = *outcome.floor;
          } else {
            result.status = PredictStatus::kDiscarded;
          }
          if (pending->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
              1) {
            if (pending->trace != nullptr) {
              // The last record's attribution stands in for the request:
              // with one batch per request (the common case) every record
              // shares the same predict time anyway.
              pending->trace->Note("queue_wait", queue_wait_us);
              pending->trace->Note("predict", predict_us);
            }
            pending->done.Send(
                EncodeFrame(pending->response, pending->version));
            if (pending->trace != nullptr) {
              pending->trace->Stamp("reply_flushed");
              const std::uint64_t total_us = pending->trace->ElapsedUs();
              if (total_us > pending->slow_threshold_us) {
                if (pending->slow_counter != nullptr) {
                  pending->slow_counter->Add();
                }
                std::fprintf(
                    stderr,
                    "grafics_served: slow-request model=%s records=%zu "
                    "total_us=%llu trace: %s\n",
                    pending->model.empty() ? "(default)"
                                           : pending->model.c_str(),
                    count,
                    static_cast<unsigned long long>(total_us),
                    pending->trace->Breakdown().c_str());
              }
            }
          }
        },
        config_.max_queue_depth);
    if (!admitted) {
      ++busy_rejections_;
      done.Send(EncodeFrame(
          ErrorResponse(count,
                        "busy: model queue depth would exceed " +
                            std::to_string(config_.max_queue_depth) +
                            " pending records"),
          version));
    }
  } catch (const std::exception& e) {
    // Unknown model name (or a stopped registry): a structured per-record
    // error status, never a dropped connection.
    done.Send(EncodeFrame(ErrorResponse(count, e.what()), version));
  }
}

Pong Server::HandlePing(const Ping& ping, std::uint32_t version) {
  Pong pong;
  pong.protocol_version = version;
  try {
    pong.model_generation = registry_->generation(ping.model);
  } catch (const std::exception& e) {
    pong.ok = false;
    pong.error = e.what();
  }
  return pong;
}

ReloadResponse Server::HandleReload(const ReloadRequest& request) {
  ReloadResponse response;
  try {
    if (request.generation != 0) {
      // Generation-pinned rollback goes straight to the store; re-reading
      // the recorded artifact path would load the wrong bytes.
      Require(store_ != nullptr,
              "Server: generation-pinned reload requires a persistence "
              "store (--store-dir)");
      response.model_generation =
          registry_->ReloadFromStore(request.model, request.generation);
      response.message = "model rolled back to store generation " +
                         std::to_string(request.generation);
    } else {
      response.model_generation = registry_->ReloadFromDisk(request.model);
      response.message = "model reloaded";
    }
    response.ok = true;
  } catch (const std::exception& e) {
    response.ok = false;
    response.message = e.what();
    // Best effort: report the surviving generation for known models.
    try {
      response.model_generation = registry_->generation(request.model);
    } catch (...) {
      // Unknown model: the reload error above already says so; leave the
      // generation at its zero default.
    }
  }
  return response;
}

ListModelsResponse Server::HandleListModels() const {
  ListModelsResponse response;
  response.default_model = registry_->default_model();
  response.models = registry_->List();
  return response;
}

StatsResponse Server::HandleStats(const StatsRequest& request) const {
  StatsResponse response;
  response.connections_accepted = connections_accepted_.load();
  response.models = registry_->Stats(request.model);
  response.transport = transport_stats();
  if (store_ != nullptr) {
    response.store.enabled = true;
    const store::ArtifactCounts counts = store_->Counts();
    response.store.base_count = counts.base_count;
    response.store.delta_count = counts.delta_count;
    if (ingest_ != nullptr) {
      response.store.journal_bytes_reclaimed =
          ingest_->JournalBytesReclaimed();
    }
  }
  return response;
}

TransportStats Server::transport_stats() const {
  TransportStats transport;
  transport.event_workers = config_.event_workers;
  transport.requests_rejected_busy = busy_rejections_.load();
  if (loop_ != nullptr) {
    const EventLoopStats loop = loop_->stats();
    transport.connections_live = loop.connections_live;
    transport.connections_harvested_idle = loop.connections_harvested_idle;
    transport.frames_in = loop.frames_in;
    transport.frames_out = loop.frames_out;
    transport.bytes_in = loop.bytes_in;
    transport.bytes_out = loop.bytes_out;
  }
  return transport;
}

SubmitRecordsResponse Server::HandleSubmit(SubmitRecordsRequest request) {
  SubmitRecordsResponse response;
  if (ingest_ == nullptr) {
    response.results.resize(request.records.size());
    for (SubmitResult& result : response.results) {
      result.error = "ingest disabled on this daemon (no --journal-dir / "
                     "pipeline attached)";
    }
    return response;
  }
  std::vector<ingest::SubmitResult> results;
  try {
    results = ingest_->Submit(request.model, std::move(request.records));
  } catch (const std::exception& e) {
    // Defensive: Submit reports per-record problems in its results; an
    // exception here is transport-worthy but still answered structurally.
    response.results.resize(1);
    response.results.front().error = e.what();
    return response;
  }
  response.results.reserve(results.size());
  for (ingest::SubmitResult& result : results) {
    response.results.push_back(
        {result.accepted ? SubmitStatus::kAccepted : SubmitStatus::kRejected,
         std::move(result.error)});
  }
  return response;
}

IngestStatsResponse Server::HandleIngestStats(
    const IngestStatsRequest& request) const {
  IngestStatsResponse response;
  if (ingest_ == nullptr) return response;  // enabled = false
  response.enabled = true;
  response.models = ingest_->Stats(request.model);
  return response;
}

CheckpointResponse Server::HandleCheckpoint(const CheckpointRequest& request) {
  CheckpointResponse response;
  try {
    Require(store_ != nullptr,
            "Server: checkpoint requires a persistence store (--store-dir)");
    const std::string name =
        request.model.empty() ? registry_->default_model() : request.model;
    store::StagedArtifact written;
    response.generation =
        store_->WriteCheckpoint(name, registry_->Snapshot(name), &written);
    response.delta = written.is_delta;
    response.bytes_written = written.bytes;
    response.ok = true;
    response.message = written.is_delta ? "delta checkpoint written"
                                        : "base checkpoint written";
  } catch (const std::exception& e) {
    response.ok = false;
    response.message = e.what();
  }
  return response;
}

CompactResponse Server::HandleCompact(const CompactRequest& request) {
  CompactResponse response;
  try {
    Require(ingest_ != nullptr,
            "Server: compaction requires the ingest pipeline "
            "(--journal-dir)");
    const ingest::IngestPipeline::CompactOutcome outcome =
        ingest_->CompactNow(request.model);
    response.generation = outcome.generation;
    response.journal_bytes_reclaimed = outcome.journal_bytes_reclaimed;
    response.ok = true;
    response.message = "journal compacted";
  } catch (const std::exception& e) {
    response.ok = false;
    response.message = e.what();
  }
  return response;
}

ListArtifactsResponse Server::HandleListArtifacts(
    const ListArtifactsRequest& request) const {
  ListArtifactsResponse response;
  if (store_ == nullptr) return response;  // enabled = false
  response.enabled = true;
  const std::string name =
      request.model.empty() ? registry_->default_model() : request.model;
  for (const store::ArtifactInfo& info : store_->List(name)) {
    response.artifacts.push_back(
        {info.generation, info.is_delta, info.file, info.bytes});
  }
  return response;
}

}  // namespace grafics::serve
