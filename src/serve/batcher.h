// Dynamic micro-batching for the serving daemon.
//
// Connection handlers enqueue single records; a dedicated flusher thread
// coalesces everything pending into one batch and dispatches it through
// Grafics::PredictBatch, so server throughput under load rides the PR 1
// snapshot-isolated parallel path instead of thread-per-request inference.
// A batch flushes as soon as it reaches max_batch_size, or when the oldest
// pending request has waited max_delay — the usual latency/throughput knob
// of dynamic batching systems.
//
// The model is resolved per flush through a snapshot callback returning a
// shared_ptr<const Grafics>, which is what makes hot-reload safe: a swap
// between flushes is picked up by the next batch, while an in-flight batch
// keeps the old snapshot alive until its futures resolve.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/annotated_sync.h"
#include "common/thread_pool.h"
#include "core/grafics.h"
#include "obs/metrics.h"
#include "rf/signal_record.h"

namespace grafics::serve {

/// Pre-resolved telemetry handles observed from the flusher thread; any
/// pointer may be null (that instrument is simply not recorded). Counters
/// and gauges derivable from BatcherStats are synced by the owner's
/// collection hook instead — only the distributions, which must be observed
/// at dispatch time, live here.
struct BatcherObsHandles {
  obs::Histogram* batch_size = nullptr;
  obs::Histogram* queue_wait_us = nullptr;
  obs::Histogram* predict_us = nullptr;
};

struct BatcherConfig {
  /// Flush as soon as this many requests are pending.
  std::size_t max_batch_size = 64;
  /// Flush once the oldest pending request has waited this long.
  std::chrono::microseconds max_delay{2000};
  /// Worker threads for the PredictBatch fan-out of each flush (0 maps to
  /// hardware_concurrency, 1 keeps dispatch on the flusher thread). Ignored
  /// when the owner passes a shared ThreadPool to the constructor.
  std::size_t predict_threads = 1;
  /// Per-model telemetry handles, resolved by the owner before
  /// construction (const thereafter, so the flusher reads them race-free).
  BatcherObsHandles obs;
};

struct BatcherStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  /// Requests enqueued but not yet dispatched at the time stats() was
  /// called; the registry surfaces it as the per-model queue depth.
  std::uint64_t queue_depth = 0;
  /// Why batches flushed, by trigger: the queue reached max_batch_size, the
  /// oldest request's max_delay budget expired, or Stop() drained the
  /// queue. batches == the sum of the three; a max_delay-dominated mix with
  /// small max_batch values is the signal that max_delay is set too low
  /// (or traffic is too thin) for batching to pay off.
  std::uint64_t flushes_max_batch = 0;
  std::uint64_t flushes_max_delay = 0;
  std::uint64_t flushes_shutdown = 0;
};

/// One record's completion, delivered to a SubmitAsync callback from the
/// flusher (or pool) thread. `error` empty means the record was served:
/// floor carries the prediction, nullopt = discarded (no MAC overlap).
struct PredictOutcome {
  std::optional<rf::FloorId> floor;
  std::string error;
  /// Time the record spent queued before its batch dispatched, and how long
  /// the batch's PredictBatch call took — carried back so the server's
  /// slow-request trace can attribute latency without re-measuring.
  std::uint64_t queue_wait_us = 0;
  std::uint64_t predict_us = 0;
};

class MicroBatcher {
 public:
  using Snapshot = std::shared_ptr<const core::Grafics>;
  using SnapshotFn = std::function<Snapshot()>;

  /// `snapshot` is called once per flush from the flusher thread and must
  /// return a trained model; it is how the owner injects hot-reload.
  /// `shared_pool`, when non-null, runs the PredictBatch fan-out of every
  /// flush instead of an owned pool — the ModelRegistry hands one pool to
  /// all its per-model batchers so inference parallelism is bounded per
  /// process, not per model. The pool must outlive the batcher.
  MicroBatcher(BatcherConfig config, SnapshotFn snapshot,
               ThreadPool* shared_pool = nullptr);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  using Callback = std::function<void(PredictOutcome)>;
  using BatchCallback = std::function<void(std::size_t, PredictOutcome)>;

  /// Enqueues one record; the future resolves with the prediction (nullopt
  /// for discarded records) once the containing batch is dispatched. Throws
  /// grafics::Error after Stop().
  std::future<std::optional<rf::FloorId>> Submit(rf::SignalRecord record)
      GRAFICS_EXCLUDES(mutex_);

  /// Completion-callback twin of Submit for the event-driven transport: no
  /// thread blocks on a future; `done` runs on the flusher thread once the
  /// record's batch is dispatched (including during the Stop() drain), so it
  /// must be cheap and must not call back into the batcher. Throws
  /// grafics::Error after Stop() without invoking `done`.
  void SubmitAsync(rf::SignalRecord record, Callback done)
      GRAFICS_EXCLUDES(mutex_);

  /// Admission-controlled batch SubmitAsync: enqueues either every record or
  /// none. Returns false — enqueuing nothing, invoking nothing — when
  /// `max_queue_depth` > 0 and the queue would exceed it; the caller turns
  /// that into a structured busy error. On success `done(i, outcome)` runs
  /// once per record. Throws grafics::Error after Stop().
  bool TrySubmitBatchAsync(std::vector<rf::SignalRecord> records,
                           BatchCallback done, std::size_t max_queue_depth)
      GRAFICS_EXCLUDES(mutex_);

  /// Drains everything pending (their futures still resolve), then rejects
  /// further Submits. Idempotent; also run by the destructor.
  void Stop() GRAFICS_EXCLUDES(stop_mutex_, mutex_);

  BatcherStats stats() const GRAFICS_EXCLUDES(mutex_);

 private:
  struct Pending {
    rf::SignalRecord record;
    Callback done;
    std::chrono::steady_clock::time_point enqueued;
  };

  void FlushLoop() GRAFICS_EXCLUDES(mutex_);
  /// Runs one batch through PredictBatch; called without the lock held.
  void Dispatch(std::vector<Pending> batch) GRAFICS_EXCLUDES(mutex_);

  const BatcherConfig config_;
  const SnapshotFn snapshot_;
  std::unique_ptr<ThreadPool> owned_pool_;  // null when shared or serial
  ThreadPool* pool_ = nullptr;  // shared or owned; null → serial dispatch

  Mutex stop_mutex_;  // serializes Stop (join-once, drain-complete)

  mutable Mutex mutex_;
  CondVar wake_;
  std::deque<Pending> pending_ GRAFICS_GUARDED_BY(mutex_);
  bool stopping_ GRAFICS_GUARDED_BY(mutex_) = false;
  BatcherStats stats_ GRAFICS_GUARDED_BY(mutex_);

  std::thread flusher_;  // last member: joined before the rest is destroyed
};

}  // namespace grafics::serve
