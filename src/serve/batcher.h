// Dynamic micro-batching for the serving daemon.
//
// Connection handlers enqueue single records; a dedicated flusher thread
// coalesces everything pending into one batch and dispatches it through
// Grafics::PredictBatch, so server throughput under load rides the PR 1
// snapshot-isolated parallel path instead of thread-per-request inference.
// A batch flushes as soon as it reaches max_batch_size, or when the oldest
// pending request has waited max_delay — the usual latency/throughput knob
// of dynamic batching systems.
//
// The model is resolved per flush through a snapshot callback returning a
// shared_ptr<const Grafics>, which is what makes hot-reload safe: a swap
// between flushes is picked up by the next batch, while an in-flight batch
// keeps the old snapshot alive until its futures resolve.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/grafics.h"
#include "rf/signal_record.h"

namespace grafics::serve {

struct BatcherConfig {
  /// Flush as soon as this many requests are pending.
  std::size_t max_batch_size = 64;
  /// Flush once the oldest pending request has waited this long.
  std::chrono::microseconds max_delay{2000};
  /// Worker threads for the PredictBatch fan-out of each flush (0 maps to
  /// hardware_concurrency, 1 keeps dispatch on the flusher thread). Ignored
  /// when the owner passes a shared ThreadPool to the constructor.
  std::size_t predict_threads = 1;
};

struct BatcherStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  /// Requests enqueued but not yet dispatched at the time stats() was
  /// called; the registry surfaces it as the per-model queue depth.
  std::uint64_t queue_depth = 0;
};

class MicroBatcher {
 public:
  using Snapshot = std::shared_ptr<const core::Grafics>;
  using SnapshotFn = std::function<Snapshot()>;

  /// `snapshot` is called once per flush from the flusher thread and must
  /// return a trained model; it is how the owner injects hot-reload.
  /// `shared_pool`, when non-null, runs the PredictBatch fan-out of every
  /// flush instead of an owned pool — the ModelRegistry hands one pool to
  /// all its per-model batchers so inference parallelism is bounded per
  /// process, not per model. The pool must outlive the batcher.
  MicroBatcher(BatcherConfig config, SnapshotFn snapshot,
               ThreadPool* shared_pool = nullptr);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one record; the future resolves with the prediction (nullopt
  /// for discarded records) once the containing batch is dispatched. Throws
  /// grafics::Error after Stop().
  std::future<std::optional<rf::FloorId>> Submit(rf::SignalRecord record);

  /// Drains everything pending (their futures still resolve), then rejects
  /// further Submits. Idempotent; also run by the destructor.
  void Stop();

  BatcherStats stats() const;

 private:
  struct Pending {
    rf::SignalRecord record;
    std::promise<std::optional<rf::FloorId>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void FlushLoop();
  /// Runs one batch through PredictBatch; called without the lock held.
  void Dispatch(std::vector<Pending> batch);

  const BatcherConfig config_;
  const SnapshotFn snapshot_;
  std::unique_ptr<ThreadPool> owned_pool_;  // null when shared or serial
  ThreadPool* pool_ = nullptr;  // shared or owned; null → serial dispatch

  std::mutex stop_mutex_;  // serializes Stop (join-once, drain-complete)

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Pending> pending_;
  bool stopping_ = false;
  BatcherStats stats_;

  std::thread flusher_;  // last member: joined before the rest is destroyed
};

}  // namespace grafics::serve
