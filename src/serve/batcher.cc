#include "serve/batcher.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/error.h"

namespace grafics::serve {

MicroBatcher::MicroBatcher(BatcherConfig config, SnapshotFn snapshot,
                           ThreadPool* shared_pool)
    : config_(config), snapshot_(std::move(snapshot)) {
  Require(config_.max_batch_size >= 1, "MicroBatcher: max_batch_size >= 1");
  Require(snapshot_ != nullptr, "MicroBatcher: snapshot callback required");
  if (shared_pool != nullptr) {
    pool_ = shared_pool;
  } else if (config_.predict_threads != 1) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.predict_threads);
    pool_ = owned_pool_.get();
  }
  flusher_ = std::thread([this] { FlushLoop(); });
}

MicroBatcher::~MicroBatcher() { Stop(); }

std::future<std::optional<rf::FloorId>> MicroBatcher::Submit(
    rf::SignalRecord record) {
  // The blocking-future surface is a thin wrapper over the callback core,
  // so both paths share the same queue, flush triggers, and drain behavior.
  auto promise =
      std::make_shared<std::promise<std::optional<rf::FloorId>>>();
  std::future<std::optional<rf::FloorId>> future = promise->get_future();
  SubmitAsync(std::move(record), [promise](PredictOutcome outcome) {
    if (outcome.error.empty()) {
      promise->set_value(outcome.floor);
    } else {
      promise->set_exception(std::make_exception_ptr(Error(outcome.error)));
    }
  });
  return future;
}

void MicroBatcher::SubmitAsync(rf::SignalRecord record, Callback done) {
  Require(done != nullptr, "MicroBatcher::SubmitAsync: callback required");
  {
    const MutexLock lock(&mutex_);
    Require(!stopping_, "MicroBatcher::Submit after Stop");
    pending_.push_back({std::move(record), std::move(done),
                        std::chrono::steady_clock::now()});
    ++stats_.requests;
  }
  wake_.NotifyOne();
}

bool MicroBatcher::TrySubmitBatchAsync(std::vector<rf::SignalRecord> records,
                                       BatchCallback done,
                                       std::size_t max_queue_depth) {
  Require(done != nullptr,
          "MicroBatcher::TrySubmitBatchAsync: callback required");
  Require(!records.empty(),
          "MicroBatcher::TrySubmitBatchAsync: empty batch");
  // One shared_ptr per request, not one std::function copy per record.
  auto shared = std::make_shared<BatchCallback>(std::move(done));
  {
    const MutexLock lock(&mutex_);
    Require(!stopping_, "MicroBatcher::Submit after Stop");
    // All-or-nothing: partially admitting a pipelined request would answer
    // some of its records and busy-reject the rest mid-response.
    if (max_queue_depth > 0 &&
        pending_.size() + records.size() > max_queue_depth) {
      return false;
    }
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < records.size(); ++i) {
      pending_.push_back({std::move(records[i]),
                          [shared, i](PredictOutcome outcome) {
                            (*shared)(i, std::move(outcome));
                          },
                          now});
    }
    stats_.requests += records.size();
  }
  wake_.NotifyOne();
  return true;
}

void MicroBatcher::Stop() {
  // Serialized: concurrent Stops (e.g. the registry's Unload racing its
  // Stop/destructor) must not both reach flusher_.join(), and the loser
  // must still block until the drain is complete.
  const MutexLock stop_lock(&stop_mutex_);
  {
    const MutexLock lock(&mutex_);
    stopping_ = true;
  }
  wake_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
}

BatcherStats MicroBatcher::stats() const {
  const MutexLock lock(&mutex_);
  BatcherStats stats = stats_;
  stats.queue_depth = pending_.size();
  return stats;
}

void MicroBatcher::FlushLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      const MutexLock lock(&mutex_);
      while (pending_.empty()) {
        if (stopping_) return;
        wake_.Wait(mutex_);
      }
      // Wait for the batch to fill, but no longer than the oldest request's
      // latency budget. Stop() flushes whatever is pending immediately.
      const auto deadline = pending_.front().enqueued + config_.max_delay;
      while (pending_.size() < config_.max_batch_size && !stopping_) {
        if (wake_.WaitUntil(mutex_, deadline) == std::cv_status::timeout) {
          break;
        }
        // Whether full, stopping, or past the deadline: flush what we have.
      }
      // Why this flush fired, checked in precedence order: a full queue is
      // a max-batch flush even if the deadline also expired, and only a
      // flush that is neither full nor stopping was the delay timer.
      if (pending_.size() >= config_.max_batch_size) {
        ++stats_.flushes_max_batch;
      } else if (stopping_) {
        ++stats_.flushes_shutdown;
      } else {
        ++stats_.flushes_max_delay;
      }
      const std::size_t take =
          std::min(pending_.size(), config_.max_batch_size);
      batch.reserve(take);
      std::move(pending_.begin(), pending_.begin() + static_cast<long>(take),
                std::back_inserter(batch));
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<long>(take));
      ++stats_.batches;
      stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, take);
    }
    Dispatch(std::move(batch));
  }
}

void MicroBatcher::Dispatch(std::vector<Pending> batch) {
  if (config_.obs.batch_size != nullptr) {
    config_.obs.batch_size->Observe(batch.size());
  }
  std::vector<rf::SignalRecord> records;
  records.reserve(batch.size());
  for (Pending& p : batch) records.push_back(std::move(p.record));
  const auto dispatched = std::chrono::steady_clock::now();
  try {
    const Snapshot model = snapshot_();
    Require(model != nullptr && model->is_trained(),
            "MicroBatcher: snapshot returned no trained model");
    core::BatchPredictOptions options;
    options.pool = pool_;  // null → serial dispatch on this thread
    const std::vector<std::optional<rf::FloorId>> predictions =
        model->PredictBatch(records, options);
    const auto predict_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - dispatched)
            .count());
    if (config_.obs.predict_us != nullptr) {
      config_.obs.predict_us->Observe(predict_us);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto waited = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              dispatched - batch[i].enqueued)
              .count());
      if (config_.obs.queue_wait_us != nullptr) {
        config_.obs.queue_wait_us->Observe(waited);
      }
      batch[i].done({predictions[i], {}, waited, predict_us});
    }
  } catch (const std::exception& e) {
    for (Pending& p : batch) p.done({std::nullopt, e.what(), 0, 0});
  }
}

}  // namespace grafics::serve
