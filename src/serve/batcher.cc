#include "serve/batcher.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/error.h"

namespace grafics::serve {

MicroBatcher::MicroBatcher(BatcherConfig config, SnapshotFn snapshot,
                           ThreadPool* shared_pool)
    : config_(config), snapshot_(std::move(snapshot)) {
  Require(config_.max_batch_size >= 1, "MicroBatcher: max_batch_size >= 1");
  Require(snapshot_ != nullptr, "MicroBatcher: snapshot callback required");
  if (shared_pool != nullptr) {
    pool_ = shared_pool;
  } else if (config_.predict_threads != 1) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.predict_threads);
    pool_ = owned_pool_.get();
  }
  flusher_ = std::thread([this] { FlushLoop(); });
}

MicroBatcher::~MicroBatcher() { Stop(); }

std::future<std::optional<rf::FloorId>> MicroBatcher::Submit(
    rf::SignalRecord record) {
  std::promise<std::optional<rf::FloorId>> promise;
  std::future<std::optional<rf::FloorId>> future = promise.get_future();
  {
    const std::scoped_lock lock(mutex_);
    Require(!stopping_, "MicroBatcher::Submit after Stop");
    pending_.push_back({std::move(record), std::move(promise),
                        std::chrono::steady_clock::now()});
    ++stats_.requests;
  }
  wake_.notify_one();
  return future;
}

void MicroBatcher::Stop() {
  // Serialized: concurrent Stops (e.g. the registry's Unload racing its
  // Stop/destructor) must not both reach flusher_.join(), and the loser
  // must still block until the drain is complete.
  const std::scoped_lock stop_lock(stop_mutex_);
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

BatcherStats MicroBatcher::stats() const {
  const std::scoped_lock lock(mutex_);
  BatcherStats stats = stats_;
  stats.queue_depth = pending_.size();
  return stats;
}

void MicroBatcher::FlushLoop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (pending_.empty()) {
      if (stopping_) return;
      wake_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      continue;
    }
    // Wait for the batch to fill, but no longer than the oldest request's
    // latency budget. Stop() flushes whatever is pending immediately.
    const auto deadline = pending_.front().enqueued + config_.max_delay;
    if (pending_.size() < config_.max_batch_size && !stopping_) {
      wake_.wait_until(lock, deadline, [this] {
        return stopping_ || pending_.size() >= config_.max_batch_size;
      });
      // Whether full, stopping, or past the deadline: flush what we have.
    }
    const std::size_t take =
        std::min(pending_.size(), config_.max_batch_size);
    std::vector<Pending> batch;
    batch.reserve(take);
    std::move(pending_.begin(), pending_.begin() + static_cast<long>(take),
              std::back_inserter(batch));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<long>(take));
    ++stats_.batches;
    stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, take);
    lock.unlock();
    Dispatch(std::move(batch));
    lock.lock();
  }
}

void MicroBatcher::Dispatch(std::vector<Pending> batch) {
  std::vector<rf::SignalRecord> records;
  records.reserve(batch.size());
  for (Pending& p : batch) records.push_back(std::move(p.record));
  try {
    const Snapshot model = snapshot_();
    Require(model != nullptr && model->is_trained(),
            "MicroBatcher: snapshot returned no trained model");
    core::BatchPredictOptions options;
    options.pool = pool_;  // null → serial dispatch on this thread
    const std::vector<std::optional<rf::FloorId>> predictions =
        model->PredictBatch(records, options);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(predictions[i]);
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Pending& p : batch) p.promise.set_exception(error);
  }
}

}  // namespace grafics::serve
