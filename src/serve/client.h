// Blocking client for the GRAFICS serving daemon (protocol v7).
//
// One TCP connection, one request/response in flight at a time; concurrency
// comes from opening more clients (the daemon coalesces across connections).
// Every call takes an optional model name — empty routes to the daemon's
// default model, which is also what a v1 daemon serves. Used by the tests,
// the serve_daemon_qps load generator, and the `grafics remote-*` CLI
// commands.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rf/signal_record.h"
#include "serve/protocol.h"

namespace grafics::serve {

struct ClientConfig {
  /// Receive-side bound on one reply frame. Batched v2 responses grow with
  /// the batch, so clients sending large batches (or expecting big admin
  /// replies) raise this instead of being capped by their own limit.
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

class Client {
 public:
  /// Connects immediately; throws grafics::Error when the daemon is
  /// unreachable.
  Client(const std::string& host, std::uint16_t port,
         ClientConfig config = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Remote Grafics::Predict against the named model (empty = default):
  /// nullopt when the daemon discarded the record (no MAC overlap). Throws
  /// grafics::Error on transport problems or when the daemon reports an
  /// error (e.g. an unknown model name).
  std::optional<rf::FloorId> Predict(const rf::SignalRecord& record,
                                     const std::string& model = {});

  /// Batched remote predict, answered per-record in request order. Records
  /// are split into one frame (one round trip) per chunk; a chunk closes at
  /// `max_records_per_frame` records (clamped to [1, kMaxBatchRecords]) or
  /// as soon as the next record would push the encoded frame over the
  /// daemon's kMaxFrameBytes cap, whichever comes first — so dense scans
  /// split by size, not just by count. Throws grafics::Error when any
  /// record comes back with an error status.
  std::vector<std::optional<rf::FloorId>> PredictBatch(
      const std::vector<rf::SignalRecord>& records,
      const std::string& model = {},
      std::size_t max_records_per_frame = kMaxBatchRecords);

  /// Health check for the named model (empty = default). The returned Pong
  /// carries the protocol version the server negotiated for this
  /// connection's replies (2 for this always-v2 client; the field exists so
  /// the negotiated dialect is explicit on the wire for any client) and the
  /// model's generation, so callers observe hot reloads. ok == false (with
  /// error set) for unknown model names. Note this client only speaks v2 —
  /// a v1-only daemon rejects its frames outright rather than answering
  /// with a v1 Pong.
  Pong Ping(const std::string& model = {});

  /// Asks the daemon to hot-reload the named model (empty = default);
  /// returns the new model generation. A non-zero `generation` pins a
  /// persistence-store generation instead of re-reading the artifact path —
  /// the rollback flow, requiring a v6 daemon running with --store-dir.
  /// Throws grafics::Error when the daemon refuses (no model path, unknown
  /// name, unknown generation) or the reload failed.
  std::uint64_t Reload(const std::string& model = {},
                       std::uint64_t generation = 0);

  /// v2 admin: the registry's contents and its default model name.
  ListModelsResponse ListModels();

  /// v2 admin: per-model serving stats; `model` filters to one name
  /// (empty = all models). `version` selects the request encoding: the
  /// default speaks the newest dialect; passing an older version (3, 2)
  /// lets callers degrade gracefully against an older daemon that rejects
  /// newer frames (fields the chosen dialect lacks decode to their zero
  /// defaults).
  StatsResponse Stats(const std::string& model = {},
                      std::uint32_t version = kProtocolVersion);

  /// v3 ingest: submits records for durable journaling and background
  /// fold-in to the named model (empty = default), returning one result per
  /// record in request order. Records are split into frames exactly like
  /// PredictBatch (by count and by encoded size). Rejected records are a
  /// per-record status, not an exception; transport failures throw.
  std::vector<SubmitResult> Submit(
      const std::vector<rf::SignalRecord>& records,
      const std::string& model = {},
      std::size_t max_records_per_frame = kMaxBatchRecords);

  /// v3 ingest admin: per-model ingest counters; `model` filters to one
  /// name (empty = all attached models). enabled == false means the daemon
  /// runs without an ingest pipeline. `version` degrades the dialect like
  /// Stats (the ingest surface exists from v3 on).
  IngestStatsResponse IngestStats(const std::string& model = {},
                                  std::uint32_t version = kProtocolVersion);

  /// v6 persistence admin against the named model (empty = default):
  /// Checkpoint writes the serving snapshot into the daemon's store (a
  /// delta when the snapshot fold-descends from the previous generation),
  /// Compact folds the journal's committed prefix into a checkpoint and
  /// truncates the journal, ListArtifacts reports the model's base + delta
  /// chain. Failures are structured (ok == false / enabled == false), not
  /// exceptions; transport problems still throw.
  CheckpointResponse Checkpoint(const std::string& model = {});
  CompactResponse Compact(const std::string& model = {});
  ListArtifactsResponse ListArtifacts(const std::string& model = {});

  /// v7 telemetry: the daemon's metrics dump in Prometheus text exposition
  /// format — the same bytes GET /metrics on the admin port serves. Empty
  /// when the daemon runs without telemetry attached. Requires a v7 daemon;
  /// older daemons reject the frame by closing the connection.
  std::string Metrics();

  /// Stats / IngestStats with automatic downgrade against older daemons:
  /// speaks the newest dialect on a fresh connection and retries one
  /// protocol version down (to v2, ingest to v3) each time the daemon
  /// rejects the frame by closing the connection. Returns the response
  /// plus the dialect that succeeded, so callers print only the fields
  /// that dialect actually carried (the rest decode to zero defaults).
  /// Non-version failures (daemon down, socket errors) propagate untouched.
  struct NegotiatedStatsResult {
    StatsResponse stats;
    std::uint32_t version = 0;
  };
  struct NegotiatedIngestStatsResult {
    IngestStatsResponse stats;
    std::uint32_t version = 0;
  };
  static NegotiatedStatsResult NegotiatedStats(const std::string& host,
                                               std::uint16_t port,
                                               const std::string& model = {},
                                               ClientConfig config = {});
  static NegotiatedIngestStatsResult NegotiatedIngestStats(
      const std::string& host, std::uint16_t port,
      const std::string& model = {}, ClientConfig config = {});

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Message RoundTrip(const Message& request,
                    std::uint32_t version = kProtocolVersion);

  ClientConfig config_;
  int fd_ = -1;
};

}  // namespace grafics::serve
