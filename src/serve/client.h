// Blocking client for the GRAFICS serving daemon.
//
// One TCP connection, one request/response in flight at a time; concurrency
// comes from opening more clients (the daemon coalesces across connections).
// Used by the tests, the serve_daemon_qps load generator, and the
// `grafics remote-predict` / `remote-reload` CLI commands.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "rf/signal_record.h"
#include "serve/protocol.h"

namespace grafics::serve {

class Client {
 public:
  /// Connects immediately; throws grafics::Error when the daemon is
  /// unreachable.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Remote Grafics::Predict: nullopt when the daemon discarded the record
  /// (no MAC overlap). Throws grafics::Error on transport problems or when
  /// the daemon reports an error.
  std::optional<rf::FloorId> Predict(const rf::SignalRecord& record);

  /// Health check; returns the daemon's current model generation.
  std::uint64_t Ping();

  /// Asks the daemon to hot-reload its model from disk; returns the new
  /// model generation. Throws grafics::Error when the daemon refuses (no
  /// model path) or the reload failed.
  std::uint64_t Reload();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Message RoundTrip(const Message& request);

  int fd_ = -1;
};

}  // namespace grafics::serve
