#include "graph/weight_function.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace grafics::graph {
namespace {

TEST(WeightFunctionTest, OffsetWeightShifts) {
  const WeightFn f = OffsetWeight(120.0);
  EXPECT_DOUBLE_EQ(f(-60.0), 60.0);
  EXPECT_DOUBLE_EQ(f(-119.0), 1.0);
}

TEST(WeightFunctionTest, OffsetWeightRejectsNonPositive) {
  const WeightFn f = OffsetWeight(120.0);
  EXPECT_THROW(f(-120.0), Error);
  EXPECT_THROW(f(-130.0), Error);
}

TEST(WeightFunctionTest, OffsetWeightCustomAlpha) {
  const WeightFn f = OffsetWeight(150.0);
  EXPECT_DOUBLE_EQ(f(-100.0), 50.0);
}

TEST(WeightFunctionTest, PowerWeightConvertsDbmToMilliwatts) {
  const WeightFn g = PowerWeight();
  EXPECT_DOUBLE_EQ(g(0.0), 1.0);
  EXPECT_DOUBLE_EQ(g(-10.0), 0.1);
  EXPECT_NEAR(g(-60.0), 1e-6, 1e-12);
}

TEST(WeightFunctionTest, PowerWeightCompressesDifferences) {
  // The paper's Fig. 16 rationale: in the power domain, a 10 dB difference
  // between weak signals is absolutely tiny, so edge weights look alike.
  const WeightFn f = OffsetWeight(120.0);
  const WeightFn g = PowerWeight();
  const double f_ratio = f(-60.0) / f(-70.0);
  const double g_gap = g(-60.0) - g(-70.0);
  EXPECT_GT(f_ratio, 1.1);       // offset keeps the difference visible
  EXPECT_LT(g_gap, 1e-6);        // power collapses it
}

TEST(WeightFunctionTest, BinaryWeightAlwaysOne) {
  const WeightFn b = BinaryWeight();
  EXPECT_DOUBLE_EQ(b(-30.0), 1.0);
  EXPECT_DOUBLE_EQ(b(-95.0), 1.0);
}

}  // namespace
}  // namespace grafics::graph
