#include <gtest/gtest.h>

#include <cmath>

#include "baselines/autoencoder.h"
#include "baselines/matrix_representation.h"
#include "baselines/mds.h"
#include "baselines/pseudo_label.h"
#include "baselines/sae.h"
#include "baselines/scalable_dnn.h"
#include "common/error.h"

namespace grafics::baselines {
namespace {

rf::SignalRecord MakeRecord(std::initializer_list<std::pair<int, double>> obs,
                            std::optional<rf::FloorId> floor = std::nullopt) {
  rf::SignalRecord r;
  for (const auto& [mac, rssi] : obs) {
    r.Add(rf::MacAddress(static_cast<std::uint64_t>(mac)), rssi);
  }
  r.set_floor(floor);
  return r;
}

// ------------------------------------------------ MatrixRepresentation ----

TEST(MatrixRepresentationTest, ColumnsFromTrainingOnly) {
  const std::vector<rf::SignalRecord> train = {
      MakeRecord({{1, -60.0}, {2, -70.0}}), MakeRecord({{3, -80.0}})};
  const MatrixRepresentation repr(train);
  EXPECT_EQ(repr.num_columns(), 3u);
}

TEST(MatrixRepresentationTest, MissingEntriesImputedMinus120) {
  const std::vector<rf::SignalRecord> train = {
      MakeRecord({{1, -60.0}}), MakeRecord({{2, -70.0}})};
  const MatrixRepresentation repr(train);
  const Matrix m = repr.ToMatrix(train);
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 2u);
  // Each row has one observed and one imputed value.
  for (std::size_t r = 0; r < 2; ++r) {
    int imputed = 0;
    for (double v : m.Row(r)) {
      if (v == MatrixRepresentation::kMissingDbm) ++imputed;
    }
    EXPECT_EQ(imputed, 1);
  }
}

TEST(MatrixRepresentationTest, UnseenTestMacsDropped) {
  const std::vector<rf::SignalRecord> train = {MakeRecord({{1, -60.0}})};
  const MatrixRepresentation repr(train);
  const std::vector<rf::SignalRecord> test = {
      MakeRecord({{1, -55.0}, {99, -40.0}})};
  const Matrix m = repr.ToMatrix(test);
  ASSERT_EQ(m.cols(), 1u);
  EXPECT_DOUBLE_EQ(m(0, 0), -55.0);
}

TEST(MatrixRepresentationTest, ToRowMatchesToMatrix) {
  const std::vector<rf::SignalRecord> train = {
      MakeRecord({{1, -60.0}, {2, -70.0}}), MakeRecord({{2, -75.0}})};
  const MatrixRepresentation repr(train);
  const Matrix m = repr.ToMatrix(train);
  const std::vector<double> row = repr.ToRow(train[0]);
  for (std::size_t c = 0; c < repr.num_columns(); ++c) {
    EXPECT_DOUBLE_EQ(row[c], m(0, c));
  }
}

TEST(MatrixRepresentationTest, NormalizeMapsToUnitInterval) {
  Matrix raw(1, 3);
  raw(0, 0) = -120.0;
  raw(0, 1) = -20.0;
  raw(0, 2) = -70.0;
  const Matrix norm = MatrixRepresentation::Normalize(raw);
  EXPECT_DOUBLE_EQ(norm(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(norm(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(norm(0, 2), 0.5);
}

TEST(MatrixRepresentationTest, EmptyTrainingThrows) {
  EXPECT_THROW(MatrixRepresentation({}), Error);
}

// ---------------------------------------------------------- FloorIndex ----

TEST(FloorIndexTest, FromLabelsSortedDeduplicated) {
  const std::vector<std::optional<rf::FloorId>> labels = {
      5, std::nullopt, 1, 5, std::nullopt, 3};
  const FloorIndex index = FloorIndex::FromLabels(labels);
  ASSERT_EQ(index.NumClasses(), 3u);
  EXPECT_EQ(index.FloorOf(0), 1);
  EXPECT_EQ(index.FloorOf(2), 5);
  EXPECT_EQ(index.ClassOf(3), 1u);
  EXPECT_THROW(index.ClassOf(4), Error);
  EXPECT_THROW(index.FloorOf(3), Error);
}

TEST(FloorIndexTest, NoLabelsThrows) {
  const std::vector<std::optional<rf::FloorId>> labels = {std::nullopt};
  EXPECT_THROW(FloorIndex::FromLabels(labels), Error);
}

// --------------------------------------------------------- PseudoLabel ----

TEST(PseudoLabelTest, LabeledRowsKeepOwnLabel) {
  Matrix points(3, 1);
  points(0, 0) = 0.0;
  points(1, 0) = 10.0;
  points(2, 0) = 1.0;
  const std::vector<std::optional<rf::FloorId>> labels = {2, 8, std::nullopt};
  const FloorIndex index = FloorIndex::FromLabels(labels);
  const auto classes = PseudoLabel(points, labels, index);
  EXPECT_EQ(classes[0], index.ClassOf(2));
  EXPECT_EQ(classes[1], index.ClassOf(8));
  // Row 2 is nearest to row 0 (floor 2).
  EXPECT_EQ(classes[2], index.ClassOf(2));
}

TEST(PseudoLabelTest, AllUnlabeledThrows) {
  Matrix points(2, 1);
  const std::vector<std::optional<rf::FloorId>> labels(2, std::nullopt);
  FloorIndex index;
  index.floors = {0};
  EXPECT_THROW(PseudoLabel(points, labels, index), Error);
}

// ------------------------------------------------------------------ MDS ---

/// Four points forming two far-apart pairs in the raw space.
Matrix TwoPairMatrix() {
  Matrix m(4, 4, -120.0);
  m(0, 0) = -40.0;
  m(0, 1) = -45.0;
  m(1, 0) = -42.0;
  m(1, 1) = -47.0;
  m(2, 2) = -40.0;
  m(2, 3) = -45.0;
  m(3, 2) = -42.0;
  m(3, 3) = -47.0;
  return m;
}

TEST(MdsTest, PreservesNeighborhoodStructure) {
  MdsConfig config;
  config.dim = 2;
  const Matrix raw = TwoPairMatrix();
  const MdsEmbedder mds(raw, config);
  const Matrix emb = mds.Embed(raw);
  const double intra =
      SquaredL2Distance(emb.Row(0), emb.Row(1)) +
      SquaredL2Distance(emb.Row(2), emb.Row(3));
  const double inter =
      SquaredL2Distance(emb.Row(0), emb.Row(2)) +
      SquaredL2Distance(emb.Row(1), emb.Row(3));
  EXPECT_LT(intra, inter);
}

TEST(MdsTest, OutOfSampleLandsNearItsPair) {
  MdsConfig config;
  config.dim = 2;
  const Matrix raw = TwoPairMatrix();
  const MdsEmbedder mds(raw, config);
  // A new row resembling pair 1 (columns 0-1 strong).
  Matrix fresh(1, 4, -120.0);
  fresh(0, 0) = -41.0;
  fresh(0, 1) = -46.0;
  const Matrix emb = mds.Embed(raw);
  const Matrix new_emb = mds.Embed(fresh);
  const double to_pair1 = SquaredL2Distance(new_emb.Row(0), emb.Row(0));
  const double to_pair2 = SquaredL2Distance(new_emb.Row(0), emb.Row(2));
  EXPECT_LT(to_pair1, to_pair2);
}

TEST(MdsTest, LandmarkSubsampling) {
  Rng rng(3);
  Matrix big(200, 10);
  for (std::size_t r = 0; r < big.rows(); ++r) {
    for (double& v : big.Row(r)) v = rng.Uniform(-100.0, -40.0);
  }
  MdsConfig config;
  config.dim = 4;
  config.max_landmarks = 50;
  const MdsEmbedder mds(big, config);
  const Matrix emb = mds.Embed(big);
  EXPECT_EQ(emb.rows(), 200u);
  EXPECT_EQ(emb.cols(), 4u);
}

TEST(MdsTest, ColumnMismatchThrows) {
  const MdsEmbedder mds(TwoPairMatrix(), MdsConfig{.dim = 2});
  EXPECT_THROW(mds.Embed(Matrix(1, 3)), Error);
}

TEST(MdsTest, TooFewRowsThrows) {
  EXPECT_THROW(MdsEmbedder(Matrix(1, 4), MdsConfig{}), Error);
}

// ---------------------------------------------------------- Autoencoder ---

TEST(AutoencoderTest, TrainsAndEmbedsWithConfiguredDim) {
  Rng rng(5);
  Matrix train(40, 12);
  for (std::size_t r = 0; r < train.rows(); ++r) {
    for (double& v : train.Row(r)) v = rng.Uniform(0.0, 1.0);
  }
  AutoencoderConfig config;
  config.dim = 4;
  config.epochs = 3;
  AutoencoderEmbedder ae(train, config);
  const Matrix emb = ae.Embed(train);
  EXPECT_EQ(emb.rows(), 40u);
  EXPECT_EQ(emb.cols(), 4u);
  EXPECT_GT(ae.final_loss(), 0.0);
}

TEST(AutoencoderTest, ReconstructionLossDecreases) {
  Rng rng(7);
  Matrix train(60, 10);
  for (std::size_t r = 0; r < train.rows(); ++r) {
    // Structured data: two prototype rows + noise.
    const double base = (r % 2 == 0) ? 0.2 : 0.8;
    for (double& v : train.Row(r)) v = base + rng.Normal(0.0, 0.05);
  }
  AutoencoderConfig short_config;
  short_config.epochs = 1;
  AutoencoderConfig long_config;
  long_config.epochs = 15;
  AutoencoderEmbedder short_ae(train, short_config);
  AutoencoderEmbedder long_ae(train, long_config);
  EXPECT_LT(long_ae.final_loss(), short_ae.final_loss());
}

TEST(AutoencoderTest, EmbedDimensionMismatchThrows) {
  Matrix train(10, 6, 0.5);
  AutoencoderConfig config;
  config.epochs = 1;
  AutoencoderEmbedder ae(train, config);
  EXPECT_THROW(ae.Embed(Matrix(2, 5)), Error);
}

// ------------------------------------------------------- SAE / ScalableDnn

/// Linearly separable two-class toy data in [0,1]^4.
struct ToyData {
  Matrix x;
  std::vector<std::size_t> classes;
  std::vector<std::optional<rf::FloorId>> sparse_labels;
};

ToyData MakeToy(std::size_t per_class, std::size_t labeled_per_class) {
  ToyData data;
  data.x = Matrix(2 * per_class, 4);
  Rng rng(11);
  for (std::size_t i = 0; i < 2 * per_class; ++i) {
    const std::size_t cls = i < per_class ? 0 : 1;
    data.classes.push_back(cls);
    for (std::size_t c = 0; c < 4; ++c) {
      data.x(i, c) = (cls == 0 ? 0.2 : 0.8) + rng.Normal(0.0, 0.05);
    }
    data.sparse_labels.push_back(
        (i % per_class) < labeled_per_class
            ? std::optional<rf::FloorId>(static_cast<rf::FloorId>(cls))
            : std::nullopt);
  }
  return data;
}

SaeConfig FastSae() {
  SaeConfig config;
  config.hidden = {16, 8};
  config.pretrain_epochs = 5;
  config.finetune_epochs = 60;
  config.learning_rate = 1e-2;
  return config;
}

ScalableDnnConfig FastDnn() {
  ScalableDnnConfig config;
  config.encoder_hidden = {16, 8};
  config.classifier_hidden = {16};
  config.pretrain_epochs = 5;
  config.classifier_epochs = 60;
  config.learning_rate = 1e-2;
  return config;
}

TEST(SaeTest, SupervisedSeparableProblem) {
  const ToyData data = MakeToy(30, 30);
  SaeClassifier sae(data.x, data.classes, 2, FastSae());
  const auto predicted = sae.Predict(data.x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == data.classes[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / predicted.size(), 0.95);
}

TEST(SaeTest, SemiSupervisedWithPseudoLabels) {
  const ToyData data = MakeToy(30, 2);  // only 2 labels per class
  SaeClassifier sae(data.x, data.sparse_labels, FastSae());
  EXPECT_EQ(sae.num_classes(), 2u);
  const auto floors = sae.PredictFloors(data.x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < floors.size(); ++i) {
    if (floors[i] == static_cast<rf::FloorId>(data.classes[i])) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / floors.size(), 0.9);
}

TEST(SaeTest, EmbedShape) {
  const ToyData data = MakeToy(10, 10);
  SaeClassifier sae(data.x, data.classes, 2, FastSae());
  const Matrix emb = sae.Embed(data.x);
  EXPECT_EQ(emb.rows(), data.x.rows());
  EXPECT_EQ(emb.cols(), 8u);  // last hidden width
}

TEST(ScalableDnnTest, SupervisedSeparableProblem) {
  const ToyData data = MakeToy(30, 30);
  ScalableDnn dnn(data.x, data.classes, 2, FastDnn());
  const auto predicted = dnn.Predict(data.x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == data.classes[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / predicted.size(), 0.95);
}

TEST(ScalableDnnTest, SemiSupervisedWithPseudoLabels) {
  const ToyData data = MakeToy(30, 2);
  ScalableDnn dnn(data.x, data.sparse_labels, FastDnn());
  const auto floors = dnn.PredictFloors(data.x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < floors.size(); ++i) {
    if (floors[i] == static_cast<rf::FloorId>(data.classes[i])) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / floors.size(), 0.9);
}

TEST(ScalableDnnTest, LabelMismatchThrows) {
  const ToyData data = MakeToy(5, 5);
  std::vector<std::size_t> short_labels = {0};
  EXPECT_THROW(ScalableDnn(data.x, short_labels, 2, FastDnn()), Error);
}

}  // namespace
}  // namespace grafics::baselines
