#include "rf/mac_address.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/error.h"

namespace grafics::rf {
namespace {

TEST(MacAddressTest, DefaultIsZero) {
  EXPECT_EQ(MacAddress().bits(), 0u);
  EXPECT_EQ(MacAddress().ToString(), "00:00:00:00:00:00");
}

TEST(MacAddressTest, ParseAndFormatRoundTrip) {
  const std::string text = "a4:5e:60:f1:02:9b";
  EXPECT_EQ(MacAddress::Parse(text).ToString(), text);
}

TEST(MacAddressTest, ParseUpperCase) {
  EXPECT_EQ(MacAddress::Parse("AB:CD:EF:01:23:45").ToString(),
            "ab:cd:ef:01:23:45");
}

TEST(MacAddressTest, ParseKnownBits) {
  EXPECT_EQ(MacAddress::Parse("00:00:00:00:00:ff").bits(), 0xffu);
  EXPECT_EQ(MacAddress::Parse("01:00:00:00:00:00").bits(), 0x010000000000u);
}

TEST(MacAddressTest, ParseRejectsMalformed) {
  EXPECT_THROW(MacAddress::Parse(""), Error);
  EXPECT_THROW(MacAddress::Parse("aa:bb:cc:dd:ee"), Error);
  EXPECT_THROW(MacAddress::Parse("aa:bb:cc:dd:ee:f"), Error);
  EXPECT_THROW(MacAddress::Parse("aa:bb:cc:dd:ee:gg"), Error);
  EXPECT_THROW(MacAddress::Parse("aa-bb-cc-dd-ee-ff"), Error);
  EXPECT_THROW(MacAddress::Parse("aa:bb:cc:dd:ee:ff:00"), Error);
}

TEST(MacAddressTest, ConstructorRejectsOver48Bits) {
  EXPECT_THROW(MacAddress(1ULL << 48), Error);
  EXPECT_NO_THROW(MacAddress((1ULL << 48) - 1));
}

TEST(MacAddressTest, Ordering) {
  const MacAddress a(1);
  const MacAddress b(2);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, MacAddress(1));
  EXPECT_NE(a, b);
}

TEST(MacAddressTest, HashDistinguishesSequentialMacs) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<MacAddress>{}(MacAddress(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(MacAddressTest, UsableInUnorderedSet) {
  std::unordered_set<MacAddress> set;
  set.insert(MacAddress(5));
  set.insert(MacAddress(5));
  set.insert(MacAddress(6));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(MacAddress(5)));
}

}  // namespace
}  // namespace grafics::rf
