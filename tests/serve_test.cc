// Tests for the serving daemon: the TCP server/client loop against the
// in-process reference, named-model routing through the ModelRegistry,
// protocol-v1 compatibility over a real socket, per-model hot-reload
// isolation (a reload racing another model's in-flight batches is what the
// CI ThreadSanitizer job is there to check), micro-batch coalescing, and
// the v3 ingest surface: submitted records folded in the background while
// concurrent predictions stay bit-identical to a published snapshot. The
// telemetry section at the bottom scrapes GET /metrics over a real socket
// and cross-checks the exposition against the StatsResponse wire surface.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/grafics.h"
#include "ingest/ingest_pipeline.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "store/model_store.h"
#include "synth/presets.h"

namespace grafics::serve {
namespace {

using namespace std::chrono_literals;

core::GraficsConfig FastConfig(std::uint64_t trainer_seed) {
  core::GraficsConfig config;
  config.trainer.samples_per_edge = 60;
  config.trainer.seed = trainer_seed;
  config.online_refine_iterations = 300;
  return config;
}

/// Small trained model over the campus building plus held-out queries and
/// the in-process reference predictions every networked path must match.
struct Fixture {
  std::shared_ptr<const core::Grafics> model;
  std::vector<rf::SignalRecord> queries;
  std::vector<std::optional<rf::FloorId>> reference;

  explicit Fixture(std::uint64_t trainer_seed) {
    auto config = synth::CampusBuildingConfig(/*seed=*/53, 60);
    auto sim = config.MakeSimulator();
    rf::Dataset dataset = sim.GenerateDataset();
    Rng rng(54);
    auto [train, test] = dataset.TrainTestSplit(0.7, rng);
    train.KeepLabelsPerFloor(4, rng);
    core::Grafics system(FastConfig(trainer_seed));
    system.Train(train.records());
    queries.assign(test.records().begin(), test.records().end());
    reference = system.PredictBatch(queries, {.num_threads = 1});
    model = std::make_shared<const core::Grafics>(std::move(system));
  }
};

/// Two models trained on the SAME building with different trainer seeds:
/// both answer the same queries (generally differently), so routing errors
/// and mid-flight swaps are observable in the answers.
const Fixture& ModelA() {
  static const Fixture fixture(1);
  return fixture;
}

const Fixture& ModelB() {
  static const Fixture fixture(2);
  return fixture;
}

MicroBatcher::SnapshotFn SnapshotOf(const Fixture& fixture) {
  return [&fixture] { return fixture.model; };
}

std::optional<rf::FloorId> GetWithin(
    std::future<std::optional<rf::FloorId>>& future,
    std::chrono::seconds timeout = 30s) {
  if (future.wait_for(timeout) != std::future_status::ready) {
    ADD_FAILURE() << "batcher future not ready within " << timeout.count()
                  << "s";
    return std::nullopt;
  }
  return future.get();
}

TEST(MicroBatcherTest, FlushesWhenBatchFills) {
  const Fixture& f = ModelA();
  BatcherConfig config;
  config.max_batch_size = 4;
  config.max_delay = 60s;  // flushing must come from the size trigger
  MicroBatcher batcher(config, SnapshotOf(f));
  std::vector<std::future<std::optional<rf::FloorId>>> futures;
  for (std::size_t i = 0; i < 4; ++i) {
    futures.push_back(batcher.Submit(f.queries[i]));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(GetWithin(futures[i]), f.reference[i]) << i;
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch, 4u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(MicroBatcherTest, FlushesOnDelayWhenBatchStaysSmall) {
  const Fixture& f = ModelA();
  BatcherConfig config;
  config.max_batch_size = 100;
  config.max_delay = 20ms;
  MicroBatcher batcher(config, SnapshotOf(f));
  std::vector<std::future<std::optional<rf::FloorId>>> futures;
  for (std::size_t i = 0; i < 3; ++i) {
    futures.push_back(batcher.Submit(f.queries[i]));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(GetWithin(futures[i]), f.reference[i]) << i;
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.batches, 1u);
}

TEST(MicroBatcherTest, StopDrainsPendingRequests) {
  const Fixture& f = ModelA();
  BatcherConfig config;
  config.max_batch_size = 100;
  config.max_delay = 60s;  // only Stop() can trigger the flush
  MicroBatcher batcher(config, SnapshotOf(f));
  auto first = batcher.Submit(f.queries[0]);
  auto second = batcher.Submit(f.queries[1]);
  EXPECT_EQ(batcher.stats().queue_depth, 2u);
  batcher.Stop();
  EXPECT_EQ(GetWithin(first), f.reference[0]);
  EXPECT_EQ(GetWithin(second), f.reference[1]);
  EXPECT_THROW(batcher.Submit(f.queries[2]), Error);
}

TEST(MicroBatcherTest, ParallelDispatchMatchesReference) {
  const Fixture& f = ModelA();
  BatcherConfig config;
  config.max_batch_size = 8;
  config.max_delay = 5ms;
  config.predict_threads = 3;  // PredictBatch fan-out inside each flush
  MicroBatcher batcher(config, SnapshotOf(f));
  const std::size_t n = std::min<std::size_t>(f.queries.size(), 24);
  std::vector<std::future<std::optional<rf::FloorId>>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(batcher.Submit(f.queries[i]));
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(GetWithin(futures[i]), f.reference[i]) << i;
  }
}

TEST(MicroBatcherTest, SharedPoolDispatchMatchesReference) {
  const Fixture& f = ModelA();
  ThreadPool pool(3);
  BatcherConfig config;
  config.max_batch_size = 8;
  config.max_delay = 5ms;
  MicroBatcher batcher(config, SnapshotOf(f), &pool);
  const std::size_t n = std::min<std::size_t>(f.queries.size(), 16);
  std::vector<std::future<std::optional<rf::FloorId>>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(batcher.Submit(f.queries[i]));
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(GetWithin(futures[i]), f.reference[i]) << i;
  }
}

TEST(MicroBatcherTest, SurfacesSnapshotFailureThroughFutures) {
  BatcherConfig config;
  config.max_delay = 1ms;
  MicroBatcher batcher(config, [] { return MicroBatcher::Snapshot(); });
  auto future = batcher.Submit(ModelA().queries[0]);
  ASSERT_EQ(future.wait_for(30s), std::future_status::ready);
  EXPECT_THROW(future.get(), Error);
}

BatcherConfig QuickBatcherConfig() {
  BatcherConfig config;
  config.max_batch_size = 8;
  config.max_delay = 2ms;
  return config;
}

/// Registry with ModelA as default "alpha"; port 0 keeps tests off fixed
/// ports.
std::shared_ptr<ModelRegistry> AlphaRegistry() {
  auto registry = std::make_shared<ModelRegistry>(QuickBatcherConfig());
  registry->Load("alpha", ModelA().model);
  return registry;
}

TEST(ServerTest, ServesPredictionsIdenticalToInProcess) {
  const Fixture& f = ModelA();
  Server server(AlphaRegistry());
  server.Start();
  Client client("127.0.0.1", server.port());
  const Pong pong = client.Ping();
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.protocol_version, kProtocolVersion);
  EXPECT_EQ(pong.model_generation, 1u);
  const std::size_t n = std::min<std::size_t>(f.queries.size(), 12);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(client.Predict(f.queries[i]), f.reference[i]) << i;
  }
  server.Stop();
  ASSERT_EQ(server.registry().Stats().size(), 1u);
  EXPECT_EQ(server.registry().Stats()[0].requests, n);
}

TEST(ServerTest, BatchedPredictMatchesPerRecordAndReference) {
  const Fixture& f = ModelA();
  Server server(AlphaRegistry());
  server.Start();
  Client client("127.0.0.1", server.port());
  const std::size_t n = std::min<std::size_t>(f.queries.size(), 20);
  const std::vector<rf::SignalRecord> queries(f.queries.begin(),
                                              f.queries.begin() + n);
  const auto batched = client.PredictBatch(queries, "alpha");
  ASSERT_EQ(batched.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batched[i], f.reference[i]) << i;
  }
  server.Stop();
}

TEST(ServerTest, RoutesNamedModelsIndependently) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  auto registry = std::make_shared<ModelRegistry>(QuickBatcherConfig());
  registry->Load("alpha", a.model);
  registry->Load("beta", b.model);
  Server server(registry);
  server.Start();
  Client client("127.0.0.1", server.port());
  const std::size_t n = std::min<std::size_t>(a.queries.size(), 10);
  // Interleave the two models on one connection: every answer must come
  // from the named model, bit-identical to that model's in-process
  // reference.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(client.Predict(a.queries[i], "alpha"), a.reference[i]) << i;
    EXPECT_EQ(client.Predict(b.queries[i], "beta"), b.reference[i]) << i;
    // Unnamed goes to the default (first-loaded) model: alpha.
    EXPECT_EQ(client.Predict(a.queries[i]), a.reference[i]) << i;
  }
  const std::vector<rf::SignalRecord> queries(a.queries.begin(),
                                              a.queries.begin() + n);
  const auto alpha = client.PredictBatch(queries, "alpha");
  const auto beta = client.PredictBatch(queries, "beta");
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(alpha[i], a.reference[i]) << i;
    EXPECT_EQ(beta[i], b.reference[i]) << i;
  }
  server.Stop();
}

TEST(ServerTest, UnknownModelYieldsStructuredErrorNotDroppedConnection) {
  const Fixture& f = ModelA();
  Server server(AlphaRegistry());
  server.Start();
  Client client("127.0.0.1", server.port());
  EXPECT_THROW(client.Predict(f.queries[0], "no-such-building"), Error);
  // The error was a per-record status: the connection (and daemon) live on.
  EXPECT_EQ(client.Predict(f.queries[0], "alpha"), f.reference[0]);
  const Pong pong = client.Ping("no-such-building");
  EXPECT_FALSE(pong.ok);
  EXPECT_NE(pong.error.find("no-such-building"), std::string::npos);
  EXPECT_THROW(client.Reload("no-such-building"), Error);
  EXPECT_EQ(client.Predict(f.queries[0]), f.reference[0]);
  server.Stop();
}

TEST(ServerTest, ListModelsAndStatsDescribeTheRegistry) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  auto registry = std::make_shared<ModelRegistry>(QuickBatcherConfig());
  registry->Load("alpha", a.model);
  registry->Load("beta", b.model);
  Server server(registry);
  server.Start();
  Client client("127.0.0.1", server.port());

  const ListModelsResponse models = client.ListModels();
  EXPECT_EQ(models.default_model, "alpha");
  ASSERT_EQ(models.models.size(), 2u);
  EXPECT_EQ(models.models[0].name, "alpha");
  EXPECT_EQ(models.models[0].generation, 1u);
  EXPECT_FALSE(models.models[0].reloadable);
  EXPECT_EQ(models.models[1].name, "beta");

  const std::size_t n = 5;
  for (std::size_t i = 0; i < n; ++i) {
    client.Predict(a.queries[i], "alpha");
  }
  const StatsResponse all = client.Stats();
  EXPECT_GE(all.connections_accepted, 1u);
  ASSERT_EQ(all.models.size(), 2u);
  EXPECT_EQ(all.models[0].name, "alpha");
  EXPECT_EQ(all.models[0].requests, n);
  EXPECT_GE(all.models[0].batches, 1u);
  EXPECT_EQ(all.models[1].name, "beta");
  EXPECT_EQ(all.models[1].requests, 0u);

  const StatsResponse only_beta = client.Stats("beta");
  ASSERT_EQ(only_beta.models.size(), 1u);
  EXPECT_EQ(only_beta.models[0].name, "beta");
  EXPECT_TRUE(client.Stats("no-such-building").models.empty());
  server.Stop();
}

TEST(ServerTest, CoalescesConcurrentConnections) {
  const Fixture& f = ModelA();
  auto registry_config = QuickBatcherConfig();
  registry_config.max_delay = 20ms;  // wide window so clients coalesce
  auto registry = std::make_shared<ModelRegistry>(registry_config);
  registry->Load("alpha", f.model);
  Server server(registry);
  server.Start();
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 6;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client("127.0.0.1", server.port());
      for (std::size_t k = 0; k < kPerClient; ++k) {
        const std::size_t i = (c * kPerClient + k) % f.queries.size();
        if (client.Predict(f.queries[i]) != f.reference[i]) ++mismatches;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.Stop();
  EXPECT_EQ(mismatches.load(), 0u);
  ASSERT_EQ(registry->Stats().size(), 1u);
  const ModelStats stats = registry->Stats()[0];
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_GE(stats.batches, 1u);
}

TEST(ServerTest, HotReloadSwapsSnapshotBetweenRequests) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  auto registry = AlphaRegistry();
  Server server(registry);
  server.Start();
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.Ping().model_generation, 1u);
  EXPECT_EQ(client.Predict(a.queries[0]), a.reference[0]);

  registry->Load("alpha", b.model);
  EXPECT_EQ(client.Ping().model_generation, 2u);
  const std::size_t n = std::min<std::size_t>(b.queries.size(), 6);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(client.Predict(b.queries[i]), b.reference[i]) << i;
  }
  server.Stop();
}

TEST(ServerTest, HotReloadWhileBatchInFlightServesOldOrNewSnapshot) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  auto registry = AlphaRegistry();
  Server server(registry);
  server.Start();
  const std::size_t n = std::min<std::size_t>(a.queries.size(), 20);
  std::atomic<std::size_t> invalid{0};
  std::thread querier([&] {
    Client client("127.0.0.1", server.port());
    for (std::size_t i = 0; i < n; ++i) {
      // Every answer must equal one of the two snapshots' references: a
      // batch caught mid-reload finishes on the snapshot it started with.
      const auto prediction = client.Predict(a.queries[i]);
      if (prediction != a.reference[i] && prediction != b.reference[i]) {
        ++invalid;
      }
    }
  });
  for (int swap = 0; swap < 6; ++swap) {
    registry->Load("alpha", swap % 2 == 0 ? b.model : a.model);
    std::this_thread::sleep_for(2ms);
  }
  querier.join();
  server.Stop();
  EXPECT_EQ(invalid.load(), 0u);
  EXPECT_EQ(registry->generation("alpha"), 7u);
}

TEST(ServerTest, PerModelReloadDoesNotDisturbOtherModels) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  const std::string path = testing::TempDir() + "serve_test_beta_model.bin";
  b.model->SaveModel(path);
  auto registry = std::make_shared<ModelRegistry>(QuickBatcherConfig());
  registry->Load("alpha", a.model);
  registry->LoadFromDisk("beta", path);
  Server server(registry);
  server.Start();

  // Hammer alpha while beta hot-reloads from disk over the wire: alpha's
  // in-flight batches and answers must be byte-stable throughout.
  const std::size_t n = std::min<std::size_t>(a.queries.size(), 20);
  std::atomic<std::size_t> mismatches{0};
  std::thread querier([&] {
    Client client("127.0.0.1", server.port());
    for (std::size_t i = 0; i < n; ++i) {
      if (client.Predict(a.queries[i], "alpha") != a.reference[i]) {
        ++mismatches;
      }
    }
  });
  Client admin("127.0.0.1", server.port());
  std::uint64_t generation = 1;
  for (int reload = 0; reload < 3; ++reload) {
    generation = admin.Reload("beta");
  }
  querier.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(generation, 4u);
  EXPECT_EQ(registry->generation("alpha"), 1u);
  // Beta still answers its own reference after the reload churn.
  EXPECT_EQ(admin.Predict(b.queries[0], "beta"), b.reference[0]);
  server.Stop();
}

TEST(ServerTest, ReloadRequestWithoutModelPathFailsSoftly) {
  const Fixture& f = ModelA();
  Server server(AlphaRegistry());  // no model path
  server.Start();
  Client client("127.0.0.1", server.port());
  EXPECT_THROW(client.Reload(), Error);
  // The refusal must not poison the connection or the daemon.
  EXPECT_TRUE(client.Ping().ok);
  EXPECT_EQ(client.Predict(f.queries[0]), f.reference[0]);
  server.Stop();
}

TEST(ClientTest, ReceiveLimitIsConfigurableAndEnforced) {
  const Fixture& f = ModelA();
  Server server(AlphaRegistry());
  server.Start();
  // A tiny receive cap makes the client reject its own (large, batched)
  // reply; the default cap accepts it. This is the client-side knob for
  // big v2 batch responses.
  ClientConfig tiny;
  tiny.max_frame_bytes = 16;
  Client capped("127.0.0.1", server.port(), tiny);
  const std::vector<rf::SignalRecord> queries(f.queries.begin(),
                                              f.queries.begin() + 8);
  EXPECT_THROW(capped.PredictBatch(queries, "alpha"), Error);
  Client roomy("127.0.0.1", server.port());
  const auto batched = roomy.PredictBatch(queries, "alpha");
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i], f.reference[i]) << i;
  }
  server.Stop();
}

TEST(ClientTest, SplitsDenseBatchesBySizeNotJustCount) {
  Server server(AlphaRegistry());
  server.Start();
  // 120 dense scans of 600 observations each encode to ~1.15 MiB — over
  // the daemon's 1 MiB frame cap, yet far under the 1024-record count cap.
  // The client must split by encoded size; count-only chunking would ship
  // one oversized frame and get the connection dropped. The synthetic MACs
  // share nothing with the model, so every record legitimately discards.
  std::vector<rf::SignalRecord> dense;
  dense.reserve(120);
  for (std::uint64_t r = 0; r < 120; ++r) {
    rf::SignalRecord record;
    for (std::uint64_t o = 0; o < 600; ++o) {
      record.Add(rf::MacAddress(0x010000000000ULL + r * 1000 + o), -60.0);
    }
    dense.push_back(std::move(record));
  }
  Client client("127.0.0.1", server.port());
  const auto predictions = client.PredictBatch(dense, "alpha");
  ASSERT_EQ(predictions.size(), dense.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    EXPECT_EQ(predictions[i], std::nullopt) << i;
  }
  server.Stop();
}

int ConnectRaw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)),
      0);
  return fd;
}

TEST(ServerTest, V1FramesAreServedByTheDefaultModelInV1Dialect) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  auto registry = std::make_shared<ModelRegistry>(QuickBatcherConfig());
  registry->Load("alpha", a.model);
  registry->Load("beta", b.model);
  Server server(registry);
  server.Start();

  // A deployed v1 client: single-record frames, no model names, expects v1
  // replies. It must keep getting the default model's exact answers from
  // the v2 daemon.
  const int fd = ConnectRaw(server.port());
  for (std::size_t i = 0; i < 4; ++i) {
    SendFrame(fd, PredictRequest{"", {a.queries[i]}}, /*version=*/1);
    const std::optional<std::string> payload = ReceiveFramePayload(fd);
    ASSERT_TRUE(payload.has_value());
    std::uint32_t version = 0;
    const Message reply = DecodePayload(*payload, &version);
    EXPECT_EQ(version, 1u) << "v1 requests get v1-encoded replies";
    const auto* response = std::get_if<PredictResponse>(&reply);
    ASSERT_NE(response, nullptr);
    ASSERT_EQ(response->results.size(), 1u);
    const PredictResult& result = response->results.front();
    if (a.reference[i].has_value()) {
      EXPECT_EQ(result.status, PredictStatus::kOk);
      EXPECT_EQ(result.floor, *a.reference[i]);
    } else {
      EXPECT_EQ(result.status, PredictStatus::kDiscarded);
    }
  }
  // v1 Ping: the Pong comes back v1-encoded (generation only).
  SendFrame(fd, Ping{}, /*version=*/1);
  const std::optional<std::string> payload = ReceiveFramePayload(fd);
  ASSERT_TRUE(payload.has_value());
  std::uint32_t version = 0;
  const Message reply = DecodePayload(*payload, &version);
  EXPECT_EQ(version, 1u);
  const auto* pong = std::get_if<Pong>(&reply);
  ASSERT_NE(pong, nullptr);
  EXPECT_EQ(pong->protocol_version, 1u);
  EXPECT_EQ(pong->model_generation, 1u);
  ::close(fd);
  server.Stop();
}

TEST(ServerTest, GarbageFrameGetsErrorReplyAndServerSurvives) {
  const Fixture& f = ModelA();
  Server server(AlphaRegistry());
  server.Start();

  const int fd = ConnectRaw(server.port());
  const std::string garbage = "BAD!magic-and-no-version";
  const auto length = static_cast<std::uint32_t>(garbage.size());
  ASSERT_EQ(::send(fd, &length, sizeof(length), 0),
            static_cast<ssize_t>(sizeof(length)));
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  // The server answers with a kError predict response, then hangs up.
  const std::optional<Message> reply = ReceiveFrame(fd);
  ASSERT_TRUE(reply.has_value());
  const auto* response = std::get_if<PredictResponse>(&*reply);
  ASSERT_NE(response, nullptr);
  ASSERT_EQ(response->results.size(), 1u);
  EXPECT_EQ(response->results.front().status, PredictStatus::kError);
  EXPECT_FALSE(ReceiveFramePayload(fd).has_value());
  ::close(fd);

  // Protocol errors are per-connection: a fresh client still gets served.
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.Predict(f.queries[0]), f.reference[0]);
  server.Stop();
}

TEST(ServerTest, StopIsIdempotentAndRestartForbidden) {
  Server server(AlphaRegistry());
  server.Start();
  EXPECT_THROW(server.Start(), Error);
  server.Stop();
  server.Stop();
}

// --- online ingestion over the wire ---------------------------------------

TEST(ServerTest, SubmitWithoutPipelineIsAStructuredRejection) {
  const Fixture& f = ModelA();
  Server server(AlphaRegistry());
  server.Start();
  Client client("127.0.0.1", server.port());
  const auto results = client.Submit({f.queries[0], f.queries[1]});
  ASSERT_EQ(results.size(), 2u);
  for (const SubmitResult& result : results) {
    EXPECT_EQ(result.status, SubmitStatus::kRejected);
    EXPECT_NE(result.error.find("ingest disabled"), std::string::npos);
  }
  EXPECT_FALSE(client.IngestStats().enabled);
  // The rejection poisons neither the connection nor predict traffic.
  EXPECT_EQ(client.Predict(f.queries[0], "alpha"), f.reference[0]);
  server.Stop();
}

TEST(ServerTest, SubmittedRecordsAreFoldedAndChangeServedPredictions) {
  const Fixture& f = ModelA();
  auto registry = AlphaRegistry();
  ingest::IngestConfig ingest_config;
  // One deterministic fold of the whole stream, so the post-publish model
  // must equal an in-process Update on the same records.
  const std::size_t n = std::min<std::size_t>(f.queries.size(), 8);
  ingest_config.fold_batch_size = n;
  ingest_config.max_delay = std::chrono::milliseconds(30000);
  auto pipeline =
      std::make_shared<ingest::IngestPipeline>(registry, ingest_config);
  pipeline->Attach("alpha");
  Server server(registry, {});
  server.AttachIngest(pipeline);
  server.Start();
  Client client("127.0.0.1", server.port());

  const std::vector<rf::SignalRecord> stream(f.queries.begin(),
                                             f.queries.begin() + n);
  const auto results = client.Submit(stream, "alpha");
  ASSERT_EQ(results.size(), n);
  for (const SubmitResult& result : results) {
    EXPECT_EQ(result.status, SubmitStatus::kAccepted) << result.error;
  }
  ASSERT_TRUE(pipeline->WaitUntilDrained());

  // Generation bump observable over the wire, with ingest provenance.
  EXPECT_EQ(client.Ping("alpha").model_generation, 2u);
  const StatsResponse stats = client.Stats("alpha");
  ASSERT_EQ(stats.models.size(), 1u);
  EXPECT_EQ(stats.models[0].last_publish_source, PublishSource::kIngest);
  EXPECT_EQ(stats.models[0].pending_ingest, 0u);
  const IngestStatsResponse ingest_stats = client.IngestStats();
  ASSERT_TRUE(ingest_stats.enabled);
  ASSERT_EQ(ingest_stats.models.size(), 1u);
  EXPECT_EQ(ingest_stats.models[0].accepted, n);
  EXPECT_EQ(ingest_stats.models[0].folded, n);
  EXPECT_EQ(ingest_stats.models[0].pending, 0u);

  // Post-publish answers over the wire == in-process Update on a clone.
  core::Grafics reference = f.model->Clone();
  reference.Update(stream);
  const auto expected = reference.PredictBatch(f.queries, {.num_threads = 1});
  const auto served = client.PredictBatch(f.queries, "alpha");
  for (std::size_t i = 0; i < f.queries.size(); ++i) {
    EXPECT_EQ(served[i], expected[i]) << i;
  }
  server.Stop();
  pipeline->Stop();
}

TEST(ServerTest, PredictionsInFlightAcrossAFoldInSeeOldOrNewSnapshot) {
  const Fixture& f = ModelA();
  auto registry = AlphaRegistry();
  ingest::IngestConfig ingest_config;
  ingest_config.fold_batch_size = 2;
  ingest_config.max_delay = 1ms;
  auto pipeline =
      std::make_shared<ingest::IngestPipeline>(registry, ingest_config);
  pipeline->Attach("alpha");
  Server server(registry, {});
  server.AttachIngest(pipeline);
  server.Start();

  // Every possible published state's reference: the base model, then one
  // per fold of the next 2-record chunk.
  const std::size_t folds = 3;
  std::vector<std::vector<std::optional<rf::FloorId>>> references;
  references.push_back(f.reference);
  {
    core::Grafics reference = f.model->Clone();
    for (std::size_t fold = 0; fold < folds; ++fold) {
      const std::vector<rf::SignalRecord> chunk(
          f.queries.begin() + static_cast<long>(2 * fold),
          f.queries.begin() + static_cast<long>(2 * fold + 2));
      reference.Update(chunk);
      references.push_back(
          reference.PredictBatch(f.queries, {.num_threads = 1}));
    }
  }

  // Hammer predictions while the folds publish underneath: every answer
  // must be bit-identical to one of the snapshots' references — a batch
  // caught mid-publish finishes on the snapshot it started with.
  std::atomic<std::size_t> invalid{0};
  const std::size_t n = std::min<std::size_t>(f.queries.size(), 20);
  std::thread querier([&] {
    Client client("127.0.0.1", server.port());
    for (std::size_t i = 0; i < n; ++i) {
      const auto prediction = client.Predict(f.queries[i], "alpha");
      bool matched = false;
      for (const auto& reference : references) {
        if (prediction == reference[i]) matched = true;
      }
      if (!matched) ++invalid;
    }
  });
  Client submitter("127.0.0.1", server.port());
  for (std::size_t fold = 0; fold < folds; ++fold) {
    const std::vector<rf::SignalRecord> chunk(
        f.queries.begin() + static_cast<long>(2 * fold),
        f.queries.begin() + static_cast<long>(2 * fold + 2));
    const auto results = submitter.Submit(chunk, "alpha");
    for (const SubmitResult& result : results) {
      ASSERT_EQ(result.status, SubmitStatus::kAccepted) << result.error;
    }
    ASSERT_TRUE(pipeline->WaitUntilDrained());
  }
  querier.join();
  EXPECT_EQ(invalid.load(), 0u);
  EXPECT_EQ(registry->generation("alpha"), 1u + folds);
  // After the last publish, answers equal the final reference exactly.
  Client client("127.0.0.1", server.port());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(client.Predict(f.queries[i], "alpha"),
              references.back()[i]) << i;
  }
  server.Stop();
  pipeline->Stop();
}

// --- event-driven transport ------------------------------------------------

void SendAllRaw(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

TEST(ServerTest, PipelinedBurstOnOneSocketIsAnsweredInOrder) {
  const Fixture& f = ModelA();
  Server server(AlphaRegistry());
  server.Start();
  const int fd = ConnectRaw(server.port());
  // Fire a burst of frames without reading a single reply — always legal
  // framing, which the old transport just happened to serve one at a time.
  // A ping rides in the middle: ordering is per frame, not per type.
  const std::size_t n = std::min<std::size_t>(f.queries.size(), 24);
  const std::size_t ping_at = n / 2;
  std::string burst;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == ping_at) burst += EncodeFrame(Ping{});
    burst += EncodeFrame(PredictRequest{"", {f.queries[i]}});
  }
  SendAllRaw(fd, burst);
  std::size_t predict_index = 0;
  for (std::size_t i = 0; i < n + 1; ++i) {
    const std::optional<std::string> payload = ReceiveFramePayload(fd);
    ASSERT_TRUE(payload.has_value()) << "reply " << i;
    const Message reply = DecodePayload(*payload);
    if (i == ping_at) {
      const auto* pong = std::get_if<Pong>(&reply);
      ASSERT_NE(pong, nullptr) << "pong must hold its place in the pipeline";
      EXPECT_TRUE(pong->ok);
      continue;
    }
    const auto* response = std::get_if<PredictResponse>(&reply);
    ASSERT_NE(response, nullptr) << "reply " << i;
    ASSERT_EQ(response->results.size(), 1u);
    const PredictResult& result = response->results.front();
    const std::optional<rf::FloorId>& expected = f.reference[predict_index];
    if (expected.has_value()) {
      EXPECT_EQ(result.status, PredictStatus::kOk) << predict_index;
      EXPECT_EQ(result.floor, *expected) << predict_index;
    } else {
      EXPECT_EQ(result.status, PredictStatus::kDiscarded) << predict_index;
    }
    ++predict_index;
  }
  ::close(fd);
  const TransportStats transport = server.transport_stats();
  EXPECT_GE(transport.frames_in, n + 1);
  EXPECT_GE(transport.frames_out, n + 1);
  EXPECT_GT(transport.bytes_in, 0u);
  EXPECT_GT(transport.bytes_out, 0u);
  server.Stop();
}

TEST(ServerTest, StatsCarriesTransportCountersOverTheWire) {
  const Fixture& f = ModelA();
  Server server(AlphaRegistry());
  server.Start();
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.Predict(f.queries[0], "alpha"), f.reference[0]);
  const StatsResponse stats = client.Stats();
  EXPECT_EQ(stats.transport.event_workers, 2u);  // ServerConfig default
  EXPECT_GE(stats.transport.connections_live, 1u);  // this very connection
  EXPECT_GT(stats.transport.frames_in, 0u);
  EXPECT_GT(stats.transport.frames_out, 0u);
  EXPECT_GT(stats.transport.bytes_in, 0u);
  EXPECT_GT(stats.transport.bytes_out, 0u);
  EXPECT_EQ(stats.transport.connections_harvested_idle, 0u);
  EXPECT_EQ(stats.transport.requests_rejected_busy, 0u);
  server.Stop();
}

TEST(ServerTest, SlowLorisPartialFrameIsHarvestedByIdleTimeout) {
  const Fixture& f = ModelA();
  ServerConfig config;
  config.idle_timeout = std::chrono::milliseconds(100);
  Server server(AlphaRegistry(), config);
  server.Start();
  const int fd = ConnectRaw(server.port());
  // A length prefix declaring 64 bytes, then silence. The old transport
  // parked a handler thread on this socket forever.
  const std::uint32_t declared = 64;
  ASSERT_EQ(::send(fd, &declared, sizeof(declared), 0),
            static_cast<ssize_t>(sizeof(declared)));
  // Poll the counter rather than blocking in recv: sanitizer runtimes can
  // interrupt a bare blocking recv before the sweep fires.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (server.transport_stats().connections_harvested_idle == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.transport_stats().connections_harvested_idle, 1u);
  // The harvester closed the connection: recv resolves with EOF (or a
  // reset) instead of hanging.
  char byte = 0;
  EXPECT_LE(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  // An active client is not collateral damage.
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.Predict(f.queries[0], "alpha"), f.reference[0]);
  server.Stop();
}

TEST(ServerTest, QueueDepthRejectionIsAStructuredBusyError) {
  const Fixture& f = ModelA();
  BatcherConfig batcher;
  batcher.max_batch_size = 2;
  batcher.max_delay = 60s;  // flushes only on the size trigger
  auto registry = std::make_shared<ModelRegistry>(batcher);
  registry->Load("alpha", f.model);
  ServerConfig config;
  config.max_queue_depth = 2;
  Server server(registry, config);
  server.Start();
  Client client("127.0.0.1", server.port());
  // Five records cannot fit a 2-deep queue: refused whole (admission is
  // all-or-nothing) with a structured busy error the client decodes.
  const std::vector<rf::SignalRecord> five(f.queries.begin(),
                                           f.queries.begin() + 5);
  try {
    client.PredictBatch(five, "alpha");
    FAIL() << "expected a busy rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("busy"), std::string::npos)
        << e.what();
  }
  // Neither the connection nor the model is poisoned: a fitting batch is
  // admitted and served bit-identically (the size trigger flushes it).
  const std::vector<rf::SignalRecord> two(f.queries.begin(),
                                          f.queries.begin() + 2);
  const auto served = client.PredictBatch(two, "alpha");
  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[0], f.reference[0]);
  EXPECT_EQ(served[1], f.reference[1]);
  EXPECT_EQ(server.transport_stats().requests_rejected_busy, 1u);
  server.Stop();
}

TEST(ServerTest, MaxInflightBusyRejectsTheExcessButKeepsReplyOrder) {
  const Fixture& f = ModelA();
  BatcherConfig batcher;
  batcher.max_batch_size = 100;
  batcher.max_delay = 60s;  // nothing flushes until the registry drains
  auto registry = std::make_shared<ModelRegistry>(batcher);
  registry->Load("alpha", f.model);
  ServerConfig config;
  config.max_inflight_per_connection = 1;
  Server server(registry, config);
  server.Start();
  const int fd = ConnectRaw(server.port());
  std::string burst = EncodeFrame(PredictRequest{"", {f.queries[0]}});
  burst += EncodeFrame(PredictRequest{"", {f.queries[1]}});
  SendAllRaw(fd, burst);
  // Wait until the first predict sits in the batcher queue and the second
  // was busy-rejected; the rejection's reply must still wait in line
  // behind the first one's.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while ((registry->Stats("alpha")[0].queue_depth < 1 ||
          server.transport_stats().requests_rejected_busy < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(registry->Stats("alpha")[0].queue_depth, 1u);
  ASSERT_EQ(server.transport_stats().requests_rejected_busy, 1u);
  registry->Stop();  // drains the batcher: the first predict resolves
  const std::optional<std::string> first = ReceiveFramePayload(fd);
  ASSERT_TRUE(first.has_value());
  const Message first_reply = DecodePayload(*first);
  const auto* first_response = std::get_if<PredictResponse>(&first_reply);
  ASSERT_NE(first_response, nullptr);
  ASSERT_EQ(first_response->results.size(), 1u);
  if (f.reference[0].has_value()) {
    EXPECT_EQ(first_response->results[0].status, PredictStatus::kOk);
    EXPECT_EQ(first_response->results[0].floor, *f.reference[0]);
  } else {
    EXPECT_EQ(first_response->results[0].status, PredictStatus::kDiscarded);
  }
  const std::optional<std::string> second = ReceiveFramePayload(fd);
  ASSERT_TRUE(second.has_value());
  const Message second_reply = DecodePayload(*second);
  const auto* second_response = std::get_if<PredictResponse>(&second_reply);
  ASSERT_NE(second_response, nullptr);
  ASSERT_EQ(second_response->results.size(), 1u);
  EXPECT_EQ(second_response->results[0].status, PredictStatus::kError);
  EXPECT_NE(second_response->results[0].error.find("busy"),
            std::string::npos);
  ::close(fd);
  server.Stop();
}

TEST(ServerTest, HotSwapUnderPipelinedTrafficStaysBitIdentical) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();  // same building + queries, different seed
  auto registry = std::make_shared<ModelRegistry>(QuickBatcherConfig());
  registry->Load("alpha", a.model);
  Server server(registry);
  server.Start();
  const int fd = ConnectRaw(server.port());
  const std::size_t n = std::min<std::size_t>(a.queries.size(), 20);
  std::string burst;
  for (std::size_t i = 0; i < n; ++i) {
    burst += EncodeFrame(PredictRequest{"", {a.queries[i]}});
  }
  SendAllRaw(fd, burst);
  // Swap the model while the burst is in flight: every reply must be
  // bit-identical to one of the two snapshots' references — a batch caught
  // mid-swap finishes on the snapshot it started with, never on a blend.
  registry->Load("alpha", b.model);
  for (std::size_t i = 0; i < n; ++i) {
    const std::optional<std::string> payload = ReceiveFramePayload(fd);
    ASSERT_TRUE(payload.has_value()) << "reply " << i;
    const Message reply = DecodePayload(*payload);
    const auto* response = std::get_if<PredictResponse>(&reply);
    ASSERT_NE(response, nullptr) << "reply " << i;
    ASSERT_EQ(response->results.size(), 1u);
    const PredictResult& result = response->results.front();
    ASSERT_NE(result.status, PredictStatus::kError) << result.error;
    const std::optional<rf::FloorId> prediction =
        result.status == PredictStatus::kOk
            ? std::optional<rf::FloorId>(result.floor)
            : std::nullopt;
    EXPECT_TRUE(prediction == a.reference[i] || prediction == b.reference[i])
        << i;
  }
  ::close(fd);
  // Batches submitted after the swap see exactly the new snapshot.
  Client client("127.0.0.1", server.port());
  const std::vector<rf::SignalRecord> queries(b.queries.begin(),
                                              b.queries.begin() + n);
  const auto after = client.PredictBatch(queries, "alpha");
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(after[i], b.reference[i]) << i;
  }
  server.Stop();
}

// --- end-to-end telemetry -------------------------------------------------

TEST(MicroBatcherTest, FlushReasonsAreAccountedAndHistogramsObserve) {
  const Fixture& f = ModelA();
  obs::Registry obs_registry;
  {
    BatcherConfig config;
    config.max_batch_size = 2;
    config.max_delay = 60s;
    config.obs.batch_size = obs_registry.GetHistogram(
        "grafics_batcher_batch_size", "h", obs::PowerOfTwoBuckets(2));
    config.obs.queue_wait_us = obs_registry.GetHistogram(
        "grafics_batcher_queue_wait_us", "h", obs::DefaultLatencyBucketsUs());
    config.obs.predict_us = obs_registry.GetHistogram(
        "grafics_batcher_predict_us", "h", obs::DefaultLatencyBucketsUs());
    MicroBatcher batcher(config, SnapshotOf(f));
    auto first = batcher.Submit(f.queries[0]);
    auto second = batcher.Submit(f.queries[1]);
    GetWithin(first);
    GetWithin(second);
    const BatcherStats stats = batcher.stats();
    EXPECT_EQ(stats.flushes_max_batch, 1u);
    EXPECT_EQ(stats.flushes_max_delay, 0u);
    EXPECT_EQ(stats.flushes_shutdown, 0u);
    // One dispatched batch = one batch-size and one predict observation,
    // one queue-wait observation per record.
    EXPECT_EQ(config.obs.batch_size->count(), 1u);
    EXPECT_EQ(config.obs.batch_size->sum(), 2u);
    EXPECT_EQ(config.obs.queue_wait_us->count(), 2u);
    EXPECT_EQ(config.obs.predict_us->count(), 1u);
  }
  {
    BatcherConfig config;
    config.max_batch_size = 8;
    config.max_delay = 1ms;
    MicroBatcher batcher(config, SnapshotOf(f));
    auto only = batcher.Submit(f.queries[0]);
    GetWithin(only);
    const BatcherStats stats = batcher.stats();
    EXPECT_EQ(stats.flushes_max_delay, 1u);
    EXPECT_EQ(stats.flushes_max_batch, 0u);
  }
  {
    BatcherConfig config;
    config.max_batch_size = 8;
    config.max_delay = 60s;
    MicroBatcher batcher(config, SnapshotOf(f));
    auto pending = batcher.Submit(f.queries[0]);
    batcher.Stop();  // drains the pending request as a shutdown flush
    GetWithin(pending);
    const BatcherStats stats = batcher.stats();
    EXPECT_EQ(stats.flushes_shutdown, 1u);
    EXPECT_EQ(stats.flushes_max_batch + stats.flushes_max_delay +
                  stats.flushes_shutdown,
              stats.batches);
  }
}

/// One HTTP/1.0 request against the admin listener, read to EOF (the admin
/// surface speaks Connection: close).
std::string HttpRequest(std::uint16_t port, const std::string& head) {
  const int fd = ConnectRaw(port);
  SendAllRaw(fd, head);
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(std::uint16_t port, const std::string& path) {
  return HttpRequest(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

/// Value of the exposition series whose name+labels match `series` exactly.
std::optional<std::uint64_t> MetricValue(const std::string& text,
                                         const std::string& series) {
  const std::string needle = series + " ";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::stoull(text.substr(pos + needle.size()));
    }
    pos += needle.size();
  }
  return std::nullopt;
}

TEST(AdminServerTest, ServesMetricsHealthAndReadiness) {
  std::atomic<bool> ready{false};
  obs::AdminServer admin(
      {}, [] { return std::string("grafics_up 1\n"); },
      [&ready]() -> bool {
        if (!ready.load()) throw Error("probe not ready");  // throw == 503
        return true;
      });
  admin.Start();
  ASSERT_NE(admin.port(), 0);

  const std::string metrics = HttpGet(admin.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("grafics_up 1\n"), std::string::npos);

  const std::string health = HttpGet(admin.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  // The probe throws until flipped: /readyz degrades to 503, never a crash.
  EXPECT_NE(HttpGet(admin.port(), "/readyz").find("HTTP/1.0 503"),
            std::string::npos);
  ready.store(true);
  EXPECT_NE(HttpGet(admin.port(), "/readyz").find("HTTP/1.0 200"),
            std::string::npos);

  EXPECT_NE(HttpGet(admin.port(), "/nope").find("HTTP/1.0 404"),
            std::string::npos);
  EXPECT_NE(
      HttpRequest(admin.port(), "POST /metrics HTTP/1.0\r\n\r\n")
          .find("HTTP/1.0 405"),
      std::string::npos);
  admin.Stop();
}

TEST(ServerTest, MetricsScrapeMatchesStatsResponseEndToEnd) {
  const Fixture& f = ModelA();
  auto obs_registry = std::make_shared<obs::Registry>();
  auto registry = std::make_shared<ModelRegistry>(QuickBatcherConfig());
  // Attach BEFORE Load so the per-model latency histograms resolve.
  registry->AttachObs(obs_registry);
  registry->Load("alpha", f.model);
  ServerConfig config;
  config.slow_request_us = 1;  // every request counts (and logs) as slow
  config.idle_timeout = std::chrono::milliseconds(100);
  Server server(registry, config);
  server.AttachObs(obs_registry);
  server.Start();
  obs::AdminServer admin(
      {}, [obs_registry] { return obs_registry->RenderPrometheus(); },
      [registry] { return registry->generation("alpha") > 0; });
  admin.Start();
  EXPECT_NE(HttpGet(admin.port(), "/readyz").find("HTTP/1.0 200"),
            std::string::npos);

  Client client("127.0.0.1", server.port());
  const std::size_t n = std::min<std::size_t>(f.queries.size(), 12);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(client.Predict(f.queries[i]), f.reference[i]) << i;
  }
  // A harvested slow-loris connection feeds the sweep instruments.
  const int loris = ConnectRaw(server.port());
  const std::uint32_t declared = 64;
  ASSERT_EQ(::send(loris, &declared, sizeof(declared), 0),
            static_cast<ssize_t>(sizeof(declared)));
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (server.transport_stats().connections_harvested_idle == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(loris);
  // The first client sat idle through the harvest wait and may have been
  // swept with the loris — query stats over a fresh connection.
  Client stats_client("127.0.0.1", server.port());
  const StatsResponse stats = stats_client.Stats();
  ASSERT_EQ(stats.models.size(), 1u);

  // The scrape happens after the Stats round trip, so scraped transport
  // counters are >= the wire-reported ones; batcher counters are quiescent
  // (no predict between the two) and must match exactly.
  const std::string response = HttpGet(admin.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  EXPECT_EQ(MetricValue(body,
                        "grafics_batcher_requests_total{model=\"alpha\"}"),
            stats.models[0].requests);
  EXPECT_EQ(
      MetricValue(body, "grafics_batcher_batches_total{model=\"alpha\"}"),
      stats.models[0].batches);
  EXPECT_EQ(MetricValue(body, "grafics_model_generation{model=\"alpha\"}"),
            stats.models[0].generation);
  EXPECT_EQ(
      MetricValue(body,
                  "grafics_model_snapshot_shared_bytes{model=\"alpha\"}"),
      stats.models[0].shared_bytes);
  EXPECT_GE(*MetricValue(body, "grafics_transport_frames_in_total"),
            stats.transport.frames_in);
  EXPECT_GE(*MetricValue(body, "grafics_transport_accepts_total"),
            stats.connections_accepted);
  EXPECT_GE(
      *MetricValue(body, "grafics_transport_connections_harvested_total"),
      1u);
  EXPECT_GE(*MetricValue(body, "grafics_transport_harvest_sweeps_total"), 1u);
  // Flush-reason counters sum to the batch count.
  const std::uint64_t flush_sum =
      *MetricValue(
          body,
          "grafics_batcher_flushes_total{model=\"alpha\",reason=\"max_batch"
          "\"}") +
      *MetricValue(
          body,
          "grafics_batcher_flushes_total{model=\"alpha\",reason=\"max_delay"
          "\"}") +
      *MetricValue(
          body,
          "grafics_batcher_flushes_total{model=\"alpha\",reason=\"shutdown"
          "\"}");
  EXPECT_EQ(flush_sum, stats.models[0].batches);
  // Latency distributions observed on the request path.
  EXPECT_EQ(*MetricValue(
                body, "grafics_batcher_queue_wait_us_count{model=\"alpha\"}"),
            stats.models[0].requests);
  EXPECT_EQ(
      *MetricValue(body, "grafics_batcher_predict_us_count{model=\"alpha\"}"),
      stats.models[0].batches);
  EXPECT_GE(*MetricValue(body, "grafics_transport_frame_decode_us_count"),
            static_cast<std::uint64_t>(n));
  // Threshold of 1us makes every predict a slow request.
  EXPECT_EQ(*MetricValue(body, "grafics_server_slow_requests_total"),
            static_cast<std::uint64_t>(n));

  // The v7 wire dump is the same registry render as the admin scrape.
  const std::string wire = stats_client.Metrics();
  EXPECT_NE(wire.find("# TYPE grafics_batcher_queue_wait_us histogram"),
            std::string::npos);
  EXPECT_EQ(MetricValue(wire,
                        "grafics_batcher_requests_total{model=\"alpha\"}"),
            stats.models[0].requests);

  admin.Stop();
  server.Stop();
}

TEST(ServerTest, TelemetryCoversIngestAndStoreFamilies) {
  const Fixture& f = ModelA();
  auto obs_registry = std::make_shared<obs::Registry>();
  auto registry = std::make_shared<ModelRegistry>(QuickBatcherConfig());
  registry->AttachObs(obs_registry);
  registry->Load("alpha", f.model);
  // A fresh store directory every run: artifact counts below are absolute.
  std::string dir_template = testing::TempDir() + "/grafics_obs_store_XXXXXX";
  std::vector<char> dir(dir_template.begin(), dir_template.end());
  dir.push_back('\0');
  ASSERT_NE(::mkdtemp(dir.data()), nullptr);
  auto store = std::make_shared<store::ModelStore>(dir.data());
  store->AttachObs(obs_registry);
  store->WriteBase("alpha", f.model);
  ingest::IngestConfig ingest_config;
  const std::size_t n = std::min<std::size_t>(f.queries.size(), 4);
  ingest_config.fold_batch_size = n;
  ingest_config.max_delay = std::chrono::milliseconds(30000);
  ingest_config.obs = obs_registry;
  auto pipeline =
      std::make_shared<ingest::IngestPipeline>(registry, ingest_config);
  pipeline->Attach("alpha");
  Server server(registry, {});
  server.AttachIngest(pipeline);
  server.AttachObs(obs_registry);
  server.Start();
  Client client("127.0.0.1", server.port());
  const std::vector<rf::SignalRecord> stream(f.queries.begin(),
                                             f.queries.begin() + n);
  for (const SubmitResult& result : client.Submit(stream, "alpha")) {
    EXPECT_EQ(result.status, SubmitStatus::kAccepted) << result.error;
  }
  ASSERT_TRUE(pipeline->WaitUntilDrained());

  const std::string text = obs_registry->RenderPrometheus();
  EXPECT_EQ(MetricValue(text,
                        "grafics_ingest_accepted_total{model=\"alpha\"}"),
            static_cast<std::uint64_t>(n));
  EXPECT_EQ(MetricValue(text, "grafics_ingest_folded_total{model=\"alpha\"}"),
            static_cast<std::uint64_t>(n));
  EXPECT_EQ(MetricValue(text, "grafics_ingest_backlog{model=\"alpha\"}"), 0u);
  EXPECT_GE(*MetricValue(text,
                         "grafics_ingest_publishes_total{model=\"alpha\"}"),
            1u);
  EXPECT_GE(*MetricValue(text,
                         "grafics_ingest_fold_us_count{model=\"alpha\"}"),
            1u);
  EXPECT_GE(*MetricValue(text, "grafics_store_checkpoint_us_count"), 1u);
  EXPECT_EQ(MetricValue(text, "grafics_store_base_artifacts"), 1u);
  EXPECT_EQ(MetricValue(text, "grafics_store_delta_artifacts"), 0u);
  EXPECT_EQ(MetricValue(text, "grafics_store_chain_length{model=\"alpha\"}"),
            1u);
  server.Stop();
  pipeline->Stop();
}

}  // namespace
}  // namespace grafics::serve
