// Tests for the serving daemon internals: micro-batch coalescing, the TCP
// server/client loop against the in-process reference, and model hot-reload
// — including a reload racing an in-flight batch, which is what the CI
// ThreadSanitizer job is there to check.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/grafics.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "synth/presets.h"

namespace grafics::serve {
namespace {

using namespace std::chrono_literals;

core::GraficsConfig FastConfig(std::uint64_t trainer_seed) {
  core::GraficsConfig config;
  config.trainer.samples_per_edge = 60;
  config.trainer.seed = trainer_seed;
  config.online_refine_iterations = 300;
  return config;
}

/// Small trained model over the campus building plus held-out queries and
/// the in-process reference predictions every networked path must match.
struct Fixture {
  std::shared_ptr<const core::Grafics> model;
  std::vector<rf::SignalRecord> queries;
  std::vector<std::optional<rf::FloorId>> reference;

  explicit Fixture(std::uint64_t trainer_seed) {
    auto config = synth::CampusBuildingConfig(/*seed=*/53, 60);
    auto sim = config.MakeSimulator();
    rf::Dataset dataset = sim.GenerateDataset();
    Rng rng(54);
    auto [train, test] = dataset.TrainTestSplit(0.7, rng);
    train.KeepLabelsPerFloor(4, rng);
    core::Grafics system(FastConfig(trainer_seed));
    system.Train(train.records());
    queries.assign(test.records().begin(), test.records().end());
    reference = system.PredictBatch(queries, {.num_threads = 1});
    model = std::make_shared<const core::Grafics>(std::move(system));
  }
};

/// Two models trained on the SAME building with different trainer seeds:
/// both answer the same queries, so swapping between them mid-flight always
/// yields one of two valid reference answers.
const Fixture& ModelA() {
  static const Fixture fixture(1);
  return fixture;
}

const Fixture& ModelB() {
  static const Fixture fixture(2);
  return fixture;
}

MicroBatcher::SnapshotFn SnapshotOf(const Fixture& fixture) {
  return [&fixture] { return fixture.model; };
}

std::optional<rf::FloorId> GetWithin(
    std::future<std::optional<rf::FloorId>>& future,
    std::chrono::seconds timeout = 30s) {
  if (future.wait_for(timeout) != std::future_status::ready) {
    ADD_FAILURE() << "batcher future not ready within " << timeout.count()
                  << "s";
    return std::nullopt;
  }
  return future.get();
}

TEST(MicroBatcherTest, FlushesWhenBatchFills) {
  const Fixture& f = ModelA();
  BatcherConfig config;
  config.max_batch_size = 4;
  config.max_delay = 60s;  // flushing must come from the size trigger
  MicroBatcher batcher(config, SnapshotOf(f));
  std::vector<std::future<std::optional<rf::FloorId>>> futures;
  for (std::size_t i = 0; i < 4; ++i) {
    futures.push_back(batcher.Submit(f.queries[i]));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(GetWithin(futures[i]), f.reference[i]) << i;
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch, 4u);
}

TEST(MicroBatcherTest, FlushesOnDelayWhenBatchStaysSmall) {
  const Fixture& f = ModelA();
  BatcherConfig config;
  config.max_batch_size = 100;
  config.max_delay = 20ms;
  MicroBatcher batcher(config, SnapshotOf(f));
  std::vector<std::future<std::optional<rf::FloorId>>> futures;
  for (std::size_t i = 0; i < 3; ++i) {
    futures.push_back(batcher.Submit(f.queries[i]));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(GetWithin(futures[i]), f.reference[i]) << i;
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.batches, 1u);
}

TEST(MicroBatcherTest, StopDrainsPendingRequests) {
  const Fixture& f = ModelA();
  BatcherConfig config;
  config.max_batch_size = 100;
  config.max_delay = 60s;  // only Stop() can trigger the flush
  MicroBatcher batcher(config, SnapshotOf(f));
  auto first = batcher.Submit(f.queries[0]);
  auto second = batcher.Submit(f.queries[1]);
  batcher.Stop();
  EXPECT_EQ(GetWithin(first), f.reference[0]);
  EXPECT_EQ(GetWithin(second), f.reference[1]);
  EXPECT_THROW(batcher.Submit(f.queries[2]), Error);
}

TEST(MicroBatcherTest, ParallelDispatchMatchesReference) {
  const Fixture& f = ModelA();
  BatcherConfig config;
  config.max_batch_size = 8;
  config.max_delay = 5ms;
  config.predict_threads = 3;  // PredictBatch fan-out inside each flush
  MicroBatcher batcher(config, SnapshotOf(f));
  const std::size_t n = std::min<std::size_t>(f.queries.size(), 24);
  std::vector<std::future<std::optional<rf::FloorId>>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(batcher.Submit(f.queries[i]));
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(GetWithin(futures[i]), f.reference[i]) << i;
  }
}

TEST(MicroBatcherTest, SurfacesSnapshotFailureThroughFutures) {
  BatcherConfig config;
  config.max_delay = 1ms;
  MicroBatcher batcher(config, [] { return MicroBatcher::Snapshot(); });
  auto future = batcher.Submit(ModelA().queries[0]);
  ASSERT_EQ(future.wait_for(30s), std::future_status::ready);
  EXPECT_THROW(future.get(), Error);
}

ServerConfig QuickServerConfig() {
  ServerConfig config;
  config.port = 0;  // ephemeral: tests must not collide on a fixed port
  config.batcher.max_batch_size = 8;
  config.batcher.max_delay = 2ms;
  return config;
}

TEST(ServerTest, ServesPredictionsIdenticalToInProcess) {
  const Fixture& f = ModelA();
  Server server(f.model, QuickServerConfig());
  server.Start();
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.Ping(), 1u);
  const std::size_t n = std::min<std::size_t>(f.queries.size(), 12);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(client.Predict(f.queries[i]), f.reference[i]) << i;
  }
  server.Stop();
  EXPECT_EQ(server.batcher_stats().requests, n);
}

TEST(ServerTest, CoalescesConcurrentConnections) {
  const Fixture& f = ModelA();
  ServerConfig config = QuickServerConfig();
  config.batcher.max_delay = 20ms;  // wide window so clients coalesce
  Server server(f.model, config);
  server.Start();
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 6;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client("127.0.0.1", server.port());
      for (std::size_t k = 0; k < kPerClient; ++k) {
        const std::size_t i = (c * kPerClient + k) % f.queries.size();
        if (client.Predict(f.queries[i]) != f.reference[i]) ++mismatches;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.Stop();
  EXPECT_EQ(mismatches.load(), 0u);
  const BatcherStats stats = server.batcher_stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_GE(stats.batches, 1u);
}

TEST(ServerTest, HotReloadSwapsSnapshotBetweenRequests) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  Server server(a.model, QuickServerConfig());
  server.Start();
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.Ping(), 1u);
  EXPECT_EQ(client.Predict(a.queries[0]), a.reference[0]);

  server.SetModel(b.model);
  EXPECT_EQ(client.Ping(), 2u);
  const std::size_t n = std::min<std::size_t>(b.queries.size(), 6);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(client.Predict(b.queries[i]), b.reference[i]) << i;
  }
  server.Stop();
}

TEST(ServerTest, HotReloadWhileBatchInFlightServesOldOrNewSnapshot) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  Server server(a.model, QuickServerConfig());
  server.Start();
  const std::size_t n = std::min<std::size_t>(a.queries.size(), 20);
  std::atomic<std::size_t> invalid{0};
  std::thread querier([&] {
    Client client("127.0.0.1", server.port());
    for (std::size_t i = 0; i < n; ++i) {
      // Every answer must equal one of the two snapshots' references: a
      // batch caught mid-reload finishes on the snapshot it started with.
      const auto prediction = client.Predict(a.queries[i]);
      if (prediction != a.reference[i] && prediction != b.reference[i]) {
        ++invalid;
      }
    }
  });
  for (int swap = 0; swap < 6; ++swap) {
    server.SetModel(swap % 2 == 0 ? b.model : a.model);
    std::this_thread::sleep_for(2ms);
  }
  querier.join();
  server.Stop();
  EXPECT_EQ(invalid.load(), 0u);
  EXPECT_EQ(server.model_generation(), 7u);
}

TEST(ServerTest, ReloadRequestReloadsFromDisk) {
  const Fixture& a = ModelA();
  const Fixture& b = ModelB();
  const std::string path = testing::TempDir() + "serve_test_model.bin";
  a.model->SaveModel(path);
  auto initial = std::make_shared<const core::Grafics>(
      core::Grafics::LoadModel(path));
  Server server(std::move(initial), QuickServerConfig(), path);
  server.Start();
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.Predict(a.queries[0]), a.reference[0]);

  // Swap the artifact on disk, then reload over the wire: the daemon must
  // pick up model B without dropping the connection.
  b.model->SaveModel(path);
  EXPECT_EQ(client.Reload(), 2u);
  const std::size_t n = std::min<std::size_t>(b.queries.size(), 4);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(client.Predict(b.queries[i]), b.reference[i]) << i;
  }
  server.Stop();
}

TEST(ServerTest, ReloadRequestWithoutModelPathFailsSoftly) {
  const Fixture& f = ModelA();
  Server server(f.model, QuickServerConfig());  // no model path
  server.Start();
  Client client("127.0.0.1", server.port());
  EXPECT_THROW(client.Reload(), Error);
  // The refusal must not poison the connection or the daemon.
  EXPECT_EQ(client.Ping(), 1u);
  EXPECT_EQ(client.Predict(f.queries[0]), f.reference[0]);
  server.Stop();
}

int ConnectRaw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)),
      0);
  return fd;
}

TEST(ServerTest, GarbageFrameGetsErrorReplyAndServerSurvives) {
  const Fixture& f = ModelA();
  Server server(f.model, QuickServerConfig());
  server.Start();

  const int fd = ConnectRaw(server.port());
  const std::string garbage = "BAD!magic-and-no-version";
  const auto length = static_cast<std::uint32_t>(garbage.size());
  ASSERT_EQ(::send(fd, &length, sizeof(length), 0),
            static_cast<ssize_t>(sizeof(length)));
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  // The server answers with a kError predict response, then hangs up.
  const std::optional<Message> reply = ReceiveFrame(fd);
  ASSERT_TRUE(reply.has_value());
  const auto* response = std::get_if<PredictResponse>(&*reply);
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->status, PredictStatus::kError);
  EXPECT_FALSE(ReceiveFramePayload(fd).has_value());
  ::close(fd);

  // Protocol errors are per-connection: a fresh client still gets served.
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.Predict(f.queries[0]), f.reference[0]);
  server.Stop();
}

TEST(ServerTest, StopIsIdempotentAndRestartForbidden) {
  const Fixture& f = ModelA();
  Server server(f.model, QuickServerConfig());
  server.Start();
  EXPECT_THROW(server.Start(), Error);
  server.Stop();
  server.Stop();
}

}  // namespace
}  // namespace grafics::serve
