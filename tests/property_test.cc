// Property-based sweeps (parameterized gtest) over randomized inputs:
// invariants that must hold for every seed/configuration, not just the
// hand-picked examples in the per-module unit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cluster/proximity_clusterer.h"
#include "common/alias_sampler.h"
#include "common/stats.h"
#include "core/metrics.h"
#include "embed/trainer.h"
#include "graph/bipartite_graph.h"
#include "graph/weight_function.h"
#include "rf/dataset.h"
#include "rf/dataset_stats.h"
#include "synth/generator.h"
#include "synth/presets.h"

namespace grafics {
namespace {

// ---------------------------------------------------------------------------
// Random record/dataset helpers
// ---------------------------------------------------------------------------

rf::SignalRecord RandomRecord(Rng& rng, std::size_t mac_universe,
                              std::size_t max_obs) {
  rf::SignalRecord record;
  const std::size_t count = 1 + rng.NextIndex(max_obs);
  const auto macs = rng.SampleWithoutReplacement(
      mac_universe, std::min(count, mac_universe));
  for (const std::size_t m : macs) {
    record.Add(rf::MacAddress(m + 1), rng.Uniform(-95.0, -30.0));
  }
  return record;
}

// ---------------------------------------------------------------------------
// Overlap-ratio properties
// ---------------------------------------------------------------------------

class OverlapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlapPropertyTest, SymmetricBoundedAndReflexive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const rf::SignalRecord a = RandomRecord(rng, 50, 20);
    const rf::SignalRecord b = RandomRecord(rng, 50, 20);
    const double ab = a.OverlapRatio(b);
    EXPECT_DOUBLE_EQ(ab, b.OverlapRatio(a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(a.OverlapRatio(a), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Bipartite-graph invariants
// ---------------------------------------------------------------------------

class GraphInvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphInvariantTest, DegreeAndWeightAccounting) {
  Rng rng(GetParam());
  std::vector<rf::SignalRecord> records;
  const std::size_t n = 20 + rng.NextIndex(30);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(RandomRecord(rng, 40, 15));
  }
  const auto g =
      graph::BipartiteGraph::FromRecords(records, graph::OffsetWeight(120.0));

  // Sum of observation counts == #edges.
  std::size_t total_obs = 0;
  for (const auto& r : records) total_obs += r.size();
  EXPECT_EQ(g.NumEdges(), total_obs);

  // Record-side degree sum == MAC-side degree sum == #edges, and the same
  // for weighted degrees vs total edge weight.
  std::size_t record_degree = 0;
  std::size_t mac_degree = 0;
  double record_weight = 0.0;
  double mac_weight = 0.0;
  for (graph::NodeId node = 0; node < g.NumNodes(); ++node) {
    if (g.TypeOf(node) == graph::NodeType::kRecord) {
      record_degree += g.Degree(node);
      record_weight += g.WeightedDegree(node);
    } else {
      mac_degree += g.Degree(node);
      mac_weight += g.WeightedDegree(node);
    }
  }
  EXPECT_EQ(record_degree, g.NumEdges());
  EXPECT_EQ(mac_degree, g.NumEdges());
  EXPECT_NEAR(record_weight, g.TotalEdgeWeight(), 1e-9);
  EXPECT_NEAR(mac_weight, g.TotalEdgeWeight(), 1e-9);

  // Edges() agrees with the counters.
  EXPECT_EQ(g.Edges().size(), g.NumEdges());
}

TEST_P(GraphInvariantTest, RemovalKeepsAccountingConsistent) {
  Rng rng(GetParam() ^ 0xDEAD);
  std::vector<rf::SignalRecord> records;
  for (std::size_t i = 0; i < 25; ++i) {
    records.push_back(RandomRecord(rng, 30, 10));
  }
  auto g =
      graph::BipartiteGraph::FromRecords(records, graph::OffsetWeight(120.0));
  // Remove a random third of the MACs.
  for (std::uint64_t m = 1; m <= 30; ++m) {
    if (rng.Bernoulli(0.33)) g.RemoveMacNode(rf::MacAddress(m));
  }
  double weight_sum = 0.0;
  std::size_t edge_sum = 0;
  for (graph::NodeId node = 0; node < g.NumNodes(); ++node) {
    if (g.TypeOf(node) != graph::NodeType::kRecord) continue;
    edge_sum += g.Degree(node);
    weight_sum += g.WeightedDegree(node);
    for (const auto& nb : g.NeighborsOf(node)) {
      EXPECT_TRUE(g.IsActive(nb.node)) << "edge to removed MAC survived";
    }
  }
  EXPECT_EQ(edge_sum, g.NumEdges());
  EXPECT_NEAR(weight_sum, g.TotalEdgeWeight(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphInvariantTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Clustering invariants across configurations
// ---------------------------------------------------------------------------

struct ClusterSweepCase {
  std::size_t points;
  std::size_t floors;
  std::size_t labels_per_floor;
  std::uint64_t seed;
};

class ClusterInvariantTest
    : public ::testing::TestWithParam<ClusterSweepCase> {};

TEST_P(ClusterInvariantTest, ConstraintAndCountHold) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  Matrix points(param.points, 4);
  std::vector<std::optional<rf::FloorId>> labels(param.points, std::nullopt);
  std::vector<std::size_t> per_floor(param.floors, 0);
  for (std::size_t i = 0; i < param.points; ++i) {
    const auto floor = rng.NextIndex(param.floors);
    for (std::size_t c = 0; c < 4; ++c) {
      points(i, c) = static_cast<double>(floor) * 3.0 + rng.Normal(0.0, 1.0);
    }
    if (per_floor[floor] < param.labels_per_floor) {
      labels[i] = static_cast<rf::FloorId>(floor);
      ++per_floor[floor];
    }
  }
  std::size_t labeled_total = 0;
  for (const auto& l : labels) labeled_total += l.has_value();

  const auto result = cluster::ClusterEmbeddings(points, labels);
  EXPECT_EQ(result.num_clusters(), labeled_total);
  EXPECT_EQ(result.merge_history.size(), param.points - labeled_total);
  std::vector<int> labeled_in(result.num_clusters(), 0);
  for (std::size_t p = 0; p < labels.size(); ++p) {
    EXPECT_LT(result.cluster_of_point[p], result.num_clusters());
    if (labels[p]) ++labeled_in[result.cluster_of_point[p]];
  }
  for (int c : labeled_in) EXPECT_EQ(c, 1);  // exactly one label per cluster
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterInvariantTest,
    ::testing::Values(ClusterSweepCase{30, 2, 1, 1},
                      ClusterSweepCase{60, 3, 2, 2},
                      ClusterSweepCase{90, 4, 4, 3},
                      ClusterSweepCase{120, 5, 3, 4},
                      ClusterSweepCase{50, 2, 10, 5}));

// ---------------------------------------------------------------------------
// Metrics properties
// ---------------------------------------------------------------------------

class MetricsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricsPropertyTest, MicroEqualsAccuracyAndBounds) {
  Rng rng(GetParam());
  const std::size_t n = 50 + rng.NextIndex(100);
  std::vector<rf::FloorId> truth(n);
  std::vector<rf::FloorId> predicted(n);
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<rf::FloorId>(rng.NextIndex(6));
    predicted[i] = static_cast<rf::FloorId>(rng.NextIndex(6));
  }
  const auto m = core::ComputeMetrics(truth, predicted);
  EXPECT_NEAR(m.micro.f_score, m.accuracy, 1e-12);
  for (const double v : {m.micro.precision, m.micro.recall, m.micro.f_score,
                         m.macro.precision, m.macro.recall, m.macro.f_score}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // F is between min and max of P and R for both averages.
  EXPECT_LE(m.macro.f_score,
            std::max(m.macro.precision, m.macro.recall) + 1e-12);
  EXPECT_GE(m.macro.f_score,
            std::min(m.macro.precision, m.macro.recall) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(7, 8, 9, 10, 11, 12));

// ---------------------------------------------------------------------------
// Embedding-trainer sweeps: finite outputs across objectives and dims
// ---------------------------------------------------------------------------

struct TrainerSweepCase {
  embed::Objective objective;
  std::size_t dim;
  std::size_t negatives;
};

class TrainerSweepTest : public ::testing::TestWithParam<TrainerSweepCase> {};

TEST_P(TrainerSweepTest, EmbeddingsStayFinite) {
  Rng rng(3);
  std::vector<rf::SignalRecord> records;
  for (std::size_t i = 0; i < 30; ++i) {
    records.push_back(RandomRecord(rng, 25, 12));
  }
  const auto g =
      graph::BipartiteGraph::FromRecords(records, graph::OffsetWeight(120.0));
  embed::TrainerConfig config;
  config.objective = GetParam().objective;
  config.dim = GetParam().dim;
  config.negative_samples = GetParam().negatives;
  config.samples_per_edge = 30;
  const auto store = embed::TrainEmbeddings(g, config);
  for (graph::NodeId node = 0; node < g.NumNodes(); ++node) {
    for (const double v : store.Ego(node)) EXPECT_TRUE(std::isfinite(v));
    for (const double v : store.Context(node)) EXPECT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TrainerSweepTest,
    ::testing::Values(
        TrainerSweepCase{embed::Objective::kELine, 2, 1},
        TrainerSweepCase{embed::Objective::kELine, 8, 5},
        TrainerSweepCase{embed::Objective::kELine, 64, 10},
        TrainerSweepCase{embed::Objective::kLineSecondOrder, 8, 5},
        TrainerSweepCase{embed::Objective::kLineFirstOrder, 8, 5},
        TrainerSweepCase{embed::Objective::kLineBothOrders, 16, 3}));

// ---------------------------------------------------------------------------
// Alias-sampler distribution across random weight vectors
// ---------------------------------------------------------------------------

class AliasPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AliasPropertyTest, EmpiricalMatchesNormalizedWeights) {
  Rng rng(GetParam());
  const std::size_t n = 3 + rng.NextIndex(30);
  std::vector<double> weights(n);
  double total = 0.0;
  for (double& w : weights) {
    w = rng.Uniform(0.01, 5.0);
    total += w;
  }
  const AliasSampler sampler(weights);
  std::vector<std::size_t> counts(n, 0);
  constexpr std::size_t kDraws = 200000;
  Rng draw(GetParam() ^ 0xF00D);
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[sampler.Sample(draw)];
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = weights[k] / total;
    const double observed =
        static_cast<double>(counts[k]) / static_cast<double>(kDraws);
    EXPECT_NEAR(observed, expected, 0.01 + expected * 0.1) << "bucket " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasPropertyTest,
                         ::testing::Values(101, 202, 303));

// ---------------------------------------------------------------------------
// CDF properties
// ---------------------------------------------------------------------------

class CdfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfPropertyTest, MonotoneAndEndsAtOne) {
  Rng rng(GetParam());
  std::vector<double> values(200);
  for (double& v : values) v = rng.Normal(0.0, 10.0);
  const auto cdf = EmpiricalCdf(values);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].cumulative_probability,
              cdf[i - 1].cumulative_probability);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_probability, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfPropertyTest,
                         ::testing::Values(51, 52, 53));

// ---------------------------------------------------------------------------
// Synthetic-generator statistics match the Fig.-1 regime
// ---------------------------------------------------------------------------

TEST(GeneratorPropertyTest, MallFloorReproducesFig1Shape) {
  auto config = synth::MallFloorConfig(/*seed=*/9);
  config.spec.records_per_floor = 800;  // subsample for test speed
  auto sim = config.MakeSimulator();
  const rf::Dataset ds = sim.GenerateDataset();
  Rng rng(1);
  const auto stats = rf::ComputeRecordStats(ds, 20000, rng);
  // Paper Fig. 1: most records < 40 MACs; most pairs overlap < 0.5.
  EXPECT_GT(stats.fraction_records_below_40_macs, 0.6);
  EXPECT_GT(stats.fraction_pairs_overlap_below_half, 0.7);
}

}  // namespace
}  // namespace grafics
